// Tests for the spanner substrate (Lemma 7.1 via Baswana–Sen) and the
// spanner-broadcast APSP of Corollaries 7.1 / 7.2.
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/spanner/baswana_sen.hpp"
#include "ccq/spanner/spanner_apsp.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

class SpannerSweep : public ::testing::TestWithParam<InstanceSpec> {};

// Property (Lemma 7.1): the (2k-1)-spanner bound holds for every pair,
// and the size stays within O(k n^{1+1/k}).
TEST_P(SpannerSweep, StretchAndSizeBoundsHold)
{
    const Graph g = make_instance(GetParam());
    Rng rng(GetParam().seed + 1000);
    for (const int k : {1, 2, 3, 5}) {
        const SpannerResult result = baswana_sen_spanner(g, k, rng);
        EXPECT_EQ(result.stretch_bound, 2 * k - 1);
        EXPECT_EQ(result.spanner.node_count(), g.node_count());
        const double measured = measured_spanner_stretch(g, result.spanner);
        EXPECT_LE(measured, static_cast<double>(2 * k - 1) + 1e-9)
            << family_name(GetParam().family) << " k=" << k;
        const double size_bound =
            8.0 * k *
            std::pow(static_cast<double>(g.node_count()), 1.0 + 1.0 / k);
        EXPECT_LE(static_cast<double>(result.spanner.edge_count()), size_bound)
            << family_name(GetParam().family) << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpannerSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::path, 48, 1, 100},
        InstanceSpec{GraphFamily::cycle, 48, 2, 100},
        InstanceSpec{GraphFamily::star, 48, 3, 100},
        InstanceSpec{GraphFamily::grid, 49, 4, 100},
        InstanceSpec{GraphFamily::tree, 48, 5, 100},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 64, 6, 100},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 64, 7, 100},
        InstanceSpec{GraphFamily::geometric, 64, 8, 100},
        InstanceSpec{GraphFamily::barabasi_albert, 64, 9, 100},
        InstanceSpec{GraphFamily::clustered, 64, 10, 100},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 64, 11, 1},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 64, 12, 100000}),
    testing::InstanceSpecName{});

TEST(Spanner, KOneReturnsWholeGraph)
{
    Rng rng(1);
    const Graph g = erdos_renyi(20, 0.3, WeightRange{1, 9}, rng);
    const SpannerResult result = baswana_sen_spanner(g, 1, rng);
    EXPECT_EQ(result.spanner.edge_count(), g.simplified().edge_count());
    EXPECT_DOUBLE_EQ(measured_spanner_stretch(g, result.spanner), 1.0);
}

TEST(Spanner, SpannerIsSubgraph)
{
    Rng rng(2);
    const Graph g = erdos_renyi(40, 0.3, WeightRange{1, 50}, rng);
    const SpannerResult result = baswana_sen_spanner(g, 3, rng);
    // Every spanner edge must exist in g with the same weight.
    for (const WeightedEdge& e : result.spanner.edge_list()) {
        bool found = false;
        for (const Edge& orig : g.neighbors(e.u))
            if (orig.to == e.v && orig.weight == e.weight) found = true;
        EXPECT_TRUE(found) << e.u << "-" << e.v << " w=" << e.weight;
    }
}

TEST(Spanner, PreservesConnectivityPerComponent)
{
    Rng rng(3);
    Graph g = Graph::undirected(20);
    // Two separate dense blobs.
    for (NodeId u = 0; u < 10; ++u)
        for (NodeId v = u + 1; v < 10; ++v) g.add_edge(u, v, 1 + (u * 7 + v) % 5);
    for (NodeId u = 10; u < 20; ++u)
        for (NodeId v = u + 1; v < 20; ++v) g.add_edge(u, v, 1 + (u * 3 + v) % 5);
    const SpannerResult result = baswana_sen_spanner(g, 2, rng);
    // measured_spanner_stretch CCQ_CHECKs connectivity preservation.
    EXPECT_LE(measured_spanner_stretch(g, result.spanner), 3.0 + 1e-9);
}

TEST(Spanner, RejectsBadInput)
{
    Rng rng(1);
    const Graph directed = Graph::directed(4);
    EXPECT_THROW((void)baswana_sen_spanner(directed, 2, rng), check_error);
    const Graph g = Graph::undirected(4);
    EXPECT_THROW((void)baswana_sen_spanner(g, 0, rng), check_error);
}

TEST(SpannerApsp, Corollary71ValidApproximation)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(60, 0.1, WeightRange{1, 80}, rng);
        RoundLedger ledger;
        CliqueTransport transport(60, CostModel::standard(), ledger);
        for (const int b : {1, 2, 4}) {
            const SubgraphApspResult result = apsp_via_spanner(g, b, rng, transport, "t");
            EXPECT_DOUBLE_EQ(result.claimed_stretch, 2.0 * b - 1.0);
            expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                                       "cor7.1 b=" + std::to_string(b));
        }
        EXPECT_GT(ledger.total_rounds(), 0.0);
    }
}

TEST(SpannerApsp, FullBroadcastIsExact)
{
    Rng rng(4);
    const Graph g = erdos_renyi(30, 0.2, WeightRange{1, 30}, rng);
    RoundLedger ledger;
    CliqueTransport transport(30, CostModel::standard(), ledger);
    const SubgraphApspResult result = apsp_via_full_broadcast(g, transport, "t");
    EXPECT_EQ(result.estimate, exact_apsp(g));
    EXPECT_DOUBLE_EQ(result.claimed_stretch, 1.0);
}

TEST(SpannerApsp, LognParameterGrowsWithN)
{
    EXPECT_EQ(logn_spanner_parameter(2), 1);
    EXPECT_GE(logn_spanner_parameter(1 << 12), 4);  // log = 12 -> b = 4
    EXPECT_GE(logn_spanner_parameter(1 << 30), logn_spanner_parameter(1 << 12));
    // The resulting stretch 2b-1 is within alpha*log n.
    for (const int n : {64, 1024, 1 << 20}) {
        const int b = logn_spanner_parameter(n);
        EXPECT_LE(2 * b - 1, static_cast<int>(std::ceil(std::log2(n))));
    }
}

TEST(SpannerApsp, BroadcastChargedAtCitedBound)
{
    // A dense graph with b=1 keeps all edges; the broadcast charge must
    // be capped at the cited 4 * n^{1+1/b} size, not the actual m.
    Rng rng(5);
    const int n = 48;
    const Graph g = complete_graph(n, WeightRange{1, 5}, rng);
    RoundLedger ledger;
    CliqueTransport transport(n, CostModel::standard(), ledger);
    (void)apsp_via_spanner(g, 1, rng, transport, "t");
    const double cap_rounds =
        2.0 * std::ceil(3.0 * 4.0 * n * n / static_cast<double>(n)); // words/(n*bw)
    EXPECT_LE(ledger.total_rounds(), cap_rounds + 8.0);
}

} // namespace
} // namespace ccq
