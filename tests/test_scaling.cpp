// Tests for the weight-scaling lemma (Section 8.1, Lemma 8.1): family
// construction, diameter caps, level selection, and the combined eta
// guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/graph/metrics.hpp"
#include "ccq/scaling/weight_scaling.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

TEST(Scaling, FamilyStructure)
{
    Rng rng(1);
    const Graph g = erdos_renyi(24, 0.3, WeightRange{1, 1000}, rng);
    const ScaledFamily family = build_scaled_family(g, /*max_estimate=*/5000, /*h=*/3, 0.5);
    EXPECT_EQ(family.cap_factor_b, 4); // ceil(2/0.5)
    EXPECT_EQ(family.hop_bound_h, 3);
    ASSERT_FALSE(family.levels.empty());
    const Weight cap = 4 * 3 * 3;
    for (std::size_t i = 0; i < family.levels.size(); ++i) {
        const ScaledLevel& level = family.levels[i];
        EXPECT_EQ(level.index, static_cast<int>(i));
        EXPECT_EQ(level.scale, static_cast<Weight>(1) << i);
        EXPECT_EQ(level.cap, cap);
        EXPECT_EQ(level.graph.edge_count(), g.edge_count());
        // Every level weight is ceil(w / 2^i) clamped to the cap.
        for (NodeId u = 0; u < g.node_count(); ++u) {
            const auto orig = g.neighbors(u);
            const auto scaled = level.graph.neighbors(u);
            ASSERT_EQ(orig.size(), scaled.size());
            for (std::size_t e = 0; e < orig.size(); ++e) {
                const Weight expected =
                    std::min<Weight>((orig[e].weight + level.scale - 1) / level.scale, cap);
                EXPECT_EQ(scaled[e].weight, expected);
            }
        }
    }
}

TEST(Scaling, LevelCountIsLogarithmicInWeightRange)
{
    Rng rng(2);
    const Graph g = path_graph(8, WeightRange{1, 2}, rng);
    const std::size_t small = build_scaled_family(g, 100, 2, 0.5).levels.size();
    const std::size_t large = build_scaled_family(g, 100'000'000, 2, 0.5).levels.size();
    EXPECT_LT(small, large);
    EXPECT_LE(large, 64u); // log2 of anything representable
    EXPECT_LE(small, 8u);
}

TEST(Scaling, LevelDiameterRespectsCap)
{
    // With the implicit cap edges, every pair in G_i is within B*h^2; our
    // sparse representation realizes this as min(d, cap): check that the
    // capped distances never exceed the bound.
    Rng rng(3);
    const Graph g = erdos_renyi(30, 0.1, WeightRange{1, 100000}, rng);
    const ScaledFamily family = build_scaled_family(g, weighted_diameter(g), 4, 0.5);
    for (const ScaledLevel& level : family.levels) {
        const DistanceMatrix d = exact_apsp(level.graph);
        for (NodeId u = 0; u < d.size(); ++u)
            for (NodeId v = 0; v < d.size(); ++v) {
                if (u == v) continue;
                EXPECT_LE(min_weight(d.at(u, v), level.cap), level.cap);
            }
    }
}

TEST(Scaling, SelectLevelMatchesPaperRule)
{
    Rng rng(4);
    const Graph g = path_graph(4, WeightRange{1, 1}, rng);
    const ScaledFamily family = build_scaled_family(g, 1'000'000, 3, 0.5);
    const Weight cap = static_cast<Weight>(family.cap_factor_b) * 9; // B h^2 = 36
    EXPECT_EQ(select_level(family, 0), 0);
    EXPECT_EQ(select_level(family, cap / 2), 0);
    EXPECT_EQ(select_level(family, cap - 1), 0);
    EXPECT_EQ(select_level(family, cap), 1);
    EXPECT_EQ(select_level(family, 2 * cap - 1), 1);
    EXPECT_EQ(select_level(family, 2 * cap), 2);
    EXPECT_EQ(select_level(family, 16 * cap), 5);
    EXPECT_THROW((void)select_level(family, -1), check_error);
}

class ScalingSweep : public ::testing::TestWithParam<InstanceSpec> {};

// Lemma 8.1 end-to-end with exact level estimates (l = 1): eta >= d
// everywhere, and eta <= (1+eps) d for pairs within h hops.
TEST_P(ScalingSweep, EtaGuarantees)
{
    const Graph g = make_instance(GetParam());
    const DistanceMatrix exact = exact_apsp(g);
    const int n = g.node_count();
    const int h = std::max(2, shortest_path_hop_diameter(g)); // covers all pairs
    const double eps = 0.5;

    const ScaledFamily family =
        build_scaled_family(g, weighted_diameter(exact), h, eps);
    std::vector<DistanceMatrix> level_estimates;
    for (const ScaledLevel& level : family.levels)
        level_estimates.push_back(exact_apsp(level.graph)); // l = 1
    const DistanceMatrix eta = combine_scaled_estimates(family, level_estimates, exact);

    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = 0; v < n; ++v) {
            if (u == v) {
                EXPECT_EQ(eta.at(u, v), 0);
                continue;
            }
            const Weight d = exact.at(u, v);
            if (!is_finite(d)) {
                EXPECT_FALSE(is_finite(eta.at(u, v)));
                continue;
            }
            EXPECT_GE(eta.at(u, v), d) << u << "," << v;
            EXPECT_LE(static_cast<double>(eta.at(u, v)), (1.0 + eps) * static_cast<double>(d))
                << u << "," << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ScalingSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::path, 24, 1, 100000},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 2, 1000},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 32, 3, 100000},
        InstanceSpec{GraphFamily::clustered, 32, 4, 1000},
        InstanceSpec{GraphFamily::star, 24, 5, 100000},
        InstanceSpec{GraphFamily::geometric, 32, 6, 9999}),
    testing::InstanceSpecName{});

// With an l-approximation per level, eta <= (1+eps) * l * d on covered
// pairs (the full statement of Lemma 8.1).
TEST(Scaling, LevelApproximationFactorPropagates)
{
    Rng rng(7);
    const Graph g = erdos_renyi(28, 0.15, WeightRange{1, 5000}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    const int h = std::max(2, shortest_path_hop_diameter(g));
    constexpr double eps = 0.5;
    constexpr double l = 3.0;

    const ScaledFamily family = build_scaled_family(g, weighted_diameter(exact), h, eps);
    std::vector<DistanceMatrix> level_estimates;
    for (const ScaledLevel& level : family.levels) {
        DistanceMatrix est = exact_apsp(level.graph);
        for (NodeId u = 0; u < est.size(); ++u)
            for (NodeId v = 0; v < est.size(); ++v) {
                if (u == v || !is_finite(est.at(u, v))) continue;
                est.at(u, v) = static_cast<Weight>(static_cast<double>(est.at(u, v)) * l);
            }
        level_estimates.push_back(std::move(est));
    }
    const DistanceMatrix eta = combine_scaled_estimates(family, level_estimates, exact);
    testing::expect_valid_approximation(exact, eta, (1.0 + eps) * l, "scaling-l");
}

// The coarse selector may itself be an approximation (delta != d): the
// lower bound must survive, and covered pairs stay within (1+eps)*l*d.
TEST(Scaling, ApproximateSelectorKeepsSoundness)
{
    Rng rng(8);
    const Graph g = erdos_renyi(28, 0.2, WeightRange{1, 2000}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    const int h = std::max(2, shortest_path_hop_diameter(g));
    // delta = 2.5x inflation, h-approximation since h >= 3 here.
    ASSERT_GE(h, 3);
    DistanceMatrix delta(exact.size());
    for (NodeId u = 0; u < exact.size(); ++u)
        for (NodeId v = 0; v < exact.size(); ++v) {
            const Weight d = exact.at(u, v);
            delta.at(u, v) =
                is_finite(d) ? static_cast<Weight>(static_cast<double>(d) * 2.5) : kInfinity;
        }

    const Weight max_delta = weighted_diameter(delta);
    const ScaledFamily family = build_scaled_family(g, max_delta, h, 0.5);
    std::vector<DistanceMatrix> level_estimates;
    for (const ScaledLevel& level : family.levels)
        level_estimates.push_back(exact_apsp(level.graph));
    const DistanceMatrix eta = combine_scaled_estimates(family, level_estimates, delta);
    testing::expect_valid_approximation(exact, eta, 1.5, "approx-selector");
}

TEST(Scaling, RejectsBadParameters)
{
    Rng rng(9);
    const Graph g = path_graph(4, WeightRange{1, 1}, rng);
    EXPECT_THROW((void)build_scaled_family(g, 10, 0, 0.5), check_error);
    EXPECT_THROW((void)build_scaled_family(g, 10, 2, 0.0), check_error);
    EXPECT_THROW((void)build_scaled_family(g, -1, 2, 0.5), check_error);
    const ScaledFamily family = build_scaled_family(g, 10, 2, 0.5);
    std::vector<DistanceMatrix> wrong_count;
    EXPECT_THROW((void)combine_scaled_estimates(family, wrong_count, DistanceMatrix(4)),
                 check_error);
}

} // namespace
} // namespace ccq
