// Tests for the min-plus matrix substrate: dense algebra, sparse rows,
// filtering (including the Lemma 5.5 identity), and the Theorem 6.1
// round-cost model.
#include <gtest/gtest.h>

#include "ccq/graph/exact.hpp"
#include "ccq/graph/generators.hpp"
#include "ccq/matrix/dense.hpp"
#include "ccq/matrix/round_cost.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {
namespace {

DistanceMatrix identity_matrix(int n)
{
    DistanceMatrix m(n);
    m.set_diagonal_zero();
    return m;
}

TEST(DenseMatrix, IdentityIsNeutral)
{
    Rng rng(1);
    const Graph g = erdos_renyi(20, 0.3, WeightRange{1, 9}, rng);
    const DistanceMatrix a = adjacency_matrix(g);
    EXPECT_EQ(min_plus_product(a, identity_matrix(20)), a);
    EXPECT_EQ(min_plus_product(identity_matrix(20), a), a);
}

TEST(DenseMatrix, ProductIsAssociative)
{
    Rng rng(2);
    const Graph g = erdos_renyi(16, 0.35, WeightRange{1, 9}, rng);
    const DistanceMatrix a = adjacency_matrix(g);
    const DistanceMatrix ab_c = min_plus_product(min_plus_product(a, a), a);
    const DistanceMatrix a_bc = min_plus_product(a, min_plus_product(a, a));
    EXPECT_EQ(ab_c, a_bc);
}

TEST(DenseMatrix, SquareIsTwoHopDistances)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 2);
    g.add_edge(1, 2, 3);
    const DistanceMatrix a2 = min_plus_product(adjacency_matrix(g), adjacency_matrix(g));
    EXPECT_EQ(a2.at(0, 2), 5);
    EXPECT_EQ(a2.at(0, 1), 2); // diagonal zero keeps 1-hop entries
}

TEST(DenseMatrix, EntrywiseMinAndSymmetry)
{
    DistanceMatrix a(2), b(2);
    a.at(0, 1) = 5;
    b.at(0, 1) = 3;
    a.at(1, 0) = 4;
    b.at(1, 0) = 9;
    const DistanceMatrix m = entrywise_min(a, b);
    EXPECT_EQ(m.at(0, 1), 3);
    EXPECT_EQ(m.at(1, 0), 4);
    EXPECT_FALSE(is_symmetric(m));
}

TEST(DenseMatrix, BoundsChecked)
{
    DistanceMatrix a(2);
    EXPECT_THROW((void)a.at(0, 2), check_error);
    EXPECT_THROW((void)a.at(-1, 0), check_error);
    EXPECT_THROW(DistanceMatrix(-1), check_error);
}

TEST(SparseMatrix, AdjacencyRowsIncludeDiagonalAndCollapseParallel)
{
    Graph g = Graph::directed(3);
    g.add_edge(0, 1, 5);
    g.add_edge(0, 1, 3); // parallel, lighter
    const SparseMatrix rows = adjacency_rows(g);
    ASSERT_EQ(rows[0].size(), 2u);
    EXPECT_EQ(rows[0][0], (SparseEntry{0, 0}));
    EXPECT_EQ(rows[0][1], (SparseEntry{1, 3}));
}

TEST(SparseMatrix, NormalizeRowSortsByDistThenId)
{
    SparseRow row{{5, 9}, {3, 2}, {7, 2}, {3, 7}};
    normalize_row(row);
    ASSERT_EQ(row.size(), 3u); // node 3 deduplicated to min dist
    EXPECT_EQ(row[0], (SparseEntry{3, 2}));
    EXPECT_EQ(row[1], (SparseEntry{7, 2})); // dist tie broken by id
    EXPECT_EQ(row[2], (SparseEntry{5, 9}));
}

TEST(SparseMatrix, FilterKeepsKSmallestWithIdTies)
{
    SparseMatrix m{{{1, 4}, {2, 4}, {3, 4}, {0, 0}}};
    for (SparseRow& row : m) normalize_row(row);
    const SparseMatrix two = filter_k_smallest(m, 2);
    ASSERT_EQ(two[0].size(), 2u);
    EXPECT_EQ(two[0][0], (SparseEntry{0, 0}));
    EXPECT_EQ(two[0][1], (SparseEntry{1, 4}));
}

TEST(SparseMatrix, SparseProductMatchesDense)
{
    Rng rng(3);
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng local(seed);
        const Graph g = erdos_renyi(24, 0.2, WeightRange{1, 12}, local, false);
        const SparseMatrix rows = adjacency_rows(g);
        const DistanceMatrix dense = adjacency_matrix(g);
        EXPECT_EQ(sparse_to_dense(min_plus_product(rows, rows, 24), 24),
                  min_plus_product(dense, dense))
            << "seed " << seed;
    }
    (void)rng;
}

TEST(SparseMatrix, HopPowerMatchesHopLimitedDistances)
{
    Rng rng(4);
    const Graph g = erdos_renyi(20, 0.15, WeightRange{1, 10}, rng);
    const SparseMatrix rows = adjacency_rows(g);
    for (const int h : {1, 2, 3, 5}) {
        EXPECT_EQ(sparse_to_dense(hop_power(rows, h, 20), 20), hop_limited_apsp(g, h))
            << "h=" << h;
    }
}

TEST(SparseMatrix, DenseSparseRoundTrip)
{
    Rng rng(5);
    const Graph g = erdos_renyi(15, 0.3, WeightRange{1, 10}, rng);
    const DistanceMatrix dense = adjacency_matrix(g);
    EXPECT_EQ(sparse_to_dense(dense_to_sparse(dense), 15), dense);
}

TEST(SparseMatrix, DensityCountsFiniteEntriesPerRow)
{
    SparseMatrix m(4);
    m[0] = {{0, 0}, {1, 2}};
    m[1] = {{1, 0}};
    m[2] = {};
    m[3] = {{0, 5}};
    EXPECT_DOUBLE_EQ(average_density(m), 1.0);
    EXPECT_DOUBLE_EQ(average_density(SparseMatrix{}), 0.0);
}

// Lemma 5.5: filtering each row to its k smallest entries and
// exponentiating preserves the k smallest entries of the true power.
TEST(SparseMatrix, FilteredPowerIdentityLemma55)
{
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(28, 0.25, WeightRange{1, 40}, rng);
        const SparseMatrix rows = adjacency_rows(g);
        for (const int k : {2, 4, 8}) {
            for (const int h : {2, 3}) {
                const SparseMatrix truth = filter_k_smallest(hop_power(rows, h, 28), k);
                const SparseMatrix filtered =
                    filter_k_smallest(hop_power(filter_k_smallest(rows, k), h, 28), k);
                EXPECT_EQ(truth, filtered) << "seed=" << seed << " k=" << k << " h=" << h;
            }
        }
    }
}

// The identity also iterates (the induction in the proof of Lemma 5.2).
TEST(SparseMatrix, FilteredPowerIdentityIterates)
{
    Rng rng(11);
    const Graph g = erdos_renyi(24, 0.25, WeightRange{1, 25}, rng);
    const SparseMatrix rows = adjacency_rows(g);
    constexpr int k = 5, h = 2, i = 3; // covers h^i = 8 hops
    SparseMatrix iterated = filter_k_smallest(rows, k);
    for (int round = 0; round < i; ++round)
        iterated = filter_k_smallest(hop_power(iterated, h, 24), k);
    const SparseMatrix truth = filter_k_smallest(hop_power(rows, 8, 24), k);
    EXPECT_EQ(iterated, truth);
}

TEST(RoundCost, Theorem61Formula)
{
    // Dense case rho = n: (n^3)^{1/3} / n^{2/3} + 1 = n^{1/3} + 1.
    EXPECT_NEAR(sparse_product_rounds(1000, 1000, 1000, 1000), 11.0, 1e-9);
    // Constant densities: O(1) rounds regardless of n.
    EXPECT_NEAR(sparse_product_rounds(8, 8, 8, 1'000'000), 1.0008, 1e-4);
    EXPECT_THROW((void)sparse_product_rounds(-1, 1, 1, 10), check_error);
    EXPECT_THROW((void)sparse_product_rounds(1, 1, 1, 0), check_error);
}

TEST(RoundCost, SkeletonDensityPatternIsConstantRounds)
{
    // The Lemma 6.2 product: rho_X <= k, rho_Y <= |S|, rho_XY <= |S|^2/n
    // with |S| = n log k / k.  For k = sqrt(n) this is O(1) rounds.
    const double n = 1 << 20;
    const double k = std::sqrt(n);
    const double s = n * std::log(k) / k;
    EXPECT_LT(sparse_product_rounds(k, s, s * s / n, static_cast<int>(n)), 8.0);
}

TEST(RoundCost, ChargedProductValidatesDensityBound)
{
    RoundLedger ledger;
    CliqueTransport transport(8, CostModel::standard(), ledger);
    Rng rng(6);
    const Graph g = erdos_renyi(8, 0.5, WeightRange{1, 5}, rng);
    const SparseMatrix rows = adjacency_rows(g);
    const SparseMatrix ok = charged_sparse_product(transport, "p", rows, rows, 8.0);
    EXPECT_GT(ledger.total_rounds(), 0.0);
    EXPECT_EQ(sparse_to_dense(ok, 8), sparse_to_dense(min_plus_product(rows, rows, 8), 8));
    // A-priori bound far below the actual density must be rejected.
    EXPECT_THROW((void)charged_sparse_product(transport, "p", rows, rows, 0.5), check_error);
}

} // namespace
} // namespace ccq
