// Tests for the routing-table layer: next-hop correctness, loop freedom,
// and stretch guarantees when routing along a spanner backbone.
#include <gtest/gtest.h>

#include "ccq/core/routing.hpp"
#include "ccq/spanner/baswana_sen.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

TEST(Routing, HandCheckedPath)
{
    Graph g = Graph::undirected(4); // 0-1-2-3 chain
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 3, 1);
    const RoutingTables tables = build_routing_tables(g);
    EXPECT_EQ(tables.next_hop(0, 3), 1);
    EXPECT_EQ(tables.next_hop(1, 3), 2);
    EXPECT_EQ(tables.next_hop(3, 0), 2);
    EXPECT_EQ(tables.next_hop(0, 0), -1);
    const std::vector<NodeId> route = tables.route(0, 3);
    EXPECT_EQ(route, (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(route_length(g, route), 3);
}

TEST(Routing, RoutesFollowShortestPathsOnBackbone)
{
    Rng rng(1);
    const Graph g = erdos_renyi(48, 0.15, WeightRange{1, 30}, rng);
    const RoutingTables tables = build_routing_tables(g);
    const DistanceMatrix exact = exact_apsp(g);
    for (NodeId u = 0; u < 48; u += 5) {
        for (NodeId v = 0; v < 48; v += 3) {
            if (u == v) continue;
            const std::vector<NodeId> route = tables.route(u, v);
            ASSERT_FALSE(route.empty());
            EXPECT_EQ(route_length(g, route), exact.at(u, v)) << u << "->" << v;
        }
    }
}

TEST(Routing, SpannerBackboneRoutesWithinStretch)
{
    for (const std::uint64_t seed : {2u, 3u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(56, 0.2, WeightRange{1, 40}, rng);
        const SpannerResult spanner = baswana_sen_spanner(g, 3, rng);
        const RoutingTables tables = build_routing_tables(spanner.spanner);
        const DistanceMatrix exact = exact_apsp(g);
        for (NodeId u = 0; u < 56; u += 7) {
            for (NodeId v = 0; v < 56; v += 5) {
                if (u == v) continue;
                const std::vector<NodeId> route = tables.route(u, v);
                ASSERT_FALSE(route.empty());
                const Weight len = route_length(g, route);
                EXPECT_LE(len, 5 * exact.at(u, v)) << "stretch-5 spanner route " << u << "->"
                                                   << v;
                EXPECT_GE(len, exact.at(u, v));
            }
        }
    }
}

TEST(Routing, UnreachableDestinationsReturnEmptyRoute)
{
    Graph g = Graph::undirected(4);
    g.add_edge(0, 1, 1); // {2,3} disconnected
    const RoutingTables tables = build_routing_tables(g);
    EXPECT_TRUE(tables.route(0, 2).empty());
    EXPECT_EQ(tables.next_hop(0, 2), -1);
    EXPECT_FALSE(tables.route(0, 1).empty());
}

TEST(Routing, RouteToSelfIsTrivial)
{
    Graph g = Graph::undirected(2);
    g.add_edge(0, 1, 1);
    const RoutingTables tables = build_routing_tables(g);
    EXPECT_EQ(tables.route(1, 1), (std::vector<NodeId>{1}));
    EXPECT_EQ(route_length(g, tables.route(1, 1)), 0);
}

TEST(Routing, RouteLengthDetectsNonEdges)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 1);
    EXPECT_EQ(route_length(g, {0, 2}), kInfinity); // 0-2 is not an edge
    EXPECT_EQ(route_length(g, {}), kInfinity);
}

TEST(Routing, CorruptedTableWithForwardingCycleReportsUnreachable)
{
    // Adversarially-corrupted table (e.g. from an untrusted snapshot):
    // hops toward destination 2 form the cycle 0 -> 1 -> 0.  The walk
    // must terminate within the hop budget and report unreachable.
    const int n = 3;
    std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
    hops[0 * 3 + 2] = 1;
    hops[1 * 3 + 2] = 0;
    hops[0 * 3 + 1] = 1; // a legitimate entry stays routable
    const RoutingTables corrupted(n, std::move(hops));
    EXPECT_TRUE(corrupted.route(0, 2).empty());
    EXPECT_TRUE(corrupted.route(1, 2).empty());
    EXPECT_EQ(corrupted.route(0, 1), (std::vector<NodeId>{0, 1}));
}

TEST(Routing, CorruptedTableWithSelfLoopHopReportsUnreachable)
{
    const int n = 2;
    std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
    hops[0 * 2 + 1] = 0; // forwards to itself forever
    const RoutingTables corrupted(n, std::move(hops));
    EXPECT_TRUE(corrupted.route(0, 1).empty());
}

TEST(Routing, CorruptedTableWithOutOfRangeHopReportsUnreachable)
{
    const int n = 2;
    std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
    hops[0 * 2 + 1] = 7; // not a node
    const RoutingTables corrupted(n, std::move(hops));
    EXPECT_TRUE(corrupted.route(0, 1).empty());
}

TEST(Routing, BoundsChecked)
{
    Graph g = Graph::undirected(2);
    g.add_edge(0, 1, 1);
    const RoutingTables tables = build_routing_tables(g);
    EXPECT_THROW((void)tables.next_hop(0, 5), check_error);
    EXPECT_THROW((void)tables.route(-1, 0), check_error);
    EXPECT_THROW((void)build_routing_tables(Graph::directed(3)), check_error);
}

} // namespace
} // namespace ccq
