// Tests for structural graph metrics (ccq/graph/metrics.hpp).
#include <gtest/gtest.h>

#include "ccq/graph/generators.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/graph/metrics.hpp"

namespace ccq {
namespace {

TEST(Metrics, ComponentsLabeling)
{
    Graph g = Graph::undirected(7);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(3, 4, 1);
    // 5, 6 isolated
    const std::vector<int> label = connected_components(g);
    EXPECT_EQ(label[0], label[1]);
    EXPECT_EQ(label[1], label[2]);
    EXPECT_EQ(label[3], label[4]);
    EXPECT_NE(label[0], label[3]);
    EXPECT_NE(label[5], label[6]);
    // Labels dense, ordered by smallest member.
    EXPECT_EQ(label[0], 0);
    EXPECT_EQ(label[3], 1);
    EXPECT_EQ(label[5], 2);
    EXPECT_EQ(label[6], 3);
}

TEST(Metrics, ConnectivityPredicates)
{
    EXPECT_TRUE(is_connected(Graph::undirected(0)));
    EXPECT_TRUE(is_connected(Graph::undirected(1)));
    EXPECT_FALSE(is_connected(Graph::undirected(2)));
    Graph g = Graph::undirected(2);
    g.add_edge(0, 1, 5);
    EXPECT_TRUE(is_connected(g));
}

TEST(Metrics, DirectedComponentsUseUnderlyingGraph)
{
    Graph g = Graph::directed(3);
    g.add_edge(0, 1, 1); // only one direction
    g.add_edge(2, 1, 1);
    EXPECT_TRUE(is_connected(g)); // weakly connected
}

TEST(Metrics, WeightedDiameter)
{
    Rng rng(1);
    const Graph g = path_graph(5, WeightRange{3, 3}, rng);
    EXPECT_EQ(weighted_diameter(g), 12);
    // Matrix overload agrees with graph overload.
    EXPECT_EQ(weighted_diameter(exact_apsp(g)), 12);
    // Disconnected graphs: max over finite pairs only.
    Graph h = Graph::undirected(4);
    h.add_edge(0, 1, 9);
    EXPECT_EQ(weighted_diameter(h), 9);
    EXPECT_EQ(weighted_diameter(Graph::undirected(1)), 0);
}

TEST(Metrics, HopDiameter)
{
    Rng rng(2);
    EXPECT_EQ(shortest_path_hop_diameter(path_graph(6, WeightRange{1, 1}, rng)), 5);
    EXPECT_EQ(shortest_path_hop_diameter(star_graph(6, WeightRange{1, 1}, rng)), 2);
    // Heavy direct edge: the shortest path uses more hops.
    Graph g = Graph::undirected(3);
    g.add_edge(0, 2, 100);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    EXPECT_EQ(shortest_path_hop_diameter(g), 2);
}

TEST(Metrics, DegreeStats)
{
    Rng rng(3);
    const Graph star = star_graph(9, WeightRange{1, 1}, rng);
    const DegreeStats stats = degree_stats(star);
    EXPECT_EQ(stats.min_degree, 1);
    EXPECT_EQ(stats.max_degree, 8);
    EXPECT_DOUBLE_EQ(stats.avg_degree, 16.0 / 9.0);
    EXPECT_EQ(degree_stats(Graph::undirected(0)).max_degree, 0);
}

} // namespace
} // namespace ccq
