// Tests for the k-nearest beta-hopset (Section 4, Lemma 3.2):
// distance preservation, exactness on the approximate-nearest balls, and
// the measured hop bound against the claimed O(a log d).
#include <gtest/gtest.h>

#include "ccq/core/baselines.hpp"
#include "ccq/hopset/knearest_hopset.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

struct HopsetEnv {
    Graph g;
    DistanceMatrix exact;
    RoundLedger ledger;
};

Hopset build_with_delta(HopsetEnv& env, const DistanceMatrix& delta, double a, int k = -1)
{
    CliqueTransport transport(env.g.node_count(), CostModel::standard(), env.ledger);
    Weight diameter = 0;
    for (NodeId u = 0; u < delta.size(); ++u)
        for (NodeId v = 0; v < delta.size(); ++v)
            if (is_finite(delta.at(u, v))) diameter = std::max(diameter, delta.at(u, v));
    return build_knearest_hopset(env.g, delta, a, std::max<Weight>(2, diameter), transport,
                                 "hopset", k);
}

class HopsetSweep : public ::testing::TestWithParam<InstanceSpec> {};

// Core hopset properties with an exact delta (a = 1).
TEST_P(HopsetSweep, PreservesDistancesAndMeetsHopBound)
{
    HopsetEnv env{make_instance(GetParam()), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset hopset = build_with_delta(env, env.exact, 1.0);

    // Distances unchanged by the shortcuts.
    const Graph augmented = augmented_graph(env.g, hopset);
    EXPECT_EQ(exact_apsp(augmented), env.exact) << "hopset changed distances";

    // Every node reaches its k-nearest within the claimed hop bound.
    const int measured = measured_hopset_bound(env.g, hopset);
    EXPECT_LE(measured, hopset.claimed_hop_bound)
        << family_name(GetParam().family) << ": measured beta exceeds claim";
}

// Same properties when delta comes from the O(log n) spanner bootstrap —
// the configuration the composed algorithms actually use.
TEST_P(HopsetSweep, WorksWithSpannerApproximation)
{
    HopsetEnv env{make_instance(GetParam()), {}, {}};
    env.exact = exact_apsp(env.g);
    CliqueTransport transport(env.g.node_count(), CostModel::standard(), env.ledger);
    Rng rng(GetParam().seed);
    double a = 1.0;
    const DistanceMatrix delta =
        bootstrap_logn_approx(env.g, rng, transport, "bootstrap", &a);

    const Hopset hopset = build_with_delta(env, delta, a);
    EXPECT_EQ(exact_apsp(augmented_graph(env.g, hopset)), env.exact);
    EXPECT_LE(measured_hopset_bound(env.g, hopset), hopset.claimed_hop_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Families, HopsetSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::path, 40, 1, 50},
        InstanceSpec{GraphFamily::grid, 36, 2, 50},
        InstanceSpec{GraphFamily::tree, 40, 3, 50},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 48, 4, 50},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 48, 5, 50},
        InstanceSpec{GraphFamily::geometric, 48, 6, 50},
        InstanceSpec{GraphFamily::clustered, 48, 7, 50},
        InstanceSpec{GraphFamily::star, 40, 8, 50},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 48, 9, 1},
        InstanceSpec{GraphFamily::path, 40, 10, 100000}),
    testing::InstanceSpecName{});

TEST(Hopset, ShortcutWeightsAreRealPathLengths)
{
    Rng rng(3);
    HopsetEnv env{erdos_renyi(36, 0.12, WeightRange{1, 60}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset hopset = build_with_delta(env, env.exact, 1.0);
    EXPECT_FALSE(hopset.edges.empty());
    for (const WeightedEdge& e : hopset.edges) {
        EXPECT_GE(e.weight, env.exact.at(e.u, e.v)) << "shortcut shorter than distance";
        EXPECT_TRUE(is_finite(e.weight));
    }
}

TEST(Hopset, ExactDeltaYieldsExactShortcutsOnNearSets)
{
    // With a = 1 the approximate set equals the true k-nearest set and
    // Lemma 4.1 applies to the whole ball: shortcuts are exact.
    Rng rng(4);
    HopsetEnv env{erdos_renyi(30, 0.15, WeightRange{1, 20}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset hopset = build_with_delta(env, env.exact, 1.0);
    for (const WeightedEdge& e : hopset.edges)
        EXPECT_EQ(e.weight, env.exact.at(e.u, e.v));
}

TEST(Hopset, ExplicitKControlsSetSize)
{
    Rng rng(5);
    HopsetEnv env{erdos_renyi(32, 0.2, WeightRange{1, 9}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset small = build_with_delta(env, env.exact, 1.0, 2);
    const Hopset large = build_with_delta(env, env.exact, 1.0, 16);
    EXPECT_EQ(small.k, 2);
    EXPECT_EQ(large.k, 16);
    EXPECT_LT(small.edges.size(), large.edges.size());
    // At most k-1 shortcuts per node (self excluded).
    EXPECT_LE(small.edges.size(), 32u * 1u);
}

TEST(Hopset, WorksOnDirectedGraphs)
{
    // Lemma 3.2 holds for directed graphs; check preservation there too.
    Rng rng(6);
    Graph g = Graph::directed(24);
    for (NodeId u = 0; u < 24; ++u)
        for (NodeId v = 0; v < 24; ++v)
            if (u != v && rng.bernoulli(0.2))
                g.add_edge(u, v, static_cast<Weight>(rng.uniform_int(1, 30)));
    HopsetEnv env{std::move(g), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset hopset = build_with_delta(env, env.exact, 1.0);
    EXPECT_EQ(exact_apsp(augmented_graph(env.g, hopset)), env.exact);
}

TEST(Hopset, AugmentedRowsContainDiagonalAndShortcuts)
{
    Rng rng(7);
    HopsetEnv env{erdos_renyi(20, 0.2, WeightRange{1, 9}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    const Hopset hopset = build_with_delta(env, env.exact, 1.0, 4);
    const SparseMatrix rows = augmented_rows(env.g, hopset);
    ASSERT_EQ(rows.size(), 20u);
    for (NodeId u = 0; u < 20; ++u) {
        EXPECT_FALSE(rows[static_cast<std::size_t>(u)].empty());
        EXPECT_EQ(rows[static_cast<std::size_t>(u)][0], (SparseEntry{u, 0}));
    }
}

TEST(Hopset, RoundChargesAreRecorded)
{
    Rng rng(8);
    HopsetEnv env{erdos_renyi(40, 0.15, WeightRange{1, 9}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    (void)build_with_delta(env, env.exact, 1.0);
    EXPECT_GT(env.ledger.total_rounds(), 0.0);
    EXPECT_GT(env.ledger.rounds_in_phase("hopset/collect-lightest-edges"), 0.0);
}

TEST(Hopset, RejectsBadArguments)
{
    Rng rng(9);
    HopsetEnv env{erdos_renyi(10, 0.3, WeightRange{1, 9}, rng), {}, {}};
    env.exact = exact_apsp(env.g);
    CliqueTransport transport(10, CostModel::standard(), env.ledger);
    EXPECT_THROW((void)build_knearest_hopset(env.g, DistanceMatrix(5), 1.0, 10, transport, "x"),
                 check_error);
    EXPECT_THROW((void)build_knearest_hopset(env.g, env.exact, 0.5, 10, transport, "x"),
                 check_error);
}

} // namespace
} // namespace ccq
