// Tests for the Section 5 k-nearest computation: correctness against a
// brute-force oracle, faithful-bins vs fast-path equivalence, degenerate
// branches, and combination with the hopset (Lemma 3.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "ccq/hopset/knearest_hopset.hpp"
#include "ccq/knearest/bins.hpp"
#include "ccq/graph/metrics.hpp"
#include "ccq/knearest/knearest.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

/// Brute-force oracle: k smallest (h-hop distance, id) per node.
SparseMatrix brute_force_k_nearest(const Graph& g, int k, int max_hops)
{
    const int n = g.node_count();
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        const std::vector<Weight> dist = hop_limited_from(g, u, max_hops);
        SparseRow row;
        for (NodeId v = 0; v < n; ++v)
            if (is_finite(dist[static_cast<std::size_t>(v)]))
                row.push_back(SparseEntry{v, dist[static_cast<std::size_t>(v)]});
        std::sort(row.begin(), row.end(), entry_less);
        if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
        rows[static_cast<std::size_t>(u)] = std::move(row);
    }
    return rows;
}

struct KnnCase {
    InstanceSpec instance;
    int k;
    int h;
    int iterations;

    [[nodiscard]] std::string label() const
    {
        return instance.label() + "_k" + std::to_string(k) + "_h" + std::to_string(h) + "_i" +
               std::to_string(iterations);
    }
};

struct KnnCaseName {
    template <class P>
    std::string operator()(const ::testing::TestParamInfo<P>& info) const
    {
        return info.param.label();
    }
};

class KNearestSweep : public ::testing::TestWithParam<KnnCase> {};

// Lemma 5.2: the computed rows equal the k smallest h^i-hop distances.
TEST_P(KNearestSweep, MatchesBruteForceOracle)
{
    const KnnCase& param = GetParam();
    const Graph g = make_instance(param.instance);
    RoundLedger ledger;
    CliqueTransport transport(g.node_count(), CostModel::standard(), ledger);

    KNearestOptions options;
    options.k = param.k;
    options.h = param.h;
    options.iterations = param.iterations;
    const KNearestResult result =
        compute_k_nearest(adjacency_rows(g), options, transport, "knn");

    const auto hop_budget = static_cast<int>(
        std::min<std::int64_t>(result.hop_budget, g.node_count()));
    EXPECT_EQ(result.rows, brute_force_k_nearest(g, std::min(param.k, g.node_count()),
                                                 hop_budget));
    EXPECT_GT(ledger.total_rounds(), 0.0);
}

// The faithful bin/h-combination execution must produce identical rows.
TEST_P(KNearestSweep, FaithfulBinsMatchesFastPath)
{
    const KnnCase& param = GetParam();
    const Graph g = make_instance(param.instance);
    RoundLedger fast_ledger, faithful_ledger;
    CliqueTransport fast_transport(g.node_count(), CostModel::standard(), fast_ledger);
    CliqueTransport faithful_transport(g.node_count(), CostModel::standard(), faithful_ledger);

    KNearestOptions options;
    options.k = param.k;
    options.h = param.h;
    options.iterations = param.iterations;
    const KNearestResult fast =
        compute_k_nearest(adjacency_rows(g), options, fast_transport, "knn");
    options.faithful_bins = true;
    const KNearestResult faithful =
        compute_k_nearest(adjacency_rows(g), options, faithful_transport, "knn");
    EXPECT_EQ(fast.rows, faithful.rows);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KNearestSweep,
    ::testing::Values(
        KnnCase{{GraphFamily::erdos_renyi_sparse, 48, 1, 30}, 4, 2, 2},
        KnnCase{{GraphFamily::erdos_renyi_sparse, 48, 2, 30}, 6, 2, 3},
        KnnCase{{GraphFamily::erdos_renyi_dense, 48, 3, 30}, 6, 3, 2},
        KnnCase{{GraphFamily::path, 40, 4, 30}, 5, 2, 3},
        KnnCase{{GraphFamily::grid, 36, 5, 30}, 6, 2, 2},
        KnnCase{{GraphFamily::geometric, 48, 6, 30}, 6, 2, 2},
        KnnCase{{GraphFamily::clustered, 48, 7, 30}, 4, 3, 1},
        KnnCase{{GraphFamily::tree, 40, 8, 30}, 6, 2, 2},
        KnnCase{{GraphFamily::star, 40, 9, 30}, 4, 2, 1},
        KnnCase{{GraphFamily::barabasi_albert, 48, 10, 30}, 5, 2, 2},
        KnnCase{{GraphFamily::erdos_renyi_sparse, 48, 11, 1}, 6, 2, 2},
        KnnCase{{GraphFamily::erdos_renyi_dense, 40, 12, 30}, 40, 2, 3}),
    KnnCaseName{});

TEST(KNearest, BinSchemeParamsMatchPaperFormulas)
{
    // n = 4096, h = 2: p = floor(64 * 2/4) = 32.
    const BinSchemeParams params = bin_scheme_params(4096, 64, 2);
    EXPECT_EQ(params.p, 32);
    EXPECT_FALSE(params.degenerate);
    EXPECT_EQ(params.bin_size, (4096LL * 64) / 32);
    // h * C(p, h) <= n must hold for the canonical parameterization.
    EXPECT_LE(params.combination_count, 4096);
}

TEST(KNearest, BinSchemeDegeneratesGracefully)
{
    // Tiny n with large h: p = floor(n^{1/h} h/4) < h.
    EXPECT_TRUE(bin_scheme_params(16, 2, 8).degenerate);
    EXPECT_TRUE(bin_scheme_params(27, 3, 3).degenerate);
    // A modest parameterization with p >= h stays usable even when k
    // exceeds n^{1/h} (loads are then charged honestly above O(1)).
    EXPECT_FALSE(bin_scheme_params(64, 64, 3).degenerate);
}

TEST(KNearest, DegenerateBroadcastBranchIsStillCorrect)
{
    Rng rng(21);
    const Graph g = erdos_renyi(24, 0.2, WeightRange{1, 9}, rng);
    RoundLedger ledger;
    CliqueTransport transport(24, CostModel::standard(), ledger);
    KNearestOptions options;
    options.k = 5;
    options.h = 6; // forces p < h at n=24
    options.iterations = 1;
    ASSERT_TRUE(bin_scheme_params(24, 5, 6).degenerate);
    const KNearestResult result =
        compute_k_nearest(adjacency_rows(g), options, transport, "knn");
    EXPECT_TRUE(result.used_degenerate_broadcast);
    EXPECT_EQ(result.rows, brute_force_k_nearest(g, 5, 6));
}

TEST(KNearest, ZeroIterationsReturnsFilteredAdjacency)
{
    Rng rng(22);
    const Graph g = erdos_renyi(16, 0.4, WeightRange{1, 9}, rng);
    RoundLedger ledger;
    CliqueTransport transport(16, CostModel::standard(), ledger);
    KNearestOptions options;
    options.k = 3;
    options.iterations = 0;
    const KNearestResult result =
        compute_k_nearest(adjacency_rows(g), options, transport, "knn");
    EXPECT_EQ(result.rows, filter_k_smallest(adjacency_rows(g), 3));
    EXPECT_EQ(result.hop_budget, 1);
}

TEST(KNearest, RequiresDiagonalZeros)
{
    RoundLedger ledger;
    CliqueTransport transport(3, CostModel::standard(), ledger);
    SparseMatrix rows(3);
    rows[0] = {{0, 0}};
    rows[1] = {{2, 5}}; // missing (1,0) self entry
    rows[2] = {{2, 0}};
    KNearestOptions options;
    options.k = 2;
    EXPECT_THROW((void)compute_k_nearest(rows, options, transport, "knn"), check_error);
}

TEST(KNearest, DirectedGraphsSupported)
{
    Rng rng(23);
    Graph g = Graph::directed(20);
    for (NodeId u = 0; u < 20; ++u)
        for (NodeId v = 0; v < 20; ++v)
            if (u != v && rng.bernoulli(0.25))
                g.add_edge(u, v, static_cast<Weight>(rng.uniform_int(1, 9)));
    RoundLedger ledger;
    CliqueTransport transport(20, CostModel::standard(), ledger);
    KNearestOptions options;
    options.k = 4;
    options.h = 2;
    options.iterations = 2;
    const KNearestResult result =
        compute_k_nearest(adjacency_rows(g), options, transport, "knn");
    EXPECT_EQ(result.rows, brute_force_k_nearest(g, 4, 4));
}

// Lemma 3.3 end-to-end: hopset + filtered powers = exact k-nearest.
TEST(KNearest, WithHopsetComputesExactKNearest)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(40, 0.1, WeightRange{1, 60}, rng);
        const DistanceMatrix exact = exact_apsp(g);
        RoundLedger ledger;
        CliqueTransport transport(40, CostModel::standard(), ledger);

        const int k = 6;
        const Hopset hopset =
            build_knearest_hopset(g, exact, 1.0, weighted_diameter(exact), transport, "h", k);

        KNearestOptions options;
        options.k = k;
        options.h = 2;
        options.iterations = 1;
        while (saturating_pow(options.h, options.iterations) < hopset.claimed_hop_bound)
            ++options.iterations;
        const KNearestResult result =
            compute_k_nearest(augmented_rows(g, hopset), options, transport, "knn");

        // The rows must hold the true k nearest at exact distances.
        for (NodeId u = 0; u < 40; ++u) {
            SparseRow truth;
            for (NodeId v = 0; v < 40; ++v)
                if (is_finite(exact.at(u, v))) truth.push_back(SparseEntry{v, exact.at(u, v)});
            std::sort(truth.begin(), truth.end(), entry_less);
            if (std::cmp_less(k, truth.size())) truth.resize(k);
            EXPECT_EQ(result.rows[static_cast<std::size_t>(u)], truth)
                << "seed " << seed << " node " << u;
        }
    }
}

} // namespace
} // namespace ccq
