// Unit tests for ccq/graph/graph.hpp: representation and edge selection.
#include <gtest/gtest.h>

#include "ccq/graph/graph.hpp"

namespace ccq {
namespace {

TEST(Graph, EmptyGraph)
{
    const Graph g = Graph::undirected(0);
    EXPECT_EQ(g.node_count(), 0);
    EXPECT_EQ(g.edge_count(), 0u);
    EXPECT_FALSE(g.is_valid_node(0));
}

TEST(Graph, UndirectedEdgesAppearBothWays)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 5);
    EXPECT_EQ(g.arc_count(), 2u);
    EXPECT_EQ(g.edge_count(), 1u);
    ASSERT_EQ(g.neighbors(0).size(), 1u);
    ASSERT_EQ(g.neighbors(1).size(), 1u);
    EXPECT_EQ(g.neighbors(0)[0].to, 1);
    EXPECT_EQ(g.neighbors(1)[0].to, 0);
    EXPECT_EQ(g.neighbors(1)[0].weight, 5);
}

TEST(Graph, DirectedEdgesAppearOneWay)
{
    Graph g = Graph::directed(3);
    g.add_edge(0, 1, 5);
    EXPECT_EQ(g.arc_count(), 1u);
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.neighbors(0).size(), 1u);
    EXPECT_TRUE(g.neighbors(1).empty());
}

TEST(Graph, RejectsBadInput)
{
    Graph g = Graph::undirected(2);
    EXPECT_THROW(g.add_edge(0, 2, 1), check_error);
    EXPECT_THROW(g.add_edge(-1, 0, 1), check_error);
    EXPECT_THROW(g.add_edge(0, 1, -1), check_error);
    EXPECT_THROW(g.add_edge(0, 1, kInfinity), check_error);
    EXPECT_THROW((void)g.neighbors(5), check_error);
    EXPECT_THROW(Graph::undirected(-1), check_error);
}

TEST(Graph, ZeroWeightEdgesAllowed)
{
    Graph g = Graph::undirected(2);
    g.add_edge(0, 1, 0);
    EXPECT_EQ(g.neighbors(0)[0].weight, 0);
}

TEST(Graph, MaxWeight)
{
    Graph g = Graph::undirected(3);
    EXPECT_EQ(g.max_weight(), 0);
    g.add_edge(0, 1, 7);
    g.add_edge(1, 2, 3);
    EXPECT_EQ(g.max_weight(), 7);
}

TEST(Graph, LightestOutEdgesSelectsByWeightThenId)
{
    Graph g = Graph::directed(5);
    g.add_edge(0, 1, 9);
    g.add_edge(0, 2, 3);
    g.add_edge(0, 3, 3);
    g.add_edge(0, 4, 1);
    const std::vector<Edge> two = g.lightest_out_edges(0, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].to, 4);
    EXPECT_EQ(two[1].to, 2); // weight tie with node 3 broken by id
    const std::vector<Edge> many = g.lightest_out_edges(0, 10);
    EXPECT_EQ(many.size(), 4u); // fewer edges than requested
}

TEST(Graph, EdgeListRoundTrip)
{
    Graph g = Graph::undirected(4);
    g.add_edge(0, 1, 2);
    g.add_edge(2, 3, 4);
    g.add_edge(1, 2, 6);
    const std::vector<WeightedEdge> edges = g.edge_list();
    EXPECT_EQ(edges.size(), 3u);
    const Graph h = graph_from_edges(4, Orientation::undirected, edges);
    EXPECT_EQ(h.edge_count(), 3u);
    EXPECT_EQ(h.edge_list(), edges);
}

TEST(Graph, SimplifiedCollapsesParallelEdgesAndLoops)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 5);
    g.add_edge(1, 0, 2); // parallel, lighter
    g.add_edge(1, 1, 1); // self loop
    const Graph s = g.simplified();
    EXPECT_EQ(s.edge_count(), 1u);
    EXPECT_EQ(s.neighbors(0)[0].weight, 2);
}

TEST(Graph, ClampWeights)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 100);
    g.add_edge(1, 2, 3);
    const Graph c = g.with_weights_clamped(10);
    EXPECT_EQ(c.neighbors(0)[0].weight, 10);
    EXPECT_EQ(c.neighbors(2)[0].weight, 3);
    EXPECT_EQ(c.edge_count(), g.edge_count());
}

TEST(Graph, WeightIdLessOrdering)
{
    EXPECT_TRUE(weight_id_less(1, 5, 2, 3));   // weight dominates
    EXPECT_TRUE(weight_id_less(2, 3, 2, 5));   // id breaks ties
    EXPECT_FALSE(weight_id_less(2, 5, 2, 3));
    EXPECT_FALSE(weight_id_less(2, 3, 2, 3));  // equal is not less
}

} // namespace
} // namespace ccq
