// Unit tests for ccq/common: types, checks, math helpers, rng.
#include <gtest/gtest.h>

#include "ccq/common/check.hpp"
#include "ccq/common/math.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/common/types.hpp"

namespace ccq {
namespace {

TEST(Types, SaturatingAddBasics)
{
    EXPECT_EQ(saturating_add(2, 3), 5);
    EXPECT_EQ(saturating_add(0, 0), 0);
    EXPECT_EQ(saturating_add(kInfinity, 1), kInfinity);
    EXPECT_EQ(saturating_add(1, kInfinity), kInfinity);
    EXPECT_EQ(saturating_add(kInfinity, kInfinity), kInfinity);
}

TEST(Types, SaturatingAddNeverOverflows)
{
    const Weight big = kInfinity - 1;
    EXPECT_EQ(saturating_add(big, big), kInfinity);
    EXPECT_EQ(saturating_add(big, 1), kInfinity);
    // A long chain of saturating additions stays at the sentinel.
    Weight acc = 0;
    for (int i = 0; i < 100; ++i) acc = saturating_add(acc, big);
    EXPECT_EQ(acc, kInfinity);
}

TEST(Types, IsFinite)
{
    EXPECT_TRUE(is_finite(0));
    EXPECT_TRUE(is_finite(kInfinity - 1));
    EXPECT_FALSE(is_finite(kInfinity));
}

TEST(Types, MinWeight)
{
    EXPECT_EQ(min_weight(3, 7), 3);
    EXPECT_EQ(min_weight(7, 3), 3);
    EXPECT_EQ(min_weight(kInfinity, 5), 5);
}

TEST(Check, ExpectThrowsWithContext)
{
    try {
        CCQ_EXPECT(1 == 2, "custom context");
        FAIL() << "CCQ_EXPECT did not throw";
    } catch (const check_error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("precondition"), std::string::npos);
        EXPECT_NE(what.find("custom context"), std::string::npos);
    }
}

TEST(Check, CheckThrowsInvariant)
{
    EXPECT_THROW(CCQ_CHECK(false, ""), check_error);
    EXPECT_NO_THROW(CCQ_CHECK(true, ""));
}

TEST(Math, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 3), 0);
    EXPECT_EQ(ceil_div(1, 3), 1);
    EXPECT_EQ(ceil_div(3, 3), 1);
    EXPECT_EQ(ceil_div(4, 3), 2);
    EXPECT_EQ(ceil_div(9, 3), 3);
    EXPECT_THROW((void)ceil_div(-1, 3), check_error);
    EXPECT_THROW((void)ceil_div(1, 0), check_error);
}

TEST(Math, Log2Helpers)
{
    EXPECT_EQ(floor_log2(1), 0);
    EXPECT_EQ(floor_log2(2), 1);
    EXPECT_EQ(floor_log2(3), 1);
    EXPECT_EQ(floor_log2(1024), 10);
    EXPECT_EQ(ceil_log2(1), 0);
    EXPECT_EQ(ceil_log2(2), 1);
    EXPECT_EQ(ceil_log2(3), 2);
    EXPECT_EQ(ceil_log2(1024), 10);
    EXPECT_EQ(ceil_log2(1025), 11);
    EXPECT_THROW((void)floor_log2(0), check_error);
}

TEST(Math, SaturatingPow)
{
    EXPECT_EQ(saturating_pow(2, 10), 1024);
    EXPECT_EQ(saturating_pow(3, 0), 1);
    EXPECT_EQ(saturating_pow(0, 3), 0);
    EXPECT_EQ(saturating_pow(10, 30, 1'000'000), 1'000'000); // saturates at cap
    EXPECT_EQ(saturating_pow(1, 1'000'000'000), 1);
}

TEST(Math, FloorSqrt)
{
    EXPECT_EQ(floor_sqrt(0), 0);
    EXPECT_EQ(floor_sqrt(1), 1);
    EXPECT_EQ(floor_sqrt(3), 1);
    EXPECT_EQ(floor_sqrt(4), 2);
    EXPECT_EQ(floor_sqrt(99), 9);
    EXPECT_EQ(floor_sqrt(100), 10);
    EXPECT_EQ(floor_sqrt(1'000'000'000'000), 1'000'000);
}

TEST(Math, FloorNthRoot)
{
    EXPECT_EQ(floor_nth_root(27, 3), 3);
    EXPECT_EQ(floor_nth_root(26, 3), 2);
    EXPECT_EQ(floor_nth_root(1, 5), 1);
    EXPECT_EQ(floor_nth_root(1024, 10), 2);
    EXPECT_EQ(floor_nth_root(1023, 10), 1);
    EXPECT_EQ(floor_nth_root(100, 1), 100);
}

TEST(Math, SaturatingBinomial)
{
    EXPECT_EQ(saturating_binomial(5, 2), 10);
    EXPECT_EQ(saturating_binomial(10, 0), 1);
    EXPECT_EQ(saturating_binomial(10, 10), 1);
    EXPECT_EQ(saturating_binomial(10, 11), 0);
    EXPECT_EQ(saturating_binomial(52, 5), 2'598'960);
    // Saturation instead of overflow.
    EXPECT_EQ(saturating_binomial(1000, 500, 1'000'000), 1'000'000);
}

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) ++differing;
    EXPECT_GT(differing, 0);
}

TEST(Rng, UniformIntRespectsRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.uniform_int(-5, 5);
        EXPECT_GE(x, -5);
        EXPECT_LE(x, 5);
    }
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
    EXPECT_THROW((void)rng.uniform_int(4, 3), check_error);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(11);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    constexpr int kTrials = 10'000;
    for (int i = 0; i < kTrials; ++i)
        if (rng.bernoulli(0.25)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.03);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(5);
    Rng child = parent.fork();
    // Forked stream should not replay the parent stream.
    Rng parent_copy(5);
    (void)parent_copy.fork();
    int equal = 0;
    for (int i = 0; i < 32; ++i)
        if (child.uniform_int(0, 1'000'000) == parent.uniform_int(0, 1'000'000)) ++equal;
    EXPECT_LT(equal, 32);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(13);
    std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> original = items;
    rng.shuffle(std::span<int>(items));
    std::vector<int> sorted = items;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, original);
}

} // namespace
} // namespace ccq
