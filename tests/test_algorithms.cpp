// End-to-end tests for the composed algorithms: Theorem 7.1
// (small-diameter), Theorem 8.1 (large bandwidth), Theorem 1.1 (general),
// Theorem 1.2 (tradeoff) and the baselines — validity, claimed-factor
// compliance, and ledger sanity across graph families.
#include <gtest/gtest.h>

#include "ccq/core/baselines.hpp"
#include "ccq/core/general_apsp.hpp"
#include "ccq/core/small_diameter.hpp"
#include "ccq/core/tradeoff.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

class AlgorithmSweep : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(AlgorithmSweep, ExactBaselineIsExact)
{
    const Graph g = make_instance(GetParam());
    const ApspResult result = exact_apsp_clique(g);
    EXPECT_EQ(result.estimate, exact_apsp(g));
    EXPECT_GT(result.ledger.total_rounds(), 0.0);
}

TEST_P(AlgorithmSweep, LognBaselineWithinClaim)
{
    const Graph g = make_instance(GetParam());
    ApspOptions options;
    options.seed = GetParam().seed;
    const ApspResult result = logn_approx_apsp(g, options);
    expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                               "logn " + GetParam().label());
}

TEST_P(AlgorithmSweep, SmallDiameterWithinClaim)
{
    const Graph g = make_instance(GetParam());
    ApspOptions options;
    options.seed = GetParam().seed;
    const ApspResult result = apsp_small_diameter(g, options);
    expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                               "thm7.1 " + GetParam().label());
    EXPECT_LE(result.claimed_stretch, 21.0 + 1e-9); // Theorem 7.1 bound
}

TEST_P(AlgorithmSweep, LargeBandwidthWithinClaim)
{
    const Graph g = make_instance(GetParam());
    ApspOptions options;
    options.seed = GetParam().seed;
    const ApspResult result = apsp_large_bandwidth(g, options);
    expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                               "thm8.1 " + GetParam().label());
    // 7^3 with the (1+eps)^2 slack of the implementation's eps.
    const double bound = 343.0 * (1.0 + options.eps) * (1.0 + options.eps) + 1e-9;
    EXPECT_LE(result.claimed_stretch, bound);
}

TEST_P(AlgorithmSweep, GeneralWithinClaim)
{
    const Graph g = make_instance(GetParam());
    ApspOptions options;
    options.seed = GetParam().seed;
    const ApspResult result = apsp_general(g, options);
    expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                               "thm1.1 " + GetParam().label());
    const double bound = 2401.0 * (1.0 + options.eps) * (1.0 + options.eps) + 1e-9;
    EXPECT_LE(result.claimed_stretch, bound);
}

INSTANTIATE_TEST_SUITE_P(
    Families, AlgorithmSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::path, 48, 1, 40},
        InstanceSpec{GraphFamily::cycle, 48, 2, 40},
        InstanceSpec{GraphFamily::star, 48, 3, 40},
        InstanceSpec{GraphFamily::grid, 49, 4, 40},
        InstanceSpec{GraphFamily::tree, 56, 5, 40},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 72, 6, 40},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 72, 7, 40},
        InstanceSpec{GraphFamily::geometric, 72, 8, 40},
        InstanceSpec{GraphFamily::barabasi_albert, 72, 9, 40},
        InstanceSpec{GraphFamily::clustered, 72, 10, 40},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 72, 11, 1},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 72, 12, 50000}),
    testing::InstanceSpecName{});

TEST(Algorithms, TradeoffValidForEveryT)
{
    Rng rng(31);
    const Graph g = erdos_renyi(64, 0.1, WeightRange{1, 60}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    double previous_claim = 1e18;
    for (const int t : {0, 1, 2, 3}) {
        const ApspResult result = apsp_tradeoff(g, t);
        expect_valid_approximation(exact, result.estimate, result.claimed_stretch,
                                   "t=" + std::to_string(t));
        // More reduction budget never worsens the guarantee.
        EXPECT_LE(result.claimed_stretch, previous_claim + 1e-9);
        previous_claim = result.claimed_stretch;
    }
}

TEST(Algorithms, TradeoffShapeFormula)
{
    // log^{2^-t} n decreases doubly exponentially in t.
    const double t0 = tradeoff_stretch_shape(1 << 16, 0);
    const double t1 = tradeoff_stretch_shape(1 << 16, 1);
    const double t2 = tradeoff_stretch_shape(1 << 16, 2);
    EXPECT_DOUBLE_EQ(t0, 16.0);
    EXPECT_DOUBLE_EQ(t1, 4.0);
    EXPECT_DOUBLE_EQ(t2, 2.0);
}

TEST(Algorithms, WideBandwidthImprovesSmallDiameterClaim)
{
    Rng rng(32);
    const Graph g = erdos_renyi(64, 0.12, WeightRange{1, 30}, rng);
    ApspOptions narrow;
    ApspOptions wide;
    wide.wide_bandwidth = true;
    const ApspResult narrow_result = apsp_small_diameter(g, narrow);
    const ApspResult wide_result = apsp_small_diameter(g, wide);
    EXPECT_LE(wide_result.claimed_stretch, narrow_result.claimed_stretch + 1e-9);
    expect_valid_approximation(exact_apsp(g), wide_result.estimate,
                               wide_result.claimed_stretch, "wide");
}

TEST(Algorithms, PaperProfileIsAlsoValid)
{
    Rng rng(33);
    const Graph g = erdos_renyi(72, 0.1, WeightRange{1, 40}, rng);
    ApspOptions options;
    options.profile = ParamProfile::paper;
    const ApspResult result = apsp_general(g, options);
    expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                               "paper-profile");
}

TEST(Algorithms, RoundLedgersArePopulated)
{
    Rng rng(34);
    const Graph g = erdos_renyi(64, 0.1, WeightRange{1, 40}, rng);
    const ApspResult result = apsp_general(g);
    EXPECT_GT(result.ledger.total_rounds(), 0.0);
    EXPECT_GT(result.ledger.total_words(), 0u);
    EXPECT_FALSE(result.ledger.top_level_totals().empty());
    EXPECT_FALSE(result.ledger.report().empty());
}

TEST(Algorithms, TinyGraphsSolvedExactly)
{
    Rng rng(35);
    for (const int n : {1, 2, 3, 5, 8}) {
        Graph g = Graph::undirected(n);
        for (NodeId v = 0; v + 1 < n; ++v)
            g.add_edge(v, v + 1, static_cast<Weight>(rng.uniform_int(1, 9)));
        const DistanceMatrix exact = exact_apsp(g);
        EXPECT_EQ(apsp_general(g).estimate, exact) << "n=" << n;
        EXPECT_EQ(apsp_small_diameter(g).estimate, exact) << "n=" << n;
        EXPECT_EQ(apsp_large_bandwidth(g).estimate, exact) << "n=" << n;
    }
}

TEST(Algorithms, DisconnectedGraphsHandled)
{
    Rng rng(36);
    Graph g = Graph::undirected(40);
    // Two blobs of 20, never connected.
    for (int base : {0, 20})
        for (NodeId u = 0; u < 20; ++u)
            for (NodeId v = u + 1; v < 20; ++v)
                if (rng.bernoulli(0.3))
                    g.add_edge(base + u, base + v, static_cast<Weight>(rng.uniform_int(1, 9)));
    // Keep each blob internally connected.
    for (int base : {0, 20})
        for (NodeId v = 0; v + 1 < 20; ++v) g.add_edge(base + v, base + v + 1, 3);
    const DistanceMatrix exact = exact_apsp(g);
    const ApspResult result = apsp_general(g);
    expect_valid_approximation(exact, result.estimate, result.claimed_stretch, "disconnected");
    EXPECT_FALSE(is_finite(result.estimate.at(0, 25)));
}

TEST(Algorithms, DeterministicGivenSeed)
{
    Rng rng(37);
    const Graph g = erdos_renyi(56, 0.12, WeightRange{1, 30}, rng);
    ApspOptions options;
    options.seed = 77;
    const ApspResult a = apsp_general(g, options);
    const ApspResult b = apsp_general(g, options);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_DOUBLE_EQ(a.ledger.total_rounds(), b.ledger.total_rounds());
    options.seed = 78;
    const ApspResult c = apsp_general(g, options);
    EXPECT_DOUBLE_EQ(c.claimed_stretch, a.claimed_stretch); // claims are seed-independent
}

TEST(Algorithms, EstimatesAreSymmetricOnUndirectedGraphs)
{
    Rng rng(38);
    const Graph g = erdos_renyi(48, 0.15, WeightRange{1, 25}, rng);
    EXPECT_TRUE(is_symmetric(apsp_general(g).estimate));
    EXPECT_TRUE(is_symmetric(apsp_small_diameter(g).estimate));
    EXPECT_TRUE(is_symmetric(apsp_large_bandwidth(g).estimate));
}

} // namespace
} // namespace ccq
