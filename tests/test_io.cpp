// Tests for graph serialization (ccq/graph/io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "ccq/graph/generators.hpp"
#include "ccq/graph/io.hpp"

namespace ccq {
namespace {

TEST(GraphIo, RoundTripUndirected)
{
    Rng rng(1);
    const Graph g = erdos_renyi(24, 0.2, WeightRange{1, 99}, rng);
    std::stringstream buffer;
    write_graph(buffer, g, "round trip");
    const Graph back = read_graph(buffer);
    EXPECT_FALSE(back.is_directed());
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, RoundTripDirected)
{
    Graph g = Graph::directed(5);
    g.add_edge(0, 1, 7);
    g.add_edge(4, 2, 3);
    std::stringstream buffer;
    write_graph(buffer, g);
    const Graph back = read_graph(buffer);
    EXPECT_TRUE(back.is_directed());
    EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, CommentsAndBlankLinesIgnored)
{
    std::stringstream in("c hello\n\np undirected 3 1\nc mid comment\ne 0 2 5\n");
    const Graph g = read_graph(in);
    EXPECT_EQ(g.node_count(), 3);
    EXPECT_EQ(g.neighbors(0)[0].weight, 5);
}

TEST(GraphIo, ZeroWeightEdgesSurvive)
{
    Graph g = Graph::undirected(2);
    g.add_edge(0, 1, 0);
    std::stringstream buffer;
    write_graph(buffer, g);
    EXPECT_EQ(read_graph(buffer).neighbors(0)[0].weight, 0);
}

TEST(GraphIo, MalformedInputsRejectedWithLineNumbers)
{
    const auto expect_error = [](const std::string& text, const std::string& needle) {
        std::stringstream in(text);
        try {
            (void)read_graph(in);
            FAIL() << "expected graph_io_error for: " << text;
        } catch (const graph_io_error& error) {
            EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
                << error.what();
        }
    };
    expect_error("e 0 1 5\n", "edge before header");
    expect_error("p undirected 2 1\np undirected 2 1\n", "duplicate header");
    expect_error("p sideways 2 1\n", "unknown orientation");
    expect_error("p undirected 2 2\ne 0 1 5\n", "declares 2 edges");
    expect_error("p undirected 2 1\ne 0 5 1\n", "invalid edge at line 2");
    expect_error("p undirected 2 1\nx 0 1 5\n", "unknown record");
    expect_error("", "missing header");
    expect_error("p undirected 2 1\ne 0 1\n", "malformed edge");
}

TEST(GraphIo, FileRoundTrip)
{
    Rng rng(2);
    const Graph g = random_tree(16, WeightRange{1, 9}, rng);
    const std::string path = ::testing::TempDir() + "/ccq_io_test.graph";
    save_graph(path, g, "file round trip");
    const Graph back = load_graph(path);
    EXPECT_EQ(back.edge_list(), g.edge_list());
    EXPECT_THROW((void)load_graph(path + ".missing"), graph_io_error);
}

} // namespace
} // namespace ccq
