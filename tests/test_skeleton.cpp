// Tests for the skeleton-graph machinery (Section 6): hitting sets,
// construction invariants, and the Lemma 6.1 guarantee that an
// l-approximation on G_S extends to a 7*l*a^2-approximation on G.
#include <gtest/gtest.h>

#include <algorithm>

#include "ccq/skeleton/hitting_set.hpp"
#include "ccq/skeleton/skeleton.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

/// Exact k-nearest rows (the simplified Lemma 3.4 input: a = 1).
SparseMatrix exact_k_nearest_rows(const DistanceMatrix& exact, int k)
{
    const int n = exact.size();
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow row;
        for (NodeId v = 0; v < n; ++v)
            if (is_finite(exact.at(u, v))) row.push_back(SparseEntry{v, exact.at(u, v)});
        std::sort(row.begin(), row.end(), entry_less);
        if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
        rows[static_cast<std::size_t>(u)] = std::move(row);
    }
    return rows;
}

TEST(HittingSet, HitsEveryRow)
{
    Rng rng(1);
    const Graph g = erdos_renyi(60, 0.15, WeightRange{1, 30}, rng);
    const SparseMatrix rows = exact_k_nearest_rows(exact_apsp(g), 8);
    RoundLedger ledger;
    CliqueTransport transport(60, CostModel::standard(), ledger);
    const std::vector<NodeId> hitting = compute_hitting_set(rows, 8, rng, transport, "hs");
    ASSERT_FALSE(hitting.empty());
    for (NodeId u = 0; u < 60; ++u) {
        const bool hit = std::any_of(
            rows[static_cast<std::size_t>(u)].begin(), rows[static_cast<std::size_t>(u)].end(),
            [&](const SparseEntry& e) {
                return std::binary_search(hitting.begin(), hitting.end(), e.node);
            });
        EXPECT_TRUE(hit) << "node " << u << " unhit";
    }
}

TEST(HittingSet, SizeTracksBound)
{
    Rng rng(2);
    const Graph g = erdos_renyi(96, 0.2, WeightRange{1, 30}, rng);
    for (const int k : {4, 8, 16, 32}) {
        const SparseMatrix rows = exact_k_nearest_rows(exact_apsp(g), k);
        RoundLedger ledger;
        CliqueTransport transport(96, CostModel::standard(), ledger);
        Rng local(2);
        const std::vector<NodeId> hitting =
            compute_hitting_set(rows, k, local, transport, "hs");
        EXPECT_LE(static_cast<double>(hitting.size()), skeleton_size_bound(96, k))
            << "k=" << k;
    }
}

TEST(HittingSet, RequiresSelfInRows)
{
    RoundLedger ledger;
    CliqueTransport transport(2, CostModel::standard(), ledger);
    Rng rng(3);
    SparseMatrix rows(2);
    rows[0] = {{0, 0}};
    rows[1] = {{0, 3}}; // 1 not in its own set
    EXPECT_THROW((void)compute_hitting_set(rows, 1, rng, transport, "hs"), check_error);
}

class SkeletonSweep : public ::testing::TestWithParam<InstanceSpec> {};

// Lemma 3.4 with exact inputs and exact skeleton APSP (l = 1, a = 1):
// eta must be a 7-approximation of APSP on G.
TEST_P(SkeletonSweep, ExactInputsYieldSevenApproximation)
{
    const Graph g = make_instance(GetParam());
    const DistanceMatrix exact = exact_apsp(g);
    const int k = std::max(2, g.node_count() / 8);
    const SparseMatrix rows = exact_k_nearest_rows(exact, k);

    RoundLedger ledger;
    CliqueTransport transport(g.node_count(), CostModel::standard(), ledger);
    Rng rng(GetParam().seed);
    const SkeletonGraph skeleton = build_skeleton(g, rows, 1.0, rng, transport, "sk");

    // Structural invariants.
    EXPECT_GT(skeleton.size(), 0);
    EXPECT_LE(static_cast<double>(skeleton.size()),
              skeleton_size_bound(g.node_count(), k));
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const NodeId c = skeleton.center[static_cast<std::size_t>(u)];
        EXPECT_GE(skeleton.member_index[static_cast<std::size_t>(c)], 0)
            << "center must be a skeleton member";
        EXPECT_GE(skeleton.center_delta[static_cast<std::size_t>(u)],
                  exact.at(u, c)); // delta soundness
    }

    // G_S edge weights are realizable path lengths: d_GS >= d_G.
    const DistanceMatrix gs_exact = exact_apsp(skeleton.graph);
    for (int ia = 0; ia < skeleton.size(); ++ia)
        for (int ib = 0; ib < skeleton.size(); ++ib) {
            const Weight through =
                gs_exact.at(static_cast<NodeId>(ia), static_cast<NodeId>(ib));
            if (!is_finite(through)) continue;
            EXPECT_GE(through, exact.at(skeleton.members[static_cast<std::size_t>(ia)],
                                        skeleton.members[static_cast<std::size_t>(ib)]));
        }

    const DistanceMatrix eta =
        extend_skeleton_estimate(skeleton, gs_exact, rows, transport, "ext");
    expect_valid_approximation(exact, eta, 7.0, GetParam().label());
    EXPECT_TRUE(is_symmetric(eta));
}

INSTANTIATE_TEST_SUITE_P(
    Families, SkeletonSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::path, 40, 1, 60},
        InstanceSpec{GraphFamily::cycle, 40, 2, 60},
        InstanceSpec{GraphFamily::grid, 36, 3, 60},
        InstanceSpec{GraphFamily::tree, 48, 4, 60},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 56, 5, 60},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 56, 6, 60},
        InstanceSpec{GraphFamily::geometric, 56, 7, 60},
        InstanceSpec{GraphFamily::barabasi_albert, 56, 8, 60},
        InstanceSpec{GraphFamily::clustered, 56, 9, 60},
        InstanceSpec{GraphFamily::star, 40, 10, 60},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 56, 11, 1},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 56, 12, 100000}),
    testing::InstanceSpecName{});

// Full Lemma 6.1: approximate inputs (an a-approximation delta on the
// rows) still extend, with the factor 7*l*a^2.
TEST(Skeleton, ApproximateInputsRespectLemma61Bound)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(48, 0.15, WeightRange{1, 40}, rng);
        const DistanceMatrix exact = exact_apsp(g);
        const int n = g.node_count();
        constexpr int k = 8;
        constexpr double a = 1.5;

        // Build a synthetic a-approximation: inflate distances by a fixed
        // factor (keeps the symmetry and the C1/C2 conditions of
        // Lemma 6.1, since ordering by delta = ordering by d).
        DistanceMatrix delta(n);
        for (NodeId u = 0; u < n; ++u)
            for (NodeId v = 0; v < n; ++v) {
                const Weight d = exact.at(u, v);
                delta.at(u, v) = is_finite(d)
                                     ? static_cast<Weight>(static_cast<double>(d) * a)
                                     : kInfinity;
            }
        SparseMatrix rows(static_cast<std::size_t>(n));
        for (NodeId u = 0; u < n; ++u) {
            SparseRow row;
            for (NodeId v = 0; v < n; ++v)
                if (is_finite(delta.at(u, v))) row.push_back(SparseEntry{v, delta.at(u, v)});
            std::sort(row.begin(), row.end(), entry_less);
            row.resize(std::min<std::size_t>(row.size(), k));
            rows[static_cast<std::size_t>(u)] = std::move(row);
        }

        RoundLedger ledger;
        CliqueTransport transport(n, CostModel::standard(), ledger);
        const SkeletonGraph skeleton = build_skeleton(g, rows, a, rng, transport, "sk");
        const DistanceMatrix gs_exact = exact_apsp(skeleton.graph); // l = 1
        const DistanceMatrix eta =
            extend_skeleton_estimate(skeleton, gs_exact, rows, transport, "ext");
        testing::expect_valid_approximation(exact, eta, 7.0 * a * a,
                                            "lemma6.1 seed=" + std::to_string(seed));
    }
}

// An l-approximation of G_S (not exact) degrades eta by exactly l.
TEST(Skeleton, SkeletonApproximationFactorPropagates)
{
    Rng rng(5);
    const Graph g = erdos_renyi(48, 0.2, WeightRange{1, 25}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    const SparseMatrix rows = exact_k_nearest_rows(exact, 8);
    RoundLedger ledger;
    CliqueTransport transport(48, CostModel::standard(), ledger);
    const SkeletonGraph skeleton = build_skeleton(g, rows, 1.0, rng, transport, "sk");

    constexpr double l = 2.0;
    DistanceMatrix inflated = exact_apsp(skeleton.graph);
    for (NodeId x = 0; x < inflated.size(); ++x)
        for (NodeId y = 0; y < inflated.size(); ++y) {
            if (x == y || !is_finite(inflated.at(x, y))) continue;
            inflated.at(x, y) = static_cast<Weight>(static_cast<double>(inflated.at(x, y)) * l);
        }
    const DistanceMatrix eta =
        extend_skeleton_estimate(skeleton, inflated, rows, transport, "ext");
    testing::expect_valid_approximation(exact, eta, 7.0 * l, "l-propagation");
}

TEST(Skeleton, DisconnectedGraphsKeepInfiniteCrossDistances)
{
    Graph g = Graph::undirected(12);
    for (int base : {0, 6}) {
        for (int i = 0; i < 5; ++i) g.add_edge(base + i, base + i + 1, 2);
    }
    const DistanceMatrix exact = exact_apsp(g);
    const SparseMatrix rows = exact_k_nearest_rows(exact, 3);
    RoundLedger ledger;
    CliqueTransport transport(12, CostModel::standard(), ledger);
    Rng rng(6);
    const SkeletonGraph skeleton = build_skeleton(g, rows, 1.0, rng, transport, "sk");
    const DistanceMatrix eta = extend_skeleton_estimate(skeleton, exact_apsp(skeleton.graph),
                                                        rows, transport, "ext");
    EXPECT_FALSE(is_finite(eta.at(0, 7)));
    EXPECT_TRUE(is_finite(eta.at(0, 5)));
    testing::expect_valid_approximation(exact, eta, 7.0, "disconnected");
}

TEST(Skeleton, SingletonRowsMakeEveryNodeSkeleton)
{
    // k = 1: Ñ1(u) = {u}, so the fix-up forces S = V and c(u) = u.
    Rng rng(7);
    const Graph g = erdos_renyi(16, 0.3, WeightRange{1, 9}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    const SparseMatrix rows = exact_k_nearest_rows(exact, 1);
    RoundLedger ledger;
    CliqueTransport transport(16, CostModel::standard(), ledger);
    const SkeletonGraph skeleton = build_skeleton(g, rows, 1.0, rng, transport, "sk");
    EXPECT_EQ(skeleton.size(), 16);
    const DistanceMatrix eta = extend_skeleton_estimate(skeleton, exact_apsp(skeleton.graph),
                                                        rows, transport, "ext");
    testing::expect_valid_approximation(exact, eta, 7.0, "k=1");
}

} // namespace
} // namespace ccq
