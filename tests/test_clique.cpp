// Tests for the Congested-Clique simulator: round ledger (including
// parallel composition), cost model, transport charging, and the typed
// message exchange.
#include <gtest/gtest.h>

#include "ccq/clique/ledger.hpp"
#include "ccq/clique/transport.hpp"

namespace ccq {
namespace {

TEST(Ledger, ChargesAccumulate)
{
    RoundLedger ledger;
    ledger.charge("a", 2.0, 10);
    ledger.charge("b", 3.5, 5);
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 5.5);
    EXPECT_EQ(ledger.total_words(), 15u);
    EXPECT_EQ(ledger.entries().size(), 2u);
}

TEST(Ledger, RejectsNegativeRounds)
{
    RoundLedger ledger;
    EXPECT_THROW(ledger.charge("bad", -1.0), check_error);
}

TEST(Ledger, PhaseScopesNest)
{
    RoundLedger ledger;
    {
        PhaseScope outer(ledger, "outer");
        ledger.charge("x", 1.0);
        {
            PhaseScope inner(ledger, "inner");
            ledger.charge("y", 2.0);
        }
    }
    EXPECT_DOUBLE_EQ(ledger.rounds_in_phase("outer"), 3.0);
    EXPECT_DOUBLE_EQ(ledger.rounds_in_phase("outer/inner"), 2.0);
    EXPECT_DOUBLE_EQ(ledger.rounds_in_phase("absent"), 0.0);
    EXPECT_EQ(ledger.entries()[1].phase, "outer/inner/y");
}

TEST(Ledger, ParallelGroupChargesMaxOverLanes)
{
    RoundLedger ledger;
    {
        ParallelScope lanes(ledger, "group");
        ledger.charge("lane0", 5.0);
        lanes.next_lane();
        ledger.charge("lane1", 3.0);
        lanes.next_lane();
        ledger.charge("lane2", 4.0);
    }
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 5.0);
    // Lane trace entries are excluded from phase totals by default.
    EXPECT_DOUBLE_EQ(ledger.rounds_in_phase("lane0"), 0.0);
    EXPECT_DOUBLE_EQ(ledger.rounds_in_phase("lane0", /*include_parallel_lanes=*/true), 5.0);
}

TEST(Ledger, SequentialChargeAfterParallelGroupAddsUp)
{
    RoundLedger ledger;
    {
        ParallelScope lanes(ledger, "group");
        ledger.charge("lane0", 5.0);
        lanes.next_lane();
        ledger.charge("lane1", 7.0);
    }
    ledger.charge("after", 2.0);
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 9.0);
}

TEST(Ledger, TopLevelTotalsRollUp)
{
    RoundLedger ledger;
    {
        PhaseScope a(ledger, "alpha");
        ledger.charge("x", 1.0, 2);
        ledger.charge("y", 2.0, 3);
    }
    ledger.charge("beta", 4.0, 1);
    const std::vector<PhaseTotal> totals = ledger.top_level_totals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0].phase, "alpha");
    EXPECT_DOUBLE_EQ(totals[0].rounds, 3.0);
    EXPECT_EQ(totals[0].words, 5u);
    EXPECT_EQ(totals[1].phase, "beta");
}

TEST(CostModel, BandwidthVariants)
{
    EXPECT_DOUBLE_EQ(CostModel::standard().bandwidth_words, 1.0);
    // Congested-Clique[log^3 n] at n=1024: log n = 10 bits per word,
    // so log^3 bits = log^2 = 100 words per link per round.
    EXPECT_DOUBLE_EQ(CostModel::with_log_power_bandwidth(1024, 3).bandwidth_words, 100.0);
    EXPECT_DOUBLE_EQ(CostModel::with_log_power_bandwidth(1024, 1).bandwidth_words, 1.0);
    EXPECT_THROW((void)CostModel::with_log_power_bandwidth(1024, 0), check_error);
}

TEST(Transport, RouteRoundsScaleWithLoad)
{
    RoundLedger ledger;
    CliqueTransport transport(100, CostModel::standard(), ledger);
    // Load n words -> one Lenzen batch: lenzen_round_factor * 1 = 2 rounds.
    transport.charge_route("r1", RoutingLoad{100, 50, 1000});
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 2.0);
    // 5n words -> 5 batches.
    transport.charge_route("r2", RoutingLoad{500, 100, 1000});
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 2.0 + 10.0);
}

TEST(Transport, RedundantRouteIgnoresSendLoad)
{
    RoundLedger ledger;
    CliqueTransport transport(100, CostModel::standard(), ledger);
    // Send side way over capacity (Lemma 2.2 handles duplication).
    transport.charge_redundant_route("r", RoutingLoad{100'000, 100, 0});
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 2.0);
}

TEST(Transport, ZeroLoadIsFree)
{
    RoundLedger ledger;
    CliqueTransport transport(64, CostModel::standard(), ledger);
    transport.charge_route("r", RoutingLoad{0, 0, 0});
    transport.charge_broadcast_from("b", 0);
    transport.charge_broadcast_all("ba", 0);
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
}

TEST(Transport, BroadcastCosts)
{
    RoundLedger ledger;
    CliqueTransport transport(64, CostModel::standard(), ledger);
    transport.charge_broadcast_from("one", 64); // ceil(64/64) * 2 = 2
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 2.0);
    transport.charge_broadcast_all("all", 3); // ceil(3/1) = 3
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 5.0);
}

TEST(Transport, WiderBandwidthReducesRounds)
{
    RoundLedger narrow_ledger, wide_ledger;
    CliqueTransport narrow(64, CostModel::standard(), narrow_ledger);
    CostModel wide_model;
    wide_model.bandwidth_words = 8.0;
    CliqueTransport wide(64, wide_model, wide_ledger);
    const RoutingLoad load{4096, 4096, 0};
    narrow.charge_route("r", load);
    wide.charge_route("r", load);
    EXPECT_GT(narrow_ledger.total_rounds(), wide_ledger.total_rounds());
    EXPECT_DOUBLE_EQ(narrow_ledger.total_rounds(), 8.0 * wide_ledger.total_rounds());
}

TEST(MessageExchange, DeliversToCorrectInboxes)
{
    RoundLedger ledger;
    CliqueTransport transport(4, CostModel::standard(), ledger);
    MessageExchange<int> exchange(4);
    exchange.send(0, 2, 7);
    exchange.send(1, 2, 8);
    exchange.send(3, 0, 9);
    const auto inboxes = exchange.deliver(transport, "x");
    EXPECT_TRUE(inboxes[1].empty() && inboxes[3].empty());
    ASSERT_EQ(inboxes[2].size(), 2u);
    ASSERT_EQ(inboxes[0].size(), 1u);
    EXPECT_EQ(inboxes[0][0].source, 3);
    EXPECT_EQ(inboxes[0][0].payload, 9);
    EXPECT_GT(ledger.total_rounds(), 0.0);
}

TEST(MessageExchange, RejectsBadEndpoints)
{
    MessageExchange<int> exchange(3);
    EXPECT_THROW(exchange.send(0, 3, 1), check_error);
    EXPECT_THROW(exchange.send(-1, 0, 1), check_error);
}

TEST(MessageExchange, EmptyDeliveryIsFreeAndReusable)
{
    RoundLedger ledger;
    CliqueTransport transport(3, CostModel::standard(), ledger);
    MessageExchange<int> exchange(3);
    const auto first = exchange.deliver(transport, "empty");
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 0.0);
    // Exchange is reusable after delivery.
    exchange.send(0, 1, 5);
    const auto second = exchange.deliver(transport, "again");
    EXPECT_EQ(second[1].size(), 1u);
}

TEST(MessageExchange, WordsPerRecordScalesCharge)
{
    RoundLedger ledger;
    CliqueTransport transport(2, CostModel::standard(), ledger);
    MessageExchange<int> exchange(2);
    for (int i = 0; i < 10; ++i) exchange.send(0, 1, i);
    (void)exchange.deliver(transport, "x", /*words_per_record=*/4);
    // 40 words over capacity 2/round -> 20 batches * factor 2.
    EXPECT_DOUBLE_EQ(ledger.total_rounds(), 40.0);
}

} // namespace
} // namespace ccq
