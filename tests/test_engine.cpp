// Randomized equivalence of the blocked/parallel min-plus engine against
// the seed (naive) kernels: dense and sparse, INF / overflow-saturation
// edges, the fused Lemma 5.5 filter, for thread counts {1, 4} and block
// sizes {1, 8, 64}.  Every comparison is exact (operator==), i.e. the
// engine must be bitwise identical to the reference for every config.
#include <gtest/gtest.h>

#include <vector>

#include "ccq/common/rng.hpp"
#include "ccq/graph/generators.hpp"
#include "ccq/matrix/engine.hpp"

namespace ccq {
namespace {

const std::vector<EngineConfig> kConfigs = {
    {1, 1}, {1, 8}, {1, 64}, {4, 1}, {4, 8}, {4, 64},
};

std::string config_label(const EngineConfig& config)
{
    return "threads=" + std::to_string(config.threads) +
           " block=" + std::to_string(config.block_size);
}

/// Dense matrix with a mix of small weights, unreachable (kInfinity)
/// cells, and near-saturation values whose sums overflow past kInfinity.
DistanceMatrix random_dense(int n, Rng& rng, double inf_fraction, double huge_fraction)
{
    DistanceMatrix m(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = 0; j < n; ++j) {
            const double coin = rng.uniform_real();
            if (coin < inf_fraction) continue; // stays kInfinity
            if (coin < inf_fraction + huge_fraction) {
                m.at(i, j) = kInfinity - rng.uniform_int(1, 1000);
            } else {
                m.at(i, j) = rng.uniform_int(0, 500);
            }
        }
    }
    return m;
}

/// Sparse rows over [0, n) with the same mix; rows are canonicalized.
SparseMatrix random_sparse(int n, int per_row, Rng& rng, double huge_fraction)
{
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow& row = rows[static_cast<std::size_t>(u)];
        row.push_back(SparseEntry{u, 0});
        for (int j = 1; j < per_row; ++j) {
            const auto node = static_cast<NodeId>(rng.uniform_int(0, n - 1));
            const Weight dist = rng.uniform_real() < huge_fraction
                                    ? kInfinity - rng.uniform_int(1, 1000)
                                    : rng.uniform_int(0, 500);
            row.push_back(SparseEntry{node, dist});
        }
        normalize_row(row);
    }
    return rows;
}

TEST(EngineDense, MatchesReferenceAcrossConfigs)
{
    for (const int n : {1, 2, 7, 33, 64, 97}) {
        Rng rng(1000 + static_cast<std::uint64_t>(n));
        const DistanceMatrix a = random_dense(n, rng, 0.2, 0.0);
        const DistanceMatrix b = random_dense(n, rng, 0.2, 0.0);
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const EngineConfig& config : kConfigs) {
            EXPECT_EQ(min_plus_product(a, b, config), reference)
                << "n=" << n << " " << config_label(config);
        }
    }
}

TEST(EngineDense, SaturationStaysClampedAndIdentical)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        const int n = 41;
        const DistanceMatrix a = random_dense(n, rng, 0.3, 0.3);
        const DistanceMatrix b = random_dense(n, rng, 0.3, 0.3);
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const EngineConfig& config : kConfigs) {
            const DistanceMatrix c = min_plus_product(a, b, config);
            EXPECT_EQ(c, reference) << "seed=" << seed << " " << config_label(config);
            for (NodeId i = 0; i < n; ++i)
                for (NodeId j = 0; j < n; ++j) ASSERT_LE(c.at(i, j), kInfinity);
        }
    }
}

TEST(EngineDense, ClosureMatchesReferenceSquaring)
{
    Rng rng(7);
    const Graph g = erdos_renyi(40, 0.1, WeightRange{1, 50}, rng);
    DistanceMatrix reference = adjacency_matrix(g);
    int reference_products = 0;
    for (std::int64_t hops = 1; hops < 40 - 1; hops *= 2) {
        reference = min_plus_product_reference(reference, reference);
        ++reference_products;
    }
    for (const EngineConfig& config : kConfigs) {
        int products = 0;
        EXPECT_EQ(min_plus_closure(adjacency_matrix(g), &products, config), reference)
            << config_label(config);
        // The closure may stop squaring once it hits the fixed point;
        // the result above is still bitwise identical to the full
        // ceil(log2(n-1)) schedule.
        EXPECT_GE(products, 1);
        EXPECT_LE(products, reference_products);
    }
}

TEST(EngineDense, ClosureEarlyExitsAtTheFixedPoint)
{
    // A closed matrix (a finished closure) squares to itself, so one
    // product must detect the fixed point regardless of n.
    Rng rng(9);
    const Graph g = erdos_renyi(33, 0.3, WeightRange{1, 20}, rng);
    const DistanceMatrix closed = min_plus_closure(adjacency_matrix(g), nullptr,
                                                   EngineConfig::serial());
    for (const EngineConfig& config : kConfigs) {
        int products = 0;
        EXPECT_EQ(min_plus_closure(closed, &products, config), closed)
            << config_label(config);
        EXPECT_EQ(products, 1) << config_label(config);
    }

    // A path graph is the adversarial opposite: distances keep changing
    // until the hop budget covers n-1, so every squaring must run and
    // the count must match the full schedule exactly.
    Graph path = Graph::undirected(9);
    for (NodeId u = 0; u + 1 < 9; ++u) path.add_edge(u, u + 1, 1);
    DistanceMatrix full = adjacency_matrix(path);
    int full_products = 0;
    for (std::int64_t hops = 1; hops < 9 - 1; hops *= 2) {
        full = min_plus_product_reference(full, full);
        ++full_products;
    }
    int products = 0;
    EXPECT_EQ(min_plus_closure(adjacency_matrix(path), &products, EngineConfig{4, 8}), full);
    EXPECT_EQ(products, full_products);
}

TEST(EngineDense, LegacyEntryPointDelegatesToEngine)
{
    Rng rng(8);
    const DistanceMatrix a = random_dense(23, rng, 0.2, 0.1);
    const DistanceMatrix b = random_dense(23, rng, 0.2, 0.1);
    EXPECT_EQ(min_plus_product(a, b), min_plus_product_reference(a, b));
}

TEST(EngineSparse, MatchesReferenceAcrossConfigs)
{
    for (const int n : {1, 5, 24, 60}) {
        Rng rng(2000 + static_cast<std::uint64_t>(n));
        const SparseMatrix a = random_sparse(n, std::min(n, 6), rng, 0.0);
        const SparseMatrix b = random_sparse(n, std::min(n, 6), rng, 0.0);
        const SparseMatrix reference = min_plus_product_reference(a, b, n);
        for (const EngineConfig& config : kConfigs) {
            EXPECT_EQ(min_plus_product(a, b, n, config), reference)
                << "n=" << n << " " << config_label(config);
        }
    }
}

TEST(EngineSparse, SaturatedEntriesMatchReference)
{
    const int n = 30;
    Rng rng(21);
    const SparseMatrix a = random_sparse(n, 5, rng, 0.4);
    const SparseMatrix b = random_sparse(n, 5, rng, 0.4);
    const SparseMatrix reference = min_plus_product_reference(a, b, n);
    for (const EngineConfig& config : kConfigs) {
        EXPECT_EQ(min_plus_product(a, b, n, config), reference) << config_label(config);
        for (const int k : {0, 2, 7}) {
            EXPECT_EQ(min_plus_product_filtered(a, b, n, k, config),
                      filter_k_smallest(reference, k))
                << config_label(config) << " k=" << k;
        }
    }
}

TEST(EngineSparse, FilteredProductMatchesFilterOfProduct)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(32, 0.2, WeightRange{1, 30}, rng);
        const SparseMatrix rows = adjacency_rows(g);
        const SparseMatrix reference = min_plus_product_reference(rows, rows, 32);
        for (const EngineConfig& config : kConfigs) {
            for (const int k : {0, 1, 4, 16, 100}) {
                EXPECT_EQ(min_plus_product_filtered(rows, rows, 32, k, config),
                          filter_k_smallest(reference, k))
                    << "seed=" << seed << " k=" << k << " " << config_label(config);
            }
        }
    }
}

// The Lemma 5.5 identity, executed entirely on the engine: filtering each
// row to its k smallest entries before exponentiating preserves the k
// smallest entries of the true power, for every engine configuration.
TEST(EngineSparse, FilteredPowerIdentityLemma55)
{
    for (const std::uint64_t seed : {4u, 5u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(28, 0.25, WeightRange{1, 40}, rng);
        const SparseMatrix rows = adjacency_rows(g);
        for (const EngineConfig& config : kConfigs) {
            for (const int k : {3, 8}) {
                for (const int h : {1, 2, 3}) {
                    const SparseMatrix truth =
                        filter_k_smallest(hop_power(rows, h, 28), k);
                    EXPECT_EQ(filtered_hop_power(rows, h, k, 28, config), truth)
                        << "seed=" << seed << " k=" << k << " h=" << h << " "
                        << config_label(config);
                    EXPECT_EQ(
                        filtered_hop_power(filter_k_smallest(rows, k), h, k, 28, config),
                        truth)
                        << "filtered operand, seed=" << seed << " k=" << k << " h=" << h;
                }
            }
        }
    }
}

TEST(EngineSparse, HopPowerMatchesSerialReference)
{
    Rng rng(31);
    const Graph g = erdos_renyi(20, 0.15, WeightRange{1, 10}, rng);
    const SparseMatrix rows = adjacency_rows(g);
    for (const int h : {1, 2, 4}) {
        SparseMatrix reference = rows;
        for (int i = 1; i < h; ++i) reference = min_plus_product_reference(reference, rows, 20);
        for (const EngineConfig& config : kConfigs) {
            EXPECT_EQ(hop_power(rows, h, 20, config), reference)
                << "h=" << h << " " << config_label(config);
        }
    }
}

TEST(EngineConfigValidation, RejectsBadParameters)
{
    const DistanceMatrix a(4);
    EXPECT_THROW((void)min_plus_product(a, a, (EngineConfig{-1, 8})), check_error);
    EXPECT_THROW((void)min_plus_product(a, a, (EngineConfig{1, 0})), check_error);
    EXPECT_THROW((void)min_plus_product_filtered(SparseMatrix(4), SparseMatrix(4), 4, -1,
                                                 EngineConfig{}),
                 check_error);
    EXPECT_THROW((void)filtered_hop_power(SparseMatrix(4), 0, 1, 4, EngineConfig{}),
                 check_error);
    const DistanceMatrix b(5);
    EXPECT_THROW((void)min_plus_product(a, b, EngineConfig{}), check_error);
}

} // namespace
} // namespace ccq
