// Tests for the MST substrate (Borůvka, cross-checked against Kruskal).
#include <gtest/gtest.h>

#include "ccq/graph/generators.hpp"
#include "ccq/graph/metrics.hpp"
#include "ccq/mst/boruvka.hpp"

namespace ccq {
namespace {

TEST(Mst, HandCheckedTriangle)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    g.add_edge(0, 2, 3);
    const MstResult result = boruvka_msf(g);
    EXPECT_EQ(result.edges.size(), 2u);
    EXPECT_EQ(result.total_weight, 3);
}

TEST(Mst, BoruvkaMatchesKruskalWeightAcrossFamilies)
{
    for (const GraphFamily family :
         {GraphFamily::erdos_renyi_sparse, GraphFamily::erdos_renyi_dense,
          GraphFamily::geometric, GraphFamily::clustered, GraphFamily::grid}) {
        for (const std::uint64_t seed : {1u, 2u, 3u}) {
            Rng rng(seed);
            const Graph g = make_family_instance(family, 56, WeightRange{1, 40}, rng);
            const MstResult boruvka = boruvka_msf(g);
            const MstResult kruskal = kruskal_msf(g);
            EXPECT_EQ(boruvka.total_weight, kruskal.total_weight)
                << family_name(family) << " seed " << seed;
            EXPECT_EQ(boruvka.edges.size(), kruskal.edges.size());
        }
    }
}

TEST(Mst, SpanningTreeHasNMinusOneEdgesWhenConnected)
{
    Rng rng(9);
    const Graph g = erdos_renyi(50, 0.2, WeightRange{1, 99}, rng);
    const MstResult result = boruvka_msf(g);
    EXPECT_EQ(result.edges.size(), 49u);
    const Graph tree = graph_from_edges(50, Orientation::undirected, result.edges);
    EXPECT_TRUE(is_connected(tree));
}

TEST(Mst, ForestOnDisconnectedGraph)
{
    Graph g = Graph::undirected(6);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    g.add_edge(3, 4, 3);
    const MstResult result = boruvka_msf(g);
    EXPECT_EQ(result.edges.size(), 3u); // two components + isolated node 5
    EXPECT_EQ(result.total_weight, 6);
}

TEST(Mst, PhaseCountIsLogarithmic)
{
    Rng rng(10);
    const Graph g = erdos_renyi(64, 0.3, WeightRange{1, 1000}, rng);
    const MstResult result = boruvka_msf(g);
    EXPECT_LE(result.boruvka_phases, 6); // ceil(log2(64))
    EXPECT_GE(result.boruvka_phases, 1);
}

TEST(Mst, ZeroWeightEdgesSpanZeroComponents)
{
    // Zero-weight triangle {0,1,2} plus positive edges: any MSF must keep
    // the zero components connected with zero edges (Theorem 2.1 relies
    // on this).
    Graph g = Graph::undirected(5);
    g.add_edge(0, 1, 0);
    g.add_edge(1, 2, 0);
    g.add_edge(0, 2, 0);
    g.add_edge(2, 3, 4);
    g.add_edge(3, 4, 5);
    const MstResult result = boruvka_msf(g);
    int zero_edges = 0;
    for (const WeightedEdge& e : result.edges)
        if (e.weight == 0) ++zero_edges;
    EXPECT_EQ(zero_edges, 2); // spans {0,1,2}
}

TEST(Mst, DeterministicTieBreaking)
{
    Graph g = Graph::undirected(4); // all weights equal: ties everywhere
    g.add_edge(0, 1, 5);
    g.add_edge(1, 2, 5);
    g.add_edge(2, 3, 5);
    g.add_edge(3, 0, 5);
    g.add_edge(0, 2, 5);
    const MstResult a = boruvka_msf(g);
    const MstResult b = boruvka_msf(g);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.total_weight, 15);
}

TEST(Mst, RejectsDirectedInput)
{
    const Graph g = Graph::directed(3);
    EXPECT_THROW((void)boruvka_msf(g), check_error);
    EXPECT_THROW((void)kruskal_msf(g), check_error);
}

} // namespace
} // namespace ccq
