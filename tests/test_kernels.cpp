// Differential tests for the ISA-dispatched dense min-plus kernels:
// every compiled-and-supported ISA (scalar, AVX2, AVX-512) must produce
// bitwise identical products for every {threads, block_size}
// configuration — in both element widths and both k-loop shapes —
// including adversarial all-INF and near-saturation rows.  ISAs the
// host CPU lacks are skipped, never failed.  (The width-dispatch rule
// itself is covered by tests/test_kernel_width.cpp.)
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "ccq/common/rng.hpp"
#include "ccq/matrix/engine.hpp"
#include "ccq/matrix/kernels/kernels.hpp"

namespace ccq {
namespace {

using kernels::Isa;

/// RAII ISA force for one test scope.
struct ScopedIsa {
    explicit ScopedIsa(Isa isa) { kernels::set_isa_override(isa); }
    ~ScopedIsa() { kernels::set_isa_override(std::nullopt); }
};

const std::vector<EngineConfig> kConfigs = {
    {1, 1}, {1, 8}, {1, 64}, {4, 1}, {4, 8}, {4, 64},
};

std::string label(Isa isa, const EngineConfig& config)
{
    return std::string(kernels::isa_name(isa)) + " threads=" + std::to_string(config.threads) +
           " block=" + std::to_string(config.block_size);
}

DistanceMatrix random_dense(int n, Rng& rng, double inf_fraction, double huge_fraction)
{
    DistanceMatrix m(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = 0; j < n; ++j) {
            const double coin = rng.uniform_real();
            if (coin < inf_fraction) continue; // stays kInfinity
            if (coin < inf_fraction + huge_fraction) {
                m.at(i, j) = kInfinity - rng.uniform_int(1, 1000);
            } else {
                m.at(i, j) = rng.uniform_int(0, 500);
            }
        }
    }
    return m;
}

TEST(KernelDispatch, ScalarIsAlwaysSupported)
{
    EXPECT_TRUE(kernels::isa_compiled(Isa::scalar));
    EXPECT_TRUE(kernels::isa_supported(Isa::scalar));
    const std::vector<Isa> isas = kernels::supported_isas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), Isa::scalar);
    for (const Isa isa : isas) EXPECT_TRUE(kernels::isa_supported(isa));
    EXPECT_TRUE(kernels::isa_supported(kernels::dispatch_isa()));
}

TEST(KernelDispatch, NamesAreStable)
{
    EXPECT_STREQ(kernels::isa_name(Isa::scalar), "scalar");
    EXPECT_STREQ(kernels::isa_name(Isa::avx2), "avx2");
    EXPECT_STREQ(kernels::isa_name(Isa::avx512), "avx512");
}

TEST(KernelDispatch, OverrideForcesTheIsa)
{
    for (const Isa isa : kernels::supported_isas()) {
        ScopedIsa forced(isa);
        EXPECT_EQ(kernels::dispatch_isa(), isa);
    }
    // Cleared override returns to automatic dispatch (a supported ISA).
    EXPECT_TRUE(kernels::isa_supported(kernels::dispatch_isa()));
}

TEST(KernelDispatch, UnsupportedIsaIsRejected)
{
    for (const Isa isa : {Isa::avx2, Isa::avx512}) {
        if (kernels::isa_supported(isa)) continue;
        EXPECT_THROW((void)kernels::dense_band_kernel(isa), check_error);
        EXPECT_THROW(kernels::set_isa_override(isa), check_error);
    }
}

// The dispatch matrix: every supported ISA, threads {1,4} x block
// {1,8,64}, random operands with unreachable cells — all bitwise equal
// to the seed reference kernel.
TEST(KernelDifferential, EveryIsaMatchesReferenceAcrossConfigs)
{
    for (const int n : {1, 2, 7, 33, 64, 97}) {
        Rng rng(4000 + static_cast<std::uint64_t>(n));
        const DistanceMatrix a = random_dense(n, rng, 0.2, 0.0);
        const DistanceMatrix b = random_dense(n, rng, 0.2, 0.0);
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const Isa isa : kernels::supported_isas()) {
            ScopedIsa forced(isa);
            for (const EngineConfig& config : kConfigs) {
                EXPECT_EQ(min_plus_product(a, b, config), reference)
                    << "n=" << n << " " << label(isa, config);
            }
        }
    }
}

// Adversarial rows: whole rows of kInfinity (the INF-skip path must fire
// for complete rows), whole rows of near-saturation weights (raw adds
// just below the overflow argument's ceiling), and a mixed random tail.
TEST(KernelDifferential, AdversarialInfinityAndSaturationRows)
{
    const int n = 37;
    Rng rng(77);
    DistanceMatrix a = random_dense(n, rng, 0.3, 0.3);
    DistanceMatrix b = random_dense(n, rng, 0.3, 0.3);
    for (NodeId j = 0; j < n; ++j) {
        a.at(3, j) = kInfinity;     // fully unreachable row in A
        b.at(5, j) = kInfinity;     // fully unreachable row in B
        a.at(7, j) = kInfinity - 1; // saturation row: sums overflow past kInfinity
        b.at(9, j) = kInfinity - 1;
    }
    const DistanceMatrix reference = min_plus_product_reference(a, b);
    for (const Isa isa : kernels::supported_isas()) {
        ScopedIsa forced(isa);
        for (const EngineConfig& config : kConfigs) {
            const DistanceMatrix c = min_plus_product(a, b, config);
            EXPECT_EQ(c, reference) << label(isa, config);
            for (NodeId i = 0; i < n; ++i)
                for (NodeId j = 0; j < n; ++j) ASSERT_LE(c.at(i, j), kInfinity);
        }
    }
}

// Direct band-kernel calls (no engine, no pool): partial bands and every
// tail length 1..width must agree with the scalar kernel.
TEST(KernelDifferential, RawBandCallsAgreeOnPartialBandsAndTails)
{
    for (const int n : {5, 8, 11, 16, 23}) {
        Rng rng(600 + static_cast<std::uint64_t>(n));
        const DistanceMatrix a = random_dense(n, rng, 0.25, 0.1);
        const DistanceMatrix b = random_dense(n, rng, 0.25, 0.1);
        for (const auto& [i0, i1] : std::vector<std::pair<int, int>>{
                 {0, n}, {0, 1}, {n / 2, n}, {1, n - 1}}) {
            if (i0 >= i1) continue;
            for (const int bs : {1, 3, 8, 64}) {
                DistanceMatrix expected(n);
                kernels::dense_band_scalar(a.data(), b.data(), expected.data(), n, i0, i1,
                                           bs);
                for (const Isa isa : kernels::supported_isas()) {
                    DistanceMatrix actual(n);
                    kernels::dense_band_kernel(isa)(a.data(), b.data(), actual.data(), n,
                                                    i0, i1, bs);
                    EXPECT_EQ(actual, expected) << kernels::isa_name(isa) << " n=" << n
                                                << " band=[" << i0 << "," << i1
                                                << ") bs=" << bs;
                }
            }
        }
    }
}

// The sparse-row skip shape must agree with the dense shape bit for bit
// on every ISA: same relaxations, different k-loop.  Operands mix
// mostly-INF rows (the shape's target) with dense rows.
TEST(KernelDifferential, SparseBandShapeMatchesDenseShape)
{
    for (const int n : {7, 16, 33, 49}) {
        Rng rng(8100 + static_cast<std::uint64_t>(n));
        const DistanceMatrix a = random_dense(n, rng, 0.8, 0.05);
        const DistanceMatrix b = random_dense(n, rng, 0.3, 0.0);
        for (const int bs : {1, 8, 64}) {
            DistanceMatrix expected(n);
            kernels::dense_band_scalar(a.data(), b.data(), expected.data(), n, 0, n, bs);
            for (const Isa isa : kernels::supported_isas()) {
                const kernels::BandKernels band = kernels::band_kernels(isa);
                DistanceMatrix actual(n);
                band.sparse_wide(a.data(), b.data(), actual.data(), n, 0, n, bs);
                EXPECT_EQ(actual, expected)
                    << kernels::isa_name(isa) << " sparse shape, n=" << n << " bs=" << bs;
            }
        }
    }
}

/// Packs a small-weight matrix into the i32 domain the narrow kernels
/// consume (kInfinity -> kInfinity32, finite cells verbatim).
std::vector<Weight32> pack32(const DistanceMatrix& m)
{
    const int n = m.size();
    std::vector<Weight32> packed(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    const Weight* cell = m.data();
    for (Weight32& out : packed) {
        out = is_finite(*cell) ? static_cast<Weight32>(*cell) : kInfinity32;
        ++cell;
    }
    return packed;
}

// Narrow (i32) raw band calls: every ISA's dense and sparse narrow
// kernels must match the scalar narrow kernel on partial bands, every
// tail length (8- and 16-lane vectors), and every block size.
TEST(KernelDifferential, NarrowRawBandCallsAgreeAcrossIsasAndShapes)
{
    for (const int n : {5, 8, 11, 16, 17, 23, 31, 33}) {
        Rng rng(700 + static_cast<std::uint64_t>(n));
        // inf_fraction only — huge weights exceed the i32 domain by
        // design; the engine's width rule routes those to i64 kernels.
        const std::vector<Weight32> a = pack32(random_dense(n, rng, 0.35, 0.0));
        const std::vector<Weight32> b = pack32(random_dense(n, rng, 0.2, 0.0));
        for (const auto& [i0, i1] : std::vector<std::pair<int, int>>{
                 {0, n}, {0, 1}, {n / 2, n}, {1, n - 1}}) {
            if (i0 >= i1) continue;
            for (const int bs : {1, 3, 8, 64}) {
                std::vector<Weight32> expected(a.size(), kInfinity32);
                kernels::dense_band_scalar_w32(a.data(), b.data(), expected.data(), n, i0,
                                               i1, bs);
                for (const Isa isa : kernels::supported_isas()) {
                    const kernels::BandKernels band = kernels::band_kernels(isa);
                    for (const auto& [label32, fn] :
                         {std::pair{"dense32", band.dense_narrow},
                          std::pair{"sparse32", band.sparse_narrow}}) {
                        std::vector<Weight32> actual(a.size(), kInfinity32);
                        fn(a.data(), b.data(), actual.data(), n, i0, i1, bs);
                        EXPECT_EQ(actual, expected)
                            << kernels::isa_name(isa) << " " << label32 << " n=" << n
                            << " band=[" << i0 << "," << i1 << ") bs=" << bs;
                    }
                }
            }
        }
    }
}

// The closure (repeated squaring + early exit) through every ISA: the
// full pipeline stays bitwise stable, not just one product.
TEST(KernelDifferential, ClosureIsIsaInvariant)
{
    Rng rng(91);
    const DistanceMatrix a = random_dense(48, rng, 0.6, 0.05);
    std::optional<DistanceMatrix> expected;
    std::optional<int> expected_products;
    for (const Isa isa : kernels::supported_isas()) {
        ScopedIsa forced(isa);
        int products = 0;
        const DistanceMatrix closure = min_plus_closure(a, &products, EngineConfig{4, 8});
        if (!expected.has_value()) {
            expected = closure;
            expected_products = products;
        } else {
            EXPECT_EQ(closure, *expected) << kernels::isa_name(isa);
            EXPECT_EQ(products, *expected_products) << kernels::isa_name(isa);
        }
    }
}

} // namespace
} // namespace ccq
