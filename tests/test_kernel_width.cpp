// The width-dispatch rule and the i32/i64 differential guarantee:
// narrow products must be bitwise identical to wide products exactly
// when the rule admits them (max finite A cell + max finite B cell <
// kInfinity32), straddling the promotion boundary, across all-INF rows,
// ragged tails, the sparse-row skip pass, and a closure whose estimates
// grow past the boundary mid-run.  Explicit EngineConfig widths are
// used throughout so the suite stays meaningful under a forced
// CCQ_KERNEL_WIDTH environment (one CI leg runs the whole suite with
// CCQ_KERNEL_WIDTH=wide; config settings outrank the env).
#include <gtest/gtest.h>

#include <vector>

#include "ccq/common/rng.hpp"
#include "ccq/matrix/engine.hpp"
#include "ccq/matrix/kernels/kernels.hpp"

namespace ccq {
namespace {

using kernels::Isa;

/// RAII ISA force for one test scope.
struct ScopedIsa {
    explicit ScopedIsa(Isa isa) { kernels::set_isa_override(isa); }
    ~ScopedIsa() { kernels::set_isa_override(std::nullopt); }
};

[[nodiscard]] EngineConfig with_width(KernelWidth width, int threads = 1, int block = 64,
                                      bool sparse_skip = true)
{
    EngineConfig config{threads, block};
    config.width = width;
    config.sparse_skip = sparse_skip;
    return config;
}

/// Random matrix with weights drawn from [lo, hi] and a fraction of
/// kInfinity cells.
DistanceMatrix random_weighted(int n, Rng& rng, Weight lo, Weight hi, double inf_fraction)
{
    DistanceMatrix m(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId j = 0; j < n; ++j) {
            if (rng.uniform_real() < inf_fraction) continue; // stays kInfinity
            m.at(i, j) = rng.uniform_int(lo, hi);
        }
    }
    return m;
}

TEST(WidthRule, BoundaryExactlyMirrorsTheI32Domain)
{
    const EngineConfig narrow_if_safe = with_width(KernelWidth::kNarrowIfSafe);
    DistanceMatrix a(2);
    DistanceMatrix b(2);
    // max_a + max_b == kInfinity32 - 1: the last admissible pair.
    a.at(0, 0) = static_cast<Weight>(kInfinity32) / 2;
    b.at(0, 0) = static_cast<Weight>(kInfinity32) - 1 - a.at(0, 0);
    ProductPlan plan = preview_product_plan(a, b, narrow_if_safe);
    EXPECT_TRUE(plan.narrow);
    EXPECT_EQ(plan.max_a + plan.max_b, static_cast<Weight>(kInfinity32) - 1);
    // max_a + max_b == kInfinity32: the first inadmissible pair.
    b.at(0, 0) += 1;
    plan = preview_product_plan(a, b, narrow_if_safe);
    EXPECT_FALSE(plan.narrow);
    EXPECT_EQ(plan.max_a + plan.max_b, static_cast<Weight>(kInfinity32));
}

TEST(WidthRule, AllInfOperandsAreNarrow)
{
    // No finite cells: maxes are 0, the rule trivially admits i32.
    const DistanceMatrix a(8);
    const DistanceMatrix b(8);
    const ProductPlan plan = preview_product_plan(a, b, with_width(KernelWidth::kNarrowIfSafe));
    EXPECT_TRUE(plan.narrow);
    EXPECT_EQ(plan.max_a, 0);
    EXPECT_EQ(plan.max_b, 0);
    EXPECT_EQ(plan.a_density, 0.0);
}

TEST(WidthRule, ForcedWideOutranksSafety)
{
    Rng rng(11);
    const DistanceMatrix a = random_weighted(8, rng, 1, 100, 0.2);
    EXPECT_TRUE(preview_product_plan(a, a, with_width(KernelWidth::kNarrowIfSafe)).narrow);
    EXPECT_FALSE(preview_product_plan(a, a, with_width(KernelWidth::kWide)).narrow);
}

// Operands whose sums land just below the promotion boundary: the
// narrow product must be admitted and bitwise identical to both the
// forced-wide product and the seed reference, on every supported ISA.
TEST(WidthDifferential, ProductsIdenticalJustBelowTheBoundary)
{
    const Weight half = static_cast<Weight>(kInfinity32) / 2 - 1;
    for (const int n : {9, 17, 32}) {
        Rng rng(2200 + static_cast<std::uint64_t>(n));
        // Weights near kInfinity32/2 so candidate sums crowd the top of
        // the admissible range without crossing it.
        const DistanceMatrix a = random_weighted(n, rng, half - 1000, half, 0.3);
        const DistanceMatrix b = random_weighted(n, rng, half - 1000, half, 0.3);
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const Isa isa : kernels::supported_isas()) {
            ScopedIsa forced(isa);
            for (const int threads : {1, 4}) {
                for (const int block : {1, 8, 64}) {
                    const EngineConfig narrow =
                        with_width(KernelWidth::kNarrowIfSafe, threads, block);
                    ASSERT_TRUE(preview_product_plan(a, b, narrow).narrow);
                    EXPECT_EQ(min_plus_product(a, b, narrow), reference)
                        << kernels::isa_name(isa) << " narrow threads=" << threads
                        << " block=" << block;
                    EXPECT_EQ(min_plus_product(
                                  a, b, with_width(KernelWidth::kWide, threads, block)),
                              reference)
                        << kernels::isa_name(isa) << " wide threads=" << threads
                        << " block=" << block;
                }
            }
        }
    }
}

// Operands just past the boundary: narrow-if-safe must demote itself to
// the wide kernels (the plan says wide) and still match the reference.
TEST(WidthDifferential, PromotionPastTheBoundaryStaysWideAndCorrect)
{
    const Weight half = static_cast<Weight>(kInfinity32) / 2;
    for (const int n : {9, 17}) {
        Rng rng(3300 + static_cast<std::uint64_t>(n));
        const DistanceMatrix a = random_weighted(n, rng, half, half + 1000, 0.3);
        const DistanceMatrix b = random_weighted(n, rng, half, half + 1000, 0.3);
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const Isa isa : kernels::supported_isas()) {
            ScopedIsa forced(isa);
            const EngineConfig config = with_width(KernelWidth::kNarrowIfSafe, 1, 8);
            ASSERT_FALSE(preview_product_plan(a, b, config).narrow);
            EXPECT_EQ(min_plus_product(a, b, config), reference) << kernels::isa_name(isa);
        }
    }
}

// All-INF rows and ragged tails (n not a multiple of the 8/16-lane
// vectors) through the engine, both widths, both k-loop shapes.
TEST(WidthDifferential, AllInfRowsAndRaggedTails)
{
    for (const int n : {13, 17, 23, 31, 47}) {
        Rng rng(4400 + static_cast<std::uint64_t>(n));
        DistanceMatrix a = random_weighted(n, rng, 0, 900, 0.4);
        DistanceMatrix b = random_weighted(n, rng, 0, 900, 0.4);
        for (NodeId j = 0; j < n; ++j) {
            a.at(2, j) = kInfinity; // fully unreachable rows in both operands
            b.at(4, j) = kInfinity;
        }
        const DistanceMatrix reference = min_plus_product_reference(a, b);
        for (const Isa isa : kernels::supported_isas()) {
            ScopedIsa forced(isa);
            for (const KernelWidth width : {KernelWidth::kWide, KernelWidth::kNarrowIfSafe}) {
                for (const bool skip : {false, true}) {
                    const EngineConfig config = with_width(width, 4, 8, skip);
                    EXPECT_EQ(min_plus_product(a, b, config), reference)
                        << kernels::isa_name(isa) << " n=" << n
                        << (width == KernelWidth::kWide ? " wide" : " narrow")
                        << " skip=" << skip;
                }
            }
        }
    }
}

// A closure that starts narrow and is forced wide mid-run: path-graph
// weights of ~kInfinity32/3 admit i32 for the first squaring (sums
// ~2/3 kInfinity32) but the squared estimates (~2/3 kInfinity32 each)
// push later squarings past the boundary.  The counters must show both
// widths used, and the result must equal the forced-wide closure.
TEST(WidthDifferential, ClosureFlipsToWideAsEstimatesGrow)
{
    const int n = 8;
    const Weight w = static_cast<Weight>(kInfinity32) / 3;
    DistanceMatrix chain(n);
    chain.set_diagonal_zero();
    for (NodeId u = 0; u + 1 < n; ++u) {
        chain.at(u, u + 1) = w;
        chain.at(u + 1, u) = w;
    }
    ASSERT_TRUE(preview_product_plan(chain, chain, with_width(KernelWidth::kNarrowIfSafe))
                    .narrow);

    const EngineCounters before = engine_counters();
    int products_narrow_run = 0;
    const DistanceMatrix closure =
        min_plus_closure(chain, &products_narrow_run, with_width(KernelWidth::kNarrowIfSafe));
    const EngineCounters after = engine_counters();
    EXPECT_GE(after.products_narrow - before.products_narrow, 1u)
        << "first squaring should run narrow";
    EXPECT_GE(after.products_wide - before.products_wide, 1u)
        << "later squarings must promote to wide as estimates grow";

    int products_wide_run = 0;
    const DistanceMatrix wide_closure =
        min_plus_closure(chain, &products_wide_run, with_width(KernelWidth::kWide));
    EXPECT_EQ(closure, wide_closure);
    EXPECT_EQ(products_narrow_run, products_wide_run);
    // Sanity: the chain's far end is (n-1) * w — finite and beyond the
    // i32 domain, so the flip really happened on real data.
    EXPECT_EQ(closure.at(0, n - 1), static_cast<Weight>(n - 1) * w);
    EXPECT_GT(closure.at(0, n - 1), static_cast<Weight>(kInfinity32));
}

TEST(SparseSkip, ThresholdDrivesThePlan)
{
    const int n = 64;
    Rng rng(5500);
    // Spanner-shaped: diagonal + ~3 finite cells per row, far below the
    // threshold.
    DistanceMatrix sparse(n);
    sparse.set_diagonal_zero();
    for (NodeId u = 0; u < n; ++u)
        for (int e = 0; e < 3; ++e)
            sparse.at(u, static_cast<NodeId>(rng.uniform_int(0, n - 1))) =
                rng.uniform_int(1, 100);
    const DistanceMatrix dense = random_weighted(n, rng, 1, 100, 0.0);

    EngineConfig config = with_width(KernelWidth::kNarrowIfSafe);
    EXPECT_TRUE(preview_product_plan(sparse, sparse, config).sparse_skip);
    EXPECT_FALSE(preview_product_plan(dense, dense, config).sparse_skip);
    EXPECT_LT(preview_product_plan(sparse, sparse, config).a_density, kSparseSkipThreshold);
    // The decision keys on A (it drives the k-loop), not B.
    EXPECT_TRUE(preview_product_plan(sparse, dense, config).sparse_skip);
    EXPECT_FALSE(preview_product_plan(dense, sparse, config).sparse_skip);
    // Opting out of the pass is honored.
    config.sparse_skip = false;
    EXPECT_FALSE(preview_product_plan(sparse, sparse, config).sparse_skip);
}

TEST(SparseSkip, SkipPassIsBitwiseIdenticalInBothWidths)
{
    const int n = 48;
    Rng rng(6600);
    DistanceMatrix a(n);
    a.set_diagonal_zero();
    for (NodeId u = 0; u < n; ++u)
        for (int e = 0; e < 4; ++e)
            a.at(u, static_cast<NodeId>(rng.uniform_int(0, n - 1))) = rng.uniform_int(1, 100);
    const DistanceMatrix reference = min_plus_product_reference(a, a);
    for (const Isa isa : kernels::supported_isas()) {
        ScopedIsa forced(isa);
        for (const KernelWidth width : {KernelWidth::kWide, KernelWidth::kNarrowIfSafe}) {
            for (const bool skip : {false, true}) {
                const EngineConfig config = with_width(width, 4, 8, skip);
                EXPECT_EQ(min_plus_product(a, a, config), reference)
                    << kernels::isa_name(isa)
                    << (width == KernelWidth::kWide ? " wide" : " narrow")
                    << " skip=" << skip;
            }
        }
    }
}

TEST(Counters, ProductsCountByWidthAndSkip)
{
    Rng rng(7700);
    const DistanceMatrix small = random_weighted(16, rng, 1, 100, 0.9);
    const EngineCounters before = engine_counters();
    (void)min_plus_product(small, small, with_width(KernelWidth::kNarrowIfSafe));
    (void)min_plus_product(small, small, with_width(KernelWidth::kWide));
    const EngineCounters after = engine_counters();
    EXPECT_EQ(after.products_narrow - before.products_narrow, 1u);
    EXPECT_EQ(after.products_wide - before.products_wide, 1u);
    EXPECT_EQ(after.products_sparse_skip - before.products_sparse_skip, 2u);
}

} // namespace
} // namespace ccq
