// Unit tests for the stretch evaluator (ccq/core/stretch.hpp) — the
// measurement instrument every other test relies on, so its edge cases
// get their own coverage.
#include <gtest/gtest.h>

#include "ccq/core/stretch.hpp"

namespace ccq {
namespace {

DistanceMatrix matrix2(Weight d01, Weight d10)
{
    DistanceMatrix m(2);
    m.set_diagonal_zero();
    m.at(0, 1) = d01;
    m.at(1, 0) = d10;
    return m;
}

TEST(Stretch, PerfectEstimate)
{
    const DistanceMatrix exact = matrix2(5, 5);
    const StretchReport report = evaluate_stretch(exact, exact);
    EXPECT_DOUBLE_EQ(report.max_stretch, 1.0);
    EXPECT_DOUBLE_EQ(report.avg_stretch, 1.0);
    EXPECT_EQ(report.finite_pairs, 2u);
    EXPECT_TRUE(report.sound());
}

TEST(Stretch, InflationMeasured)
{
    const StretchReport report = evaluate_stretch(matrix2(4, 4), matrix2(8, 6));
    EXPECT_DOUBLE_EQ(report.max_stretch, 2.0);
    EXPECT_DOUBLE_EQ(report.avg_stretch, 1.75);
    EXPECT_TRUE(report.sound());
}

TEST(Stretch, LowerBoundViolationDetected)
{
    const StretchReport report = evaluate_stretch(matrix2(4, 4), matrix2(3, 4));
    EXPECT_EQ(report.lower_bound_violations, 1u);
    EXPECT_FALSE(report.sound());
}

TEST(Stretch, ReachabilityMismatchDetected)
{
    const StretchReport finite_vs_inf =
        evaluate_stretch(matrix2(4, 4), matrix2(kInfinity, 4));
    EXPECT_EQ(finite_vs_inf.reachability_mismatches, 1u);
    EXPECT_FALSE(finite_vs_inf.sound());

    const StretchReport inf_vs_finite =
        evaluate_stretch(matrix2(kInfinity, 4), matrix2(9, 4));
    EXPECT_EQ(inf_vs_finite.reachability_mismatches, 1u);
}

TEST(Stretch, AgreedInfinityIsFine)
{
    const StretchReport report =
        evaluate_stretch(matrix2(kInfinity, kInfinity), matrix2(kInfinity, kInfinity));
    EXPECT_TRUE(report.sound());
    EXPECT_EQ(report.finite_pairs, 0u);
    EXPECT_DOUBLE_EQ(report.avg_stretch, 1.0);
}

TEST(Stretch, ZeroDistancesMustStayZero)
{
    // exact d(0,1) = 0 (zero-weight edge); any nonzero estimate breaks
    // every multiplicative guarantee.
    const StretchReport ok = evaluate_stretch(matrix2(0, 0), matrix2(0, 0));
    EXPECT_TRUE(ok.sound());
    const StretchReport bad = evaluate_stretch(matrix2(0, 0), matrix2(1, 0));
    EXPECT_EQ(bad.lower_bound_violations, 1u);
    EXPECT_FALSE(bad.sound());
}

TEST(Stretch, DiagonalIgnored)
{
    DistanceMatrix exact(2), estimate(2);
    exact.set_diagonal_zero();
    estimate.set_diagonal_zero();
    exact.at(0, 1) = exact.at(1, 0) = 3;
    estimate.at(0, 1) = estimate.at(1, 0) = 3;
    estimate.at(0, 0) = 17; // bogus diagonal must not be scored
    const StretchReport report = evaluate_stretch(exact, estimate);
    EXPECT_TRUE(report.sound());
    EXPECT_EQ(report.finite_pairs, 2u);
}

TEST(Stretch, SizeMismatchRejected)
{
    EXPECT_THROW((void)evaluate_stretch(DistanceMatrix(2), DistanceMatrix(3)), check_error);
}

TEST(Stretch, EmptyMatrices)
{
    const StretchReport report = evaluate_stretch(DistanceMatrix(0), DistanceMatrix(0));
    EXPECT_TRUE(report.sound());
    EXPECT_EQ(report.finite_pairs, 0u);
}

} // namespace
} // namespace ccq
