// Tests for the Lemma 3.1 approximation-factor reduction: the output must
// be a valid approximation within the claimed factor, for both exact and
// coarse inputs, under both parameter profiles.
#include <gtest/gtest.h>

#include "ccq/core/baselines.hpp"
#include "ccq/core/reduction.hpp"
#include "ccq/graph/metrics.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

class ReductionSweep : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(ReductionSweep, BootstrapInputYieldsValidOutput)
{
    const Graph g = make_instance(GetParam());
    const DistanceMatrix exact = exact_apsp(g);
    RoundLedger ledger;
    CliqueTransport transport(g.node_count(), CostModel::standard(), ledger);
    Rng rng(GetParam().seed);

    double a = 1.0;
    const DistanceMatrix delta = bootstrap_logn_approx(g, rng, transport, "boot", &a);
    const Weight diameter_bound = weighted_diameter(delta);

    for (const ParamProfile profile : {ParamProfile::practical, ParamProfile::paper}) {
        ApspOptions options;
        options.profile = profile;
        const ReductionOutcome outcome = reduce_approximation(
            g, delta, a, std::max<Weight>(2, diameter_bound), options, rng, transport, "red");
        expect_valid_approximation(exact, outcome.estimate, outcome.trace.claimed_stretch,
                                   GetParam().label());
        EXPECT_GE(outcome.trace.claimed_stretch, 7.0);   // ends with a 7l extension
        EXPECT_GT(outcome.trace.skeleton_size, 0);
        EXPECT_GE(outcome.trace.power_iterations, 1);
        EXPECT_GE(outcome.trace.hopset_hop_bound, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReductionSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 64, 1, 50},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 64, 2, 50},
        InstanceSpec{GraphFamily::geometric, 64, 3, 50},
        InstanceSpec{GraphFamily::clustered, 64, 4, 50},
        InstanceSpec{GraphFamily::grid, 64, 5, 50},
        InstanceSpec{GraphFamily::tree, 64, 6, 50},
        InstanceSpec{GraphFamily::path, 48, 7, 50},
        InstanceSpec{GraphFamily::barabasi_albert, 64, 8, 50}),
    testing::InstanceSpecName{});

TEST(Reduction, ExactInputStaysWithinSevenL)
{
    // With an exact delta (a = 1) the reduction's skeleton sets are exact,
    // so the Lemma 3.4 bound 7*l applies directly.
    Rng rng(11);
    const Graph g = erdos_renyi(56, 0.12, WeightRange{1, 50}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    RoundLedger ledger;
    CliqueTransport transport(56, CostModel::standard(), ledger);
    const ReductionOutcome outcome = reduce_approximation(
        g, exact, 1.0, weighted_diameter(exact), ApspOptions{}, rng, transport, "red");
    expect_valid_approximation(exact, outcome.estimate, outcome.trace.claimed_stretch, "exact");
}

TEST(Reduction, WideBandwidthForcesExactSkeletonApsp)
{
    Rng rng(12);
    const Graph g = erdos_renyi(48, 0.15, WeightRange{1, 50}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    RoundLedger ledger;
    CliqueTransport transport(48, CostModel::standard(), ledger);
    ApspOptions options;
    options.wide_bandwidth = true;
    const ReductionOutcome outcome = reduce_approximation(
        g, exact, 1.0, weighted_diameter(exact), options, rng, transport, "red");
    EXPECT_TRUE(outcome.trace.exact_skeleton_apsp);
    EXPECT_DOUBLE_EQ(outcome.trace.claimed_stretch, 7.0);
    expect_valid_approximation(exact, outcome.estimate, 7.0, "wide");
}

TEST(Reduction, ChargesEveryStage)
{
    Rng rng(13);
    const Graph g = erdos_renyi(48, 0.15, WeightRange{1, 50}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    RoundLedger ledger;
    CliqueTransport transport(48, CostModel::standard(), ledger);
    (void)reduce_approximation(g, exact, 1.0, weighted_diameter(exact), ApspOptions{}, rng,
                               transport, "red");
    EXPECT_GT(ledger.rounds_in_phase("red/hopset"), 0.0);
    EXPECT_GT(ledger.rounds_in_phase("red/k-nearest"), 0.0);
    EXPECT_GT(ledger.rounds_in_phase("red/skeleton"), 0.0);
    EXPECT_GT(ledger.rounds_in_phase("red/skeleton-apsp"), 0.0);
}

TEST(Reduction, RejectsBadArguments)
{
    Rng rng(14);
    const Graph g = erdos_renyi(16, 0.3, WeightRange{1, 9}, rng);
    RoundLedger ledger;
    CliqueTransport transport(16, CostModel::standard(), ledger);
    EXPECT_THROW((void)reduce_approximation(g, DistanceMatrix(4), 1.0, 2, ApspOptions{}, rng,
                                            transport, "red"),
                 check_error);
    EXPECT_THROW((void)reduce_approximation(g, exact_apsp(g), 0.9, 2, ApspOptions{}, rng,
                                            transport, "red"),
                 check_error);
}

} // namespace
} // namespace ccq
