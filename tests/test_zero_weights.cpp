// Tests for the zero-weight reduction (Theorem 2.1): component
// contraction correctness and stretch preservation through the wrapper.
#include <gtest/gtest.h>

#include <numeric>

#include "ccq/core/baselines.hpp"
#include "ccq/core/general_apsp.hpp"
#include "ccq/core/zero_weights.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::expect_valid_approximation;

/// Adds a zero-weight clique over `members`.
void add_zero_cluster(Graph& g, std::initializer_list<NodeId> members)
{
    for (auto it = members.begin(); it != members.end(); ++it)
        for (auto jt = std::next(it); jt != members.end(); ++jt) g.add_edge(*it, *jt, 0);
}

Graph make_zero_weight_instance(std::uint64_t seed, int n = 36)
{
    Rng rng(seed);
    Graph g = erdos_renyi(n, 0.12, WeightRange{1, 40}, rng);
    add_zero_cluster(g, {0, 1, 2});
    add_zero_cluster(g, {5, 6});
    add_zero_cluster(g, {10, 11, 12, 13});
    return g;
}

/// Oracle: zero-components via union-find over zero edges directly.
std::vector<int> zero_components_oracle(const Graph& g)
{
    const int n = g.node_count();
    std::vector<NodeId> parent(static_cast<std::size_t>(n));
    std::iota(parent.begin(), parent.end(), 0);
    const auto find = [&](NodeId v) {
        while (parent[static_cast<std::size_t>(v)] != v)
            v = parent[static_cast<std::size_t>(v)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
        return v;
    };
    for (NodeId u = 0; u < n; ++u)
        for (const Edge& e : g.neighbors(u))
            if (e.weight == 0) {
                const NodeId a = find(u), b = find(e.to);
                if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
            }
    std::vector<int> label(static_cast<std::size_t>(n));
    std::vector<int> next(static_cast<std::size_t>(n), -1);
    int count = 0;
    for (NodeId v = 0; v < n; ++v) {
        const NodeId root = find(v);
        if (next[static_cast<std::size_t>(root)] < 0) next[static_cast<std::size_t>(root)] = count++;
        label[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(root)];
    }
    return label;
}

TEST(ZeroWeights, ComponentsMatchDirectUnionFind)
{
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const Graph g = make_zero_weight_instance(seed);
        RoundLedger ledger;
        CliqueTransport transport(g.node_count(), CostModel::standard(), ledger);
        const ZeroWeightReduction reduction =
            build_zero_weight_reduction(g, transport, "zw");
        EXPECT_EQ(reduction.component, zero_components_oracle(g)) << "seed " << seed;
    }
}

TEST(ZeroWeights, CompressedGraphDistancesMatchOriginal)
{
    const Graph g = make_zero_weight_instance(4);
    RoundLedger ledger;
    CliqueTransport transport(g.node_count(), CostModel::standard(), ledger);
    const ZeroWeightReduction reduction = build_zero_weight_reduction(g, transport, "zw");

    const DistanceMatrix original = exact_apsp(g);
    const DistanceMatrix compressed = exact_apsp(reduction.compressed);
    for (NodeId u = 0; u < g.node_count(); ++u) {
        for (NodeId v = 0; v < g.node_count(); ++v) {
            const int cu = reduction.component[static_cast<std::size_t>(u)];
            const int cv = reduction.component[static_cast<std::size_t>(v)];
            const Weight expected =
                cu == cv ? 0 : compressed.at(static_cast<NodeId>(cu), static_cast<NodeId>(cv));
            EXPECT_EQ(original.at(u, v), expected) << u << "," << v;
        }
    }
}

TEST(ZeroWeights, WrapperPreservesStretchWithExactInner)
{
    const Graph g = make_zero_weight_instance(5);
    const ApspResult result = apsp_with_zero_weights(
        g, ApspOptions{},
        [](const Graph& inner, const ApspOptions& options) {
            return exact_apsp_clique(inner, options);
        });
    EXPECT_EQ(result.estimate, exact_apsp(g));
    EXPECT_DOUBLE_EQ(result.claimed_stretch, 1.0);
}

TEST(ZeroWeights, WrapperWithGeneralAlgorithm)
{
    for (const std::uint64_t seed : {6u, 7u}) {
        const Graph g = make_zero_weight_instance(seed, 48);
        ApspOptions options;
        options.seed = seed;
        const ApspResult result = apsp_with_zero_weights(
            g, options,
            [](const Graph& inner, const ApspOptions& inner_options) {
                return apsp_general(inner, inner_options);
            });
        expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                                   "zw-general seed=" + std::to_string(seed));
        // Zero-distance pairs must be answered exactly (any multiplicative
        // approximation maps 0 to 0).
        EXPECT_EQ(result.estimate.at(0, 2), 0);
        EXPECT_EQ(result.estimate.at(10, 13), 0);
    }
}

TEST(ZeroWeights, AllZeroGraphCompressesToOneNode)
{
    Graph g = Graph::undirected(6);
    add_zero_cluster(g, {0, 1, 2, 3, 4, 5});
    RoundLedger ledger;
    CliqueTransport transport(6, CostModel::standard(), ledger);
    const ZeroWeightReduction reduction = build_zero_weight_reduction(g, transport, "zw");
    EXPECT_EQ(reduction.compressed.node_count(), 1);
    const ApspResult result = apsp_with_zero_weights(
        g, ApspOptions{},
        [](const Graph& inner, const ApspOptions& options) {
            return exact_apsp_clique(inner, options);
        });
    for (NodeId u = 0; u < 6; ++u)
        for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(result.estimate.at(u, v), 0);
}

TEST(ZeroWeights, NoZeroEdgesIsIdentityCompression)
{
    Rng rng(8);
    const Graph g = erdos_renyi(20, 0.2, WeightRange{1, 9}, rng);
    RoundLedger ledger;
    CliqueTransport transport(20, CostModel::standard(), ledger);
    const ZeroWeightReduction reduction = build_zero_weight_reduction(g, transport, "zw");
    EXPECT_EQ(reduction.compressed.node_count(), 20);
    EXPECT_EQ(exact_apsp(reduction.compressed), exact_apsp(g.simplified()));
}

TEST(ZeroWeights, ReductionCostIsConstantOnTop)
{
    const Graph g = make_zero_weight_instance(9);
    const ApspResult wrapped = apsp_with_zero_weights(
        g, ApspOptions{},
        [](const Graph& inner, const ApspOptions& options) {
            return exact_apsp_clique(inner, options);
        });
    const ApspResult bare = exact_apsp_clique(g);
    // f(n) + O(1): the wrapper's overhead beyond the inner run is a small
    // constant number of rounds (MST + two O(1) routing steps).
    EXPECT_LE(wrapped.ledger.total_rounds(), bare.ledger.total_rounds() + 16.0);
}

} // namespace
} // namespace ccq
