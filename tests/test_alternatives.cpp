// Tests for the sequential ablation baselines: the greedy (2k-1)-spanner
// and the greedy hitting set (compared against their distributed
// counterparts for quality).
#include <gtest/gtest.h>

#include <algorithm>

#include "ccq/skeleton/hitting_set.hpp"
#include "ccq/spanner/greedy.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

class GreedySpannerSweep : public ::testing::TestWithParam<InstanceSpec> {};

TEST_P(GreedySpannerSweep, StretchAndSizeBoundsHold)
{
    const Graph g = make_instance(GetParam());
    for (const int k : {1, 2, 3}) {
        const SpannerResult result = greedy_spanner(g, k);
        EXPECT_LE(measured_spanner_stretch(g, result.spanner),
                  static_cast<double>(2 * k - 1) + 1e-9)
            << GetParam().label() << " k=" << k;
        // Greedy achieves O(n^{1+1/k}) *without* the k factor.
        const double bound =
            4.0 * std::pow(static_cast<double>(g.node_count()), 1.0 + 1.0 / k);
        EXPECT_LE(static_cast<double>(result.spanner.edge_count()), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GreedySpannerSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::erdos_renyi_dense, 48, 1, 50},
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 48, 2, 50},
        InstanceSpec{GraphFamily::geometric, 48, 3, 50},
        InstanceSpec{GraphFamily::clustered, 48, 4, 50},
        InstanceSpec{GraphFamily::grid, 49, 5, 50},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 48, 6, 1}),
    testing::InstanceSpecName{});

TEST(GreedySpanner, KeepsEveryBridge)
{
    // A tree is its own unique spanner: greedy must keep all edges.
    Rng rng(1);
    const Graph tree = random_tree(24, WeightRange{1, 9}, rng);
    const SpannerResult result = greedy_spanner(tree, 3);
    EXPECT_EQ(result.spanner.edge_count(), tree.edge_count());
}

TEST(GreedySpanner, NeverLargerThanInput)
{
    Rng rng(2);
    const Graph g = complete_graph(20, WeightRange{1, 9}, rng);
    const SpannerResult result = greedy_spanner(g, 2);
    EXPECT_LT(result.spanner.edge_count(), g.edge_count());
}

TEST(GreedySpanner, UsuallySparserThanBaswanaSen)
{
    // Not a theorem, but the expected ablation outcome on dense inputs;
    // fixed seeds keep it deterministic.
    Rng rng(3);
    const Graph g = erdos_renyi(64, 0.4, WeightRange{1, 30}, rng);
    const SpannerResult greedy = greedy_spanner(g, 2);
    const SpannerResult distributed = baswana_sen_spanner(g, 2, rng);
    EXPECT_LE(greedy.spanner.edge_count(), distributed.spanner.edge_count());
}

TEST(GreedySpanner, RejectsBadInput)
{
    EXPECT_THROW((void)greedy_spanner(Graph::directed(3), 2), check_error);
    EXPECT_THROW((void)greedy_spanner(Graph::undirected(3), 0), check_error);
}

TEST(GreedyHittingSet, HitsEveryRowAndIsDeterministic)
{
    Rng rng(4);
    const Graph g = erdos_renyi(48, 0.2, WeightRange{1, 20}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    SparseMatrix rows(48);
    for (NodeId u = 0; u < 48; ++u) {
        SparseRow row;
        for (NodeId v = 0; v < 48; ++v)
            if (is_finite(exact.at(u, v))) row.push_back(SparseEntry{v, exact.at(u, v)});
        std::sort(row.begin(), row.end(), entry_less);
        row.resize(std::min<std::size_t>(row.size(), 8));
        rows[static_cast<std::size_t>(u)] = std::move(row);
    }
    const std::vector<NodeId> greedy = compute_hitting_set_greedy(rows);
    EXPECT_EQ(greedy, compute_hitting_set_greedy(rows)); // deterministic
    for (NodeId u = 0; u < 48; ++u) {
        const bool hit = std::any_of(
            rows[static_cast<std::size_t>(u)].begin(), rows[static_cast<std::size_t>(u)].end(),
            [&](const SparseEntry& e) {
                return std::binary_search(greedy.begin(), greedy.end(), e.node);
            });
        EXPECT_TRUE(hit) << "row " << u;
    }

    // Quality: greedy is at least as small as the sampled construction
    // on this instance (its selling point as an ablation baseline).
    RoundLedger ledger;
    CliqueTransport transport(48, CostModel::standard(), ledger);
    const std::vector<NodeId> sampled = compute_hitting_set(rows, 8, rng, transport, "hs");
    EXPECT_LE(greedy.size(), sampled.size());
}

TEST(GreedyHittingSet, SingletonRows)
{
    SparseMatrix rows(3);
    rows[0] = {{0, 0}};
    rows[1] = {{1, 0}};
    rows[2] = {{2, 0}};
    EXPECT_EQ(compute_hitting_set_greedy(rows), (std::vector<NodeId>{0, 1, 2}));
}

TEST(GreedyHittingSet, SharedHubCoversAll)
{
    SparseMatrix rows(3);
    rows[0] = {{0, 0}, {2, 5}};
    rows[1] = {{1, 0}, {2, 4}};
    rows[2] = {{2, 0}};
    EXPECT_EQ(compute_hitting_set_greedy(rows), (std::vector<NodeId>{2}));
}

} // namespace
} // namespace ccq
