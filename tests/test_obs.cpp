// Tests for the observability subsystem (ccq/obs/): metrics
// primitives, the Prometheus registry, the trace writer, and the log
// gate.  The histogram tests pit the sharded concurrent path against a
// single-threaded reference; the tracer tests validate the rendered
// chrome://tracing JSON structurally.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccq/clique/ledger.hpp"
#include "ccq/matrix/engine.hpp"
#include "ccq/obs/flight.hpp"
#include "ccq/obs/log.hpp"
#include "ccq/obs/metrics.hpp"
#include "ccq/obs/perf.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;

TEST(ObsCounter, AddAndLoad)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAddNegative)
{
    obs::Gauge g;
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
}

TEST(ObsHistogram, BucketEdges)
{
    // Bucket 0 holds exactly 0; bucket i holds (2^(i-1), 2^i - 1].
    EXPECT_EQ(Histogram::bucket_index(0), 0);
    EXPECT_EQ(Histogram::bucket_index(1), 1);
    EXPECT_EQ(Histogram::bucket_index(2), 2);
    EXPECT_EQ(Histogram::bucket_index(3), 2);
    EXPECT_EQ(Histogram::bucket_index(4), 3);
    EXPECT_EQ(Histogram::bucket_index(7), 3);
    EXPECT_EQ(Histogram::bucket_index(8), 4);
    EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), obs::kHistogramBuckets - 1);

    EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
    EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
    EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
    EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
    EXPECT_EQ(Histogram::bucket_upper_bound(obs::kHistogramBuckets - 1), UINT64_MAX);

    // Every representable value falls inside its bucket's bounds.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 65536ull, (1ull << 62) + 5}) {
        const int b = Histogram::bucket_index(v);
        EXPECT_LE(v, Histogram::bucket_upper_bound(b)) << v;
        if (b > 0) {
            EXPECT_GT(v, Histogram::bucket_upper_bound(b - 1)) << v;
        }
    }
}

TEST(ObsHistogram, RecordAndSnapshot)
{
    Histogram h;
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(-7); // clamps to 0
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.total(), 4u);
    EXPECT_EQ(snap.counts[0], 2u); // 0 and the clamped -7
    EXPECT_EQ(snap.counts[1], 1u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.sum, 4u);
}

TEST(ObsHistogram, SnapshotMerge)
{
    Histogram a;
    Histogram b;
    a.record(5);
    b.record(5);
    b.record(100);
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.total(), 3u);
    EXPECT_EQ(merged.sum, 110u);
    EXPECT_EQ(merged.counts[Histogram::bucket_index(5)], 2u);
    EXPECT_EQ(merged.counts[Histogram::bucket_index(100)], 1u);
}

TEST(ObsHistogram, ShardMergeMatchesSingleThreadedReference)
{
    // N threads each record a deterministic value stream into the
    // sharded histogram; the merged snapshot must equal the bucket
    // counts a serial reference accumulates from the same streams.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    const auto value_of = [](int thread, int i) {
        return static_cast<std::int64_t>((thread * 7919 + i * 31) % 100000);
    };

    HistogramSnapshot reference;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i) {
            const std::int64_t v = value_of(t, i);
            reference.counts[Histogram::bucket_index(static_cast<std::uint64_t>(v))] += 1;
            reference.sum += static_cast<std::uint64_t>(v);
        }

    Histogram h;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) h.record(value_of(t, i));
        });
    for (std::thread& thread : threads) thread.join();

    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.sum, reference.sum);
    EXPECT_EQ(snap.total(), reference.total());
    for (int i = 0; i < obs::kHistogramBuckets; ++i)
        EXPECT_EQ(snap.counts[i], reference.counts[i]) << "bucket " << i;
}

TEST(ObsHistogram, ConcurrentSnapshotWhileRecording)
{
    // Snapshots taken mid-flight must be internally sane (monotone
    // totals, sum consistent with non-empty buckets) and the final
    // snapshot exact.  Under TSan this exercises the relaxed-atomic
    // claim directly.
    Histogram h;
    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 20000;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t)
        writers.emplace_back([&] {
            for (int i = 0; i < kPerWriter; ++i) h.record(i & 1023);
        });
    std::thread reader([&] {
        std::uint64_t last_total = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const HistogramSnapshot snap = h.snapshot();
            const std::uint64_t total = snap.total();
            EXPECT_GE(total, last_total);
            last_total = total;
        }
    });
    for (std::thread& writer : writers) writer.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_EQ(h.snapshot().total(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(ObsRegistry, IdempotentRegistration)
{
    obs::Registry registry;
    obs::Counter& a = registry.counter("ccq_test_total", "help", {{"op", "ping"}});
    obs::Counter& b = registry.counter("ccq_test_total", "help", {{"op", "ping"}});
    EXPECT_EQ(&a, &b);
    obs::Counter& other = registry.counter("ccq_test_total", "help", {{"op", "stats"}});
    EXPECT_NE(&a, &other);
    // Same name, different kind: a registration bug, not a new family.
    EXPECT_THROW((void)registry.gauge("ccq_test_total", "help"), check_error);
}

TEST(ObsRegistry, RenderFormat)
{
    obs::Registry registry;
    registry.counter("ccq_reqs_total", "Requests.", {{"op", "ping"}}).add(3);
    registry.gauge("ccq_depth", "Queue depth.").set(-2);
    registry.histogram("ccq_lat_us", "Latency.").record(5);
    registry.add_collector([](std::string& out) { out += "# collector\n"; });
    const std::string text = registry.render();

    EXPECT_NE(text.find("# HELP ccq_reqs_total Requests.\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ccq_reqs_total counter\n"), std::string::npos);
    EXPECT_NE(text.find("ccq_reqs_total{op=\"ping\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ccq_depth gauge\n"), std::string::npos);
    EXPECT_NE(text.find("ccq_depth -2\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE ccq_lat_us histogram\n"), std::string::npos);
    // Cumulative buckets: the value-5 bucket (le="7") counts 1, and so
    // does every later emitted bucket up to +Inf.
    EXPECT_NE(text.find("ccq_lat_us_bucket{le=\"7\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("ccq_lat_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("ccq_lat_us_sum 5\n"), std::string::npos);
    EXPECT_NE(text.find("ccq_lat_us_count 1\n"), std::string::npos);
    // Collectors render after families.
    EXPECT_NE(text.find("# collector\n"), std::string::npos);
}

TEST(ObsRegistry, LabelEscaping)
{
    obs::Registry registry;
    registry.counter("ccq_esc_total", "h", {{"path", "a\"b\\c\nd"}}).add(1);
    EXPECT_NE(registry.render().find("ccq_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
              std::string::npos);
}

// --- tracer ----------------------------------------------------------------

/// Minimal structural JSON check: brackets/braces balance outside of
/// string literals and the document is one object.  (CI additionally
/// parses emitted trace files with a real JSON parser.)
void expect_balanced_json(const std::string& text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '{');
    EXPECT_EQ(text.back(), '}');
}

/// Resets the process-global tracer around each test so cases cannot
/// leak events (or the enabled flag) into one another.
class ObsTracer : public ::testing::Test {
protected:
    void SetUp() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
    void TearDown() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST_F(ObsTracer, DisabledRecordsNothing)
{
    {
        obs::TraceSpan span("noop", "test");
    }
    obs::Tracer::global().instant_event("noop", "test");
    EXPECT_EQ(obs::Tracer::global().event_count(), 0u);
}

TEST_F(ObsTracer, SpanAndInstantRender)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.enable();
    {
        obs::TraceSpan span("work", "test", "{\"n\":3}");
    }
    tracer.instant_event("marker", "test");
    tracer.begin_event("phase", "test");
    tracer.end_event();
    tracer.disable();
    EXPECT_EQ(tracer.event_count(), 4u);

    const std::string json = tracer.render_json();
    expect_balanced_json(json);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"n\":3}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST_F(ObsTracer, NameEscaping)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.enable();
    tracer.instant_event("quote\"back\\slash", "test");
    tracer.disable();
    const std::string json = tracer.render_json();
    expect_balanced_json(json);
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST_F(ObsTracer, EngineProductsEmitSpans)
{
    obs::Tracer::global().enable();
    DistanceMatrix a(8);
    for (NodeId i = 0; i + 1 < 8; ++i) {
        a.relax(i, i + 1, 1);
        a.relax(i + 1, i, 1);
    }
    (void)min_plus_closure(std::move(a), nullptr, EngineConfig{});
    obs::Tracer::global().disable();
    const std::string json = obs::Tracer::global().render_json();
    expect_balanced_json(json);
    EXPECT_NE(json.find("\"name\":\"min_plus_product\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"min_plus_closure/square\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
}

TEST_F(ObsTracer, LedgerPhasesEmitSpansAndTotals)
{
    obs::Tracer::global().enable();
    RoundLedger ledger;
    {
        PhaseScope phase(ledger, "hopset");
        ledger.charge("route", 2.0, 16);
    }
    ledger.emit_trace_totals();
    obs::Tracer::global().disable();

    const std::string json = obs::Tracer::global().render_json();
    expect_balanced_json(json);
    EXPECT_NE(json.find("\"name\":\"hopset\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"charge/hopset/route\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"ledger/hopset\""), std::string::npos);
    EXPECT_NE(json.find("\"rounds\":2"), std::string::npos);
    EXPECT_NE(json.find("\"words\":16"), std::string::npos);
}

// --- log gate --------------------------------------------------------------

TEST(ObsLog, ParseAndGate)
{
    EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::error);
    EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::warn);
    EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::info);
    EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::debug);
    EXPECT_THROW((void)obs::parse_log_level("verbose"), check_error);

    const obs::LogLevel saved = obs::log_level();
    obs::set_log_level(obs::LogLevel::warn);
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::error));
    EXPECT_TRUE(obs::log_enabled(obs::LogLevel::warn));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::info));
    EXPECT_FALSE(obs::log_enabled(obs::LogLevel::debug));
    obs::set_log_level(saved);
}

TEST(ObsLog, TokenBucketAdmitsBurstThenRefills)
{
    // Synthetic clock, one site: 10 tokens/s, burst of 3.
    obs::LogSite site;
    const std::uint64_t rate = 10;
    const std::uint64_t burst = 3;
    std::uint64_t now = 1'000'000;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(obs::log_site_admit(site, now, rate, burst)) << "burst line " << i;
    EXPECT_FALSE(obs::log_site_admit(site, now, rate, burst));
    EXPECT_FALSE(obs::log_site_admit(site, now, rate, burst));
    EXPECT_EQ(site.suppressed.load(), 2u);

    // 0.1 s at 10 tokens/s accrues exactly one token.
    now += 100'000;
    EXPECT_TRUE(obs::log_site_admit(site, now, rate, burst));
    EXPECT_FALSE(obs::log_site_admit(site, now, rate, burst));

    // Sub-token elapsed time is banked, not dropped: two half-token
    // waits add up to one admitted line.
    now += 50'000;
    EXPECT_FALSE(obs::log_site_admit(site, now, rate, burst));
    now += 50'000;
    EXPECT_TRUE(obs::log_site_admit(site, now, rate, burst));

    // Refill never exceeds the burst cap.
    now += 100'000'000;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(obs::log_site_admit(site, now, rate, burst)) << "refilled line " << i;
    EXPECT_FALSE(obs::log_site_admit(site, now, rate, burst));
}

TEST(ObsLog, RateZeroDisablesTheBucket)
{
    obs::LogSite site;
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(obs::log_site_admit(site, 1'000'000, /*tokens_per_sec=*/0, /*burst=*/1));
    EXPECT_EQ(site.suppressed.load(), 0u);
}

TEST(ObsLog, RateLimitConfigurationRoundTrips)
{
    const std::uint64_t saved_rate = obs::log_rate_tokens_per_sec();
    const std::uint64_t saved_burst = obs::log_rate_burst();
    obs::set_log_rate_limit(5, 9);
    EXPECT_EQ(obs::log_rate_tokens_per_sec(), 5u);
    EXPECT_EQ(obs::log_rate_burst(), 9u);
    obs::set_log_rate_limit(saved_rate, saved_burst);
}

// --- histogram quantiles ---------------------------------------------------

TEST(ObsHistogramQuantile, InterpolatesWithinLog2Buckets)
{
    HistogramSnapshot empty;
    EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0.0);

    // All mass in bucket 4 = (7, 15]: quantiles interpolate linearly
    // across the bucket, and q=1 reaches the inclusive upper bound.
    HistogramSnapshot one_bucket;
    one_bucket.counts[4] = 10;
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(one_bucket, 0.5), 11.0);
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(one_bucket, 1.0), 15.0);
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(one_bucket, 0.0), 7.8); // rank clamps to 1

    // Mass split between the zero bucket and (3, 7].
    HistogramSnapshot split;
    split.counts[0] = 5;
    split.counts[3] = 5;
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(split, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(obs::histogram_quantile(split, 0.9), 6.2);

    // The +Inf bucket has no finite upper bound: clamp to its lower.
    HistogramSnapshot inf;
    inf.counts[obs::kHistogramBuckets - 1] = 1;
    EXPECT_DOUBLE_EQ(
        obs::histogram_quantile(inf, 0.99),
        static_cast<double>(Histogram::bucket_upper_bound(obs::kHistogramBuckets - 2)));
}

TEST(ObsHistogramQuantile, MatchesExactRanksOnARecordedStream)
{
    // Recorded values all land on bucket boundaries, so interpolated
    // quantiles must bracket the true order statistics.
    Histogram h;
    for (int i = 0; i < 1000; ++i) h.record(i);
    const HistogramSnapshot snap = h.snapshot();
    const double p50 = obs::histogram_quantile(snap, 0.50);
    const double p99 = obs::histogram_quantile(snap, 0.99);
    // True p50 = 500, p99 = 990; a log2 sketch is coarse but must stay
    // within the owning bucket of the true value.
    EXPECT_GE(p50, 255.0);
    EXPECT_LE(p50, 1023.0);
    EXPECT_GE(p99, 511.0);
    EXPECT_LE(p99, 1023.0);
    EXPECT_GT(p99, p50);
}

// --- flight recorder -------------------------------------------------------

TEST(ObsFlight, CapacityRoundsUpToAPowerOfTwo)
{
    EXPECT_EQ(obs::FlightRecorder(0).capacity(), 2u);
    EXPECT_EQ(obs::FlightRecorder(1).capacity(), 2u);
    EXPECT_EQ(obs::FlightRecorder(4).capacity(), 4u);
    EXPECT_EQ(obs::FlightRecorder(5).capacity(), 8u);
    EXPECT_EQ(obs::FlightRecorder(256).capacity(), 256u);
}

TEST(ObsFlight, RecordsRoundTripThroughTheRing)
{
    obs::FlightRecorder recorder(8);
    obs::RequestRecord rec;
    rec.trace_id = 0xfeed;
    rec.conn_id = 3;
    rec.opcode = 0x02;
    rec.status = 0;
    rec.sampled = true;
    rec.request_bytes = 23;
    rec.reply_bytes = 13;
    rec.decode_us = 1;
    rec.queue_us = 2;
    rec.execute_us = 3;
    rec.encode_us = 4;
    rec.flush_us = 5;
    EXPECT_EQ(recorder.record(rec), 0u);
    rec.trace_id = 0xbeef;
    rec.sampled = false;
    EXPECT_EQ(recorder.record(rec), 1u);

    const std::vector<obs::RequestRecord> records = recorder.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].seq, 0u);
    EXPECT_EQ(records[0].trace_id, 0xfeedu);
    EXPECT_TRUE(records[0].sampled);
    EXPECT_EQ(records[0].total_us(), 15u);
    EXPECT_EQ(records[1].seq, 1u);
    EXPECT_EQ(records[1].trace_id, 0xbeefu);
    EXPECT_FALSE(records[1].sampled);
    // Everything but trace_id/sampled/seq was identical.
    obs::RequestRecord expected = records[1];
    expected.seq = 0;
    expected.trace_id = 0xfeed;
    expected.sampled = true;
    EXPECT_EQ(records[0], expected);
}

TEST(ObsFlight, RingOverwritesOldestFirst)
{
    obs::FlightRecorder recorder(4);
    for (std::uint32_t i = 0; i < 11; ++i) {
        obs::RequestRecord rec;
        rec.request_bytes = i;
        (void)recorder.record(rec);
    }
    const std::vector<obs::RequestRecord> records = recorder.snapshot();
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, 7 + i);
        EXPECT_EQ(records[i].request_bytes, 7 + i);
    }
}

TEST(ObsFlight, ConcurrentWritersNeverYieldTornRecords)
{
    // Every writer publishes records whose fields satisfy a cross-field
    // invariant; a reader snapshotting mid-storm must only ever see
    // records that satisfy it (torn slots are skipped, not surfaced).
    obs::FlightRecorder recorder(16);
    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 20000;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t)
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerWriter; ++i) {
                obs::RequestRecord rec;
                rec.trace_id = static_cast<std::uint64_t>(t) * kPerWriter + i;
                rec.conn_id = rec.trace_id + 1;
                rec.request_bytes = static_cast<std::uint32_t>(rec.trace_id % 9973);
                rec.reply_bytes = rec.request_bytes + 7;
                rec.decode_us = rec.request_bytes;
                rec.flush_us = rec.request_bytes;
                (void)recorder.record(rec);
            }
        });
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const obs::RequestRecord& rec : recorder.snapshot()) {
                ASSERT_EQ(rec.conn_id, rec.trace_id + 1);
                ASSERT_EQ(rec.request_bytes, rec.trace_id % 9973);
                ASSERT_EQ(rec.reply_bytes, rec.request_bytes + 7);
                ASSERT_EQ(rec.decode_us, rec.flush_us);
            }
        }
    });
    for (std::thread& writer : writers) writer.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    // Quiescent: the last 16 records are all present, in seq order.
    const std::vector<obs::RequestRecord> records = recorder.snapshot();
    ASSERT_EQ(records.size(), 16u);
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
    EXPECT_EQ(records.back().seq,
              static_cast<std::uint64_t>(kWriters) * kPerWriter - 1);
}

// --- hardware perf counters ------------------------------------------------

TEST(ObsPerf, CountersWorkOrDegradeGracefully)
{
    // Two legitimate outcomes: the kernel grants perf_event_open and the
    // counts are plausible, or it refuses (perf_event_paranoid, seccomp)
    // and the wrapper reports unavailable with zeroed counts — it must
    // never throw or crash.
    obs::PerfCounters perf;
    perf.start();
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < 100000; ++i) sink += i * i;
    const obs::PerfCounts counts = perf.stop();
    if (counts.available) {
        EXPECT_GT(counts.instructions, 0u);
        EXPECT_GT(counts.cycles, 0u);
        EXPECT_GT(counts.ipc(), 0.0);
    } else {
        EXPECT_EQ(counts.cycles, 0u);
        EXPECT_EQ(counts.instructions, 0u);
        EXPECT_EQ(counts.ipc(), 0.0);
    }
    // Restartable: a second measurement behaves the same way.
    perf.start();
    const obs::PerfCounts again = perf.stop();
    EXPECT_EQ(again.available, counts.available);
}

} // namespace
} // namespace ccq
