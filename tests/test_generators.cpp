// Tests for the workload generators: structural invariants per family,
// determinism, and weight-range compliance.
#include <gtest/gtest.h>

#include "ccq/graph/generators.hpp"
#include "ccq/graph/metrics.hpp"

namespace ccq {
namespace {

constexpr GraphFamily kAllFamilies[] = {
    GraphFamily::path,          GraphFamily::cycle,
    GraphFamily::star,          GraphFamily::grid,
    GraphFamily::tree,          GraphFamily::erdos_renyi_sparse,
    GraphFamily::erdos_renyi_dense, GraphFamily::geometric,
    GraphFamily::barabasi_albert,   GraphFamily::clustered,
};

TEST(Generators, AllFamiliesProduceConnectedGraphsInWeightRange)
{
    const WeightRange weights{1, 50};
    for (const GraphFamily family : kAllFamilies) {
        for (const std::uint64_t seed : {1u, 2u}) {
            Rng rng(seed);
            const Graph g = make_family_instance(family, 48, weights, rng);
            EXPECT_GE(g.node_count(), 48) << family_name(family);
            EXPECT_TRUE(is_connected(g)) << family_name(family) << " seed " << seed;
            // The clustered family deliberately scales inter-cluster
            // bridges by a factor of 8 (see make_family_instance).
            const Weight hi =
                family == GraphFamily::clustered ? weights.hi * 8 : weights.hi;
            for (NodeId u = 0; u < g.node_count(); ++u) {
                for (const Edge& e : g.neighbors(u)) {
                    EXPECT_GE(e.weight, weights.lo) << family_name(family);
                    EXPECT_LE(e.weight, hi) << family_name(family);
                }
            }
        }
    }
}

TEST(Generators, DeterministicGivenSeed)
{
    for (const GraphFamily family : kAllFamilies) {
        Rng a(99), b(99);
        const Graph ga = make_family_instance(family, 40, WeightRange{1, 9}, a);
        const Graph gb = make_family_instance(family, 40, WeightRange{1, 9}, b);
        EXPECT_EQ(ga.edge_list(), gb.edge_list()) << family_name(family);
    }
}

TEST(Generators, PathShape)
{
    Rng rng(1);
    const Graph g = path_graph(10, WeightRange{2, 2}, rng);
    EXPECT_EQ(g.edge_count(), 9u);
    EXPECT_EQ(weighted_diameter(g), 18);
    EXPECT_EQ(shortest_path_hop_diameter(g), 9);
}

TEST(Generators, CycleShape)
{
    Rng rng(1);
    const Graph g = cycle_graph(8, WeightRange{1, 1}, rng);
    EXPECT_EQ(g.edge_count(), 8u);
    const DegreeStats stats = degree_stats(g);
    EXPECT_EQ(stats.min_degree, 2);
    EXPECT_EQ(stats.max_degree, 2);
}

TEST(Generators, StarShape)
{
    Rng rng(1);
    const Graph g = star_graph(12, WeightRange{1, 5}, rng);
    EXPECT_EQ(g.edge_count(), 11u);
    EXPECT_EQ(g.neighbors(0).size(), 11u);
    EXPECT_EQ(shortest_path_hop_diameter(g), 2);
}

TEST(Generators, CompleteGraphEdgeCount)
{
    Rng rng(1);
    const Graph g = complete_graph(9, WeightRange{1, 5}, rng);
    EXPECT_EQ(g.edge_count(), 36u);
}

TEST(Generators, GridShape)
{
    Rng rng(1);
    const Graph g = grid_graph(3, 4, WeightRange{1, 1}, rng);
    EXPECT_EQ(g.node_count(), 12);
    EXPECT_EQ(g.edge_count(), 17u); // 3*3 + 2*4
}

TEST(Generators, TreeHasExactlyNMinusOneEdges)
{
    for (const std::uint64_t seed : {1u, 5u, 9u}) {
        Rng rng(seed);
        const Graph g = random_tree(33, WeightRange{1, 7}, rng);
        EXPECT_EQ(g.edge_count(), 32u);
        EXPECT_TRUE(is_connected(g));
    }
}

TEST(Generators, ErdosRenyiDensityScalesWithP)
{
    Rng rng(3);
    const Graph sparse = erdos_renyi(60, 0.05, WeightRange{1, 5}, rng, false);
    const Graph dense = erdos_renyi(60, 0.5, WeightRange{1, 5}, rng, false);
    EXPECT_LT(sparse.edge_count(), dense.edge_count());
    // Expectation for p=0.5 over C(60,2)=1770 pairs: ~885.
    EXPECT_GT(dense.edge_count(), 600u);
    EXPECT_LT(dense.edge_count(), 1200u);
}

TEST(Generators, BarabasiAlbertHasHubs)
{
    Rng rng(17);
    const Graph g = barabasi_albert(120, 2, WeightRange{1, 3}, rng);
    const DegreeStats stats = degree_stats(g);
    EXPECT_GE(stats.max_degree, 10); // preferential attachment creates hubs
    EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ClusteredGraphHasHeavyBridges)
{
    Rng rng(23);
    const Graph g = clustered_graph(60, 4, 0.5, 0.01, WeightRange{1, 10}, 10, rng);
    EXPECT_TRUE(is_connected(g));
    // At least one inter-cluster edge must carry a scaled (heavy) weight.
    Weight heaviest = 0;
    for (NodeId u = 0; u < g.node_count(); ++u)
        for (const Edge& e : g.neighbors(u)) heaviest = std::max(heaviest, e.weight);
    EXPECT_GE(heaviest, 10);
}

TEST(Generators, MakeConnectedFixesComponents)
{
    Rng rng(5);
    Graph g = Graph::undirected(9); // three triangles
    for (int base : {0, 3, 6}) {
        g.add_edge(base, base + 1, 1);
        g.add_edge(base + 1, base + 2, 1);
        g.add_edge(base, base + 2, 1);
    }
    EXPECT_FALSE(is_connected(g));
    make_connected(g, WeightRange{1, 1}, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.edge_count(), 11u); // exactly two bridge edges added
}

TEST(Generators, RejectsBadParameters)
{
    Rng rng(1);
    EXPECT_THROW((void)path_graph(0, WeightRange{1, 2}, rng), check_error);
    EXPECT_THROW((void)cycle_graph(2, WeightRange{1, 2}, rng), check_error);
    EXPECT_THROW((void)erdos_renyi(10, 1.5, WeightRange{1, 2}, rng), check_error);
    EXPECT_THROW((void)barabasi_albert(10, 0, WeightRange{1, 2}, rng), check_error);
    EXPECT_THROW((void)grid_graph(0, 3, WeightRange{1, 2}, rng), check_error);
}

} // namespace
} // namespace ccq
