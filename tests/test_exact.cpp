// Tests for the exact shortest-path references (ccq/graph/exact.hpp):
// mutual agreement of the oracles and hand-checked small cases.
#include <gtest/gtest.h>

#include "ccq/graph/exact.hpp"
#include "ccq/graph/generators.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

TEST(Exact, PathGraphHandChecked)
{
    Graph g = Graph::undirected(4); // 0 -5- 1 -2- 2 -7- 3
    g.add_edge(0, 1, 5);
    g.add_edge(1, 2, 2);
    g.add_edge(2, 3, 7);
    const DistanceMatrix d = exact_apsp(g);
    EXPECT_EQ(d.at(0, 0), 0);
    EXPECT_EQ(d.at(0, 1), 5);
    EXPECT_EQ(d.at(0, 2), 7);
    EXPECT_EQ(d.at(0, 3), 14);
    EXPECT_EQ(d.at(3, 0), 14);
    EXPECT_TRUE(is_symmetric(d));
}

TEST(Exact, DisconnectedPairsAreInfinite)
{
    Graph g = Graph::undirected(4);
    g.add_edge(0, 1, 1);
    g.add_edge(2, 3, 1);
    const DistanceMatrix d = exact_apsp(g);
    EXPECT_FALSE(is_finite(d.at(0, 2)));
    EXPECT_FALSE(is_finite(d.at(1, 3)));
    EXPECT_EQ(d.at(2, 3), 1);
}

TEST(Exact, DirectedAsymmetry)
{
    Graph g = Graph::directed(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    const DistanceMatrix d = exact_apsp(g);
    EXPECT_EQ(d.at(0, 2), 2);
    EXPECT_FALSE(is_finite(d.at(2, 0)));
}

TEST(Exact, SingleNodeAndEmpty)
{
    const DistanceMatrix one = exact_apsp(Graph::undirected(1));
    EXPECT_EQ(one.at(0, 0), 0);
    const DistanceMatrix zero = exact_apsp(Graph::undirected(0));
    EXPECT_EQ(zero.size(), 0);
}

TEST(Exact, ShorterMultiHopBeatsDirectEdge)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 2, 10);
    g.add_edge(0, 1, 2);
    g.add_edge(1, 2, 3);
    EXPECT_EQ(exact_apsp(g).at(0, 2), 5);
}

TEST(Exact, DijkstraMatchesFloydWarshallOnRandomGraphs)
{
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        Rng rng(seed);
        const Graph g = erdos_renyi(40, 0.15, WeightRange{1, 50}, rng, /*connected=*/false);
        EXPECT_EQ(exact_apsp(g), exact_apsp_floyd_warshall(g)) << "seed " << seed;
    }
}

TEST(Exact, HopLimitedConvergesToTrueDistance)
{
    Rng rng(7);
    const Graph g = make_family_instance(GraphFamily::erdos_renyi_sparse, 36,
                                         WeightRange{1, 20}, rng);
    const DistanceMatrix full = exact_apsp(g);
    const DistanceMatrix limited = hop_limited_apsp(g, g.node_count());
    EXPECT_EQ(limited, full);
}

TEST(Exact, HopLimitedRespectsBudget)
{
    Rng rng(7);
    Graph g = path_graph(6, WeightRange{1, 1}, rng); // unit path
    const std::vector<Weight> two_hops = hop_limited_from(g, 0, 2);
    EXPECT_EQ(two_hops[2], 2);
    EXPECT_FALSE(is_finite(two_hops[3]));
    const std::vector<Weight> zero_hops = hop_limited_from(g, 0, 0);
    EXPECT_EQ(zero_hops[0], 0);
    EXPECT_FALSE(is_finite(zero_hops[1]));
}

TEST(Exact, HopLimitedCanExceedTrueDistanceUnderTightBudget)
{
    // 0-2 direct costs 10; the 2-hop route costs 5.
    Graph g = Graph::undirected(3);
    g.add_edge(0, 2, 10);
    g.add_edge(0, 1, 2);
    g.add_edge(1, 2, 3);
    EXPECT_EQ(hop_limited_from(g, 0, 1)[2], 10);
    EXPECT_EQ(hop_limited_from(g, 0, 2)[2], 5);
}

TEST(Exact, MinHopsOnShortestPathsBasics)
{
    // Shortest 0->3 is the 3-hop chain (cost 3) rather than the direct
    // edge (cost 5); min-hops must follow the shortest path.
    Graph g = Graph::undirected(4);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 3, 1);
    g.add_edge(0, 3, 5);
    const std::vector<int> hops = min_hops_on_shortest_paths(g, 0);
    EXPECT_EQ(hops[0], 0);
    EXPECT_EQ(hops[3], 3);
}

TEST(Exact, MinHopsPrefersFewerEdgesAmongEqualLengthPaths)
{
    // Two shortest 0->2 paths of length 4: direct edge vs 2-hop chain.
    Graph g = Graph::undirected(3);
    g.add_edge(0, 2, 4);
    g.add_edge(0, 1, 2);
    g.add_edge(1, 2, 2);
    EXPECT_EQ(min_hops_on_shortest_paths(g, 0)[2], 1);
}

TEST(Exact, MinHopsUnreachableIsMinusOne)
{
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 1);
    EXPECT_EQ(min_hops_on_shortest_paths(g, 0)[2], -1);
}

TEST(Exact, MinHopsHandlesZeroWeights)
{
    // 0 -0- 1 -0- 2 and a direct 0-2 zero edge: both shortest (length 0),
    // direct edge has 1 hop.
    Graph g = Graph::undirected(3);
    g.add_edge(0, 1, 0);
    g.add_edge(1, 2, 0);
    g.add_edge(0, 2, 0);
    EXPECT_EQ(min_hops_on_shortest_paths(g, 0)[2], 1);
}

TEST(Exact, MinPlusClosureMatchesDijkstra)
{
    Rng rng(11);
    const Graph g = erdos_renyi(30, 0.2, WeightRange{1, 30}, rng);
    int products = 0;
    const DistanceMatrix closure = min_plus_closure(adjacency_matrix(g), &products);
    EXPECT_EQ(closure, exact_apsp(g));
    EXPECT_GE(products, 1);
    EXPECT_LE(products, 6); // ceil(log2(29))
}

} // namespace
} // namespace ccq
