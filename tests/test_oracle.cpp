// Tests for the DistanceOracle facade and the Section 3.2 O(log log n)
// algorithm exposed through it.
#include <gtest/gtest.h>

#include "ccq/core/loglog_apsp.hpp"
#include "ccq/core/oracle.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

constexpr ApspAlgorithmKind kAllKinds[] = {
    ApspAlgorithmKind::exact_baseline, ApspAlgorithmKind::logn_baseline,
    ApspAlgorithmKind::loglog,         ApspAlgorithmKind::small_diameter,
    ApspAlgorithmKind::large_bandwidth, ApspAlgorithmKind::general,
};

TEST(Oracle, EveryAlgorithmKindProducesValidEstimates)
{
    Rng rng(1);
    const Graph g = erdos_renyi(56, 0.12, WeightRange{1, 40}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    for (const ApspAlgorithmKind kind : kAllKinds) {
        const DistanceOracle oracle(g, kind);
        expect_valid_approximation(exact, oracle.result().estimate, oracle.claimed_stretch(),
                                   algorithm_kind_name(kind));
        EXPECT_GT(oracle.simulated_rounds(), 0.0) << algorithm_kind_name(kind);
        EXPECT_EQ(oracle.algorithm(), algorithm_kind_name(kind));
    }
}

TEST(Oracle, QueriesMatchResultMatrix)
{
    Rng rng(2);
    const Graph g = erdos_renyi(32, 0.2, WeightRange{1, 20}, rng);
    const DistanceOracle oracle(g, ApspAlgorithmKind::exact_baseline);
    const DistanceMatrix exact = exact_apsp(g);
    for (NodeId u = 0; u < 32; ++u)
        for (NodeId v = 0; v < 32; ++v) {
            EXPECT_EQ(oracle.distance(u, v), exact.at(u, v));
            EXPECT_EQ(oracle.reachable(u, v), is_finite(exact.at(u, v)));
        }
}

TEST(Oracle, ZeroWeightsHandledTransparently)
{
    Rng rng(3);
    Graph g = erdos_renyi(32, 0.15, WeightRange{1, 20}, rng);
    g.add_edge(0, 1, 0);
    g.add_edge(1, 2, 0);
    const DistanceOracle oracle(g, ApspAlgorithmKind::general);
    EXPECT_EQ(oracle.distance(0, 2), 0);
    EXPECT_EQ(oracle.algorithm(), std::string("general") + "+zero-weights");
    expect_valid_approximation(exact_apsp(g), oracle.result().estimate,
                               oracle.claimed_stretch(), "oracle-zero");
}

TEST(Oracle, RejectsDirectedGraphs)
{
    const Graph g = Graph::directed(4);
    EXPECT_THROW(DistanceOracle oracle(g), check_error);
}

class LogLogSweep : public ::testing::TestWithParam<InstanceSpec> {};

// Section 3.2: 21-approximation (standard bandwidth), 7-approximation
// (Congested-Clique[log^3 n]).
TEST_P(LogLogSweep, WithinTheoremBounds)
{
    const Graph g = make_instance(GetParam());
    const DistanceMatrix exact = exact_apsp(g);

    ApspOptions narrow;
    narrow.seed = GetParam().seed;
    const ApspResult standard = apsp_loglog(g, narrow);
    expect_valid_approximation(exact, standard.estimate, standard.claimed_stretch,
                               "loglog " + GetParam().label());
    EXPECT_LE(standard.claimed_stretch, 21.0 + 1e-9);

    ApspOptions wide = narrow;
    wide.wide_bandwidth = true;
    const ApspResult wide_result = apsp_loglog(g, wide);
    expect_valid_approximation(exact, wide_result.estimate, wide_result.claimed_stretch,
                               "loglog-wide " + GetParam().label());
    EXPECT_LE(wide_result.claimed_stretch, 7.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Families, LogLogSweep,
    ::testing::Values(
        InstanceSpec{GraphFamily::erdos_renyi_sparse, 64, 1, 40},
        InstanceSpec{GraphFamily::erdos_renyi_dense, 64, 2, 40},
        InstanceSpec{GraphFamily::geometric, 64, 3, 40},
        InstanceSpec{GraphFamily::clustered, 64, 4, 40},
        InstanceSpec{GraphFamily::tree, 64, 5, 40},
        InstanceSpec{GraphFamily::path, 48, 6, 40},
        InstanceSpec{GraphFamily::grid, 49, 7, 40},
        InstanceSpec{GraphFamily::barabasi_albert, 64, 8, 40}),
    testing::InstanceSpecName{});

TEST(LogLog, ChargesHopsetAndKNearestPhases)
{
    Rng rng(9);
    const Graph g = erdos_renyi(64, 0.1, WeightRange{1, 30}, rng);
    const ApspResult result = apsp_loglog(g);
    EXPECT_GT(result.ledger.rounds_in_phase("loglog/bootstrap"), 0.0);
    EXPECT_GT(result.ledger.rounds_in_phase("loglog/hopset"), 0.0);
    EXPECT_GT(result.ledger.rounds_in_phase("loglog/k-nearest"), 0.0);
    EXPECT_GT(result.ledger.rounds_in_phase("loglog/skeleton"), 0.0);
}

} // namespace
} // namespace ccq
