// Tests for the DistanceSource read path: the dense and mapped sources
// must answer bitwise-identically to the snapshot they wrap (the
// refactor changes plumbing, never answers), the spanner source must
// answer within its construction's stretch bound, its row cache must be
// invisible to answers (cold == warm), and the open_distance_source
// factory must auto-detect every codec.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ccq/core/baselines.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/serve/distance_source.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"
#include "ccq/spanner/baswana_sen.hpp"
#include "ccq/spanner/greedy.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

/// A small built oracle (with routing) shared by the dense-path tests.
OracleSnapshot make_snapshot(const InstanceSpec& spec)
{
    const Graph g = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    const ApspResult result = logn_approx_apsp(g, options);
    const RoutingTables routing = build_routing_tables(g);
    return OracleSnapshot::from_result(g, result, options.seed, &routing);
}

SparseSnapshot sparse_round_trip(const SparseSnapshot& snapshot)
{
    std::ostringstream out(std::ios::binary);
    write_sparse_snapshot(out, snapshot);
    std::istringstream in(out.str(), std::ios::binary);
    return read_sparse_snapshot(in);
}

TEST(DistanceSource, DenseAndMappedAnswerBitwiseIdenticallyToTheSnapshot)
{
    // The contract that lets the QueryEngine drop its storage branches:
    // both dense sources return the snapshot's exact stored cells, and
    // the engines built on them agree on every distance, path, and
    // k-nearest answer.
    const InstanceSpec spec{GraphFamily::erdos_renyi_sparse, 36, 13};
    const OracleSnapshot snapshot = make_snapshot(spec);
    const std::string path = ::testing::TempDir() + "ccq_source_identity.snap";
    save_snapshot(path, snapshot, SnapshotFormat::v2_compressed);

    const auto dense = std::make_shared<const DenseSnapshotSource>(
        std::make_shared<const OracleSnapshot>(snapshot));
    const auto mapped = std::make_shared<const MappedSnapshotSource>(
        std::make_shared<const MappedSnapshot>(path));
    EXPECT_EQ(dense->kind(), SourceKind::dense);
    EXPECT_EQ(mapped->kind(), SourceKind::mapped);

    const int n = snapshot.meta.node_count;
    const std::uint64_t cells = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    EXPECT_EQ(dense->stored_cells(), cells);
    EXPECT_EQ(mapped->stored_cells(), cells);
    EXPECT_EQ(dense->rows_materialized(), 0u);
    EXPECT_EQ(mapped->row_cache_hits(), 0u);

    const QueryEngine dense_engine(dense);
    const QueryEngine mapped_engine(mapped);
    EXPECT_FALSE(dense_engine.is_mapped());
    EXPECT_TRUE(mapped_engine.is_mapped());
    for (NodeId u = 0; u < n; ++u) {
        std::vector<Weight> dense_row(static_cast<std::size_t>(n), 0);
        std::vector<Weight> mapped_row(static_cast<std::size_t>(n), 0);
        dense->fill_row(u, dense_row);
        mapped->fill_row(u, mapped_row);
        for (NodeId v = 0; v < n; ++v) {
            const Weight expected = snapshot.estimate.at(u, v);
            EXPECT_EQ(dense_engine.distance(u, v), expected);
            EXPECT_EQ(mapped_engine.distance(u, v), expected);
            EXPECT_EQ(dense_row[static_cast<std::size_t>(v)], expected);
            EXPECT_EQ(mapped_row[static_cast<std::size_t>(v)], expected);
            if (u != v) EXPECT_EQ(dense_engine.path(u, v), mapped_engine.path(u, v));
        }
        EXPECT_EQ(dense_engine.nearest_targets(u, 5), mapped_engine.nearest_targets(u, 5));
    }
    std::remove(path.c_str());
}

TEST(DistanceSource, SparseSnapshotRoundTripsThroughBytes)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::clustered, 40, 3});
    Rng rng(3);
    const SpannerResult result = baswana_sen_spanner(g, 2, rng);
    const SparseSnapshot original = SparseSnapshot::from_spanner(g, result, "baswana-sen", 3);
    EXPECT_EQ(original.stretch_bound, result.stretch_bound);
    EXPECT_EQ(original.parameter_k, result.parameter_k);
    EXPECT_EQ(sparse_round_trip(original), original);

    // And through a file, via the save/load pair.
    const std::string path = ::testing::TempDir() + "ccq_sparse_roundtrip.snap";
    save_sparse_snapshot(path, original);
    EXPECT_EQ(peek_snapshot_format(path), SnapshotFormat::v3_spanner);
    EXPECT_EQ(load_sparse_snapshot(path), original);
    std::remove(path.c_str());
}

TEST(DistanceSource, SpannerSourceAnswersWithinTheStretchBound)
{
    // Property: for every pair, exact <= answer <= stretch_bound * exact
    // (and matching reachability) — on both spanner constructions,
    // after a round trip through the v3 codec.
    for (const InstanceSpec spec : {InstanceSpec{GraphFamily::erdos_renyi_sparse, 48, 7},
                                    InstanceSpec{GraphFamily::clustered, 40, 21},
                                    InstanceSpec{GraphFamily::grid, 36, 5}}) {
        const Graph g = testing::make_instance(spec);
        Rng rng(spec.seed);
        for (const bool greedy : {false, true}) {
            const SpannerResult result =
                greedy ? greedy_spanner(g, 2) : baswana_sen_spanner(g, 2, rng);
            const SparseSnapshot snapshot = sparse_round_trip(SparseSnapshot::from_spanner(
                g, result, greedy ? "greedy" : "baswana-sen", spec.seed));
            const SpannerDistanceSource source(snapshot);
            EXPECT_EQ(source.kind(), SourceKind::spanner);
            EXPECT_EQ(source.stored_cells(), snapshot.edges.size());
            const std::string context = spec.label() + (greedy ? "/greedy" : "/baswana-sen");
            for (NodeId u = 0; u < g.node_count(); ++u) {
                const std::vector<Weight> exact = dijkstra_from(g, u);
                for (NodeId v = 0; v < g.node_count(); ++v) {
                    const Weight answer = source.distance(u, v);
                    const Weight truth = exact[static_cast<std::size_t>(v)];
                    ASSERT_EQ(is_finite(answer), is_finite(truth))
                        << context << ": reachability mismatch at (" << u << "," << v << ")";
                    if (!is_finite(truth)) continue;
                    EXPECT_GE(answer, truth) << context;
                    EXPECT_LE(answer, truth * static_cast<Weight>(snapshot.stretch_bound))
                        << context;
                }
            }
        }
    }
}

TEST(DistanceSource, SpannerRouteMatchesItsOwnDistance)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 9});
    Rng rng(9);
    const SpannerResult result = baswana_sen_spanner(g, 2, rng);
    const SparseSnapshot snapshot = SparseSnapshot::from_spanner(g, result, "baswana-sen", 9);
    const SpannerDistanceSource source(snapshot);
    ASSERT_TRUE(source.has_routing());
    const Graph spanner = snapshot.spanner_graph();
    for (NodeId u = 0; u < g.node_count(); ++u) {
        for (NodeId v = 0; v < g.node_count(); ++v) {
            const std::vector<NodeId> path = source.route(u, v);
            if (!is_finite(source.distance(u, v))) {
                EXPECT_TRUE(path.empty());
                continue;
            }
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), u);
            EXPECT_EQ(path.back(), v);
            // The walked edges exist in the spanner and sum to the
            // source's own estimate for the pair.
            Weight total = 0;
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                bool found = false;
                for (const Edge& e : spanner.neighbors(path[i]))
                    if (e.to == path[i + 1]) {
                        total = saturating_add(total, e.weight);
                        found = true;
                        break;
                    }
                ASSERT_TRUE(found) << "route uses a non-spanner edge";
            }
            EXPECT_EQ(total, source.distance(u, v));
        }
    }
}

TEST(DistanceSource, SpannerRowCacheIsInvisibleToAnswers)
{
    // cold == warm: a tiny cache that thrashes and a disabled cache must
    // agree with a large cache on every answer, and the counters must
    // prove the cache actually engaged.
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::clustered, 44, 17});
    Rng rng(17);
    const SparseSnapshot snapshot =
        SparseSnapshot::from_spanner(g, baswana_sen_spanner(g, 2, rng), "baswana-sen", 17);

    const SpannerDistanceSource warm(snapshot, SpannerSourceConfig{.row_cache_rows = 1024});
    const SpannerDistanceSource tiny(snapshot,
                                     SpannerSourceConfig{.row_cache_rows = 2, .cache_shards = 1});
    const SpannerDistanceSource cold(snapshot, SpannerSourceConfig{.row_cache_rows = 0});

    const int n = g.node_count();
    for (int pass = 0; pass < 2; ++pass)
        for (NodeId u = 0; u < n; ++u)
            for (NodeId v = 0; v < n; v += 7) {
                const Weight expected = cold.distance(u, v);
                EXPECT_EQ(warm.distance(u, v), expected);
                EXPECT_EQ(tiny.distance(u, v), expected);
            }

    // Warm source: each row computed once, then served from cache.
    EXPECT_EQ(warm.rows_materialized(), static_cast<std::uint64_t>(n));
    EXPECT_GT(warm.row_cache_hits(), 0u);
    // Thrashing source: recomputes rows it evicted.
    EXPECT_GT(tiny.rows_materialized(), static_cast<std::uint64_t>(n));
    // Disabled cache: every query pays a fresh Dijkstra, no hits ever.
    EXPECT_EQ(cold.row_cache_hits(), 0u);
    EXPECT_GT(cold.rows_materialized(), static_cast<std::uint64_t>(n));
}

TEST(DistanceSource, FactoryAutoDetectsEveryFormat)
{
    const InstanceSpec spec{GraphFamily::erdos_renyi_sparse, 30, 5};
    const OracleSnapshot dense = make_snapshot(spec);
    const Graph g = testing::make_instance(spec);
    Rng rng(5);
    const SparseSnapshot sparse =
        SparseSnapshot::from_spanner(g, baswana_sen_spanner(g, 2, rng), "baswana-sen", 5);

    const std::string dir = ::testing::TempDir();
    const std::string v1 = dir + "ccq_factory.v1.snap";
    const std::string v2 = dir + "ccq_factory.v2.snap";
    const std::string v3 = dir + "ccq_factory.v3.snap";
    save_snapshot(v1, dense, SnapshotFormat::v1_raw);
    save_snapshot(v2, dense, SnapshotFormat::v2_compressed);
    save_sparse_snapshot(v3, sparse);

    EXPECT_EQ(peek_snapshot_format(v1), SnapshotFormat::v1_raw);
    EXPECT_EQ(peek_snapshot_format(v2), SnapshotFormat::v2_compressed);
    EXPECT_EQ(peek_snapshot_format(v3), SnapshotFormat::v3_spanner);

    const auto eager = open_distance_source(v1);
    const auto mmapped = open_distance_source(v2, DistanceSourceOptions{.prefer_mmap = true});
    const auto spanner = open_distance_source(v3);
    EXPECT_EQ(eager->kind(), SourceKind::dense);
    EXPECT_EQ(mmapped->kind(), SourceKind::mapped);
    EXPECT_EQ(spanner->kind(), SourceKind::spanner);
    EXPECT_EQ(eager->node_count(), dense.meta.node_count);
    EXPECT_EQ(spanner->node_count(), g.node_count());

    // Both dense loads answer identically; the sparse one within bound.
    for (NodeId u = 0; u < dense.meta.node_count; ++u)
        for (NodeId v = 0; v < dense.meta.node_count; ++v)
            EXPECT_EQ(eager->distance(u, v), mmapped->distance(u, v));

    // The dense readers refuse the sparse file with a pointer to the
    // right loader, and vice versa.
    EXPECT_THROW((void)load_snapshot(v3), snapshot_io_error);
    EXPECT_THROW((void)MappedSnapshot(v3), snapshot_io_error);
    EXPECT_THROW((void)load_sparse_snapshot(v1), snapshot_io_error);

    for (const std::string& path : {v1, v2, v3}) std::remove(path.c_str());
}

TEST(DistanceSource, UnknownVersionErrorsReportTheFoundVersion)
{
    // Satellite contract: an unknown envelope version names the number
    // it found, so operators can tell "new build needed" from "corrupt".
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 16, 2});
    Rng rng(2);
    const SparseSnapshot sparse =
        SparseSnapshot::from_spanner(g, baswana_sen_spanner(g, 2, rng), "baswana-sen", 2);
    std::ostringstream out(std::ios::binary);
    write_sparse_snapshot(out, sparse);
    std::string bytes = out.str();
    bytes[8] = 9; // version u32 little-endian low byte: 3 -> 9

    const auto expect_mentions_9 = [](const auto& loader, std::string bytes_copy) {
        try {
            std::istringstream in(bytes_copy, std::ios::binary);
            (void)loader(in);
            FAIL() << "unknown version accepted";
        } catch (const snapshot_io_error& error) {
            EXPECT_NE(std::string(error.what()).find('9'), std::string::npos)
                << "error does not name the found version: " << error.what();
        }
    };
    expect_mentions_9([](std::istream& in) { return read_snapshot(in); }, bytes);
    expect_mentions_9([](std::istream& in) { return read_sparse_snapshot(in); }, bytes);
}

TEST(DistanceSource, V3CorruptionIsDetected)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::erdos_renyi_sparse, 24, 4});
    Rng rng(4);
    const SparseSnapshot sparse =
        SparseSnapshot::from_spanner(g, baswana_sen_spanner(g, 2, rng), "baswana-sen", 4);
    std::ostringstream out(std::ios::binary);
    write_sparse_snapshot(out, sparse);
    const std::string bytes = out.str();

    // A flipped payload byte fails the checksum.
    std::string flipped = bytes;
    flipped[flipped.size() / 2] = static_cast<char>(flipped[flipped.size() / 2] ^ 0x20);
    std::istringstream in_flipped(flipped, std::ios::binary);
    EXPECT_THROW((void)read_sparse_snapshot(in_flipped), snapshot_io_error);

    // Truncation at any of several points fails cleanly.
    for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{10}}) {
        std::istringstream in(bytes.substr(0, keep), std::ios::binary);
        EXPECT_THROW((void)read_sparse_snapshot(in), snapshot_io_error);
    }
}

} // namespace
} // namespace ccq
