// Tests for the oracle snapshot format: round-trip fidelity, version
// gating, and corruption detection (truncation, bit flips, bad magic).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ccq/core/baselines.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/serve/snapshot.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

/// A small built oracle (with routing) for serialization tests.
OracleSnapshot make_snapshot(const InstanceSpec& spec)
{
    const Graph g = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    const ApspResult result = logn_approx_apsp(g, options);
    const RoutingTables routing = build_routing_tables(g);
    return OracleSnapshot::from_result(g, result, options.seed, &routing);
}

/// Serializes to an in-memory byte string.
std::string to_bytes(const OracleSnapshot& snapshot)
{
    std::ostringstream out(std::ios::binary);
    write_snapshot(out, snapshot);
    return out.str();
}

OracleSnapshot from_bytes(const std::string& bytes)
{
    std::istringstream in(bytes, std::ios::binary);
    return read_snapshot(in);
}

void expect_equal(const OracleSnapshot& a, const OracleSnapshot& b)
{
    EXPECT_EQ(a.meta, b.meta);
    EXPECT_EQ(a.estimate, b.estimate);
    ASSERT_EQ(a.has_routing, b.has_routing);
    if (a.has_routing) {
        ASSERT_EQ(a.routing.size(), b.routing.size());
        for (NodeId u = 0; u < a.routing.size(); ++u)
            for (NodeId v = 0; v < a.routing.size(); ++v)
                EXPECT_EQ(a.routing.next_hop(u, v), b.routing.next_hop(u, v));
    }
}

TEST(Snapshot, RoundTripsThroughStreamsOnRandomGraphs)
{
    for (const InstanceSpec spec :
         {InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 3},
          InstanceSpec{GraphFamily::clustered, 48, 5},
          InstanceSpec{GraphFamily::tree, 24, 9}}) {
        const OracleSnapshot original = make_snapshot(spec);
        const OracleSnapshot loaded = from_bytes(to_bytes(original));
        expect_equal(original, loaded);
    }
}

TEST(Snapshot, RoundTripsThroughAFile)
{
    const OracleSnapshot original =
        make_snapshot(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 7});
    const std::string path = ::testing::TempDir() + "ccq_snapshot_roundtrip.snap";
    save_snapshot(path, original);
    const OracleSnapshot loaded = load_snapshot(path);
    expect_equal(original, loaded);
    std::remove(path.c_str());
}

TEST(Snapshot, RoundTripsWithoutRouting)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::grid, 25, 2});
    const ApspResult result = logn_approx_apsp(g, {});
    const OracleSnapshot original = OracleSnapshot::from_result(g, result, 1);
    EXPECT_FALSE(original.has_routing);
    const OracleSnapshot loaded = from_bytes(to_bytes(original));
    expect_equal(original, loaded);
}

TEST(Snapshot, MetaRecordsTheBuild)
{
    const InstanceSpec spec{GraphFamily::erdos_renyi_sparse, 36, 11};
    const Graph g = testing::make_instance(spec);
    ApspOptions options;
    options.seed = 77;
    const ApspResult result = logn_approx_apsp(g, options);
    const OracleSnapshot snapshot = OracleSnapshot::from_result(g, result, options.seed);
    EXPECT_EQ(snapshot.meta.node_count, g.node_count());
    EXPECT_EQ(snapshot.meta.edge_count, g.edge_count());
    EXPECT_FALSE(snapshot.meta.directed);
    EXPECT_EQ(snapshot.meta.max_weight, g.max_weight());
    EXPECT_EQ(snapshot.meta.algorithm, result.algorithm);
    EXPECT_DOUBLE_EQ(snapshot.meta.claimed_stretch, result.claimed_stretch);
    EXPECT_DOUBLE_EQ(snapshot.meta.total_rounds, result.ledger.total_rounds());
    EXPECT_EQ(snapshot.meta.total_words, result.ledger.total_words());
    EXPECT_EQ(snapshot.meta.build_seed, 77u);
}

TEST(Snapshot, RejectsBadMagic)
{
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[0] = 'X';
    EXPECT_THROW((void)from_bytes(bytes), snapshot_io_error);
}

TEST(Snapshot, RejectsVersionMismatch)
{
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1); // little-endian u32 after magic
    try {
        (void)from_bytes(bytes);
        FAIL() << "expected snapshot_io_error";
    } catch (const snapshot_io_error& error) {
        EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
    }
}

TEST(Snapshot, RejectsTruncationAtEveryRegion)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    // Header, payload interior, and dropped checksum tail.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, std::size_t{19}, bytes.size() / 2, bytes.size() - 3}) {
        EXPECT_THROW((void)from_bytes(bytes.substr(0, keep)), snapshot_io_error)
            << "kept " << keep << " of " << bytes.size() << " bytes";
    }
}

TEST(Snapshot, DetectsFlippedPayloadBytes)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    const std::size_t header_size = 8 + 4 + 8;
    // Flip a byte in several payload positions; the checksum must catch all.
    for (const std::size_t offset :
         {header_size, header_size + 9, (header_size + bytes.size() - 8) / 2, bytes.size() - 9}) {
        std::string corrupted = bytes;
        corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error)
            << "flip at offset " << offset;
    }
}

TEST(Snapshot, DetectsFlippedChecksumBytes)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    std::string corrupted = bytes;
    corrupted[bytes.size() - 1] = static_cast<char>(corrupted[bytes.size() - 1] ^ 0x01);
    EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error);
}

TEST(Snapshot, RejectsTrailingGarbageInsidePayloadLength)
{
    // Corrupt the declared payload length so the reader sees extra bytes.
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[12] = static_cast<char>(bytes[12] + 1); // length field, low byte
    EXPECT_THROW((void)from_bytes(bytes), snapshot_io_error);
}

TEST(Snapshot, CorruptedLengthFieldFailsCleanlyWithoutHugeAllocation)
{
    // The length field is outside the checksummed payload; flipping its
    // high bytes must surface as snapshot_io_error, not std::bad_alloc.
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    for (const std::size_t offset : {std::size_t{12}, std::size_t{18}, std::size_t{19}}) {
        std::string corrupted = bytes;
        corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error)
            << "length byte at offset " << offset;
    }
}

TEST(Snapshot, ForgedNodeCountIsRejectedBeforeAllocation)
{
    // FNV-1a detects accidents, not forgery: a crafted snapshot with a
    // huge node_count and a recomputed checksum must be rejected by the
    // payload-size bound, not by an n^2 allocation attempt.
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    const std::size_t header_size = 8 + 4 + 8;
    // Payload starts with the little-endian node count; forge 2^30.
    bytes[header_size + 0] = 0;
    bytes[header_size + 1] = 0;
    bytes[header_size + 2] = 0;
    bytes[header_size + 3] = 0x40;
    // Recompute the FNV-1a 64 checksum over the forged payload.
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = header_size; i < bytes.size() - 8; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>((hash >> (8 * i)) & 0xff);
    try {
        (void)from_bytes(bytes);
        FAIL() << "expected snapshot_io_error";
    } catch (const snapshot_io_error& error) {
        EXPECT_NE(std::string(error.what()).find("exceeds payload size"), std::string::npos)
            << error.what();
    }
}

TEST(Snapshot, FromResultValidatesSizes)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 12, 1});
    const ApspResult result = logn_approx_apsp(g, {});
    const Graph other = testing::make_instance(InstanceSpec{GraphFamily::tree, 8, 1});
    EXPECT_THROW((void)OracleSnapshot::from_result(other, result, 1), check_error);
    const RoutingTables wrong_size = build_routing_tables(other);
    EXPECT_THROW((void)OracleSnapshot::from_result(g, result, 1, &wrong_size), check_error);
}

TEST(Snapshot, LoadFailsOnMissingFile)
{
    EXPECT_THROW((void)load_snapshot("/nonexistent/ccq.snap"), snapshot_io_error);
}

} // namespace
} // namespace ccq
