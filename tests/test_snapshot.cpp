// Tests for the oracle snapshot format: round-trip fidelity, version
// gating, and corruption detection (truncation, bit flips, bad magic).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "ccq/core/baselines.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

/// A small built oracle (with routing) for serialization tests.
OracleSnapshot make_snapshot(const InstanceSpec& spec)
{
    const Graph g = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    const ApspResult result = logn_approx_apsp(g, options);
    const RoutingTables routing = build_routing_tables(g);
    return OracleSnapshot::from_result(g, result, options.seed, &routing);
}

/// Serializes to an in-memory byte string.
std::string to_bytes(const OracleSnapshot& snapshot, SnapshotFormat codec = SnapshotFormat::v1_raw)
{
    std::ostringstream out(std::ios::binary);
    write_snapshot(out, snapshot, codec);
    return out.str();
}

/// Recomputes the trailing FNV-1a checksum after a payload mutation, so
/// a test exercises structural validation instead of checksum rejection.
void rehash(std::string& bytes)
{
    const std::size_t header_size = 8 + 4 + 8;
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = header_size; i < bytes.size() - 8; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>((hash >> (8 * i)) & 0xff);
}

OracleSnapshot from_bytes(const std::string& bytes)
{
    std::istringstream in(bytes, std::ios::binary);
    return read_snapshot(in);
}

void expect_equal(const OracleSnapshot& a, const OracleSnapshot& b)
{
    EXPECT_EQ(a.meta, b.meta);
    EXPECT_EQ(a.estimate, b.estimate);
    ASSERT_EQ(a.has_routing, b.has_routing);
    if (a.has_routing) {
        ASSERT_EQ(a.routing.size(), b.routing.size());
        for (NodeId u = 0; u < a.routing.size(); ++u)
            for (NodeId v = 0; v < a.routing.size(); ++v)
                EXPECT_EQ(a.routing.next_hop(u, v), b.routing.next_hop(u, v));
    }
}

TEST(Snapshot, RoundTripsThroughStreamsOnRandomGraphs)
{
    for (const InstanceSpec spec :
         {InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 3},
          InstanceSpec{GraphFamily::clustered, 48, 5},
          InstanceSpec{GraphFamily::tree, 24, 9}}) {
        const OracleSnapshot original = make_snapshot(spec);
        const OracleSnapshot loaded = from_bytes(to_bytes(original));
        expect_equal(original, loaded);
    }
}

TEST(Snapshot, RoundTripsThroughAFile)
{
    const OracleSnapshot original =
        make_snapshot(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 7});
    const std::string path = ::testing::TempDir() + "ccq_snapshot_roundtrip.snap";
    save_snapshot(path, original);
    const OracleSnapshot loaded = load_snapshot(path);
    expect_equal(original, loaded);
    std::remove(path.c_str());
}

TEST(Snapshot, RoundTripsWithoutRouting)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::grid, 25, 2});
    const ApspResult result = logn_approx_apsp(g, {});
    const OracleSnapshot original = OracleSnapshot::from_result(g, result, 1);
    EXPECT_FALSE(original.has_routing);
    const OracleSnapshot loaded = from_bytes(to_bytes(original));
    expect_equal(original, loaded);
}

TEST(Snapshot, MetaRecordsTheBuild)
{
    const InstanceSpec spec{GraphFamily::erdos_renyi_sparse, 36, 11};
    const Graph g = testing::make_instance(spec);
    ApspOptions options;
    options.seed = 77;
    const ApspResult result = logn_approx_apsp(g, options);
    const OracleSnapshot snapshot = OracleSnapshot::from_result(g, result, options.seed);
    EXPECT_EQ(snapshot.meta.node_count, g.node_count());
    EXPECT_EQ(snapshot.meta.edge_count, g.edge_count());
    EXPECT_FALSE(snapshot.meta.directed);
    EXPECT_EQ(snapshot.meta.max_weight, g.max_weight());
    EXPECT_EQ(snapshot.meta.algorithm, result.algorithm);
    EXPECT_DOUBLE_EQ(snapshot.meta.claimed_stretch, result.claimed_stretch);
    EXPECT_DOUBLE_EQ(snapshot.meta.total_rounds, result.ledger.total_rounds());
    EXPECT_EQ(snapshot.meta.total_words, result.ledger.total_words());
    EXPECT_EQ(snapshot.meta.build_seed, 77u);
}

TEST(Snapshot, RejectsBadMagic)
{
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[0] = 'X';
    EXPECT_THROW((void)from_bytes(bytes), snapshot_io_error);
}

TEST(Snapshot, RejectsVersionMismatch)
{
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1); // little-endian u32 after magic
    try {
        (void)from_bytes(bytes);
        FAIL() << "expected snapshot_io_error";
    } catch (const snapshot_io_error& error) {
        EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
    }
}

TEST(Snapshot, RejectsTruncationAtEveryRegion)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    // Header, payload interior, and dropped checksum tail.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, std::size_t{19}, bytes.size() / 2, bytes.size() - 3}) {
        EXPECT_THROW((void)from_bytes(bytes.substr(0, keep)), snapshot_io_error)
            << "kept " << keep << " of " << bytes.size() << " bytes";
    }
}

TEST(Snapshot, DetectsFlippedPayloadBytes)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    const std::size_t header_size = 8 + 4 + 8;
    // Flip a byte in several payload positions; the checksum must catch all.
    for (const std::size_t offset :
         {header_size, header_size + 9, (header_size + bytes.size() - 8) / 2, bytes.size() - 9}) {
        std::string corrupted = bytes;
        corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error)
            << "flip at offset " << offset;
    }
}

TEST(Snapshot, DetectsFlippedChecksumBytes)
{
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    std::string corrupted = bytes;
    corrupted[bytes.size() - 1] = static_cast<char>(corrupted[bytes.size() - 1] ^ 0x01);
    EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error);
}

TEST(Snapshot, RejectsTrailingGarbageInsidePayloadLength)
{
    // Corrupt the declared payload length so the reader sees extra bytes.
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    bytes[12] = static_cast<char>(bytes[12] + 1); // length field, low byte
    EXPECT_THROW((void)from_bytes(bytes), snapshot_io_error);
}

TEST(Snapshot, CorruptedLengthFieldFailsCleanlyWithoutHugeAllocation)
{
    // The length field is outside the checksummed payload; flipping its
    // high bytes must surface as snapshot_io_error, not std::bad_alloc.
    const std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    for (const std::size_t offset : {std::size_t{12}, std::size_t{18}, std::size_t{19}}) {
        std::string corrupted = bytes;
        corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error)
            << "length byte at offset " << offset;
    }
}

TEST(Snapshot, ForgedNodeCountIsRejectedBeforeAllocation)
{
    // FNV-1a detects accidents, not forgery: a crafted snapshot with a
    // huge node_count and a recomputed checksum must be rejected by the
    // payload-size bound, not by an n^2 allocation attempt.
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}));
    const std::size_t header_size = 8 + 4 + 8;
    // Payload starts with the little-endian node count; forge 2^30.
    bytes[header_size + 0] = 0;
    bytes[header_size + 1] = 0;
    bytes[header_size + 2] = 0;
    bytes[header_size + 3] = 0x40;
    // Recompute the FNV-1a 64 checksum over the forged payload.
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = header_size; i < bytes.size() - 8; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 1099511628211ULL;
    }
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<char>((hash >> (8 * i)) & 0xff);
    try {
        (void)from_bytes(bytes);
        FAIL() << "expected snapshot_io_error";
    } catch (const snapshot_io_error& error) {
        EXPECT_NE(std::string(error.what()).find("exceeds payload size"), std::string::npos)
            << error.what();
    }
}

// --- decoded-cell range validation (both codecs) ----------------------------
//
// The dense engine's raw-add kernels require every cell in
// [0, kInfinity]; the writer trusts its callers, so a crafted snapshot
// can carry anything.  Both codecs must reject out-of-range cells at
// load time instead of handing them back to the engine.

/// A structurally valid snapshot whose estimate holds one illegal cell.
OracleSnapshot snapshot_with_bad_cell(Weight bad)
{
    OracleSnapshot snapshot = make_snapshot(InstanceSpec{GraphFamily::tree, 10, 4});
    snapshot.estimate.at(2, 7) = bad;
    return snapshot;
}

TEST(SnapshotCellValidation, OutOfRangeEstimateCellsAreRejectedByBothCodecs)
{
    for (const Weight bad : {kInfinity + 1, kInfinity + 12345, Weight{-1},
                             std::numeric_limits<Weight>::max(),
                             std::numeric_limits<Weight>::min()}) {
        const OracleSnapshot forged = snapshot_with_bad_cell(bad);
        for (const SnapshotFormat codec : {SnapshotFormat::v1_raw, SnapshotFormat::v2_compressed}) {
            try {
                (void)from_bytes(to_bytes(forged, codec));
                FAIL() << "codec " << static_cast<int>(codec) << " accepted cell " << bad;
            } catch (const snapshot_io_error& error) {
                EXPECT_NE(std::string(error.what()).find("out of range"), std::string::npos)
                    << error.what();
            }
        }
    }
    // kInfinity itself (unreachable) stays legal in both codecs.
    const OracleSnapshot legal = snapshot_with_bad_cell(kInfinity);
    for (const SnapshotFormat codec : {SnapshotFormat::v1_raw, SnapshotFormat::v2_compressed})
        EXPECT_EQ(from_bytes(to_bytes(legal, codec)).estimate.at(2, 7), kInfinity);
}

TEST(SnapshotCellValidation, OutOfRangeNextHopsAreRejectedByBothCodecs)
{
    OracleSnapshot forged = make_snapshot(InstanceSpec{GraphFamily::tree, 10, 4});
    std::vector<NodeId> hops(100, -1);
    hops[5] = 10; // one past the node range
    forged.routing = RoutingTables(10, std::move(hops));
    for (const SnapshotFormat codec : {SnapshotFormat::v1_raw, SnapshotFormat::v2_compressed}) {
        try {
            (void)from_bytes(to_bytes(forged, codec));
            FAIL() << "codec " << static_cast<int>(codec) << " accepted a bad hop";
        } catch (const snapshot_io_error& error) {
            EXPECT_NE(std::string(error.what()).find("out of range"), std::string::npos)
                << error.what();
        }
    }
}

TEST(Snapshot, FromResultValidatesSizes)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 12, 1});
    const ApspResult result = logn_approx_apsp(g, {});
    const Graph other = testing::make_instance(InstanceSpec{GraphFamily::tree, 8, 1});
    EXPECT_THROW((void)OracleSnapshot::from_result(other, result, 1), check_error);
    const RoutingTables wrong_size = build_routing_tables(other);
    EXPECT_THROW((void)OracleSnapshot::from_result(g, result, 1, &wrong_size), check_error);
}

TEST(Snapshot, LoadFailsOnMissingFile)
{
    EXPECT_THROW((void)load_snapshot("/nonexistent/ccq.snap"), snapshot_io_error);
}

// --- codec v2 (compressed) --------------------------------------------------

TEST(SnapshotV2, RoundTripsBitwiseOnRandomGraphs)
{
    for (const InstanceSpec spec :
         {InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 3},
          InstanceSpec{GraphFamily::clustered, 48, 5},
          InstanceSpec{GraphFamily::tree, 24, 9}}) {
        const OracleSnapshot original = make_snapshot(spec);
        const OracleSnapshot loaded =
            from_bytes(to_bytes(original, SnapshotFormat::v2_compressed));
        expect_equal(original, loaded);
    }
}

TEST(SnapshotV2, RoundTripsWithoutRouting)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::grid, 25, 2});
    const ApspResult result = logn_approx_apsp(g, {});
    const OracleSnapshot original = OracleSnapshot::from_result(g, result, 1);
    const OracleSnapshot loaded = from_bytes(to_bytes(original, SnapshotFormat::v2_compressed));
    expect_equal(original, loaded);
}

TEST(SnapshotV2, CompressedIsStrictlySmallerThanRaw)
{
    const OracleSnapshot snapshot =
        make_snapshot(InstanceSpec{GraphFamily::erdos_renyi_sparse, 64, 11});
    const std::size_t raw = to_bytes(snapshot, SnapshotFormat::v1_raw).size();
    const std::size_t compressed = to_bytes(snapshot, SnapshotFormat::v2_compressed).size();
    EXPECT_LT(compressed, raw);
    // Delta+varint should beat fixed 8-byte cells by a wide margin on
    // 1..100-weight instances; 2x is a deliberately loose floor.
    EXPECT_LT(compressed * 2, raw);
}

TEST(SnapshotV2, VersionFieldDistinguishesTheCodecs)
{
    // Back-compat contract: the default writer still produces version 1,
    // the compressed writer stamps version 2, and both load.
    const OracleSnapshot snapshot = make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1});
    const std::string v1 = to_bytes(snapshot, SnapshotFormat::v1_raw);
    const std::string v2 = to_bytes(snapshot, SnapshotFormat::v2_compressed);
    EXPECT_EQ(v1[8], 1);
    EXPECT_EQ(v2[8], 2);
    expect_equal(from_bytes(v1), from_bytes(v2));
}

TEST(SnapshotV2, RejectsTruncationAndBitFlipsLikeV1)
{
    const std::string bytes =
        to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}),
                 SnapshotFormat::v2_compressed);
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, std::size_t{19}, bytes.size() / 2, bytes.size() - 3})
        EXPECT_THROW((void)from_bytes(bytes.substr(0, keep)), snapshot_io_error)
            << "kept " << keep;
    const std::size_t header_size = 8 + 4 + 8;
    for (const std::size_t offset :
         {header_size, header_size + 9, (header_size + bytes.size() - 8) / 2,
          bytes.size() - 9}) {
        std::string corrupted = bytes;
        corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error)
            << "flip at offset " << offset;
    }
}

TEST(SnapshotV2, V1PayloadRelabeledAsV2IsRejected)
{
    // The version field is outside the checksummed payload, so flipping
    // it alone passes the checksum; the structural row-table validation
    // must catch the mismatch (and not crash or misread).
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}),
                                 SnapshotFormat::v1_raw);
    bytes[8] = 2;
    EXPECT_THROW((void)from_bytes(bytes), snapshot_io_error);
    std::string reversed = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}),
                                    SnapshotFormat::v2_compressed);
    reversed[8] = 1;
    EXPECT_THROW((void)from_bytes(reversed), snapshot_io_error);
}

TEST(SnapshotV2, ForgedNodeCountIsRejectedBeforeAllocation)
{
    // Same contract as v1: a crafted huge node_count with a recomputed
    // checksum dies on the payload-size bound, not on an n^2 allocation.
    std::string bytes = to_bytes(make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1}),
                                 SnapshotFormat::v2_compressed);
    const std::size_t header_size = 8 + 4 + 8;
    bytes[header_size + 0] = 0;
    bytes[header_size + 1] = 0;
    bytes[header_size + 2] = 0;
    bytes[header_size + 3] = 0x40; // node_count = 2^30
    rehash(bytes);
    try {
        (void)from_bytes(bytes);
        FAIL() << "expected snapshot_io_error";
    } catch (const snapshot_io_error& error) {
        EXPECT_NE(std::string(error.what()).find("exceeds payload size"), std::string::npos)
            << error.what();
    }
}

TEST(SnapshotV2, CorruptedRowOffsetsAreRejectedEvenWithAValidChecksum)
{
    // Break the estimate row-offset table structurally (non-monotone /
    // out-of-bounds) and rehash, so only the v2 validation can object.
    const OracleSnapshot snapshot = make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1});
    const std::string good = to_bytes(snapshot, SnapshotFormat::v2_compressed);
    // The offset table starts right after the meta block; find it by
    // encoding meta alone is fragile, so flip high bytes of several u64s
    // in the table region instead (first ~13*8 bytes after meta end are
    // offsets for n=12).  Locate meta end via the v1 encoding prefix:
    // meta is identical across codecs and is followed in v1 by cells.
    const std::size_t header_size = 8 + 4 + 8;
    const std::size_t meta_bytes = 4 + 8 + 4 + 8 + (4 + snapshot.meta.algorithm.size()) + 8 +
                                   8 + 8 + 8; // fields of encode_meta, in order
    for (int entry = 1; entry <= 3; ++entry) {
        std::string corrupted = good;
        const std::size_t offset_pos =
            header_size + meta_bytes + static_cast<std::size_t>(entry) * 8 + 6; // high byte
        corrupted[offset_pos] = static_cast<char>(0x7f);
        rehash(corrupted);
        EXPECT_THROW((void)from_bytes(corrupted), snapshot_io_error) << "entry " << entry;
    }
}

// --- mmap-backed loading ----------------------------------------------------

class SnapshotMmap : public ::testing::Test {
protected:
    [[nodiscard]] static std::string write_file(const OracleSnapshot& snapshot,
                                                SnapshotFormat codec, const std::string& name)
    {
        const std::string path = ::testing::TempDir() + name;
        save_snapshot(path, snapshot, codec);
        return path;
    }
};

TEST_F(SnapshotMmap, ServesBothCodecsBitwiseIdenticalToEagerLoading)
{
    const OracleSnapshot original =
        make_snapshot(InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 13});
    for (const SnapshotFormat codec : {SnapshotFormat::v1_raw, SnapshotFormat::v2_compressed}) {
        const std::string path = write_file(
            original, codec, "ccq_mmap_" + std::to_string(static_cast<int>(codec)) + ".snap");
        const MappedSnapshot mapped(path);
        EXPECT_EQ(mapped.format_version(), static_cast<std::uint32_t>(codec));
        EXPECT_EQ(mapped.meta(), original.meta);
        ASSERT_EQ(mapped.has_routing(), original.has_routing);
        for (NodeId u = 0; u < 40; ++u)
            for (NodeId v = 0; v < 40; ++v) {
                ASSERT_EQ(mapped.distance(u, v), original.estimate.at(u, v))
                    << u << "->" << v;
                ASSERT_EQ(mapped.next_hop(u, v), original.routing.next_hop(u, v))
                    << u << "->" << v;
            }
        for (NodeId u = 0; u < 40; u += 7)
            for (NodeId v = 0; v < 40; v += 5)
                EXPECT_EQ(mapped.route(u, v), original.routing.route(u, v));
        expect_equal(original, mapped.materialize());
        std::remove(path.c_str());
    }
}

TEST_F(SnapshotMmap, ConcurrentLazyRowDecodingIsConsistent)
{
    const OracleSnapshot original =
        make_snapshot(InstanceSpec{GraphFamily::clustered, 48, 5});
    const std::string path =
        write_file(original, SnapshotFormat::v2_compressed, "ccq_mmap_concurrent.snap");
    const MappedSnapshot mapped(path);
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int w = 0; w < 4; ++w)
        workers.emplace_back([&, w] {
            // Overlapping row sets force concurrent first-touch decodes.
            for (NodeId u = 0; u < 48; ++u)
                for (NodeId v = static_cast<NodeId>(w); v < 48; v += 2)
                    if (mapped.distance(u, v) != original.estimate.at(u, v))
                        failures.fetch_add(1);
        });
    for (std::thread& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);
    std::remove(path.c_str());
}

TEST_F(SnapshotMmap, RejectsCorruptionTruncationAndBadMagicAtOpen)
{
    const OracleSnapshot original = make_snapshot(InstanceSpec{GraphFamily::tree, 12, 1});
    const std::string good = to_bytes(original, SnapshotFormat::v2_compressed);
    const std::string path = ::testing::TempDir() + "ccq_mmap_corrupt.snap";

    const auto write_raw = [&](const std::string& bytes) {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };

    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x20;
    write_raw(flipped);
    EXPECT_THROW((void)MappedSnapshot(path), snapshot_io_error);

    write_raw(good.substr(0, good.size() - 10));
    EXPECT_THROW((void)MappedSnapshot(path), snapshot_io_error);

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    write_raw(bad_magic);
    EXPECT_THROW((void)MappedSnapshot(path), snapshot_io_error);

    std::string bad_version = good;
    bad_version[8] = 99;
    write_raw(bad_version);
    EXPECT_THROW((void)MappedSnapshot(path), snapshot_io_error);

    // Trailing garbage after the checksum: the file size no longer
    // matches the declared payload length.
    write_raw(good + "extra");
    EXPECT_THROW((void)MappedSnapshot(path), snapshot_io_error);

    EXPECT_THROW((void)MappedSnapshot("/nonexistent/ccq.snap"), snapshot_io_error);
    std::remove(path.c_str());
}

TEST_F(SnapshotMmap, OutOfRangeCellsAreRejectedInBothCodecs)
{
    OracleSnapshot forged = make_snapshot(InstanceSpec{GraphFamily::tree, 10, 4});
    forged.estimate.at(2, 7) = kInfinity + 99;

    // v1 cells are served straight from the mapping, so the invariant
    // scan runs at open and the constructor itself must reject.
    const std::string v1 = write_file(forged, SnapshotFormat::v1_raw, "ccq_mmap_badcell_v1.snap");
    EXPECT_THROW((void)MappedSnapshot(v1), snapshot_io_error);

    // v2 rows decode lazily: the open validates structure, the poisoned
    // row is rejected on first touch, and clean rows still answer.
    const std::string v2 =
        write_file(forged, SnapshotFormat::v2_compressed, "ccq_mmap_badcell_v2.snap");
    const MappedSnapshot mapped(v2);
    EXPECT_EQ(mapped.distance(0, 7), forged.estimate.at(0, 7));
    EXPECT_THROW((void)mapped.distance(2, 7), snapshot_io_error);
    EXPECT_THROW((void)mapped.materialize(), snapshot_io_error);
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST_F(SnapshotMmap, QueryEngineOverMmapMatchesInMemoryEngine)
{
    const OracleSnapshot original =
        make_snapshot(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 7});
    const std::string path =
        write_file(original, SnapshotFormat::v2_compressed, "ccq_mmap_engine.snap");
    const QueryEngine reference(original);
    const QueryEngine served(std::make_shared<const MappedSnapshot>(path));
    EXPECT_TRUE(served.is_mapped());
    EXPECT_EQ(served.meta(), reference.meta());
    for (NodeId u = 0; u < 32; ++u) {
        for (NodeId v = 0; v < 32; v += 3) {
            ASSERT_EQ(served.distance(u, v), reference.distance(u, v));
            ASSERT_EQ(served.path(u, v), reference.path(u, v));
        }
        ASSERT_EQ(served.nearest_targets(u, 5), reference.nearest_targets(u, 5));
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace ccq
