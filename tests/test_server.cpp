// Tests for the networked serving subsystem: Server + Client over real
// loopback TCP sockets and over socketpair streams (the stdio mode).
//
// The load-bearing test is round-trip equivalence: every answer served
// over the socket protocol — against the compressed codec-v2 snapshot,
// mmap-loaded — must be bitwise identical to the in-process QueryEngine
// answer against the raw v1 snapshot.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <csignal>
#include <cstdio>
#include <thread>

#include "ccq/core/oracle.hpp"
#include "ccq/net/client.hpp"
#include "ccq/net/server.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

// A dead peer mid-write must surface as net_error, not SIGPIPE.
struct IgnoreSigpipe {
    IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} const g_ignore_sigpipe;

struct BuiltOracle {
    Graph graph;
    OracleSnapshot snapshot;
};

BuiltOracle build(const InstanceSpec& spec)
{
    BuiltOracle built;
    built.graph = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    const ApspResult result =
        DistanceOracle(built.graph, ApspAlgorithmKind::logn_baseline, options).result();
    const RoutingTables routing = build_routing_tables(built.graph);
    built.snapshot = OracleSnapshot::from_result(built.graph, result, options.seed, &routing);
    return built;
}

/// A listening server plus the thread running its accept loop.
class RunningServer {
public:
    explicit RunningServer(std::shared_ptr<const QueryEngine> engine,
                           ServerConfig config = {})
        : server_(std::move(engine), std::move(config))
    {
        port_ = server_.listen();
        thread_ = std::thread([this] { server_.run(); });
    }

    ~RunningServer()
    {
        server_.request_stop();
        if (thread_.joinable()) thread_.join();
    }

    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] Server& server() { return server_; }
    [[nodiscard]] Client connect() { return Client::connect("127.0.0.1", port_); }

private:
    Server server_;
    int port_ = 0;
    std::thread thread_;
};

TEST(Server, AnswersBitwiseIdenticalToTheEngine)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 13});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine);
    Client client = running.connect();

    EXPECT_EQ(client.ping(), kProtocolVersion);
    for (NodeId u = 0; u < 40; u += 3) {
        for (NodeId v = 0; v < 40; v += 5) {
            ASSERT_EQ(client.distance(u, v), engine->distance(u, v)) << u << "->" << v;
            ASSERT_EQ(client.path(u, v), engine->path(u, v)) << u << "->" << v;
        }
        ASSERT_EQ(client.nearest_targets(u, 7), engine->nearest_targets(u, 7)) << u;
    }

    std::vector<PointQuery> batch;
    for (NodeId u = 0; u < 40; ++u) batch.push_back({u, static_cast<NodeId>(39 - u)});
    EXPECT_EQ(client.batch_distances(batch), engine->batch_distances(batch));
    EXPECT_EQ(client.batch_paths(batch), engine->batch_paths(batch));
}

TEST(Server, RoundTripEquivalenceAcrossCodecV2AndMmap)
{
    // The acceptance criterion of the serving subsystem: socket protocol
    // + compressed snapshot + mmap loading vs in-process v1 answers.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 48, 3});

    const std::string v1_path = ::testing::TempDir() + "ccq_server_equiv_v1.snap";
    const std::string v2_path = ::testing::TempDir() + "ccq_server_equiv_v2.snap";
    save_snapshot(v1_path, built.snapshot, SnapshotCodec::raw);
    save_snapshot(v2_path, built.snapshot, SnapshotCodec::compressed);

    const QueryEngine reference(load_snapshot(v1_path));
    const auto mapped = std::make_shared<const MappedSnapshot>(v2_path);
    EXPECT_EQ(mapped->format_version(), kSnapshotVersionCompressed);
    RunningServer running(std::make_shared<const QueryEngine>(mapped));
    Client client = running.connect();

    for (NodeId u = 0; u < 48; ++u)
        for (NodeId v = 0; v < 48; v += 3) {
            ASSERT_EQ(client.distance(u, v), reference.distance(u, v)) << u << "->" << v;
            ASSERT_EQ(client.path(u, v), reference.path(u, v)) << u << "->" << v;
        }
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
}

TEST(Server, ConcurrentClientsGetConsistentAnswers)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine);

    constexpr int kClients = 4;
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kClients; ++w)
        workers.emplace_back([&, w] {
            Client client = running.connect();
            Rng rng(static_cast<std::uint64_t>(w) + 1);
            for (int i = 0; i < 200; ++i) {
                const NodeId u = static_cast<NodeId>(rng.uniform_int(0, 31));
                const NodeId v = static_cast<NodeId>(rng.uniform_int(0, 31));
                if (client.distance(u, v) != engine->distance(u, v) ||
                    client.path(u, v) != engine->path(u, v))
                    failures.fetch_add(1);
            }
        });
    for (std::thread& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);

    const ServerStats stats = running.server().stats();
    EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
    EXPECT_GE(stats.frames_served, static_cast<std::uint64_t>(kClients) * 400);
    EXPECT_EQ(stats.errors, 0u);
}

TEST(Server, RejectsBadRequestsWithTypedStatuses)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine);
    Client client = running.connect();

    try {
        (void)client.distance(200, 0);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::out_of_range);
    }
    try {
        (void)client.nearest_targets(0, -1);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::out_of_range);
    }
    // The connection survives a rejected request.
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
    EXPECT_GE(running.server().stats().errors, 2u);
}

TEST(Server, PathAgainstRoutinglessSnapshotIsUnsupported)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 12, 2});
    const ApspResult result = DistanceOracle(g, ApspAlgorithmKind::logn_baseline).result();
    const auto engine = std::make_shared<const QueryEngine>(
        OracleSnapshot::from_result(g, result, 1)); // no routing tables
    RunningServer running(engine);
    Client client = running.connect();
    try {
        (void)client.path(0, 5);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::unsupported);
    }
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
}

TEST(Server, MalformedFrameGetsAnErrorAndTheConnectionSurvives)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    RunningServer running(std::make_shared<const QueryEngine>(built.snapshot));

    std::unique_ptr<TcpStream> raw = TcpStream::connect("127.0.0.1", running.port());
    write_frame(*raw, "\xee\xee\xee"); // unknown opcode + garbage
    const std::optional<std::string> error_reply = read_frame(*raw);
    ASSERT_TRUE(error_reply.has_value());
    EXPECT_EQ(split_reply(*error_reply).first, Status::malformed);

    // Framing is intact, so a well-formed request still succeeds.
    Request request;
    request.op = Opcode::ping;
    write_frame(*raw, encode_request(request));
    const std::optional<std::string> ok_reply = read_frame(*raw);
    ASSERT_TRUE(ok_reply.has_value());
    EXPECT_EQ(split_reply(*ok_reply).first, Status::ok);
}

TEST(Server, JsonDebugModeAnswersJson)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine);
    Client client = running.connect();

    const Weight expected = engine->distance(0, 5);
    const std::string reply = client.json_request(R"({"op":"distance","from":0,"to":5})");
    EXPECT_EQ(reply, "{\"op\":\"distance\",\"from\":0,\"to\":5,\"reachable\":true,"
                     "\"distance\":" + std::to_string(expected) + "}");

    const std::string error = client.json_request(R"({"op":"distance","from":99,"to":0})");
    EXPECT_EQ(error.rfind("{\"error\"", 0), 0u) << error;

    // A JSON body that fails to even parse (overflowing number) must
    // still be answered in JSON, on a surviving connection.
    const std::string overflow =
        client.json_request(R"({"op":"distance","from":99999999999999999999999,"to":1})");
    EXPECT_EQ(overflow.rfind("{\"error\"", 0), 0u) << overflow;
    EXPECT_NE(overflow.find("malformed"), std::string::npos) << overflow;

    const std::string stats = client.json_request(R"({"op":"stats"})");
    EXPECT_NE(stats.find("\"node_count\":12"), std::string::npos) << stats;
}

TEST(Server, ShutdownFrameStopsTheAcceptLoopGracefully)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot));
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    {
        Client client = Client::connect("127.0.0.1", port);
        EXPECT_EQ(client.distance(0, 5) >= 0, true);
        client.shutdown_server(); // acknowledged before the server stops
    }
    accept_thread.join(); // run() must return on its own
    EXPECT_TRUE(server.stopping());
    EXPECT_THROW((void)Client::connect("127.0.0.1", port), net_error);
}

TEST(Server, ShutdownTokenRejectsUnauthenticatedFrames)
{
    // The ROADMAP-flagged hole: anyone who could connect could stop the
    // server.  With a configured token, a tokenless or wrong-token
    // shutdown must answer `forbidden` and leave the server serving.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    ServerConfig config;
    config.shutdown_token = "s3cret";
    RunningServer running(engine, config);
    Client client = running.connect();

    try {
        client.shutdown_server(); // legacy tokenless frame
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::forbidden);
    }
    try {
        client.shutdown_server("wrong");
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::forbidden);
    }

    // The server is still up and the same connection still answers.
    EXPECT_FALSE(running.server().stopping());
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
    // A fresh connection also still lands (the listener is alive).
    Client fresh = running.connect();
    EXPECT_EQ(fresh.ping(), kProtocolVersion);
    EXPECT_GE(running.server().stats().errors, 2u);

    // The JSON debug mode goes through the same gate.
    const std::string denied = fresh.json_request(R"({"op":"shutdown"})");
    EXPECT_EQ(denied.rfind("{\"error\"", 0), 0u) << denied;
    EXPECT_NE(denied.find("forbidden"), std::string::npos) << denied;
    EXPECT_FALSE(running.server().stopping());
}

TEST(Server, ShutdownTokenAcceptsTheRightToken)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config;
    config.shutdown_token = "s3cret";
    Server server(std::make_shared<const QueryEngine>(built.snapshot), config);
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    Client client = Client::connect("127.0.0.1", port);
    client.shutdown_server("s3cret"); // acknowledged before the server stops
    accept_thread.join();             // run() must return on its own
    EXPECT_TRUE(server.stopping());
}

TEST(Server, JsonShutdownWithTokenStopsTheServer)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config;
    config.shutdown_token = "tok";
    Server server(std::make_shared<const QueryEngine>(built.snapshot), config);
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    Client client = Client::connect("127.0.0.1", port);
    const std::string reply = client.json_request(R"({"op":"shutdown","token":"tok"})");
    EXPECT_EQ(reply, "{\"op\":\"shutdown\",\"ok\":true}");
    accept_thread.join();
    EXPECT_TRUE(server.stopping());
}

TEST(Server, TokenlessServerKeepsOpenShutdown)
{
    // Back-compat: no configured token means any shutdown frame —
    // including one that carries a token — still stops the server.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot));
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });
    Client client = Client::connect("127.0.0.1", port);
    client.shutdown_server("ignored");
    accept_thread.join();
    EXPECT_TRUE(server.stopping());
}

TEST(Server, RequestStopUnblocksIdleConnections)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot));
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    // An idle client parks a handler in a blocking read; request_stop
    // must still drain everything without hanging.
    Client idle = Client::connect("127.0.0.1", port);
    EXPECT_EQ(idle.ping(), kProtocolVersion);
    server.request_stop();
    accept_thread.join();
}

TEST(Server, ServeStreamSpeaksTheProtocolOverASocketpair)
{
    // The stdio mode without process games: one socketpair, the server
    // serving one end inline, a Client on the other.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 24, 7});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    Server server(engine);

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread serving([&server, fd = fds[0]] {
        FdStream stream(fd, fd, /*owns=*/true);
        server.serve_stream(stream);
    });
    {
        Client client(std::make_unique<FdStream>(fds[1], fds[1], /*owns=*/true));
        for (NodeId u = 0; u < 24; u += 4)
            for (NodeId v = 0; v < 24; v += 4) {
                ASSERT_EQ(client.distance(u, v), engine->distance(u, v));
                ASSERT_EQ(client.path(u, v), engine->path(u, v));
            }
    } // Client destruction closes the socket: EOF ends serve_stream.
    serving.join();
    EXPECT_EQ(server.stats().connections_accepted, 1u);
}

} // namespace
} // namespace ccq
