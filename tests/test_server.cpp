// Tests for the networked serving subsystem: Server + Client over real
// loopback TCP sockets and over socketpair streams (the stdio mode).
//
// The load-bearing tests are equivalence tests: every answer served
// over the socket protocol — against the compressed codec-v2 snapshot,
// mmap-loaded — must be bitwise identical to the in-process QueryEngine
// answer against the raw v1 snapshot, and the two connection backends
// (blocking thread-per-connection vs the epoll event loop) must produce
// bitwise-identical reply bytes for identical request bytes.  Every
// Server test therefore runs under both backends via TEST_P.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "ccq/core/oracle.hpp"
#include "ccq/net/client.hpp"
#include "ccq/net/server.hpp"
#include "ccq/obs/trace.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

// A dead peer mid-write must surface as net_error, not SIGPIPE.
struct IgnoreSigpipe {
    IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} const g_ignore_sigpipe;

struct BuiltOracle {
    Graph graph;
    OracleSnapshot snapshot;
};

BuiltOracle build(const InstanceSpec& spec)
{
    BuiltOracle built;
    built.graph = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    const ApspResult result =
        DistanceOracle(built.graph, ApspAlgorithmKind::logn_baseline, options).result();
    const RoutingTables routing = build_routing_tables(built.graph);
    built.snapshot = OracleSnapshot::from_result(built.graph, result, options.seed, &routing);
    return built;
}

/// A listening server plus the thread running its accept loop.
class RunningServer {
public:
    explicit RunningServer(std::shared_ptr<const QueryEngine> engine,
                           ServerConfig config = {})
        : server_(std::move(engine), std::move(config))
    {
        port_ = server_.listen();
        thread_ = std::thread([this] { server_.run(); });
    }

    ~RunningServer()
    {
        server_.request_stop();
        if (thread_.joinable()) thread_.join();
    }

    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] Server& server() { return server_; }
    [[nodiscard]] Client connect() { return Client::connect("127.0.0.1", port_); }

private:
    Server server_;
    int port_ = 0;
    std::thread thread_;
};

/// Every Server test runs once per connection backend; the two must be
/// behaviorally indistinguishable through the whole suite.
class ServerBackends : public ::testing::TestWithParam<IoBackend> {
protected:
    [[nodiscard]] static ServerConfig backend_config()
    {
        ServerConfig config;
        config.io = GetParam();
        return config;
    }
};

#ifdef __linux__
INSTANTIATE_TEST_SUITE_P(Io, ServerBackends,
                         ::testing::Values(IoBackend::threads, IoBackend::epoll),
                         [](const ::testing::TestParamInfo<IoBackend>& info) {
                             return io_backend_name(info.param);
                         });
#else
INSTANTIATE_TEST_SUITE_P(Io, ServerBackends, ::testing::Values(IoBackend::threads),
                         [](const ::testing::TestParamInfo<IoBackend>& info) {
                             return io_backend_name(info.param);
                         });
#endif

TEST_P(ServerBackends, AnswersBitwiseIdenticalToTheEngine)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 13});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    EXPECT_EQ(client.ping(), kProtocolVersion);
    for (NodeId u = 0; u < 40; u += 3) {
        for (NodeId v = 0; v < 40; v += 5) {
            ASSERT_EQ(client.distance(u, v), engine->distance(u, v)) << u << "->" << v;
            ASSERT_EQ(client.path(u, v), engine->path(u, v)) << u << "->" << v;
        }
        ASSERT_EQ(client.nearest_targets(u, 7), engine->nearest_targets(u, 7)) << u;
    }

    std::vector<PointQuery> batch;
    for (NodeId u = 0; u < 40; ++u) batch.push_back({u, static_cast<NodeId>(39 - u)});
    EXPECT_EQ(client.batch_distances(batch), engine->batch_distances(batch));
    EXPECT_EQ(client.batch_paths(batch), engine->batch_paths(batch));
}

/// Sends `bodies` one frame at a time and returns the raw reply bodies.
[[nodiscard]] std::vector<std::string> raw_replies(int port,
                                                   const std::vector<std::string>& bodies)
{
    const std::unique_ptr<TcpStream> stream = TcpStream::connect("127.0.0.1", port);
    std::vector<std::string> replies;
    replies.reserve(bodies.size());
    for (const std::string& body : bodies) {
        write_frame(*stream, body);
        std::optional<std::string> reply = read_frame(*stream);
        if (!reply.has_value()) throw net_error("server closed early");
        replies.push_back(std::move(*reply));
    }
    return replies;
}

TEST(Server, BackendsProduceBitwiseIdenticalReplies)
{
#ifndef __linux__
    GTEST_SKIP() << "epoll backend is Linux-only";
#else
    // The tentpole acceptance criterion, stated directly: identical
    // request bytes in, identical reply bytes out, whichever backend.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 32, 9});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);

    std::vector<std::string> bodies;
    const auto add = [&](Request request) { bodies.push_back(encode_request(request)); };
    Request ping;
    ping.op = Opcode::ping;
    add(ping);
    for (NodeId u = 0; u < 32; u += 5)
        for (NodeId v = 0; v < 32; v += 7) {
            Request distance;
            distance.op = Opcode::distance;
            distance.from = u;
            distance.to = v;
            add(distance);
            Request path;
            path.op = Opcode::path;
            path.from = u;
            path.to = v;
            add(path);
        }
    Request nearest;
    nearest.op = Opcode::k_nearest;
    nearest.from = 3;
    nearest.k = 6;
    add(nearest);
    Request batch;
    batch.op = Opcode::batch_distances;
    for (NodeId u = 0; u < 32; ++u) batch.pairs.push_back({u, static_cast<NodeId>(31 - u)});
    add(batch);
    Request bad;
    bad.op = Opcode::distance;
    bad.from = 4000; // typed out_of_range error
    add(bad);
    bodies.emplace_back("\xee\xee\xee"); // malformed, answered not dropped
    bodies.emplace_back(R"({"op":"distance","from":1,"to":30})"); // JSON debug mode
    bodies.emplace_back(R"({"op":"nonsense"})");                  // JSON error

    std::vector<std::string> from_threads;
    std::vector<std::string> from_epoll;
    {
        ServerConfig config;
        config.io = IoBackend::threads;
        RunningServer running(engine, config);
        from_threads = raw_replies(running.port(), bodies);
    }
    {
        ServerConfig config;
        config.io = IoBackend::epoll;
        RunningServer running(engine, config);
        from_epoll = raw_replies(running.port(), bodies);
    }
    ASSERT_EQ(from_threads.size(), from_epoll.size());
    for (std::size_t i = 0; i < from_threads.size(); ++i)
        ASSERT_EQ(from_threads[i], from_epoll[i]) << "request " << i;
#endif
}

TEST_P(ServerBackends, RoundTripEquivalenceAcrossCodecV2AndMmap)
{
    // The acceptance criterion of the serving subsystem: socket protocol
    // + compressed snapshot + mmap loading vs in-process v1 answers.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 48, 3});

    const std::string v1_path = ::testing::TempDir() + "ccq_server_equiv_v1.snap";
    const std::string v2_path = ::testing::TempDir() + "ccq_server_equiv_v2.snap";
    save_snapshot(v1_path, built.snapshot, SnapshotFormat::v1_raw);
    save_snapshot(v2_path, built.snapshot, SnapshotFormat::v2_compressed);

    const QueryEngine reference(load_snapshot(v1_path));
    const auto mapped = std::make_shared<const MappedSnapshot>(v2_path);
    EXPECT_EQ(mapped->format_version(), format_version(SnapshotFormat::v2_compressed));
    RunningServer running(std::make_shared<const QueryEngine>(mapped), backend_config());
    Client client = running.connect();

    for (NodeId u = 0; u < 48; ++u)
        for (NodeId v = 0; v < 48; v += 3) {
            ASSERT_EQ(client.distance(u, v), reference.distance(u, v)) << u << "->" << v;
            ASSERT_EQ(client.path(u, v), reference.path(u, v)) << u << "->" << v;
        }
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
}

TEST_P(ServerBackends, ConcurrentClientsGetConsistentAnswers)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());

    constexpr int kClients = 4;
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kClients; ++w)
        workers.emplace_back([&, w] {
            Client client = running.connect();
            Rng rng(static_cast<std::uint64_t>(w) + 1);
            for (int i = 0; i < 200; ++i) {
                const NodeId u = static_cast<NodeId>(rng.uniform_int(0, 31));
                const NodeId v = static_cast<NodeId>(rng.uniform_int(0, 31));
                if (client.distance(u, v) != engine->distance(u, v) ||
                    client.path(u, v) != engine->path(u, v))
                    failures.fetch_add(1);
            }
        });
    for (std::thread& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);

    const ServerStats stats = running.server().stats();
    EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
    EXPECT_GE(stats.frames_served, static_cast<std::uint64_t>(kClients) * 400);
    EXPECT_EQ(stats.errors, 0u);
}

TEST_P(ServerBackends, PipelinedBatchesMatchSequentialAnswers)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 36, 21});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    std::vector<PointQuery> queries;
    Rng rng(7);
    for (int i = 0; i < 500; ++i)
        queries.push_back({static_cast<NodeId>(rng.uniform_int(0, 35)),
                           static_cast<NodeId>(rng.uniform_int(0, 35))});

    const std::vector<Weight> pipelined = client.pipelined_distances(queries, /*window=*/16);
    const std::vector<PathResult> paths = client.pipelined_paths(queries, /*window=*/16);
    ASSERT_EQ(pipelined.size(), queries.size());
    ASSERT_EQ(paths.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(pipelined[i], engine->distance(queries[i].from, queries[i].to)) << i;
        ASSERT_EQ(paths[i], engine->path(queries[i].from, queries[i].to)) << i;
    }
    // The connection is still in sync after two pipelined batches.
    EXPECT_EQ(client.ping(), kProtocolVersion);
}

TEST_P(ServerBackends, PipelinedErrorDrainsAndTheConnectionSurvives)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 16, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    std::vector<PointQuery> queries;
    for (NodeId u = 0; u < 16; ++u) queries.push_back({u, static_cast<NodeId>(15 - u)});
    queries[7] = {400, 0}; // one typed failure mid-window
    try {
        (void)client.pipelined_distances(queries, /*window=*/8);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::out_of_range);
    }
    // The in-flight tail was drained: the stream is at a frame boundary.
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
}

TEST_P(ServerBackends, ManyFramesWrittenBeforeAnyReadComeBackInOrder)
{
    // The raw pipelining shape: the whole burst hits the server before
    // the client reads a single reply.  Responses must come back
    // complete, in request order.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 30, 11});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());

    const std::unique_ptr<TcpStream> stream = TcpStream::connect("127.0.0.1", running.port());
    constexpr int kBurst = 300;
    std::string burst;
    for (int i = 0; i < kBurst; ++i) {
        Request request;
        request.op = Opcode::distance;
        request.from = static_cast<NodeId>(i % 30);
        request.to = static_cast<NodeId>((i * 7) % 30);
        burst += encode_frame(encode_request(request));
    }
    stream->write_all(burst.data(), burst.size());
    for (int i = 0; i < kBurst; ++i) {
        const std::optional<std::string> reply = read_frame(*stream);
        ASSERT_TRUE(reply.has_value()) << "reply " << i;
        const auto [status, payload] = split_reply(*reply);
        ASSERT_EQ(status, Status::ok) << "reply " << i;
        ASSERT_EQ(decode_distance_reply(payload),
                  engine->distance(static_cast<NodeId>(i % 30),
                                   static_cast<NodeId>((i * 7) % 30)))
            << "reply " << i;
    }
}

TEST_P(ServerBackends, SlowLorisByteAtATimeStillGetsAnswered)
{
    // Two requests dribbled one byte per write: frame reassembly must
    // work at any fragmentation, and the second frame must not be
    // swallowed by the first one's read.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());

    const std::unique_ptr<TcpStream> stream = TcpStream::connect("127.0.0.1", running.port());
    for (const auto& [from, to] : {std::pair<NodeId, NodeId>{0, 5}, {3, 9}}) {
        Request request;
        request.op = Opcode::distance;
        request.from = from;
        request.to = to;
        const std::string wire = encode_frame(encode_request(request));
        for (const char byte : wire) stream->write_all(&byte, 1);
        const std::optional<std::string> reply = read_frame(*stream);
        ASSERT_TRUE(reply.has_value());
        const auto [status, payload] = split_reply(*reply);
        ASSERT_EQ(status, Status::ok);
        EXPECT_EQ(decode_distance_reply(payload), engine->distance(from, to));
    }
}

#ifdef __linux__
TEST(Server, StalledReaderIsPausedNotBuffered)
{
    // Backpressure: a client that floods requests without reading its
    // replies must get its reads paused (bounded pipeline, bounded output
    // queue), while other connections stay responsive — and every reply
    // must still arrive, in order, once the reader catches up.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 20, 4});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    ServerConfig config;
    config.io = IoBackend::epoll;
    config.max_pipeline_depth = 4;
    config.max_output_bytes = 1024;
    RunningServer running(engine, config);

    const std::unique_ptr<TcpStream> stall = TcpStream::connect("127.0.0.1", running.port());
    constexpr int kFlood = 400;
    std::string burst;
    for (int i = 0; i < kFlood; ++i) {
        Request request;
        request.op = Opcode::distance;
        request.from = static_cast<NodeId>(i % 20);
        request.to = static_cast<NodeId>((i + 1) % 20);
        burst += encode_frame(encode_request(request));
    }
    stall->write_all(burst.data(), burst.size()); // ...and read nothing

    // The pipeline cap guarantees pauses while the flood drains.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (running.server().backpressure_pauses() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(running.server().backpressure_pauses(), 0u);

    // A well-behaved connection is not starved by the stalled one.
    Client polite = running.connect();
    EXPECT_EQ(polite.ping(), kProtocolVersion);
    EXPECT_EQ(polite.distance(0, 5), engine->distance(0, 5));

    // The stalled reader wakes up: every reply, in order.
    for (int i = 0; i < kFlood; ++i) {
        const std::optional<std::string> reply = read_frame(*stall);
        ASSERT_TRUE(reply.has_value()) << "reply " << i;
        const auto [status, payload] = split_reply(*reply);
        ASSERT_EQ(status, Status::ok) << "reply " << i;
        ASSERT_EQ(decode_distance_reply(payload),
                  engine->distance(static_cast<NodeId>(i % 20),
                                   static_cast<NodeId>((i + 1) % 20)))
            << "reply " << i;
    }
}

TEST(Server, EventLoopHoldsAThousandIdleConnections)
{
    // The reason the event loop exists: >=1024 concurrent connections on
    // one loop without a thread per connection.  (The blocking backend
    // would need 1100 handler threads for this.)
    constexpr std::size_t kConnections = 1100;
    if (!raise_fd_limit(2 * kConnections + 256))
        GTEST_SKIP() << "cannot raise RLIMIT_NOFILE high enough";

    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    ServerConfig config;
    config.io = IoBackend::epoll;
    config.workers = 2; // a fixed pool, however many connections land
    RunningServer running(engine, config);

    std::vector<std::unique_ptr<TcpStream>> idle;
    idle.reserve(kConnections);
    for (std::size_t i = 0; i < kConnections; ++i)
        idle.push_back(TcpStream::connect("127.0.0.1", running.port()));

    // All of them are accepted and live at once...
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (running.server().stats().connections_accepted < kConnections &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const ServerStats stats = running.server().stats();
    EXPECT_GE(stats.connections_accepted, kConnections);
    EXPECT_GE(stats.active_connections, kConnections);

    // ...and the server still answers queries among the idle herd.
    Client active = running.connect();
    EXPECT_EQ(active.ping(), kProtocolVersion);
    EXPECT_EQ(active.distance(0, 5), engine->distance(0, 5));

    // A random idle connection still works too (it was not just parked
    // in an accept backlog).
    write_frame(*idle[kConnections / 2], encode_request(Request{}));
    const std::optional<std::string> reply = read_frame(*idle[kConnections / 2]);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(split_reply(*reply).first, Status::ok);
}
#endif // __linux__

TEST_P(ServerBackends, MaxConnectionsShedsWithTypedBusyStatus)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    ServerConfig config = backend_config();
    config.max_connections = 2;
    RunningServer running(engine, config);

    Client first = running.connect();
    Client second = running.connect();
    EXPECT_EQ(first.ping(), kProtocolVersion); // both fully registered
    EXPECT_EQ(second.ping(), kProtocolVersion);

    // The third connection is accepted just long enough to be told why
    // it is being dropped: one typed `busy` error frame, then close.
    const std::unique_ptr<TcpStream> shed = TcpStream::connect("127.0.0.1", running.port());
    const std::optional<std::string> reply = read_frame(*shed);
    ASSERT_TRUE(reply.has_value());
    try {
        const auto [status, payload] = split_reply(*reply);
        ASSERT_EQ(status, Status::busy);
    } catch (const protocol_error&) {
        FAIL() << "shed connection got an undecodable reply";
    }
    EXPECT_EQ(read_frame(*shed), std::nullopt) << "server must close after shedding";

    // Shedding is load shedding, not lockout: room frees up, service
    // resumes, and the rejection is visible in the stats.
    { Client drop = std::move(first); }
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
        try {
            Client retry = running.connect();
            EXPECT_EQ(retry.ping(), kProtocolVersion);
            break;
        } catch (const std::exception&) {
            if (std::chrono::steady_clock::now() >= deadline) {
                ADD_FAILURE() << "service never resumed after a slot freed";
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    EXPECT_GE(running.server().stats().connections_rejected, 1u);
}

TEST_P(ServerBackends, ClientPoolReusesConnections)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());

    ClientPool pool("127.0.0.1", running.port());
    {
        ClientPool::Lease lease = pool.acquire();
        EXPECT_EQ(lease->ping(), kProtocolVersion);
        EXPECT_EQ(pool.idle_count(), 0u);
    }
    EXPECT_EQ(pool.idle_count(), 1u);
    {
        ClientPool::Lease lease = pool.acquire(); // reused, not re-dialed
        EXPECT_EQ(lease->distance(0, 5), engine->distance(0, 5));
    }
    EXPECT_EQ(running.server().stats().connections_accepted, 1u);

    // discard() drops a (possibly desynced) connection instead of
    // returning it; the next acquire dials fresh.
    {
        ClientPool::Lease lease = pool.acquire();
        lease.discard();
    }
    EXPECT_EQ(pool.idle_count(), 0u);
    {
        ClientPool::Lease lease = pool.acquire();
        EXPECT_EQ(lease->ping(), kProtocolVersion);
    }
    EXPECT_EQ(running.server().stats().connections_accepted, 2u);
}

TEST_P(ServerBackends, RejectsBadRequestsWithTypedStatuses)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    try {
        (void)client.distance(200, 0);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::out_of_range);
    }
    try {
        (void)client.nearest_targets(0, -1);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::out_of_range);
    }
    // The connection survives a rejected request.
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
    EXPECT_GE(running.server().stats().errors, 2u);
}

TEST_P(ServerBackends, PathAgainstRoutinglessSnapshotIsUnsupported)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 12, 2});
    const ApspResult result = DistanceOracle(g, ApspAlgorithmKind::logn_baseline).result();
    const auto engine = std::make_shared<const QueryEngine>(
        OracleSnapshot::from_result(g, result, 1)); // no routing tables
    RunningServer running(engine, backend_config());
    Client client = running.connect();
    try {
        (void)client.path(0, 5);
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::unsupported);
    }
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
}

TEST_P(ServerBackends, MalformedFrameGetsAnErrorAndTheConnectionSurvives)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    RunningServer running(std::make_shared<const QueryEngine>(built.snapshot),
                          backend_config());

    std::unique_ptr<TcpStream> raw = TcpStream::connect("127.0.0.1", running.port());
    write_frame(*raw, "\xee\xee\xee"); // unknown opcode + garbage
    const std::optional<std::string> error_reply = read_frame(*raw);
    ASSERT_TRUE(error_reply.has_value());
    EXPECT_EQ(split_reply(*error_reply).first, Status::malformed);

    // Framing is intact, so a well-formed request still succeeds.
    Request request;
    request.op = Opcode::ping;
    write_frame(*raw, encode_request(request));
    const std::optional<std::string> ok_reply = read_frame(*raw);
    ASSERT_TRUE(ok_reply.has_value());
    EXPECT_EQ(split_reply(*ok_reply).first, Status::ok);
}

TEST_P(ServerBackends, JsonDebugModeAnswersJson)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    const Weight expected = engine->distance(0, 5);
    const std::string reply = client.json_request(R"({"op":"distance","from":0,"to":5})");
    EXPECT_EQ(reply, "{\"op\":\"distance\",\"from\":0,\"to\":5,\"reachable\":true,"
                     "\"distance\":" + std::to_string(expected) + "}");

    const std::string error = client.json_request(R"({"op":"distance","from":99,"to":0})");
    EXPECT_EQ(error.rfind("{\"error\"", 0), 0u) << error;

    // A JSON body that fails to even parse (overflowing number) must
    // still be answered in JSON, on a surviving connection.
    const std::string overflow =
        client.json_request(R"({"op":"distance","from":99999999999999999999999,"to":1})");
    EXPECT_EQ(overflow.rfind("{\"error\"", 0), 0u) << overflow;
    EXPECT_NE(overflow.find("malformed"), std::string::npos) << overflow;

    const std::string stats = client.json_request(R"({"op":"stats"})");
    EXPECT_NE(stats.find("\"node_count\":12"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"backpressure_pauses\":0"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"build_total_rounds\":"), std::string::npos) << stats;

    const std::string scrape = client.json_request(R"({"op":"metrics"})");
    EXPECT_EQ(scrape.rfind("{\"op\":\"metrics\"", 0), 0u) << scrape;
    EXPECT_NE(scrape.find("text/plain"), std::string::npos) << scrape;
    EXPECT_NE(scrape.find("ccq_requests_total"), std::string::npos) << scrape;
}

/// The value of one exposition sample ("name{labels}" or bare "name"),
/// or nullopt when the sample line is absent.
[[nodiscard]] std::optional<double> sample_value(const std::string& text,
                                                 const std::string& sample)
{
    const std::string haystack = "\n" + text;
    const std::string needle = "\n" + sample + " ";
    const std::size_t pos = haystack.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    return std::stod(haystack.substr(pos + needle.size()));
}

TEST_P(ServerBackends, MetricsScrapeCountsScriptedWorkloadExactly)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 30, 4});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    // Scripted workload with known per-op counts.
    for (int i = 0; i < 3; ++i) (void)client.ping();
    for (NodeId v = 1; v <= 5; ++v) (void)client.distance(0, v);
    for (NodeId v = 1; v <= 2; ++v) (void)client.path(0, v);
    (void)client.nearest_targets(0, 4);
    (void)client.stats();
    EXPECT_THROW((void)client.distance(999, 0), rpc_error); // one distance error

    const std::string text = client.metrics();
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"ping\",status=\"ok\"}"), 3.0);
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"distance\",status=\"ok\"}"), 5.0);
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"distance\",status=\"error\"}"), 1.0);
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"path\",status=\"ok\"}"), 2.0);
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"k_nearest\",status=\"ok\"}"), 1.0);
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"stats\",status=\"ok\"}"), 1.0);
    // Latency histograms observe exactly the ok+error request count.
    EXPECT_EQ(sample_value(text, "ccq_request_latency_us_count{op=\"distance\"}"), 6.0);
    EXPECT_EQ(sample_value(text, "ccq_request_latency_us_count{op=\"ping\"}"), 3.0);
    // A scrape renders before its own accounting lands: the first
    // scrape reports zero metrics ops, the next reports that one.
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"metrics\",status=\"ok\"}"), 0.0);
    const std::string second = client.metrics();
    EXPECT_EQ(sample_value(second, "ccq_requests_total{op=\"metrics\",status=\"ok\"}"), 1.0);

    // Transport and engine metrics ride the same scrape.
    EXPECT_GT(sample_value(second, "ccq_bytes_read_total").value_or(0.0), 0.0);
    EXPECT_GT(sample_value(second, "ccq_bytes_written_total").value_or(0.0), 0.0);
    EXPECT_EQ(sample_value(second, "ccq_connections_accepted_total"), 1.0);
    EXPECT_EQ(sample_value(second, "ccq_connection_events_total{event=\"opened\"}"), 1.0);
    EXPECT_EQ(sample_value(second, "ccq_snapshot_nodes"), 30.0);
    ASSERT_TRUE(sample_value(second, "ccq_cache_events_total{event=\"miss\"}").has_value());
    EXPECT_EQ(sample_value(second, "ccq_snapshot_build_rounds"),
              built.snapshot.meta.total_rounds);
    // The engine's width-dispatch counters render on every scrape
    // (values are process-lifetime, so only presence is asserted here;
    // tests/test_kernel_width.cpp pins the increments).
    ASSERT_TRUE(
        sample_value(second, "ccq_engine_products_total{width=\"wide\"}").has_value());
    ASSERT_TRUE(
        sample_value(second, "ccq_engine_products_total{width=\"narrow\"}").has_value());
    ASSERT_TRUE(
        sample_value(second, "ccq_engine_sparse_skip_products_total").has_value());
}

TEST_P(ServerBackends, MetricsDisabledStillAnswersWithZeroRequestCounts)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config = backend_config();
    config.metrics = false;
    RunningServer running(std::make_shared<const QueryEngine>(built.snapshot), config);
    Client client = running.connect();

    for (int i = 0; i < 4; ++i) (void)client.ping();
    const std::string text = client.metrics();
    // Hot-path recording is off...
    EXPECT_EQ(sample_value(text, "ccq_requests_total{op=\"ping\",status=\"ok\"}"), 0.0);
    EXPECT_EQ(sample_value(text, "ccq_bytes_read_total"), 0.0);
    // ...but cheap per-connection lifecycle events still count, and the
    // ServerStats collector still renders.
    EXPECT_EQ(sample_value(text, "ccq_connection_events_total{event=\"opened\"}"), 1.0);
    EXPECT_EQ(sample_value(text, "ccq_frames_served_total"), 4.0);
}

TEST_P(ServerBackends, StatsCarryLedgerTotalsFromTheSnapshot)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 24, 9});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    const ServerStats stats = client.stats();
    EXPECT_EQ(stats.build_total_rounds, built.snapshot.meta.total_rounds);
    EXPECT_EQ(stats.build_total_words, built.snapshot.meta.total_words);
    EXPECT_GT(stats.build_total_rounds, 0.0);
    EXPECT_EQ(stats.backpressure_pauses, running.server().backpressure_pauses());
}

TEST_P(ServerBackends, ShutdownFrameStopsTheAcceptLoopGracefully)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot), backend_config());
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    {
        Client client = Client::connect("127.0.0.1", port);
        EXPECT_EQ(client.distance(0, 5) >= 0, true);
        client.shutdown_server(); // acknowledged before the server stops
    }
    accept_thread.join(); // run() must return on its own
    EXPECT_TRUE(server.stopping());
    EXPECT_THROW((void)Client::connect("127.0.0.1", port), net_error);
}

TEST_P(ServerBackends, ShutdownTokenRejectsUnauthenticatedFrames)
{
    // The ROADMAP-flagged hole: anyone who could connect could stop the
    // server.  With a configured token, a tokenless or wrong-token
    // shutdown must answer `forbidden` and leave the server serving.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    ServerConfig config = backend_config();
    config.shutdown_token = "s3cret";
    RunningServer running(engine, config);
    Client client = running.connect();

    try {
        client.shutdown_server(); // legacy tokenless frame
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::forbidden);
    }
    try {
        client.shutdown_server("wrong");
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::forbidden);
    }

    // The server is still up and the same connection still answers.
    EXPECT_FALSE(running.server().stopping());
    EXPECT_EQ(client.distance(0, 5), engine->distance(0, 5));
    // A fresh connection also still lands (the listener is alive).
    Client fresh = running.connect();
    EXPECT_EQ(fresh.ping(), kProtocolVersion);
    EXPECT_GE(running.server().stats().errors, 2u);

    // The JSON debug mode goes through the same gate.
    const std::string denied = fresh.json_request(R"({"op":"shutdown"})");
    EXPECT_EQ(denied.rfind("{\"error\"", 0), 0u) << denied;
    EXPECT_NE(denied.find("forbidden"), std::string::npos) << denied;
    EXPECT_FALSE(running.server().stopping());
}

TEST_P(ServerBackends, ShutdownTokenAcceptsTheRightToken)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config = backend_config();
    config.shutdown_token = "s3cret";
    Server server(std::make_shared<const QueryEngine>(built.snapshot), config);
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    Client client = Client::connect("127.0.0.1", port);
    client.shutdown_server("s3cret"); // acknowledged before the server stops
    accept_thread.join();             // run() must return on its own
    EXPECT_TRUE(server.stopping());
}

TEST_P(ServerBackends, JsonShutdownWithTokenStopsTheServer)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config = backend_config();
    config.shutdown_token = "tok";
    Server server(std::make_shared<const QueryEngine>(built.snapshot), config);
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    Client client = Client::connect("127.0.0.1", port);
    const std::string reply = client.json_request(R"({"op":"shutdown","token":"tok"})");
    EXPECT_EQ(reply, "{\"op\":\"shutdown\",\"ok\":true}");
    accept_thread.join();
    EXPECT_TRUE(server.stopping());
}

TEST_P(ServerBackends, TokenlessServerKeepsOpenShutdown)
{
    // Back-compat: no configured token means any shutdown frame —
    // including one that carries a token — still stops the server.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot), backend_config());
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });
    Client client = Client::connect("127.0.0.1", port);
    client.shutdown_server("ignored");
    accept_thread.join();
    EXPECT_TRUE(server.stopping());
}

TEST_P(ServerBackends, RequestStopUnblocksIdleConnections)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    Server server(std::make_shared<const QueryEngine>(built.snapshot), backend_config());
    const int port = server.listen();
    std::thread accept_thread([&server] { server.run(); });

    // An idle client parks a handler in a blocking read (threads) or an
    // armed epoll interest (epoll); request_stop must still drain
    // everything without hanging.
    Client idle = Client::connect("127.0.0.1", port);
    EXPECT_EQ(idle.ping(), kProtocolVersion);
    server.request_stop();
    accept_thread.join();
}

TEST(Server, ServeStreamSpeaksTheProtocolOverASocketpair)
{
    // The stdio mode without process games: one socketpair, the server
    // serving one end inline, a Client on the other.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 24, 7});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    Server server(engine);

    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread serving([&server, fd = fds[0]] {
        FdStream stream(fd, fd, /*owns=*/true);
        server.serve_stream(stream);
    });
    {
        Client client(std::make_unique<FdStream>(fds[1], fds[1], /*owns=*/true));
        for (NodeId u = 0; u < 24; u += 4)
            for (NodeId v = 0; v < 24; v += 4) {
                ASSERT_EQ(client.distance(u, v), engine->distance(u, v));
                ASSERT_EQ(client.path(u, v), engine->path(u, v));
            }
    } // Client destruction closes the socket: EOF ends serve_stream.
    serving.join();
    EXPECT_EQ(server.stats().connections_accepted, 1u);
}

TEST_P(ServerBackends, TaggedAndUntaggedRequestsGetIdenticalReplies)
{
    // The trace envelope must be invisible in the reply bytes: a tagged
    // request and its untagged twin answer identically.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 24, 7});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());

    std::vector<std::string> untagged;
    Request ping;
    ping.op = Opcode::ping;
    untagged.push_back(encode_request(ping));
    Request distance;
    distance.op = Opcode::distance;
    distance.from = 2;
    distance.to = 19;
    untagged.push_back(encode_request(distance));
    Request path;
    path.op = Opcode::path;
    path.from = 0;
    path.to = 23;
    untagged.push_back(encode_request(path));
    Request bad;
    bad.op = Opcode::distance;
    bad.from = 4000;
    untagged.push_back(encode_request(bad)); // errors answer identically too

    std::vector<std::string> tagged;
    std::uint64_t trace_id = 50;
    for (const std::string& body : untagged)
        tagged.push_back(wrap_trace_envelope(TraceContext{trace_id++, true}, body));

    const std::vector<std::string> plain = raw_replies(running.port(), untagged);
    const std::vector<std::string> traced = raw_replies(running.port(), tagged);
    ASSERT_EQ(plain.size(), traced.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(plain[i], traced[i]) << "request " << i;
}

TEST_P(ServerBackends, FlightRecorderReturnsTheScriptedWorkloadExactly)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();
    client.enable_trace_envelopes(100);

    (void)client.ping();                                     // trace 100
    (void)client.distance(0, 5);                             // trace 101
    (void)client.path(0, 5);                                 // trace 102
    EXPECT_THROW((void)client.distance(999, 0), rpc_error);  // trace 103

    // The flight dump itself commits only after it executes, so the
    // snapshot holds exactly the four prior requests, oldest first.
    const std::vector<obs::RequestRecord> records = client.flight_records();
    ASSERT_EQ(records.size(), 4u);

    const auto expect_record = [](const obs::RequestRecord& rec, Opcode op, Status status,
                                  std::uint64_t trace_id, std::uint32_t request_bytes) {
        EXPECT_EQ(rec.opcode, static_cast<std::uint8_t>(op));
        EXPECT_EQ(rec.status, static_cast<std::uint8_t>(status));
        EXPECT_EQ(rec.trace_id, trace_id);
        EXPECT_TRUE(rec.sampled);
        EXPECT_EQ(rec.request_bytes, request_bytes);
        EXPECT_GT(rec.reply_bytes, 4u);
        EXPECT_NE(rec.conn_id, 0u);
    };
    // request_bytes = frame prefix 4 + envelope 10 + opcode 1 (+ 2*i32
    // operands for the point queries).
    expect_record(records[0], Opcode::ping, Status::ok, 100, 15);
    expect_record(records[1], Opcode::distance, Status::ok, 101, 23);
    expect_record(records[2], Opcode::path, Status::ok, 102, 23);
    expect_record(records[3], Opcode::distance, Status::out_of_range, 103, 23);

    EXPECT_EQ(records[0].reply_bytes, 9u); // 4 + status + protocol u32
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_GT(records[i].seq, records[i - 1].seq);
        EXPECT_EQ(records[i].conn_id, records[0].conn_id);
    }
}

TEST_P(ServerBackends, FlightRingKeepsOnlyTheLastRecords)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config = backend_config();
    config.flight_records = 4;
    RunningServer running(std::make_shared<const QueryEngine>(built.snapshot), config);
    Client client = running.connect();

    for (int i = 0; i < 10; ++i) (void)client.ping();
    const std::vector<obs::RequestRecord> records = client.flight_records();
    ASSERT_EQ(records.size(), 4u);
    // Sequences 0..9 were recorded; the ring holds the newest four.
    EXPECT_EQ(records.front().seq, 6u);
    EXPECT_EQ(records.back().seq, 9u);
    for (const obs::RequestRecord& rec : records) {
        EXPECT_EQ(rec.opcode, static_cast<std::uint8_t>(Opcode::ping));
        EXPECT_EQ(rec.trace_id, 0u); // untagged requests record id 0
        EXPECT_FALSE(rec.sampled);
    }
}

TEST_P(ServerBackends, FlightRecorderAnswersWithMetricsDisabled)
{
    // --no-metrics turns off aggregate counters, not the flight ring:
    // the last-N dump is exactly the tool you want on a server that was
    // started lean.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    ServerConfig config = backend_config();
    config.metrics = false;
    RunningServer running(std::make_shared<const QueryEngine>(built.snapshot), config);
    Client client = running.connect();

    for (int i = 0; i < 3; ++i) (void)client.ping();
    const std::vector<obs::RequestRecord> records = client.flight_records();
    ASSERT_EQ(records.size(), 3u);
    for (const obs::RequestRecord& rec : records)
        EXPECT_EQ(rec.opcode, static_cast<std::uint8_t>(Opcode::ping));
}

TEST_P(ServerBackends, SampledRequestRendersAConnectedSpanChain)
{
    // The tentpole acceptance criterion: one sampled request shows up in
    // the chrome://tracing stream as the full decode → queue → execute
    // → encode → flush chain, tied together by its trace id.
    struct TracerGuard {
        ~TracerGuard()
        {
            obs::Tracer::global().disable();
            obs::Tracer::global().clear();
        }
    } guard;
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();

    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const auto engine = std::make_shared<const QueryEngine>(built.snapshot);
    RunningServer running(engine, backend_config());
    Client client = running.connect();

    client.enable_trace_envelopes(0xabc123);
    (void)client.distance(0, 5);
    // An untagged follow-up forces the sampled request's commit to
    // happen-before this reply (frames are processed in order), so the
    // render below cannot race it — and being unsampled, it must add no
    // spans of its own.
    client.disable_trace_envelopes();
    (void)client.ping();

    const std::string json = obs::Tracer::global().render_json();
    for (const char* name : {"req/queue", "req/decode", "req/execute", "req/encode", "req/flush"})
        EXPECT_NE(json.find(name), std::string::npos) << name << " missing in " << json;
    EXPECT_NE(json.find("0xabc123"), std::string::npos) << json;
    EXPECT_NE(json.find("\"op\":\"distance\""), std::string::npos) << json;
    EXPECT_EQ(json.find("\"op\":\"ping\""), std::string::npos) << "unsampled request traced";
}

/// A canned v1 server: replays scripted reply frames and swallows
/// whatever the client writes.
class ScriptedV1Server : public Stream {
public:
    void push_reply(const std::string& body) { wire_ += encode_frame(body); }

    std::size_t read_some(void* buffer, std::size_t count) override
    {
        const std::size_t take = std::min(count, wire_.size() - offset_);
        std::memcpy(buffer, wire_.data() + offset_, take);
        offset_ += take;
        return take;
    }
    void write_all(const void*, std::size_t) override {}
    void interrupt() noexcept override {}

private:
    std::string wire_;
    std::size_t offset_ = 0;
};

TEST(Server, VersionSkewAgainstASimulatedV1Peer)
{
    // A v2 client talking to a v1 server: stats decode from the shorter
    // v1 shape with the v2 trailer defaulted, and the ops the v1 server
    // does not know (metrics scrape, flight dump, tagged frames) come
    // back as typed `malformed` errors — detectable skew, never a torn
    // connection or a garbage decode.
    auto scripted = std::make_unique<ScriptedV1Server>();
    ServerStats v1_stats;
    v1_stats.frames_served = 5;
    v1_stats.node_count = 12;
    v1_stats.backpressure_pauses = 9;     // trailer fields a v1 server
    v1_stats.build_total_rounds = 3.25;   // never sends: forged below by
    v1_stats.build_total_words = 64;      // truncating the reply
    std::string stats_reply = encode_stats_reply(v1_stats);
    stats_reply.resize(stats_reply.size() - 24 - 17); // strip the v2+v3 trailers
    scripted->push_reply(stats_reply);
    scripted->push_reply(encode_error_reply(Status::malformed, "unknown opcode 0x11"));
    scripted->push_reply(encode_error_reply(Status::malformed, "unknown opcode 0x12"));
    scripted->push_reply(encode_error_reply(Status::malformed, "unknown opcode 0x1e"));

    Client client(std::move(scripted));
    const ServerStats decoded = client.stats();
    EXPECT_EQ(decoded.frames_served, 5u);
    EXPECT_EQ(decoded.node_count, 12);
    EXPECT_EQ(decoded.backpressure_pauses, 0u);
    EXPECT_EQ(decoded.build_total_rounds, 0.0);
    EXPECT_EQ(decoded.build_total_words, 0u);

    try {
        (void)client.metrics();
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::malformed);
    }
    try {
        (void)client.flight_records();
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::malformed);
    }
    client.enable_trace_envelopes(1);
    try {
        (void)client.ping(); // tagged frame: v1 sees marker 0x1e as an opcode
        FAIL() << "expected rpc_error";
    } catch (const rpc_error& error) {
        EXPECT_EQ(error.status(), Status::malformed);
    }
}

} // namespace
} // namespace ccq
