// Shared fixtures and assertion helpers for the ccq test suite.
#ifndef CCQ_TESTS_TEST_HELPERS_HPP
#define CCQ_TESTS_TEST_HELPERS_HPP

#include <gtest/gtest.h>

#include <string>

#include "ccq/core/stretch.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/graph/generators.hpp"

namespace ccq::testing {

/// A (family, n, seed) test-instance descriptor for parameterized sweeps.
struct InstanceSpec {
    GraphFamily family = GraphFamily::erdos_renyi_sparse;
    int n = 32;
    std::uint64_t seed = 1;
    Weight max_weight = 100;

    [[nodiscard]] std::string label() const
    {
        return std::string(family_name(family)) + "_n" + std::to_string(n) + "_s" +
               std::to_string(seed) + "_w" + std::to_string(max_weight);
    }
};

inline Graph make_instance(const InstanceSpec& spec)
{
    Rng rng(spec.seed);
    return make_family_instance(spec.family, spec.n, WeightRange{1, spec.max_weight}, rng);
}

/// Pretty-printer so gtest names parameterized cases readably.
struct InstanceSpecName {
    template <class ParamType>
    std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const
    {
        return info.param.label();
    }
};

/// Asserts that `estimate` is a valid `claimed`-approximation of `exact`:
/// never below the true distance, never above claimed * distance, and
/// agreeing on reachability.
inline void expect_valid_approximation(const DistanceMatrix& exact,
                                       const DistanceMatrix& estimate, double claimed,
                                       const std::string& context)
{
    const StretchReport report = evaluate_stretch(exact, estimate);
    EXPECT_EQ(report.lower_bound_violations, 0u) << context << ": estimate below true distance";
    EXPECT_EQ(report.reachability_mismatches, 0u) << context << ": reachability mismatch";
    EXPECT_LE(report.max_stretch, claimed + 1e-9)
        << context << ": measured stretch exceeds the claimed factor";
}

} // namespace ccq::testing

#endif // CCQ_TESTS_TEST_HELPERS_HPP
