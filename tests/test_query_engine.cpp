// Tests for the serving query engine: bitwise agreement with the
// in-process ApspResult, path reconstruction, k-nearest ordering,
// concurrent batches, and the sharded path cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>

#include "ccq/core/oracle.hpp"
#include "ccq/serve/query_engine.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;

struct BuiltOracle {
    Graph graph;
    ApspResult result;
    OracleSnapshot snapshot;
};

BuiltOracle build(const InstanceSpec& spec,
                  ApspAlgorithmKind kind = ApspAlgorithmKind::logn_baseline)
{
    BuiltOracle built;
    built.graph = testing::make_instance(spec);
    ApspOptions options;
    options.seed = spec.seed;
    built.result = DistanceOracle(built.graph, kind, options).result();
    const RoutingTables routing = build_routing_tables(built.graph);
    built.snapshot = OracleSnapshot::from_result(built.graph, built.result, options.seed, &routing);
    return built;
}

TEST(QueryEngine, DistancesBitwiseEqualTheApspResultOnEveryPair)
{
    // The acceptance check of the serving layer: a snapshot round-trip
    // must not perturb a single bit of any estimate.
    for (const ApspAlgorithmKind kind :
         {ApspAlgorithmKind::logn_baseline, ApspAlgorithmKind::general}) {
        const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 13}, kind);
        const QueryEngine engine(built.snapshot);
        for (NodeId u = 0; u < built.graph.node_count(); ++u)
            for (NodeId v = 0; v < built.graph.node_count(); ++v)
                ASSERT_EQ(engine.distance(u, v), built.result.estimate.at(u, v))
                    << algorithm_kind_name(kind) << " " << u << "->" << v;
    }
}

TEST(QueryEngine, PathsWalkTheRoutingTables)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 48, 3});
    const QueryEngine engine(built.snapshot);
    ASSERT_TRUE(engine.has_routing());
    for (NodeId u = 0; u < 48; u += 5) {
        for (NodeId v = 0; v < 48; v += 7) {
            const PathResult path = engine.path(u, v);
            EXPECT_EQ(path.nodes, built.snapshot.routing.route(u, v)) << u << "->" << v;
            if (path.reachable) {
                ASSERT_FALSE(path.nodes.empty());
                EXPECT_EQ(path.nodes.front(), u);
                EXPECT_EQ(path.nodes.back(), v);
                EXPECT_EQ(path.distance, engine.distance(u, v));
                // Every hop must be a real edge of the source graph.
                EXPECT_TRUE(is_finite(route_length(built.graph, path.nodes)));
            }
        }
    }
}

TEST(QueryEngine, UnreachablePairsReportUnreachable)
{
    Graph g = Graph::undirected(4);
    g.add_edge(0, 1, 2); // {2,3} in another component
    g.add_edge(2, 3, 2);
    const ApspResult result = DistanceOracle(g, ApspAlgorithmKind::exact_baseline).result();
    const RoutingTables routing = build_routing_tables(g);
    const QueryEngine engine(OracleSnapshot::from_result(g, result, 1, &routing));
    EXPECT_EQ(engine.distance(0, 3), kInfinity);
    const PathResult path = engine.path(0, 3);
    EXPECT_FALSE(path.reachable);
    EXPECT_TRUE(path.nodes.empty());
    EXPECT_EQ(path.distance, kInfinity);
    EXPECT_TRUE(engine.path(0, 1).reachable);
}

TEST(QueryEngine, PathCacheHitsOnRepeatedQueries)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    const QueryEngine engine(built.snapshot);
    const PathResult first = engine.path(0, 17);
    EXPECT_EQ(engine.cache_stats().hits, 0u);
    EXPECT_GE(engine.cache_stats().misses, 1u);
    const PathResult second = engine.path(0, 17);
    EXPECT_EQ(first, second);
    EXPECT_GE(engine.cache_stats().hits, 1u);
}

TEST(QueryEngine, PathCacheEvictsAtCapacityAndStaysCorrect)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    QueryEngineConfig config;
    config.path_cache_capacity = 8;
    config.cache_shards = 2;
    const QueryEngine engine(built.snapshot, config);
    // Far more distinct pairs than capacity: every answer must still match
    // an uncached engine.
    QueryEngineConfig uncached_config;
    uncached_config.path_cache_capacity = 0;
    const QueryEngine uncached(built.snapshot, uncached_config);
    for (int pass = 0; pass < 2; ++pass)
        for (NodeId u = 0; u < 32; u += 3)
            for (NodeId v = 0; v < 32; ++v)
                ASSERT_EQ(engine.path(u, v), uncached.path(u, v)) << u << "->" << v;
    EXPECT_EQ(uncached.cache_stats().hits, 0u);
    EXPECT_EQ(uncached.cache_stats().misses, 0u);
}

TEST(QueryEngine, PathCacheLruEvictionOrderIsDeterministic)
{
    // One shard with room for exactly two entries makes LRU observable
    // through the hit/miss counters.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    QueryEngineConfig config;
    config.path_cache_capacity = 2;
    config.cache_shards = 1;
    const QueryEngine engine(built.snapshot, config);

    (void)engine.path(0, 1); // cache: {0->1}
    (void)engine.path(0, 2); // cache: {0->2, 0->1}
    (void)engine.path(0, 1); // touch: {0->1, 0->2}
    EXPECT_EQ(engine.cache_stats().hits, 1u);
    (void)engine.path(0, 3); // evicts the least-recent entry, 0->2
    (void)engine.path(0, 1); // still cached
    EXPECT_EQ(engine.cache_stats().hits, 2u);
    const std::uint64_t misses_before = engine.cache_stats().misses;
    (void)engine.path(0, 2); // was evicted: must miss again
    EXPECT_EQ(engine.cache_stats().misses, misses_before + 1);
    EXPECT_EQ(engine.cache_stats().hits, 2u);
}

TEST(QueryEngine, EvictionCountIsExactWithOneShard)
{
    // Capacity 2, one shard: the k-th distinct insert beyond capacity
    // displaces exactly one entry, so evictions = inserts - capacity.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    QueryEngineConfig config;
    config.path_cache_capacity = 2;
    config.cache_shards = 1;
    const QueryEngine engine(built.snapshot, config);

    EXPECT_EQ(engine.cache_stats().evictions, 0u);
    for (NodeId v = 1; v <= 7; ++v) (void)engine.path(0, v); // 7 distinct inserts
    EXPECT_EQ(engine.cache_stats().evictions, 5u);
    (void)engine.path(0, 7); // hit: no insert, no eviction
    EXPECT_EQ(engine.cache_stats().evictions, 5u);
}

TEST(QueryEngine, BatchSizeHistogramRecordsEveryBatch)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 32, 5});
    const QueryEngine engine(built.snapshot);
    const std::vector<PointQuery> three{{0, 1}, {0, 2}, {0, 3}};
    const std::vector<PointQuery> one{{4, 5}};
    (void)engine.batch_distances(three);
    (void)engine.batch_paths(three);
    (void)engine.batch_distances(one);
    (void)engine.batch_distances({}); // empty batches count too

    const obs::HistogramSnapshot snap = engine.batch_size_distribution();
    EXPECT_EQ(snap.total(), 4u);
    EXPECT_EQ(snap.sum, 7u);
    EXPECT_EQ(snap.counts[obs::Histogram::bucket_index(3)], 2u);
    EXPECT_EQ(snap.counts[obs::Histogram::bucket_index(1)], 1u);
    EXPECT_EQ(snap.counts[0], 1u);
}

TEST(QueryEngine, ShardedCacheStaysCorrectUnderConcurrentBatches)
{
    // Many concurrent batched path queries against a cache far smaller
    // than the working set: heavy insert/evict churn across shards.
    // Every answer must match an uncached reference engine, and the
    // hit/miss counters must account for exactly one lookup per query.
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 40, 21});
    QueryEngineConfig config;
    config.path_cache_capacity = 16;
    config.cache_shards = 4;
    config.threads = 4;
    const QueryEngine engine(built.snapshot, config);
    QueryEngineConfig uncached_config;
    uncached_config.path_cache_capacity = 0;
    const QueryEngine uncached(built.snapshot, uncached_config);

    Rng rng(9);
    std::vector<PointQuery> queries;
    for (int i = 0; i < 2000; ++i)
        queries.push_back({static_cast<NodeId>(rng.uniform_int(0, 39)),
                           static_cast<NodeId>(rng.uniform_int(0, 39))});

    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kThreads; ++w)
        workers.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round) {
                const std::vector<PathResult> paths = engine.batch_paths(queries);
                for (std::size_t i = 0; i < queries.size(); ++i)
                    if (paths[i] != uncached.path(queries[i].from, queries[i].to))
                        failures.fetch_add(1);
            }
        });
    for (std::thread& worker : workers) worker.join();
    EXPECT_EQ(failures.load(), 0);

    // Exactly one cache lookup per path query, hit or miss.
    const CacheStats stats = engine.cache_stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(kThreads) * kRounds * queries.size());
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u);
}

TEST(QueryEngine, NearestTargetsAreOrderedAndComplete)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::erdos_renyi_sparse, 40, 9});
    const QueryEngine engine(built.snapshot);
    const int n = engine.node_count();
    for (const NodeId from : {NodeId{0}, NodeId{17}, NodeId{39}}) {
        const std::vector<NearTarget> top = engine.nearest_targets(from, 7);
        ASSERT_LE(top.size(), 7u);
        // Ordered by (distance, id).
        for (std::size_t i = 1; i < top.size(); ++i)
            EXPECT_TRUE(weight_id_less(top[i - 1].distance, top[i - 1].node, top[i].distance,
                                       top[i].node));
        // Complete: no excluded node is closer than the worst kept one.
        for (NodeId v = 0; v < n; ++v) {
            if (v == from || !is_finite(engine.distance(from, v))) continue;
            const bool kept =
                std::any_of(top.begin(), top.end(),
                            [v](const NearTarget& t) { return t.node == v; });
            if (!kept && !top.empty()) {
                EXPECT_TRUE(weight_id_less(top.back().distance, top.back().node,
                                           engine.distance(from, v), v));
            }
        }
    }
    // k larger than the graph returns everything reachable, self excluded.
    const std::vector<NearTarget> all = engine.nearest_targets(0, n + 10);
    EXPECT_LE(all.size(), static_cast<std::size_t>(n - 1));
    EXPECT_EQ(engine.nearest_targets(0, 0).size(), 0u);
}

TEST(QueryEngine, BatchesMatchPointQueriesAcrossThreadCounts)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::clustered, 40, 21});
    Rng rng(4);
    std::vector<PointQuery> queries;
    for (int i = 0; i < 500; ++i)
        queries.push_back({static_cast<NodeId>(rng.uniform_int(0, 39)),
                           static_cast<NodeId>(rng.uniform_int(0, 39))});
    for (const int threads : {1, 4}) {
        QueryEngineConfig config;
        config.threads = threads;
        const QueryEngine engine(built.snapshot, config);
        const std::vector<Weight> distances = engine.batch_distances(queries);
        const std::vector<PathResult> paths = engine.batch_paths(queries);
        ASSERT_EQ(distances.size(), queries.size());
        ASSERT_EQ(paths.size(), queries.size());
        for (std::size_t i = 0; i < queries.size(); ++i) {
            EXPECT_EQ(distances[i], engine.distance(queries[i].from, queries[i].to));
            EXPECT_EQ(paths[i], engine.path(queries[i].from, queries[i].to));
        }
    }
}

TEST(QueryEngine, EmptyBatchIsFine)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const QueryEngine engine(built.snapshot);
    EXPECT_TRUE(engine.batch_distances({}).empty());
    EXPECT_TRUE(engine.batch_paths({}).empty());
}

TEST(QueryEngine, PathRequiresRoutingTables)
{
    const Graph g = testing::make_instance(InstanceSpec{GraphFamily::tree, 12, 2});
    const ApspResult result = DistanceOracle(g, ApspAlgorithmKind::logn_baseline).result();
    const QueryEngine engine(OracleSnapshot::from_result(g, result, 1));
    EXPECT_FALSE(engine.has_routing());
    EXPECT_EQ(engine.distance(0, 5), result.estimate.at(0, 5));
    EXPECT_THROW((void)engine.path(0, 5), check_error);
}

TEST(QueryEngine, BoundsChecked)
{
    const BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    const QueryEngine engine(built.snapshot);
    EXPECT_THROW((void)engine.distance(-1, 0), check_error);
    EXPECT_THROW((void)engine.distance(0, 12), check_error);
    EXPECT_THROW((void)engine.path(12, 0), check_error);
    EXPECT_THROW((void)engine.nearest_targets(0, -1), check_error);
    EXPECT_THROW((void)engine.nearest_targets(12, 1), check_error);
}

TEST(QueryEngine, CorruptedRoutingTablesServeAsUnreachableNotHang)
{
    // An adversarial snapshot: next hops form a 2-cycle that never
    // reaches the destination.  Serving must answer, not loop.
    const int n = 3;
    std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);
    hops[0 * 3 + 2] = 1; // 0 -> 1 toward 2
    hops[1 * 3 + 2] = 0; // 1 -> 0 toward 2: cycle
    Graph g = Graph::undirected(n);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    const ApspResult result = DistanceOracle(g, ApspAlgorithmKind::exact_baseline).result();
    const RoutingTables corrupted(n, std::move(hops));
    const QueryEngine engine(OracleSnapshot::from_result(g, result, 1, &corrupted));
    const PathResult path = engine.path(0, 2);
    EXPECT_FALSE(path.reachable);
    EXPECT_TRUE(path.nodes.empty());
}

TEST(QueryEngine, InconsistentEstimateAndRoutingServeAsUnreachable)
{
    // Forged snapshot where the routing walk succeeds but the estimate
    // cell claims unreachable: no self-contradictory answer may escape.
    BuiltOracle built = build(InstanceSpec{GraphFamily::tree, 12, 2});
    built.snapshot.estimate.at(0, 5) = kInfinity;
    const QueryEngine engine(built.snapshot);
    const PathResult path = engine.path(0, 5);
    EXPECT_FALSE(path.reachable);
    EXPECT_TRUE(path.nodes.empty());
    EXPECT_EQ(path.distance, kInfinity);
}

} // namespace
} // namespace ccq
