// Tests for the serving wire protocol: framing over in-memory streams,
// request/response codec round trips, malformed-input rejection, and
// the JSON debug-mode request grammar.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "ccq/net/protocol.hpp"

namespace ccq {
namespace {

/// An in-memory Stream: everything written becomes readable.
class LoopbackStream : public Stream {
public:
    std::size_t read_some(void* buffer, std::size_t count) override
    {
        if (bytes_.empty()) return 0; // EOF once drained
        const std::size_t take = std::min(count, bytes_.size());
        for (std::size_t i = 0; i < take; ++i) {
            static_cast<char*>(buffer)[i] = bytes_.front();
            bytes_.pop_front();
        }
        return take;
    }

    void write_all(const void* buffer, std::size_t count) override
    {
        const char* bytes = static_cast<const char*>(buffer);
        bytes_.insert(bytes_.end(), bytes, bytes + count);
    }

    void interrupt() noexcept override {}

private:
    std::deque<char> bytes_;
};

TEST(Protocol, FramesRoundTripThroughAStream)
{
    LoopbackStream stream;
    write_frame(stream, "hello");
    write_frame(stream, ""); // empty frames are legal
    write_frame(stream, std::string(1000, 'x'));
    EXPECT_EQ(read_frame(stream), "hello");
    EXPECT_EQ(read_frame(stream), "");
    EXPECT_EQ(read_frame(stream), std::string(1000, 'x'));
    EXPECT_EQ(read_frame(stream), std::nullopt); // clean EOF
}

TEST(Protocol, OversizedFrameLengthIsRejectedUnread)
{
    LoopbackStream stream;
    const std::uint32_t huge = kMaxFrameBytes + 1;
    char prefix[4];
    std::memcpy(prefix, &huge, 4); // test host is little-endian like the wire
    stream.write_all(prefix, 4);
    EXPECT_THROW((void)read_frame(stream), protocol_error);
}

TEST(Protocol, TruncatedFrameBodyThrowsNetError)
{
    LoopbackStream stream;
    write_frame(stream, "full frame");
    LoopbackStream truncated;
    const std::uint32_t claimed = 100;
    char prefix[4];
    std::memcpy(prefix, &claimed, 4);
    truncated.write_all(prefix, 4);
    truncated.write_all("short", 5);
    EXPECT_THROW((void)read_frame(truncated), net_error);
}

TEST(Protocol, RequestsRoundTripForEveryOpcode)
{
    for (const Opcode op : {Opcode::ping, Opcode::distance, Opcode::path, Opcode::k_nearest,
                            Opcode::stats, Opcode::metrics, Opcode::shutdown}) {
        Request request;
        request.op = op;
        request.from = 3;
        request.to = 17;
        request.k = 5;
        const Request decoded = decode_request(encode_request(request));
        EXPECT_EQ(decoded.op, op);
        if (op == Opcode::distance || op == Opcode::path) {
            EXPECT_EQ(decoded.from, 3);
            EXPECT_EQ(decoded.to, 17);
        }
        if (op == Opcode::k_nearest) {
            EXPECT_EQ(decoded.from, 3);
            EXPECT_EQ(decoded.k, 5);
        }
        EXPECT_FALSE(decoded.json);
    }
}

TEST(Protocol, ShutdownTokenRoundTrips)
{
    // Tokenless: the legacy one-byte frame, decoding to an empty token.
    Request bare;
    bare.op = Opcode::shutdown;
    EXPECT_EQ(encode_request(bare).size(), 1u);
    EXPECT_TRUE(decode_request(encode_request(bare)).token.empty());

    Request request;
    request.op = Opcode::shutdown;
    request.token = "s3cret";
    const Request decoded = decode_request(encode_request(request));
    EXPECT_EQ(decoded.op, Opcode::shutdown);
    EXPECT_EQ(decoded.token, "s3cret");

    // JSON debug mode carries the same operand.
    const Request json = parse_json_request(R"({"op":"shutdown","token":"abc"})");
    EXPECT_EQ(json.op, Opcode::shutdown);
    EXPECT_EQ(json.token, "abc");

    // A truncated token string is malformed, not a silent empty token.
    std::string truncated;
    truncated += static_cast<char>(0x1f);
    const std::uint32_t length = 100;
    truncated.append(reinterpret_cast<const char*>(&length), 4);
    truncated += "short";
    EXPECT_THROW((void)decode_request(truncated), protocol_error);
}

TEST(Protocol, ForbiddenStatusIsNamedAndSplits)
{
    const std::string reply = encode_error_reply(Status::forbidden, "no token");
    const auto [status, rest] = split_reply(reply);
    EXPECT_EQ(status, Status::forbidden);
    EXPECT_STREQ(status_name(Status::forbidden), "forbidden");
    // One past the last defined status must still be rejected.
    EXPECT_THROW((void)split_reply(std::string(1, static_cast<char>(8))), protocol_error);
}

TEST(Protocol, BusyStatusIsNamedAndSplits)
{
    const std::string reply = encode_error_reply(Status::busy, "at connection limit");
    const auto [status, rest] = split_reply(reply);
    EXPECT_EQ(status, Status::busy);
    EXPECT_STREQ(status_name(Status::busy), "busy");
}

TEST(Protocol, FrameDecoderReassemblesByteAtATime)
{
    // The slow-loris shape: every byte of two frames arrives in its own
    // feed() call, and a frame must complete exactly at its last byte.
    const std::string wire = encode_frame("hello") + encode_frame("");
    FrameDecoder decoder;
    std::vector<std::string> frames;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        decoder.feed(std::string_view(wire).substr(i, 1));
        while (std::optional<std::string> frame = decoder.next())
            frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], "hello");
    EXPECT_EQ(frames[1], "");
    EXPECT_FALSE(decoder.mid_frame());
}

TEST(Protocol, FrameDecoderSplitsAPipelinedBurst)
{
    // The pipelining shape: many frames land in one feed().
    std::string wire;
    for (int i = 0; i < 100; ++i) wire += encode_frame(std::string(i, 'a' + (i % 26)));
    FrameDecoder decoder;
    decoder.feed(wire);
    for (int i = 0; i < 100; ++i) {
        const std::optional<std::string> frame = decoder.next();
        ASSERT_TRUE(frame.has_value()) << "frame " << i;
        EXPECT_EQ(*frame, std::string(i, 'a' + (i % 26)));
    }
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_FALSE(decoder.mid_frame());
}

TEST(Protocol, FrameDecoderTracksPartialFrames)
{
    FrameDecoder decoder;
    const std::string wire = encode_frame("abcdef");
    decoder.feed(std::string_view(wire).substr(0, 7)); // prefix + half the body
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_TRUE(decoder.mid_frame()); // EOF here would cut a frame in half
    decoder.feed(std::string_view(wire).substr(7));
    EXPECT_EQ(decoder.next(), "abcdef");
    EXPECT_FALSE(decoder.mid_frame());
}

TEST(Protocol, FrameDecoderRejectsOversizedPrefixBeforeTheBody)
{
    FrameDecoder decoder;
    const std::uint32_t huge = kMaxFrameBytes + 1;
    decoder.feed(std::string_view(reinterpret_cast<const char*>(&huge), 4));
    // The prefix alone must poison the stream — no waiting for (or
    // buffering of) a 64 MiB body that is never coming.
    EXPECT_THROW((void)decoder.next(), protocol_error);
}

TEST(Protocol, EncodeFrameMatchesWriteFrame)
{
    LoopbackStream stream;
    write_frame(stream, "payload");
    const std::string encoded = encode_frame("payload");
    std::string streamed(encoded.size(), '\0');
    ASSERT_TRUE(stream.read_exact(streamed.data(), streamed.size()));
    EXPECT_EQ(streamed, encoded);
}

TEST(Protocol, BatchRequestsCarryTheirPairs)
{
    Request request;
    request.op = Opcode::batch_paths;
    request.pairs = {{0, 1}, {5, 9}, {2, 2}};
    const Request decoded = decode_request(encode_request(request));
    EXPECT_EQ(decoded.op, Opcode::batch_paths);
    ASSERT_EQ(decoded.pairs.size(), 3u);
    EXPECT_EQ(decoded.pairs[1].from, 5);
    EXPECT_EQ(decoded.pairs[1].to, 9);
}

TEST(Protocol, MalformedRequestsAreRejected)
{
    EXPECT_THROW((void)decode_request(""), protocol_error);
    EXPECT_THROW((void)decode_request("\xff"), protocol_error);         // unknown opcode
    EXPECT_THROW((void)decode_request("\x02\x01"), protocol_error);     // truncated operands
    EXPECT_THROW((void)decode_request(std::string("\x01\x00", 2)), protocol_error); // trailing
    // A batch whose count field promises more pairs than the frame holds
    // must fail before allocating that count.
    std::string body;
    body += static_cast<char>(0x05);
    const std::uint32_t count = 1u << 30;
    body.append(reinterpret_cast<const char*>(&count), 4);
    EXPECT_THROW((void)decode_request(body), protocol_error);
}

TEST(Protocol, RepliesRoundTrip)
{
    EXPECT_EQ(decode_ping_reply(split_reply(encode_ping_reply()).second), kProtocolVersion);
    EXPECT_EQ(decode_distance_reply(split_reply(encode_distance_reply(12345)).second), 12345);

    PathResult path;
    path.reachable = true;
    path.distance = 42;
    path.nodes = {0, 3, 9};
    EXPECT_EQ(decode_path_reply(split_reply(encode_path_reply(path)).second), path);

    const std::vector<NearTarget> targets{{4, 10}, {7, 11}};
    EXPECT_EQ(decode_nearest_reply(split_reply(encode_nearest_reply(targets)).second), targets);

    const std::vector<Weight> distances{1, kInfinity, 7};
    EXPECT_EQ(
        decode_batch_distances_reply(split_reply(encode_batch_distances_reply(distances)).second),
        distances);

    const std::vector<PathResult> paths{path, PathResult{}};
    EXPECT_EQ(decode_batch_paths_reply(split_reply(encode_batch_paths_reply(paths)).second),
              paths);

    ServerStats stats;
    stats.connections_accepted = 3;
    stats.connections_rejected = 2;
    stats.frames_served = 99;
    stats.cache_hits = 7;
    stats.uptime_seconds = 1.5;
    stats.node_count = 96;
    stats.has_routing = true;
    stats.backpressure_pauses = 11;
    stats.build_total_rounds = 17.5;
    stats.build_total_words = 4096;
    stats.source_kind = 2; // spanner
    stats.stored_cells = 1234;
    stats.rows_materialized = 17;
    EXPECT_EQ(decode_stats_reply(split_reply(encode_stats_reply(stats)).second), stats);

    // Prometheus scrape text passes through byte-for-byte.
    const std::string exposition = "# HELP x y\nx_total 3\n";
    EXPECT_EQ(decode_metrics_reply(split_reply(encode_metrics_reply(exposition)).second),
              exposition);
}

TEST(Protocol, StatsV1RepliesDecodeWithDefaultTrailer)
{
    // Older servers' stats replies simply end early; the decoder must
    // leave the newer trailer fields at their defaults, not reject the
    // frame.  Strip the trailers the current encoder appends — v3 is
    // 17 bytes (u8 + u64 + u64), v2 another 24 (u64 + f64 + u64) — to
    // forge the old shapes.
    ServerStats stats;
    stats.frames_served = 5;
    stats.backpressure_pauses = 9;
    stats.build_total_rounds = 3.25;
    stats.build_total_words = 64;
    stats.source_kind = 1; // mapped
    stats.stored_cells = 9216;
    stats.rows_materialized = 3;
    const std::string reply = encode_stats_reply(stats);
    const auto [status, payload] = split_reply(reply);
    ASSERT_EQ(status, Status::ok);

    // A v2 server's reply: ends after build_total_words.
    const ServerStats from_v2 =
        decode_stats_reply(std::string(payload).substr(0, payload.size() - 17));
    EXPECT_EQ(from_v2.frames_served, 5u);
    EXPECT_EQ(from_v2.build_total_words, 64u);
    EXPECT_EQ(from_v2.source_kind, 0u);
    EXPECT_EQ(from_v2.stored_cells, 0u);
    EXPECT_EQ(from_v2.rows_materialized, 0u);

    // A v1 server's reply: ends after has_routing.
    const ServerStats from_v1 =
        decode_stats_reply(std::string(payload).substr(0, payload.size() - 17 - 24));
    EXPECT_EQ(from_v1.frames_served, 5u);
    EXPECT_EQ(from_v1.backpressure_pauses, 0u);
    EXPECT_EQ(from_v1.build_total_rounds, 0.0);
    EXPECT_EQ(from_v1.build_total_words, 0u);
    EXPECT_EQ(from_v1.source_kind, 0u);

    // A partial trailer is torn, not an older version: reject it.
    EXPECT_THROW((void)decode_stats_reply(std::string(payload).substr(0, payload.size() - 8)),
                 protocol_error);
    EXPECT_THROW(
        (void)decode_stats_reply(std::string(payload).substr(0, payload.size() - 17 - 8)),
        protocol_error);
}

TEST(Protocol, OpMetricIndexCoversEveryOpcode)
{
    // Every real opcode owns a distinct slot with a stable name; the
    // JSON debug pseudo-opcode folds into the trailing invalid slot.
    std::vector<bool> seen(kOpMetricCount, false);
    for (const Opcode op : {Opcode::ping, Opcode::distance, Opcode::path, Opcode::k_nearest,
                            Opcode::batch_distances, Opcode::batch_paths, Opcode::stats,
                            Opcode::metrics, Opcode::flight, Opcode::shutdown}) {
        const std::size_t index = op_metric_index(op);
        ASSERT_LT(index, kOpMetricCount);
        EXPECT_NE(index, kInvalidOpMetric);
        EXPECT_FALSE(seen[index]) << op_metric_name(index);
        seen[index] = true;
        EXPECT_STRNE(op_metric_name(index), "");
    }
    EXPECT_EQ(op_metric_index(Opcode::json), kInvalidOpMetric);
    EXPECT_STREQ(op_metric_name(kInvalidOpMetric), "invalid");
    EXPECT_STREQ(op_metric_name(op_metric_index(Opcode::ping)), "ping");
}

TEST(Protocol, ErrorRepliesCarryStatusAndMessage)
{
    const std::string body = encode_error_reply(Status::out_of_range, "node 200");
    const auto [status, payload] = split_reply(body);
    EXPECT_EQ(status, Status::out_of_range);
    EXPECT_NE(std::string(payload).find("node 200"), std::string::npos);
    EXPECT_THROW((void)split_reply(""), protocol_error);
    EXPECT_THROW((void)split_reply("\x63"), protocol_error); // unknown status byte
}

TEST(Protocol, TruncatedRepliesAreRejected)
{
    const std::string good = encode_path_reply(PathResult{true, 9, {0, 1}});
    const auto [status, payload] = split_reply(good);
    ASSERT_EQ(status, Status::ok);
    for (std::size_t keep = 0; keep < payload.size(); ++keep)
        EXPECT_THROW((void)decode_path_reply(payload.substr(0, keep)), protocol_error)
            << "kept " << keep << " of " << payload.size();
    // A count field larger than the remaining bytes must not allocate.
    const std::uint32_t huge = 1u << 30;
    std::string forged(reinterpret_cast<const char*>(&huge), 4);
    EXPECT_THROW((void)decode_batch_paths_reply(forged), protocol_error);
}

TEST(Protocol, JsonRequestsParse)
{
    const Request distance = decode_request(R"({"op":"distance","from":4,"to":9})");
    EXPECT_EQ(distance.op, Opcode::distance);
    EXPECT_EQ(distance.from, 4);
    EXPECT_EQ(distance.to, 9);
    EXPECT_TRUE(distance.json);

    const Request nearest = parse_json_request(R"({ "op" : "k_nearest" , "from": 2, "k": 8 })");
    EXPECT_EQ(nearest.op, Opcode::k_nearest);
    EXPECT_EQ(nearest.k, 8);

    const Request batch =
        parse_json_request(R"({"op":"batch_distances","pairs":[[0,1],[2,3]]})");
    ASSERT_EQ(batch.pairs.size(), 2u);
    EXPECT_EQ(batch.pairs[1].from, 2);
    EXPECT_EQ(batch.pairs[1].to, 3);

    const Request bare = parse_json_request(R"({"op":"stats"})");
    EXPECT_EQ(bare.op, Opcode::stats);

    const Request scrape = parse_json_request(R"({"op":"metrics"})");
    EXPECT_EQ(scrape.op, Opcode::metrics);
}

TEST(Protocol, MalformedJsonRequestsAreRejected)
{
    for (const char* bad : {
             "{",                                  // unterminated
             "{}",                                 // missing op
             R"({"op":"no_such_op"})",             // unknown op
             R"({"op":"distance","from":"x"})",    // non-numeric operand
             R"({"op":"distance"} trailing)",      // trailing characters
             R"({"unknown_key":1,"op":"ping"})",   // unknown key
             R"({"op":"batch_paths","pairs":[0]})", // pairs not pairs
             // Overflowing numbers must be a protocol_error (answered as
             // malformed), not an escaping std::out_of_range that tears
             // the connection down.
             R"({"op":"distance","from":99999999999999999999999,"to":1})",
             // Fits a long long but not the wire's i32 node ids: a silent
             // truncation would alias onto a valid node (4294967296 -> 0)
             // and serve a wrong answer instead of an error.
             R"({"op":"distance","from":4294967296,"to":5})",
             R"({"op":"k_nearest","from":0,"k":2147483648})"
         })
        EXPECT_THROW((void)parse_json_request(bad), protocol_error) << bad;
}

TEST(Protocol, JsonEscapeHandlesControlBytesAndQuotes)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape(std::string("x\ny", 3)), "x\\u000ay");
}

TEST(Protocol, TraceEnvelopeRoundTrips)
{
    Request request;
    request.op = Opcode::distance;
    request.from = 4;
    request.to = 9;
    const std::string inner = encode_request(request);

    const TraceContext context{0xdeadbeefcafe1234u, true};
    const std::string tagged = wrap_trace_envelope(context, inner);
    ASSERT_EQ(tagged.size(), inner.size() + 10);
    EXPECT_EQ(static_cast<std::uint8_t>(tagged[0]), kTraceEnvelopeMarker);

    std::string_view body(tagged);
    const std::optional<TraceContext> split = split_trace_envelope(body);
    ASSERT_TRUE(split.has_value());
    EXPECT_EQ(*split, context);
    EXPECT_EQ(body, inner); // envelope stripped, inner body intact
    EXPECT_EQ(decode_request(body).op, Opcode::distance);

    // Unsampled context round-trips its flag bit.
    const std::string unsampled_wire = wrap_trace_envelope(TraceContext{7, false}, inner);
    std::string_view unsampled_body(unsampled_wire);
    const std::optional<TraceContext> unsampled = split_trace_envelope(unsampled_body);
    ASSERT_TRUE(unsampled.has_value());
    EXPECT_EQ(unsampled->trace_id, 7u);
    EXPECT_FALSE(unsampled->sampled);
}

TEST(Protocol, UntaggedBodiesSplitToNullopt)
{
    // The pre-envelope wire shape: every existing opcode byte must pass
    // through untouched.  0x1e is reserved precisely because no opcode
    // or JSON body starts with it.
    for (const Opcode op : {Opcode::ping, Opcode::distance, Opcode::stats, Opcode::shutdown}) {
        Request request;
        request.op = op;
        const std::string inner = encode_request(request);
        std::string_view body(inner);
        EXPECT_EQ(split_trace_envelope(body), std::nullopt);
        EXPECT_EQ(body, inner);
    }
    std::string_view json(R"({"op":"ping"})");
    EXPECT_EQ(split_trace_envelope(json), std::nullopt);
    std::string_view empty;
    EXPECT_EQ(split_trace_envelope(empty), std::nullopt);
}

TEST(Protocol, TruncatedOrUnknownFlagEnvelopesAreRejected)
{
    const std::string tagged =
        wrap_trace_envelope(TraceContext{42, true}, encode_request(Request{}));
    // Every strict prefix of the 10-byte envelope is a torn envelope,
    // not an untagged request.
    for (std::size_t keep = 1; keep < 10; ++keep) {
        std::string_view body(tagged.data(), keep);
        EXPECT_THROW((void)split_trace_envelope(body), protocol_error) << "kept " << keep;
    }
    // Unknown flag bits are version skew this decoder must not guess at.
    std::string bad_flags = tagged;
    bad_flags[9] = static_cast<char>(0x02);
    std::string_view body(bad_flags);
    EXPECT_THROW((void)split_trace_envelope(body), protocol_error);
}

TEST(Protocol, TaggedFramesSurviveTheFrameDecoderByteAtATime)
{
    // A tagged frame is framing-transparent: the decoder reassembles it
    // like any other body, tagged and untagged frames interleave, and
    // the envelope splits off only after reassembly.
    Request request;
    request.op = Opcode::distance;
    request.from = 1;
    request.to = 2;
    const std::string inner = encode_request(request);
    const std::string wire = encode_frame(wrap_trace_envelope(TraceContext{9, true}, inner)) +
                             encode_frame(inner) +
                             encode_frame(wrap_trace_envelope(TraceContext{10, false}, inner));
    FrameDecoder decoder;
    std::vector<std::string> frames;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        decoder.feed(std::string_view(wire).substr(i, 1));
        while (std::optional<std::string> frame = decoder.next())
            frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 3u);

    std::string_view first(frames[0]);
    const std::optional<TraceContext> c0 = split_trace_envelope(first);
    ASSERT_TRUE(c0.has_value());
    EXPECT_EQ(c0->trace_id, 9u);
    EXPECT_TRUE(c0->sampled);
    EXPECT_EQ(first, inner);

    std::string_view second(frames[1]);
    EXPECT_EQ(split_trace_envelope(second), std::nullopt);
    EXPECT_EQ(second, inner);

    std::string_view third(frames[2]);
    const std::optional<TraceContext> c2 = split_trace_envelope(third);
    ASSERT_TRUE(c2.has_value());
    EXPECT_EQ(c2->trace_id, 10u);
    EXPECT_FALSE(c2->sampled);
}

TEST(Protocol, FlightRepliesRoundTrip)
{
    obs::RequestRecord a;
    a.seq = 7;
    a.trace_id = 0x1122334455667788u;
    a.conn_id = 3;
    a.opcode = static_cast<std::uint8_t>(Opcode::distance);
    a.status = static_cast<std::uint8_t>(Status::ok);
    a.sampled = true;
    a.request_bytes = 19;
    a.reply_bytes = 9;
    a.decode_us = 1;
    a.queue_us = 2;
    a.execute_us = 3;
    a.encode_us = 4;
    a.flush_us = 5;
    obs::RequestRecord b; // all-defaults record survives too
    const std::vector<obs::RequestRecord> records{a, b};

    const std::string reply = encode_flight_reply(records);
    const auto [status, payload] = split_reply(reply);
    ASSERT_EQ(status, Status::ok);
    const std::vector<obs::RequestRecord> decoded = decode_flight_reply(payload);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0], a);
    EXPECT_EQ(decoded[1], b);
    EXPECT_EQ(decoded[0].total_us(), 15u);

    const auto empty = decode_flight_reply(split_reply(encode_flight_reply({})).second);
    EXPECT_TRUE(empty.empty());
}

TEST(Protocol, ForgedFlightRepliesAreRejected)
{
    // A count promising more records than the payload holds must fail
    // before allocating that count.
    const std::uint32_t huge = 1u << 30;
    std::string forged(reinterpret_cast<const char*>(&huge), 4);
    EXPECT_THROW((void)decode_flight_reply(forged), protocol_error);

    obs::RequestRecord rec;
    const std::string good(split_reply(encode_flight_reply({&rec, 1})).second);
    // Truncation anywhere inside the record is torn, not short.
    for (std::size_t keep = 0; keep < good.size(); ++keep)
        EXPECT_THROW((void)decode_flight_reply(good.substr(0, keep)), protocol_error)
            << "kept " << keep;
    // Trailing bytes after the promised records are a framing bug.
    EXPECT_THROW((void)decode_flight_reply(good + "x"), protocol_error);
    // A sampled byte other than 0/1 is not a bool.
    std::string bad_sampled = good;
    bad_sampled[4 + 8 + 8 + 8 + 1 + 1] = 2; // count + seq + trace + conn + op + status
    EXPECT_THROW((void)decode_flight_reply(bad_sampled), protocol_error);
}

} // namespace
} // namespace ccq
