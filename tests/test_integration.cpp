// Cross-module integration tests: multi-seed end-to-end sweeps, ledger
// accounting consistency, adversarial tie-heavy instances, and pipeline
// chains that combine the wrappers (zero weights + every algorithm kind).
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/apsp.hpp"
#include "ccq/spanner/baswana_sen.hpp"
#include "test_helpers.hpp"

namespace ccq {
namespace {

using testing::InstanceSpec;
using testing::expect_valid_approximation;

struct SeedCase {
    std::uint64_t seed;
    [[nodiscard]] std::string label() const { return "seed" + std::to_string(seed); }
};

class MultiSeedEndToEnd : public ::testing::TestWithParam<SeedCase> {};

// The full ladder on a fresh random instance per seed: every algorithm
// must be sound and within its own claim, and better guarantees must be
// compatible (not contradicted by measurements).
TEST_P(MultiSeedEndToEnd, FullLadderSoundness)
{
    Rng rng(GetParam().seed);
    const Graph g = erdos_renyi(72, 0.1, WeightRange{1, 200}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    ApspOptions options;
    options.seed = GetParam().seed;

    for (const ApspAlgorithmKind kind :
         {ApspAlgorithmKind::logn_baseline, ApspAlgorithmKind::loglog,
          ApspAlgorithmKind::small_diameter, ApspAlgorithmKind::large_bandwidth,
          ApspAlgorithmKind::general}) {
        const DistanceOracle oracle(g, kind, options);
        expect_valid_approximation(exact, oracle.result().estimate, oracle.claimed_stretch(),
                                   std::string(algorithm_kind_name(kind)) + "/" +
                                       GetParam().label());
    }
}

// Ties everywhere: uniform weights make every selection rule hit its
// (dist, id) tie-breaking path; the bin scheme, hopset, skeleton and
// hitting set must all stay deterministic and sound.
TEST_P(MultiSeedEndToEnd, UniformWeightTieStress)
{
    Rng rng(GetParam().seed + 100);
    const Graph g = erdos_renyi(64, 0.12, WeightRange{7, 7}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    ApspOptions options;
    options.seed = GetParam().seed;
    const ApspResult a = apsp_general(g, options);
    const ApspResult b = apsp_general(g, options);
    EXPECT_EQ(a.estimate, b.estimate) << "tie-breaking must be deterministic";
    expect_valid_approximation(exact, a.estimate, a.claimed_stretch, "ties");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeedEndToEnd,
                         ::testing::Values(SeedCase{101}, SeedCase{202}, SeedCase{303},
                                           SeedCase{404}, SeedCase{505}),
                         testing::InstanceSpecName{});

TEST(Integration, LedgerPhaseTotalsMatchGrandTotal)
{
    Rng rng(1);
    const Graph g = erdos_renyi(64, 0.1, WeightRange{1, 40}, rng);
    const ApspResult result = apsp_general(g);
    double sum = 0.0;
    for (const PhaseTotal& total : result.ledger.top_level_totals()) sum += total.rounds;
    EXPECT_NEAR(sum, result.ledger.total_rounds(), 1e-6);
}

TEST(Integration, ZeroWeightWrapperComposesWithEveryKind)
{
    Rng rng(2);
    Graph g = erdos_renyi(48, 0.15, WeightRange{1, 30}, rng);
    g.add_edge(3, 4, 0);
    g.add_edge(4, 5, 0);
    const DistanceMatrix exact = exact_apsp(g);
    for (const ApspAlgorithmKind kind :
         {ApspAlgorithmKind::exact_baseline, ApspAlgorithmKind::loglog,
          ApspAlgorithmKind::general}) {
        const DistanceOracle oracle(g, kind);
        expect_valid_approximation(exact, oracle.result().estimate, oracle.claimed_stretch(),
                                   algorithm_kind_name(kind));
        EXPECT_EQ(oracle.distance(3, 5), 0);
    }
}

TEST(Integration, EndToEndRoutingFromOracleBackbone)
{
    // Full user story: approximate APSP -> spanner backbone -> next-hop
    // tables -> forwarded routes bounded by the backbone stretch.
    Rng rng(3);
    const Graph g = clustered_graph(64, 4, 0.4, 0.02, WeightRange{1, 20}, 8, rng);
    const SpannerResult backbone = baswana_sen_spanner(g, 2, rng);
    const RoutingTables tables = build_routing_tables(backbone.spanner);
    const DistanceMatrix exact = exact_apsp(g);
    for (NodeId u = 0; u < 64; u += 9) {
        for (NodeId v = 0; v < 64; v += 7) {
            if (u == v) continue;
            const Weight len = route_length(g, tables.route(u, v));
            EXPECT_LE(len, 3 * exact.at(u, v));
        }
    }
}

TEST(Integration, SerializedInstanceReproducesResults)
{
    Rng rng(4);
    const Graph g = erdos_renyi(48, 0.12, WeightRange{1, 60}, rng);
    const std::string path = ::testing::TempDir() + "/ccq_integration.graph";
    save_graph(path, g);
    const Graph loaded = load_graph(path);
    ApspOptions options;
    options.seed = 9;
    EXPECT_EQ(apsp_general(g, options).estimate, apsp_general(loaded, options).estimate);
}

TEST(Integration, ScaleSweepKeepsGuarantees)
{
    for (const int n : {32, 64, 128, 192}) {
        Rng rng(static_cast<std::uint64_t>(n));
        const Graph g = erdos_renyi(n, 6.0 / n, WeightRange{1, 100}, rng);
        const ApspResult result = apsp_general(g);
        expect_valid_approximation(exact_apsp(g), result.estimate, result.claimed_stretch,
                                   "n=" + std::to_string(n));
    }
}

TEST(Integration, HeavyTailWeightsEndToEnd)
{
    // Exponentially spread weights force the weight-scaling lemma to use
    // many levels inside Theorem 8.1.
    Rng rng(5);
    Graph g = random_tree(56, WeightRange{1, 1}, rng);
    NodeId i = 0;
    for (const WeightedEdge& e : g.edge_list()) {
        (void)e;
        ++i;
    }
    Graph heavy = Graph::undirected(56);
    Weight w = 1;
    for (const WeightedEdge& e : g.edge_list()) {
        heavy.add_edge(e.u, e.v, w);
        w = std::min<Weight>(w * 3, 1'000'000);
    }
    const ApspResult result = apsp_large_bandwidth(heavy);
    expect_valid_approximation(exact_apsp(heavy), result.estimate, result.claimed_stretch,
                               "heavy-tail");
}

TEST(Integration, ParamProfilesAgreeOnSoundness)
{
    Rng rng(6);
    const Graph g = erdos_renyi(64, 0.1, WeightRange{1, 50}, rng);
    const DistanceMatrix exact = exact_apsp(g);
    for (const ParamProfile profile : {ParamProfile::practical, ParamProfile::paper}) {
        ApspOptions options;
        options.profile = profile;
        for (const auto& run :
             {apsp_small_diameter(g, options), apsp_large_bandwidth(g, options),
              apsp_general(g, options), apsp_loglog(g, options)}) {
            expect_valid_approximation(exact, run.estimate, run.claimed_stretch,
                                       run.algorithm);
        }
    }
}

TEST(Integration, StarAndPathExtremesAcrossAlgorithms)
{
    // Star: 2-hop diameter; path: maximal hop diameter — the two ends of
    // the hopset/k-nearest difficulty spectrum.
    Rng rng(7);
    for (const GraphFamily family : {GraphFamily::star, GraphFamily::path}) {
        const Graph g = make_family_instance(family, 48, WeightRange{1, 30}, rng);
        const DistanceMatrix exact = exact_apsp(g);
        for (const auto& run : {apsp_loglog(g), apsp_general(g)}) {
            expect_valid_approximation(exact, run.estimate, run.claimed_stretch,
                                       std::string(family_name(family)) + "/" + run.algorithm);
        }
    }
}

TEST(Integration, FaithfulBinSchemeMatchesFastPathEndToEnd)
{
    // The entire Theorem 1.1 / Section 3.2 pipelines executed with the
    // routed Section 5.2 bin scheme must produce the same estimates as
    // the fast path (the rows are provably identical; this checks the
    // plumbing end to end).
    Rng rng(8);
    const Graph g = erdos_renyi(56, 0.12, WeightRange{1, 40}, rng);
    ApspOptions fast;
    fast.seed = 5;
    ApspOptions faithful = fast;
    faithful.faithful_bin_scheme = true;
    EXPECT_EQ(apsp_general(g, fast).estimate, apsp_general(g, faithful).estimate);
    EXPECT_EQ(apsp_loglog(g, fast).estimate, apsp_loglog(g, faithful).estimate);
}

} // namespace
} // namespace ccq
