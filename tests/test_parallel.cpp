// Tests for the thread-pool substrate of the min-plus engine.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "ccq/common/parallel.hpp"

namespace ccq {
namespace {

TEST(EngineConfigTest, ResolvesThreadsAndBlocks)
{
    EXPECT_EQ((EngineConfig{1, 32}).resolved_threads(), 1);
    EXPECT_EQ((EngineConfig{5, 32}).resolved_threads(), 5);
    EXPECT_GE(EngineConfig{}.resolved_threads(), 1); // auto: at least one
    EXPECT_EQ((EngineConfig{1, 32}).resolved_block_size(), 32);
    EXPECT_EQ(EngineConfig::serial().threads, 1);
    EXPECT_THROW((void)(EngineConfig{-2, 8}).resolved_threads(), check_error);
    EXPECT_THROW((void)(EngineConfig{1, 0}).resolved_block_size(), check_error);
}

TEST(ParallelChunks, CoversRangeExactlyOnce)
{
    for (const int threads : {1, 2, 4, 9}) {
        for (const int align : {1, 8, 64}) {
            for (const int extent : {0, 1, 7, 64, 193}) {
                std::mutex mutex;
                std::vector<std::pair<int, int>> chunks;
                parallel_chunks(threads, 0, extent, align, [&](int begin, int end) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    chunks.emplace_back(begin, end);
                });
                std::sort(chunks.begin(), chunks.end());
                int covered = 0;
                int expected_next = 0;
                for (const auto& [begin, end] : chunks) {
                    EXPECT_EQ(begin, expected_next);
                    EXPECT_LT(begin, end);
                    if (end != extent) {
                        EXPECT_EQ(end % align, 0); // interior cuts on align
                    }
                    covered += end - begin;
                    expected_next = end;
                }
                EXPECT_EQ(covered, extent)
                    << "threads=" << threads << " align=" << align << " extent=" << extent;
            }
        }
    }
}

TEST(ParallelChunks, ChunkCountRespectsThreadBound)
{
    std::mutex mutex;
    int chunk_count = 0;
    parallel_chunks(4, 0, 1000, 1, [&](int, int) {
        const std::lock_guard<std::mutex> lock(mutex);
        ++chunk_count;
    });
    EXPECT_LE(chunk_count, 4);
    EXPECT_GE(chunk_count, 1);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    std::mutex mutex;
    std::multiset<int> seen;
    ThreadPool::shared().run(37, 4, [&](int task) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(task);
    });
    EXPECT_EQ(seen.size(), 37u);
    for (int task = 0; task < 37; ++task) EXPECT_EQ(seen.count(task), 1u) << task;
}

TEST(ThreadPool, SpawnsWorkersForExplicitConcurrency)
{
    // Even on a single-core host an explicit 4-way request must exercise
    // real cross-thread execution (the engine tests rely on this).
    ThreadPool::shared().run(8, 4, [](int) {});
    EXPECT_GE(ThreadPool::shared().worker_count(), 3);
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    std::atomic<int> executed{0};
    EXPECT_THROW(ThreadPool::shared().run(8, 4,
                                          [&](int task) {
                                              executed.fetch_add(1);
                                              if (task == 3) throw check_error("boom");
                                          }),
                 check_error);
    EXPECT_EQ(executed.load(), 8); // failure does not abandon sibling tasks
}

TEST(ThreadPool, NestedRunsExecuteInline)
{
    std::atomic<int> total{0};
    ThreadPool::shared().run(4, 4, [&](int) {
        ThreadPool::shared().run(4, 4, [&](int) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, BackToBackJobsStaySound)
{
    for (int round = 0; round < 200; ++round) {
        std::atomic<int> count{0};
        ThreadPool::shared().run(7, 4, [&](int) { count.fetch_add(1); });
        ASSERT_EQ(count.load(), 7) << "round " << round;
    }
}

TEST(NumaTopologyTest, DetectionIsSaneAndCached)
{
    const NumaTopology& topology = numa_topology();
    EXPECT_GE(topology.node_count, 1);
    EXPECT_GE(topology.online_cpus, 1);
    EXPECT_EQ(numa_available(), topology.node_count > 1);
    EXPECT_EQ(&numa_topology(), &topology); // cached, one detection pass
}

TEST(NumaTopologyTest, PinCurrentThreadIsBestEffort)
{
    // Affinity is an optimization: success pins, failure (platform or
    // sandbox restrictions) must be a clean false, never a throw.
    // Exercised on a scratch thread so the gtest main thread — strided
    // participant 0 of every later pool test — keeps its full mask.
    bool pinned = false;
    bool rejected_negative = true;
    std::thread probe([&] {
        pinned = pin_current_thread(0);
        rejected_negative = !pin_current_thread(-1);
    });
    probe.join();
#ifdef __linux__
    if (pinned) SUCCEED();
#else
    EXPECT_FALSE(pinned);
#endif
    EXPECT_TRUE(rejected_negative);
}

TEST(ThreadPoolStrided, RunsEveryTaskExactlyOnce)
{
    for (const int tasks : {1, 2, 7, 37, 100}) {
        for (const int concurrency : {1, 2, 4, 9}) {
            std::mutex mutex;
            std::multiset<int> seen;
            ThreadPool::shared().run(
                tasks, concurrency,
                [&](int task) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    seen.insert(task);
                },
                ThreadPool::RunOptions{/*strided=*/true});
            ASSERT_EQ(seen.size(), static_cast<std::size_t>(tasks))
                << "tasks=" << tasks << " concurrency=" << concurrency;
            for (int task = 0; task < tasks; ++task)
                ASSERT_EQ(seen.count(task), 1u)
                    << "tasks=" << tasks << " concurrency=" << concurrency;
        }
    }
}

TEST(ThreadPoolStrided, MappingIsStableAcrossRepeatedJobs)
{
    // The NUMA contract: task t runs on the same thread every job (with
    // the same tasks/concurrency), so first-touched pages stay owned.
    constexpr int kTasks = 8;
    std::vector<std::thread::id> first(kTasks);
    std::mutex mutex;
    ThreadPool::shared().run(
        kTasks, 4,
        [&](int task) {
            const std::lock_guard<std::mutex> lock(mutex);
            first[static_cast<std::size_t>(task)] = std::this_thread::get_id();
        },
        ThreadPool::RunOptions{/*strided=*/true});
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> mismatches{0};
        ThreadPool::shared().run(
            kTasks, 4,
            [&](int task) {
                if (std::this_thread::get_id() != first[static_cast<std::size_t>(task)])
                    mismatches.fetch_add(1);
            },
            ThreadPool::RunOptions{/*strided=*/true});
        ASSERT_EQ(mismatches.load(), 0) << "round " << round;
    }
}

TEST(ThreadPoolStrided, PropagatesTaskExceptions)
{
    std::atomic<int> executed{0};
    EXPECT_THROW(ThreadPool::shared().run(
                     8, 4,
                     [&](int task) {
                         executed.fetch_add(1);
                         if (task == 3) throw check_error("boom");
                     },
                     ThreadPool::RunOptions{/*strided=*/true}),
                 check_error);
    EXPECT_EQ(executed.load(), 8); // failure does not abandon sibling tasks
}

TEST(ParallelChunksPinned, CoversRangeExactlyOnce)
{
    for (const int threads : {1, 2, 4, 9}) {
        for (const int align : {1, 8, 64}) {
            for (const int extent : {0, 1, 7, 64, 193}) {
                std::mutex mutex;
                std::vector<std::pair<int, int>> chunks;
                parallel_chunks_pinned(threads, 0, extent, align, [&](int begin, int end) {
                    const std::lock_guard<std::mutex> lock(mutex);
                    chunks.emplace_back(begin, end);
                });
                std::sort(chunks.begin(), chunks.end());
                int covered = 0;
                int expected_next = 0;
                for (const auto& [begin, end] : chunks) {
                    EXPECT_EQ(begin, expected_next);
                    EXPECT_LT(begin, end);
                    covered += end - begin;
                    expected_next = end;
                }
                EXPECT_EQ(covered, extent)
                    << "threads=" << threads << " align=" << align << " extent=" << extent;
            }
        }
    }
}

} // namespace
} // namespace ccq
