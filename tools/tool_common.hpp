// Helpers shared by the command-line tools (ccq_serve, ccq_served,
// ccq_client): flag parsing and answer rendering.  Tools are built
// one-executable-per-file, so this stays header-only.  The rendering
// helpers are shared on purpose: CI asserts that ccq_serve (in-process)
// and ccq_client (over the wire) print bitwise-identical JSON.
#ifndef CCQ_TOOLS_TOOL_COMMON_HPP
#define CCQ_TOOLS_TOOL_COMMON_HPP

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccq/serve/query_engine.hpp"

namespace ccq_tools {

/// Tiny flag cursor: --name value pairs plus boolean --name flags.
class Args {
public:
    Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

    [[nodiscard]] bool flag(const char* name)
    {
        for (int i = 0; i < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)] && std::strcmp(argv_[i], name) == 0) {
                taken_[static_cast<std::size_t>(i)] = true;
                return true;
            }
        return false;
    }

    [[nodiscard]] std::optional<std::string> value(const char* name)
    {
        for (int i = 0; i + 1 < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)] && std::strcmp(argv_[i], name) == 0) {
                taken_[static_cast<std::size_t>(i)] = true;
                taken_[static_cast<std::size_t>(i + 1)] = true;
                return std::string(argv_[i + 1]);
            }
        return std::nullopt;
    }

    /// Call once all options are parsed, before any work happens, so a
    /// typo'd flag fails fast instead of after a multi-second build.
    void finish() const
    {
        for (int i = 0; i < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)])
                throw std::runtime_error(std::string("unrecognized argument: ") + argv_[i]);
    }

private:
    int argc_;
    char** argv_;
    std::vector<bool> taken_ = std::vector<bool>(static_cast<std::size_t>(argc_), false);
};

[[nodiscard]] inline long long require_ll(const std::optional<std::string>& text,
                                          const char* what)
{
    if (!text) throw std::runtime_error(std::string("missing required option ") + what);
    return std::stoll(*text);
}

inline void print_json_path(std::string& out, const std::vector<ccq::NodeId>& nodes)
{
    out += "[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(nodes[i]);
    }
    out += "]";
}

/// One answered query rendered as a JSON object or a plain-text line.
/// When `path` is non-null the whole record (reachability, distance, and
/// the node sequence) comes from the routing walk, so a corrupted table
/// can never yield a self-contradictory "reachable with empty path".
[[nodiscard]] inline std::string render_answer(ccq::NodeId from, ccq::NodeId to,
                                               ccq::Weight distance,
                                               const ccq::PathResult* path, bool json)
{
    const bool reachable = path != nullptr ? path->reachable : ccq::is_finite(distance);
    if (path != nullptr) distance = path->distance;
    std::string out;
    if (json) {
        out += "{\"from\":";
        out += std::to_string(from);
        out += ",\"to\":";
        out += std::to_string(to);
        out += ",\"reachable\":";
        out += reachable ? "true" : "false";
        out += ",\"distance\":" + std::to_string(reachable ? distance : -1);
        if (path != nullptr) {
            out += ",\"path\":";
            print_json_path(out, path->nodes);
        }
        out += "}";
    } else {
        out += std::to_string(from);
        out += " -> ";
        out += std::to_string(to);
        out += "  ";
        if (reachable) {
            out += "dist=";
            out += std::to_string(distance);
        } else {
            out += "unreachable";
        }
        if (path != nullptr && reachable) {
            out += "  via";
            for (const ccq::NodeId v : path->nodes) {
                out += ' ';
                out += std::to_string(v);
            }
        }
    }
    return out;
}

/// Prints a k-nearest answer: one JSON object, or one text line per target.
inline void print_nearest(ccq::NodeId from, const std::vector<ccq::NearTarget>& nearest,
                          bool json)
{
    if (json) {
        std::string out = "{\"from\":" + std::to_string(from) + ",\"nearest\":[";
        for (std::size_t i = 0; i < nearest.size(); ++i) {
            if (i > 0) out += ",";
            out += "{\"node\":" + std::to_string(nearest[i].node) +
                   ",\"distance\":" + std::to_string(nearest[i].distance) + "}";
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
    } else {
        for (const ccq::NearTarget& t : nearest)
            std::printf("%d  dist=%lld\n", t.node, static_cast<long long>(t.distance));
    }
}

/// Reads a batch file of one "u v" query per line.
[[nodiscard]] inline std::vector<ccq::PointQuery> read_batch_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open batch file " + path);
    std::vector<ccq::PointQuery> queries;
    long long u = 0, v = 0;
    while (in >> u >> v)
        queries.push_back({static_cast<ccq::NodeId>(u), static_cast<ccq::NodeId>(v)});
    return queries;
}

/// Prints batch answers in input order: a JSON array, or one line each.
/// Exactly one of `paths`/`distances` is consulted, per `want_path`.
inline void print_batch_answers(const std::vector<ccq::PointQuery>& queries,
                                const std::vector<ccq::Weight>& distances,
                                const std::vector<ccq::PathResult>& paths, bool want_path,
                                bool json)
{
    if (json) std::printf("[");
    for (std::size_t i = 0; i < queries.size(); ++i) {
        if (json && i > 0) std::printf(",");
        const std::string line =
            render_answer(queries[i].from, queries[i].to,
                          want_path ? paths[i].distance : distances[i],
                          want_path ? &paths[i] : nullptr, json);
        std::printf(json ? "%s" : "%s\n", line.c_str());
    }
    if (json) std::printf("]\n");
}

} // namespace ccq_tools

#endif // CCQ_TOOLS_TOOL_COMMON_HPP
