// ccq_serve — the distance-oracle serving front-end.
//
// The build-once/serve-many workflow in three subcommands:
//
//   ccq_serve build  --graph wan.gr --algo general --out wan.snap
//   ccq_serve query  --snapshot wan.snap --from 0 --to 95 --path --json
//   ccq_serve bench  --snapshot wan.snap --threads 4 --out BENCH_serve.json
//
// `build` runs any of the library's APSP algorithms on a graph file (or
// a generated instance via --random family:n:seed), attaches next-hop
// routing tables, and persists the oracle as a snapshot.  `query`
// answers one-shot or batch-file queries from a loaded snapshot.
// `bench` is a closed-loop load generator: per-query latencies are
// recorded on every worker and reported as queries/sec plus latency
// percentiles, written to a BENCH_serve.json artifact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ccq/apsp.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"

namespace {

using namespace ccq;

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s build --out <snapshot> (--graph <file> | --random <family>:<n>:<seed>)\n"
                 "       [--algo exact-minplus|logn-spanner|loglog|small-diameter|"
                 "large-bandwidth|general]\n"
                 "       [--seed <n>] [--eps <x>] [--threads <n>] [--no-routing]"
                 " [--save-graph <file>]\n"
                 "  %s query --snapshot <file> (--from <u> --to <v> | --batch <file>)\n"
                 "       [--path] [--k <n>] [--json] [--threads <n>]\n"
                 "  %s bench --snapshot <file> [--queries <n>] [--threads <n>]\n"
                 "       [--mix distance|path|mixed] [--seed <n>] [--out <json>]\n",
                 argv0, argv0, argv0);
    return 1;
}

/// Tiny flag cursor: --name value pairs plus boolean --name flags.
class Args {
public:
    Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

    [[nodiscard]] bool flag(const char* name)
    {
        for (int i = 0; i < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)] && std::strcmp(argv_[i], name) == 0) {
                taken_[static_cast<std::size_t>(i)] = true;
                return true;
            }
        return false;
    }

    [[nodiscard]] std::optional<std::string> value(const char* name)
    {
        for (int i = 0; i + 1 < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)] && std::strcmp(argv_[i], name) == 0) {
                taken_[static_cast<std::size_t>(i)] = true;
                taken_[static_cast<std::size_t>(i + 1)] = true;
                return std::string(argv_[i + 1]);
            }
        return std::nullopt;
    }

    /// Call once all options are parsed, before any work happens, so a
    /// typo'd flag fails fast instead of after a multi-second build.
    void finish() const
    {
        for (int i = 0; i < argc_; ++i)
            if (!taken_[static_cast<std::size_t>(i)])
                throw std::runtime_error(std::string("unrecognized argument: ") + argv_[i]);
    }

private:
    int argc_;
    char** argv_;
    std::vector<bool> taken_ = std::vector<bool>(static_cast<std::size_t>(argc_), false);
};

[[nodiscard]] long long require_ll(const std::optional<std::string>& text, const char* what)
{
    if (!text) throw std::runtime_error(std::string("missing required option ") + what);
    return std::stoll(*text);
}

[[nodiscard]] std::optional<ApspAlgorithmKind> parse_algorithm(const std::string& name)
{
    for (const ApspAlgorithmKind kind :
         {ApspAlgorithmKind::exact_baseline, ApspAlgorithmKind::logn_baseline,
          ApspAlgorithmKind::loglog, ApspAlgorithmKind::small_diameter,
          ApspAlgorithmKind::large_bandwidth, ApspAlgorithmKind::general})
        if (name == algorithm_kind_name(kind)) return kind;
    return std::nullopt;
}

[[nodiscard]] std::optional<GraphFamily> parse_family(const std::string& name)
{
    for (const GraphFamily family :
         {GraphFamily::path, GraphFamily::cycle, GraphFamily::star, GraphFamily::grid,
          GraphFamily::tree, GraphFamily::erdos_renyi_sparse, GraphFamily::erdos_renyi_dense,
          GraphFamily::geometric, GraphFamily::barabasi_albert, GraphFamily::clustered})
        if (name == family_name(family)) return family;
    return std::nullopt;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// snapshot metadata is untrusted input.
[[nodiscard]] std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
        } else {
            out += c;
        }
    }
    return out;
}

/// "--random family:n:seed" -> a generated instance.
[[nodiscard]] Graph generate_instance(const std::string& spec)
{
    std::istringstream fields(spec);
    std::string family_text, n_text, seed_text;
    if (!std::getline(fields, family_text, ':') || !std::getline(fields, n_text, ':') ||
        !std::getline(fields, seed_text))
        throw std::runtime_error("--random expects <family>:<n>:<seed>, got '" + spec + "'");
    const std::optional<GraphFamily> family = parse_family(family_text);
    if (!family) throw std::runtime_error("unknown graph family '" + family_text + "'");
    Rng rng(static_cast<std::uint64_t>(std::stoull(seed_text)));
    return make_family_instance(*family, std::stoi(n_text), WeightRange{1, 100}, rng);
}

// --- build ------------------------------------------------------------------

int cmd_build(Args& args)
{
    const std::optional<std::string> out = args.value("--out");
    if (!out) throw std::runtime_error("build: --out is required");
    const std::optional<std::string> graph_path = args.value("--graph");
    const std::optional<std::string> random_spec = args.value("--random");
    if (graph_path.has_value() == random_spec.has_value())
        throw std::runtime_error("build: exactly one of --graph / --random is required");
    const std::optional<std::string> save = args.value("--save-graph");

    ApspAlgorithmKind kind = ApspAlgorithmKind::general;
    if (const std::optional<std::string> algo = args.value("--algo")) {
        const std::optional<ApspAlgorithmKind> parsed = parse_algorithm(*algo);
        if (!parsed) throw std::runtime_error("unknown algorithm '" + *algo + "'");
        kind = *parsed;
    }
    ApspOptions options;
    if (const std::optional<std::string> seed = args.value("--seed"))
        options.seed = static_cast<std::uint64_t>(std::stoull(*seed));
    if (const std::optional<std::string> eps = args.value("--eps")) options.eps = std::stod(*eps);
    if (const std::optional<std::string> threads = args.value("--threads"))
        options.engine.threads = std::stoi(*threads);
    const bool no_routing = args.flag("--no-routing");
    args.finish();

    const Graph g = graph_path ? load_graph(*graph_path) : generate_instance(*random_spec);
    if (save) save_graph(*save, g, "ccq_serve build instance");
    const bool with_routing = !no_routing && !g.is_directed();

    const auto t0 = std::chrono::steady_clock::now();
    const DistanceOracle oracle(g, kind, options);
    const auto t1 = std::chrono::steady_clock::now();

    std::optional<RoutingTables> routing;
    if (with_routing) routing = build_routing_tables(g);
    const OracleSnapshot snapshot = OracleSnapshot::from_result(
        g, oracle.result(), options.seed, routing ? &*routing : nullptr);
    save_snapshot(*out, snapshot);

    const double build_s = std::chrono::duration<double>(t1 - t0).count();
    std::printf("built %s oracle: n=%d m=%zu stretch<=%.2f rounds=%.1f (%.2fs)\n",
                oracle.algorithm().c_str(), g.node_count(), g.edge_count(),
                oracle.claimed_stretch(), oracle.simulated_rounds(), build_s);
    std::printf("snapshot: %s (routing=%s)\n", out->c_str(), snapshot.has_routing ? "yes" : "no");
    return 0;
}

// --- query ------------------------------------------------------------------

void print_json_path(std::string& out, const std::vector<NodeId>& nodes)
{
    out += "[";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(nodes[i]);
    }
    out += "]";
}

/// One answered query rendered as a JSON object or a plain-text line.
/// When `path` is non-null the whole record (reachability, distance, and
/// the node sequence) comes from the routing walk, so a corrupted table
/// can never yield a self-contradictory "reachable with empty path".
[[nodiscard]] std::string render_answer(NodeId from, NodeId to, Weight distance,
                                        const PathResult* path, bool json)
{
    const bool reachable = path != nullptr ? path->reachable : is_finite(distance);
    if (path != nullptr) distance = path->distance;
    std::string out;
    if (json) {
        out += "{\"from\":";
        out += std::to_string(from);
        out += ",\"to\":";
        out += std::to_string(to);
        out += ",\"reachable\":";
        out += reachable ? "true" : "false";
        out += ",\"distance\":" + std::to_string(reachable ? distance : -1);
        if (path != nullptr) {
            out += ",\"path\":";
            print_json_path(out, path->nodes);
        }
        out += "}";
    } else {
        out += std::to_string(from);
        out += " -> ";
        out += std::to_string(to);
        out += "  ";
        if (reachable) {
            out += "dist=";
            out += std::to_string(distance);
        } else {
            out += "unreachable";
        }
        if (path != nullptr && reachable) {
            out += "  via";
            for (const NodeId v : path->nodes) {
                out += ' ';
                out += std::to_string(v);
            }
        }
    }
    return out;
}

int cmd_query(Args& args)
{
    const std::optional<std::string> snapshot_path = args.value("--snapshot");
    if (!snapshot_path) throw std::runtime_error("query: --snapshot is required");
    const bool json = args.flag("--json");
    const bool want_path = args.flag("--path");
    QueryEngineConfig config;
    if (const std::optional<std::string> threads = args.value("--threads"))
        config.threads = std::stoi(*threads);
    const std::optional<std::string> batch = args.value("--batch");
    const std::optional<std::string> from_text = args.value("--from");
    const std::optional<std::string> k_text = args.value("--k");
    const std::optional<std::string> to_text = args.value("--to");
    args.finish();

    const QueryEngine engine(load_snapshot(*snapshot_path), config);
    if (want_path && !engine.has_routing())
        throw std::runtime_error(
            "query: snapshot has no routing tables, cannot answer --path "
            "(rebuild without --no-routing)");

    if (batch) {
        std::ifstream in(*batch);
        if (!in) throw std::runtime_error("query: cannot open batch file " + *batch);
        std::vector<PointQuery> queries;
        long long u = 0, v = 0;
        while (in >> u >> v) queries.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
        // Answer the whole batch concurrently, then render those answers
        // in input order.
        std::vector<PathResult> paths;
        std::vector<Weight> distances;
        if (want_path)
            paths = engine.batch_paths(queries);
        else
            distances = engine.batch_distances(queries);
        if (json) std::printf("[");
        for (std::size_t i = 0; i < queries.size(); ++i) {
            if (json && i > 0) std::printf(",");
            const std::string line =
                render_answer(queries[i].from, queries[i].to,
                              want_path ? paths[i].distance : distances[i],
                              want_path ? &paths[i] : nullptr, json);
            std::printf(json ? "%s" : "%s\n", line.c_str());
        }
        if (json) std::printf("]\n");
        return 0;
    }

    const NodeId from = static_cast<NodeId>(require_ll(from_text, "--from"));
    if (k_text) {
        const int k = std::stoi(*k_text);
        const std::vector<NearTarget> nearest = engine.nearest_targets(from, k);
        if (json) {
            std::string out = "{\"from\":" + std::to_string(from) + ",\"nearest\":[";
            for (std::size_t i = 0; i < nearest.size(); ++i) {
                if (i > 0) out += ",";
                out += "{\"node\":" + std::to_string(nearest[i].node) +
                       ",\"distance\":" + std::to_string(nearest[i].distance) + "}";
            }
            out += "]}";
            std::printf("%s\n", out.c_str());
        } else {
            for (const NearTarget& t : nearest)
                std::printf("%d  dist=%lld\n", t.node, static_cast<long long>(t.distance));
        }
        return 0;
    }
    const NodeId to = static_cast<NodeId>(require_ll(to_text, "--to"));
    if (want_path) {
        const PathResult path = engine.path(from, to);
        std::printf("%s\n", render_answer(from, to, path.distance, &path, json).c_str());
    } else {
        std::printf("%s\n",
                    render_answer(from, to, engine.distance(from, to), nullptr, json).c_str());
    }
    return 0;
}

// --- bench ------------------------------------------------------------------

/// What one generated query executes ("mixed" draws from all three).
enum class QueryKind { distance, path, knearest };

struct BenchRun {
    int threads = 1;
    double seconds = 0.0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
};

[[nodiscard]] double percentile_us(const std::vector<double>& sorted_us, double p)
{
    if (sorted_us.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted_us.size() - 1);
    return sorted_us[static_cast<std::size_t>(rank + 0.5)];
}

/// Closed-loop run: `threads` workers each issue their queries serially,
/// timing every query; the next query starts when the previous returns.
[[nodiscard]] BenchRun run_load(const QueryEngine& engine,
                                const std::vector<PointQuery>& queries,
                                const std::vector<QueryKind>& kinds, int threads)
{
    const std::size_t total = queries.size();
    std::vector<std::vector<double>> latencies(static_cast<std::size_t>(threads));
    // Spawn the pool's workers before the clock starts; lazy spawn would
    // otherwise show up as a multi-ms first-query latency outlier.
    ThreadPool::shared().run(threads, threads, [](int) {});
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool::shared().run(threads, threads, [&](int worker) {
        std::vector<double>& mine = latencies[static_cast<std::size_t>(worker)];
        mine.reserve(total / static_cast<std::size_t>(threads) + 1);
        for (std::size_t i = static_cast<std::size_t>(worker); i < total;
             i += static_cast<std::size_t>(threads)) {
            const PointQuery q = queries[i];
            const auto q0 = std::chrono::steady_clock::now();
            switch (kinds[i]) {
            case QueryKind::distance: (void)engine.distance(q.from, q.to); break;
            case QueryKind::path: (void)engine.path(q.from, q.to); break;
            case QueryKind::knearest: (void)engine.nearest_targets(q.from, 8); break;
            }
            const auto q1 = std::chrono::steady_clock::now();
            mine.push_back(std::chrono::duration<double, std::micro>(q1 - q0).count());
        }
    });
    const auto t1 = std::chrono::steady_clock::now();

    std::vector<double> all;
    all.reserve(total);
    for (const std::vector<double>& chunk : latencies) all.insert(all.end(), chunk.begin(), chunk.end());
    std::sort(all.begin(), all.end());

    BenchRun run;
    run.threads = threads;
    run.seconds = std::chrono::duration<double>(t1 - t0).count();
    run.qps = run.seconds > 0.0 ? static_cast<double>(total) / run.seconds : 0.0;
    run.p50_us = percentile_us(all, 0.50);
    run.p90_us = percentile_us(all, 0.90);
    run.p99_us = percentile_us(all, 0.99);
    run.max_us = all.empty() ? 0.0 : all.back();
    return run;
}

void append_run_json(std::string& out, const BenchRun& run)
{
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"threads\":%d,\"seconds\":%.6f,\"qps\":%.1f,\"p50_us\":%.3f,"
                  "\"p90_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f}",
                  run.threads, run.seconds, run.qps, run.p50_us, run.p90_us, run.p99_us,
                  run.max_us);
    out += buffer;
}

int cmd_bench(Args& args)
{
    const std::optional<std::string> snapshot_path = args.value("--snapshot");
    if (!snapshot_path) throw std::runtime_error("bench: --snapshot is required");
    const std::string out_path = args.value("--out").value_or("BENCH_serve.json");
    long long query_count = 50000;
    if (const std::optional<std::string> q = args.value("--queries")) query_count = std::stoll(*q);
    if (query_count < 1) throw std::runtime_error("bench: --queries must be >= 1");
    int threads = 4;
    if (const std::optional<std::string> t = args.value("--threads")) threads = std::stoi(*t);
    std::uint64_t seed = 42;
    if (const std::optional<std::string> s = args.value("--seed"))
        seed = static_cast<std::uint64_t>(std::stoull(*s));
    const std::string mix_name = args.value("--mix").value_or("mixed");
    args.finish();
    if (threads < 1) throw std::runtime_error("bench: --threads must be >= 1");

    OracleSnapshot snapshot = load_snapshot(*snapshot_path);
    const SnapshotMeta meta = snapshot.meta; // survives the final run's move
    const int n = meta.node_count;
    if (n < 2) throw std::runtime_error("bench: snapshot too small to query");
    const bool can_path = snapshot.has_routing;
    if (mix_name == "path" && !can_path)
        throw std::runtime_error("bench: snapshot has no routing tables, cannot bench --mix path");

    // Pre-generate the workload so every run replays identical queries.
    Rng rng(seed);
    std::vector<PointQuery> queries;
    std::vector<QueryKind> kinds;
    queries.reserve(static_cast<std::size_t>(query_count));
    kinds.reserve(static_cast<std::size_t>(query_count));
    for (long long i = 0; i < query_count; ++i) {
        PointQuery q;
        q.from = static_cast<NodeId>(rng.uniform_int(0, n - 1));
        q.to = static_cast<NodeId>(rng.uniform_int(0, n - 2));
        if (q.to >= q.from) ++q.to; // distinct endpoints
        queries.push_back(q);
        if (mix_name == "distance")
            kinds.push_back(QueryKind::distance);
        else if (mix_name == "path")
            kinds.push_back(QueryKind::path);
        else if (mix_name == "mixed") {
            const double r = rng.uniform_real();
            if (can_path && r < 0.3)
                kinds.push_back(QueryKind::path);
            else if (r < 0.5)
                kinds.push_back(QueryKind::knearest);
            else
                kinds.push_back(QueryKind::distance);
        } else
            throw std::runtime_error("bench: unknown --mix '" + mix_name + "'");
    }

    // Fresh engine per run so the path cache starts cold for each; the
    // last run moves the snapshot instead of deep-copying the n^2 data.
    std::vector<BenchRun> runs;
    std::vector<int> thread_counts{1};
    if (threads > 1) thread_counts.push_back(threads);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        const bool last = i + 1 == thread_counts.size();
        const QueryEngine engine(last ? std::move(snapshot) : snapshot, QueryEngineConfig{});
        runs.push_back(run_load(engine, queries, kinds, thread_counts[i]));
        std::printf("threads=%d  %.0f queries/s  p50=%.1fus p99=%.1fus\n", runs.back().threads,
                    runs.back().qps, runs.back().p50_us, runs.back().p99_us);
    }
    const bool measured_speedup = runs.size() == 2 && runs[0].qps > 0.0;
    const double speedup = measured_speedup ? runs[1].qps / runs[0].qps : 1.0;

    std::string json = "{\n  \"tool\": \"ccq_serve bench\",\n";
    json += "  \"snapshot\": {\"nodes\": " + std::to_string(n) +
            ", \"edges\": " + std::to_string(meta.edge_count) + ", \"algorithm\": \"" +
            json_escape(meta.algorithm) + "\", \"claimed_stretch\": " +
            std::to_string(meta.claimed_stretch) + ", \"routing\": " +
            (can_path ? "true" : "false") + "},\n";
    json += "  \"mix\": \"" + mix_name + "\",\n";
    json += "  \"queries\": " + std::to_string(query_count) + ",\n";
    const unsigned hw = std::thread::hardware_concurrency();
    json += "  \"hardware_threads\": " + std::to_string(hw == 0 ? 1 : hw) + ",\n";
    json += "  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i > 0) json += ", ";
        append_run_json(json, runs[i]);
    }
    json += "],\n";
    // Honest reporting: with a single run there is no measured speedup.
    std::string speedup_text = "null";
    if (measured_speedup) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.3f", speedup);
        speedup_text = buffer;
    }
    json += "  \"speedup_vs_single_thread\": " + speedup_text + "\n}\n";

    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("bench: cannot open " + out_path);
    out << json;
    std::printf("speedup %dx-thread vs 1-thread: %.2fx -> %s\n", threads, speedup,
                out_path.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) return usage(argv[0]);
    const std::string command = argv[1];
    Args args(argc - 2, argv + 2);
    try {
        if (command == "build") return cmd_build(args);
        if (command == "query") return cmd_query(args);
        if (command == "bench") return cmd_bench(args);
        return usage(argv[0]);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ccq_serve %s: %s\n", command.c_str(), error.what());
        return 2;
    }
}
