// ccq_serve — the distance-oracle serving front-end.
//
// The build-once/serve-many workflow in three subcommands:
//
//   ccq_serve build  --graph wan.gr --algo general --out wan.snap --compress
//   ccq_serve query  --snapshot wan.snap --from 0 --to 95 --path --json
//   ccq_serve bench  --snapshot wan.snap --threads 4 --net 4 --out BENCH_serve.json
//
// `build` runs any of the library's APSP algorithms on a graph file (or
// a generated instance via --random family:n:seed), attaches next-hop
// routing tables, and persists the oracle as a snapshot — codec v1 by
// default, the compressed codec v2 with --compress.  `query` answers
// one-shot or batch-file queries from a loaded snapshot (--mmap serves
// straight from the mapped file).  `bench` is a closed-loop load
// generator: after --warmup untimed iterations, per-query latencies are
// recorded on every worker and reported as queries/sec plus latency
// percentiles; --net additionally drives the same workload through a
// real loopback TCP edge (in-process Server + one Client per
// connection).  Everything — including snapshot file size, load time,
// and both codecs' encoded sizes — lands in a BENCH_serve.json artifact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#endif

#include "ccq/apsp.hpp"
#include "ccq/net/client.hpp"
#include "ccq/net/server.hpp"
#include "ccq/obs/trace.hpp"
#include "ccq/serve/distance_source.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"
#include "ccq/spanner/greedy.hpp"
#include "tool_common.hpp"

namespace {

using namespace ccq;
using ccq_tools::Args;
using ccq_tools::render_answer;
using ccq_tools::require_ll;

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s build --out <snapshot> (--graph <file> | --random <family>:<n>:<seed>)\n"
                 "       [--algo exact-minplus|logn-spanner|loglog|small-diameter|"
                 "large-bandwidth|general]\n"
                 "       [--seed <n>] [--eps <x>] [--threads <n>] [--no-routing]"
                 " [--compress] [--save-graph <file>] [--trace-out <json>]\n"
                 "       [--sparse [--spanner baswana-sen|greedy] [--spanner-k <k>]"
                 " [--verify-stretch <sources>]]\n"
                 "  %s query --snapshot <file> (--from <u> --to <v> | --batch <file>)\n"
                 "       [--path] [--k <n>] [--json] [--threads <n>] [--mmap]\n"
                 "  %s bench --snapshot <file> [--queries <n>] [--warmup <n>] [--threads <n>]\n"
                 "       [--net <connections> | --connections <n>] [--rate <qps>]\n"
                 "       [--trace-every <n>]\n"
                 "       [--io threads|epoll] [--mmap] [--no-recode] [--no-metrics]"
                 " [--metrics-ab]\n"
                 "       [--mix distance|path|mixed] [--seed <n>] [--out <json>]\n"
                 "  %s bench --oracle-ablation [--sizes <n1,n2,...>] [--family <name>]\n"
                 "       [--queries <n>] [--spanner-k <k>] [--stretch-sources <n>]\n"
                 "       [--seed <n>] [--out <json>]\n",
                 argv0, argv0, argv0, argv0);
    return 1;
}

[[nodiscard]] std::optional<ApspAlgorithmKind> parse_algorithm(const std::string& name)
{
    for (const ApspAlgorithmKind kind :
         {ApspAlgorithmKind::exact_baseline, ApspAlgorithmKind::logn_baseline,
          ApspAlgorithmKind::loglog, ApspAlgorithmKind::small_diameter,
          ApspAlgorithmKind::large_bandwidth, ApspAlgorithmKind::general})
        if (name == algorithm_kind_name(kind)) return kind;
    return std::nullopt;
}

[[nodiscard]] std::optional<GraphFamily> parse_family(const std::string& name)
{
    for (const GraphFamily family :
         {GraphFamily::path, GraphFamily::cycle, GraphFamily::star, GraphFamily::grid,
          GraphFamily::tree, GraphFamily::erdos_renyi_sparse, GraphFamily::erdos_renyi_dense,
          GraphFamily::geometric, GraphFamily::barabasi_albert, GraphFamily::clustered})
        if (name == family_name(family)) return family;
    return std::nullopt;
}

/// "--random family:n:seed" -> a generated instance.
[[nodiscard]] Graph generate_instance(const std::string& spec)
{
    std::istringstream fields(spec);
    std::string family_text, n_text, seed_text;
    if (!std::getline(fields, family_text, ':') || !std::getline(fields, n_text, ':') ||
        !std::getline(fields, seed_text))
        throw std::runtime_error("--random expects <family>:<n>:<seed>, got '" + spec + "'");
    const std::optional<GraphFamily> family = parse_family(family_text);
    if (!family) throw std::runtime_error("unknown graph family '" + family_text + "'");
    Rng rng(static_cast<std::uint64_t>(std::stoull(seed_text)));
    return make_family_instance(*family, std::stoi(n_text), WeightRange{1, 100}, rng);
}

// --- build ------------------------------------------------------------------

/// `build --sparse`: persist a spanner edge list (codec v3) instead of a
/// dense n^2 oracle.  Orders of magnitude smaller on disk; the server
/// answers from it via bounded Dijkstra with a row cache.
int cmd_build_sparse(Args& args, const std::string& out)
{
    const std::optional<std::string> graph_path = args.value("--graph");
    const std::optional<std::string> random_spec = args.value("--random");
    if (graph_path.has_value() == random_spec.has_value())
        throw std::runtime_error("build: exactly one of --graph / --random is required");
    const std::optional<std::string> save = args.value("--save-graph");
    if (args.value("--algo") || args.flag("--compress"))
        throw std::runtime_error(
            "build: --sparse picks codec v3; --algo/--compress apply to dense snapshots only");

    std::uint64_t seed = 0;
    if (const std::optional<std::string> seed_text = args.value("--seed"))
        seed = static_cast<std::uint64_t>(std::stoull(*seed_text));
    int k = 2;
    if (const std::optional<std::string> k_text = args.value("--spanner-k")) {
        k = std::stoi(*k_text);
        if (k < 1) throw std::runtime_error("build: --spanner-k must be >= 1");
    }
    std::string construction = args.value("--spanner").value_or("baswana-sen");
    if (construction != "baswana-sen" && construction != "greedy")
        throw std::runtime_error("build: --spanner must be baswana-sen or greedy");
    std::optional<int> verify_sources;
    if (const std::optional<std::string> verify = args.value("--verify-stretch")) {
        verify_sources = std::stoi(*verify);
        if (*verify_sources < 1)
            throw std::runtime_error("build: --verify-stretch needs >= 1 sample sources");
    }
    args.finish();

    const Graph g = graph_path ? load_graph(*graph_path) : generate_instance(*random_spec);
    if (g.is_directed()) throw std::runtime_error("build: --sparse requires an undirected graph");
    if (save) save_graph(*save, g, "ccq_serve build instance");

    const auto t0 = std::chrono::steady_clock::now();
    Rng rng(seed);
    const SpannerResult result =
        construction == "greedy" ? greedy_spanner(g, k) : baswana_sen_spanner(g, k, rng);
    const auto t1 = std::chrono::steady_clock::now();

    const SparseSnapshot snapshot = SparseSnapshot::from_spanner(g, result, construction, seed);
    save_sparse_snapshot(out, snapshot);

    const double build_s = std::chrono::duration<double>(t1 - t0).count();
    std::printf("built %s spanner: n=%d m=%zu -> %zu edges, stretch<=%d (k=%d) (%.2fs)\n",
                construction.c_str(), g.node_count(), g.edge_count(), snapshot.edges.size(),
                snapshot.stretch_bound, snapshot.parameter_k, build_s);
    std::printf("snapshot: %s (codec=v%u, %llu bytes, routing=on-demand)\n", out.c_str(),
                format_version(SnapshotFormat::v3_spanner),
                static_cast<unsigned long long>(std::filesystem::file_size(out)));
    if (verify_sources) {
        const double measured = measured_spanner_stretch(g, result.spanner, *verify_sources);
        std::printf("measured stretch over %d sources: %.4f (bound %d)\n", *verify_sources,
                    measured, snapshot.stretch_bound);
        if (measured > static_cast<double>(snapshot.stretch_bound) + 1e-9)
            throw std::runtime_error("build: measured stretch exceeds the claimed bound");
    }
    return 0;
}

int cmd_build(Args& args)
{
    const std::optional<std::string> out = args.value("--out");
    if (!out) throw std::runtime_error("build: --out is required");
    if (args.flag("--sparse")) return cmd_build_sparse(args, *out);
    const std::optional<std::string> graph_path = args.value("--graph");
    const std::optional<std::string> random_spec = args.value("--random");
    if (graph_path.has_value() == random_spec.has_value())
        throw std::runtime_error("build: exactly one of --graph / --random is required");
    const std::optional<std::string> save = args.value("--save-graph");

    ApspAlgorithmKind kind = ApspAlgorithmKind::general;
    if (const std::optional<std::string> algo = args.value("--algo")) {
        const std::optional<ApspAlgorithmKind> parsed = parse_algorithm(*algo);
        if (!parsed) throw std::runtime_error("unknown algorithm '" + *algo + "'");
        kind = *parsed;
    }
    ApspOptions options;
    if (const std::optional<std::string> seed = args.value("--seed"))
        options.seed = static_cast<std::uint64_t>(std::stoull(*seed));
    if (const std::optional<std::string> eps = args.value("--eps")) options.eps = std::stod(*eps);
    if (const std::optional<std::string> threads = args.value("--threads"))
        options.engine.threads = std::stoi(*threads);
    const bool no_routing = args.flag("--no-routing");
    const SnapshotFormat codec =
        args.flag("--compress") ? SnapshotFormat::v2_compressed : SnapshotFormat::v1_raw;
    const std::optional<std::string> trace_out = args.value("--trace-out");
    args.finish();

    // Tracing covers the whole build: engine product spans, the ledger's
    // phase tree (B/E events), and the snapshot write all land on one
    // chrome://tracing timeline.
    if (trace_out) obs::Tracer::global().enable();

    const Graph g = graph_path ? load_graph(*graph_path) : generate_instance(*random_spec);
    if (save) save_graph(*save, g, "ccq_serve build instance");
    const bool with_routing = !no_routing && !g.is_directed();

    const auto t0 = std::chrono::steady_clock::now();
    const DistanceOracle oracle(g, kind, options);
    const auto t1 = std::chrono::steady_clock::now();

    std::optional<RoutingTables> routing;
    if (with_routing) routing = build_routing_tables(g);
    const OracleSnapshot snapshot = OracleSnapshot::from_result(
        g, oracle.result(), options.seed, routing ? &*routing : nullptr);
    save_snapshot(*out, snapshot, codec);

    if (trace_out) {
        oracle.result().ledger.emit_trace_totals();
        obs::Tracer::global().write(*trace_out);
        std::printf("trace: %s (%zu events)\n", trace_out->c_str(),
                    obs::Tracer::global().event_count());
    }

    const double build_s = std::chrono::duration<double>(t1 - t0).count();
    std::printf("built %s oracle: n=%d m=%zu stretch<=%.2f rounds=%.1f (%.2fs)\n",
                oracle.algorithm().c_str(), g.node_count(), g.edge_count(),
                oracle.claimed_stretch(), oracle.simulated_rounds(), build_s);
    std::printf("snapshot: %s (codec=v%u, %llu bytes, routing=%s)\n", out->c_str(),
                static_cast<std::uint32_t>(codec),
                static_cast<unsigned long long>(std::filesystem::file_size(*out)),
                snapshot.has_routing ? "yes" : "no");
    return 0;
}

// --- query ------------------------------------------------------------------

int cmd_query(Args& args)
{
    const std::optional<std::string> snapshot_path = args.value("--snapshot");
    if (!snapshot_path) throw std::runtime_error("query: --snapshot is required");
    const bool json = args.flag("--json");
    const bool want_path = args.flag("--path");
    const bool use_mmap = args.flag("--mmap");
    QueryEngineConfig config;
    if (const std::optional<std::string> threads = args.value("--threads"))
        config.threads = std::stoi(*threads);
    const std::optional<std::string> batch = args.value("--batch");
    const std::optional<std::string> from_text = args.value("--from");
    const std::optional<std::string> k_text = args.value("--k");
    const std::optional<std::string> to_text = args.value("--to");
    args.finish();

    // The factory hides the format: dense v1/v2 (eager or mmap'd) and
    // sparse v3 all come back as the same DistanceSource.
    const QueryEngine engine(
        open_distance_source(*snapshot_path, DistanceSourceOptions{.prefer_mmap = use_mmap}),
        config);
    if (want_path && !engine.has_routing())
        throw std::runtime_error(
            "query: snapshot has no routing tables, cannot answer --path "
            "(rebuild without --no-routing)");

    if (batch) {
        const std::vector<PointQuery> queries = ccq_tools::read_batch_file(*batch);
        // Answer the whole batch concurrently, then render those answers
        // in input order.
        std::vector<PathResult> paths;
        std::vector<Weight> distances;
        if (want_path)
            paths = engine.batch_paths(queries);
        else
            distances = engine.batch_distances(queries);
        ccq_tools::print_batch_answers(queries, distances, paths, want_path, json);
        return 0;
    }

    const NodeId from = static_cast<NodeId>(require_ll(from_text, "--from"));
    if (k_text) {
        const int k = std::stoi(*k_text);
        ccq_tools::print_nearest(from, engine.nearest_targets(from, k), json);
        return 0;
    }
    const NodeId to = static_cast<NodeId>(require_ll(to_text, "--to"));
    if (want_path) {
        const PathResult path = engine.path(from, to);
        std::printf("%s\n", render_answer(from, to, path.distance, &path, json).c_str());
    } else {
        std::printf("%s\n",
                    render_answer(from, to, engine.distance(from, to), nullptr, json).c_str());
    }
    return 0;
}

// --- bench ------------------------------------------------------------------

/// What one generated query executes ("mixed" draws from all three).
enum class QueryKind { distance, path, knearest };

struct BenchRun {
    int threads = 1;
    double seconds = 0.0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
    double p99_9_us = 0.0;
    double max_us = 0.0;
};

[[nodiscard]] double percentile_us(const std::vector<double>& sorted_us, double p)
{
    if (sorted_us.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted_us.size() - 1);
    return sorted_us[static_cast<std::size_t>(rank + 0.5)];
}

[[nodiscard]] BenchRun summarize(std::vector<std::vector<double>>& latencies, int threads,
                                 double seconds)
{
    std::vector<double> all;
    for (const std::vector<double>& chunk : latencies)
        all.insert(all.end(), chunk.begin(), chunk.end());
    std::sort(all.begin(), all.end());

    BenchRun run;
    run.threads = threads;
    run.seconds = seconds;
    run.qps = seconds > 0.0 ? static_cast<double>(all.size()) / seconds : 0.0;
    run.p50_us = percentile_us(all, 0.50);
    run.p90_us = percentile_us(all, 0.90);
    run.p99_us = percentile_us(all, 0.99);
    run.p99_9_us = percentile_us(all, 0.999);
    run.max_us = all.empty() ? 0.0 : all.back();
    return run;
}

void execute_query(const QueryEngine& engine, const PointQuery& q, QueryKind kind)
{
    switch (kind) {
    case QueryKind::distance: (void)engine.distance(q.from, q.to); break;
    case QueryKind::path: (void)engine.path(q.from, q.to); break;
    case QueryKind::knearest: (void)engine.nearest_targets(q.from, 8); break;
    }
}

/// Closed-loop run: an untimed pass over the first `warmup` queries
/// (caches, branch predictors, lazily decoded mmap rows), then `threads`
/// workers replay and time the whole workload — the warmed prefix
/// included — each issuing its queries serially (the next query starts
/// when the previous returns).
[[nodiscard]] BenchRun run_load(const QueryEngine& engine,
                                const std::vector<PointQuery>& queries,
                                const std::vector<QueryKind>& kinds, std::size_t warmup,
                                int threads)
{
    const std::size_t total = queries.size();
    warmup = std::min(warmup, total);
    std::vector<std::vector<double>> latencies(static_cast<std::size_t>(threads));
    // Spawn the pool's workers before the clock starts; lazy spawn would
    // otherwise show up as a multi-ms first-query latency outlier.
    ThreadPool::shared().run(threads, threads, [](int) {});
    // Untimed warmup pass over the workload prefix (caches, branch
    // predictors, lazily decoded mmap rows).
    ThreadPool::shared().run(threads, threads, [&](int worker) {
        for (std::size_t i = static_cast<std::size_t>(worker); i < warmup;
             i += static_cast<std::size_t>(threads))
            execute_query(engine, queries[i], kinds[i]);
    });
    const auto t0 = std::chrono::steady_clock::now();
    ThreadPool::shared().run(threads, threads, [&](int worker) {
        std::vector<double>& mine = latencies[static_cast<std::size_t>(worker)];
        mine.reserve(total / static_cast<std::size_t>(threads) + 1);
        for (std::size_t i = static_cast<std::size_t>(worker); i < total;
             i += static_cast<std::size_t>(threads)) {
            const PointQuery q = queries[i];
            const auto q0 = std::chrono::steady_clock::now();
            execute_query(engine, q, kinds[i]);
            const auto q1 = std::chrono::steady_clock::now();
            mine.push_back(std::chrono::duration<double, std::micro>(q1 - q0).count());
        }
    });
    const auto t1 = std::chrono::steady_clock::now();
    return summarize(latencies, threads, std::chrono::duration<double>(t1 - t0).count());
}

/// The same closed loop through a real network edge: one TCP connection
/// per worker against an in-process loopback server.
[[nodiscard]] BenchRun run_net_load(const std::string& host, int port,
                                    const std::vector<PointQuery>& queries,
                                    const std::vector<QueryKind>& kinds, std::size_t warmup,
                                    int connections)
{
    const std::size_t total = queries.size();
    warmup = std::min(warmup, total);
    std::vector<Client> clients;
    clients.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) clients.push_back(Client::connect(host, port));

    std::vector<std::vector<double>> latencies(static_cast<std::size_t>(connections));
    const auto run_phase = [&](std::size_t begin, std::size_t end, bool timed) {
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(connections));
        for (int worker = 0; worker < connections; ++worker)
            workers.emplace_back([&, worker] {
                Client& client = clients[static_cast<std::size_t>(worker)];
                std::vector<double>& mine = latencies[static_cast<std::size_t>(worker)];
                for (std::size_t i = begin + static_cast<std::size_t>(worker); i < end;
                     i += static_cast<std::size_t>(connections)) {
                    const PointQuery q = queries[i];
                    const auto q0 = std::chrono::steady_clock::now();
                    switch (kinds[i]) {
                    case QueryKind::distance: (void)client.distance(q.from, q.to); break;
                    case QueryKind::path: (void)client.path(q.from, q.to); break;
                    case QueryKind::knearest: (void)client.nearest_targets(q.from, 8); break;
                    }
                    if (timed) {
                        const auto q1 = std::chrono::steady_clock::now();
                        mine.push_back(
                            std::chrono::duration<double, std::micro>(q1 - q0).count());
                    }
                }
            });
        for (std::thread& worker : workers) worker.join();
    };

    // Same methodology as run_load: untimed pass over the warmup prefix,
    // then the timed pass replays the whole workload.
    run_phase(0, warmup, /*timed=*/false);
    const auto t0 = std::chrono::steady_clock::now();
    run_phase(0, total, /*timed=*/true);
    const auto t1 = std::chrono::steady_clock::now();
    return summarize(latencies, connections,
                     std::chrono::duration<double>(t1 - t0).count());
}

#ifdef __linux__

/// Open-loop network run: one epoll-multiplexed generator thread holds
/// `connections` sockets open and injects the workload at a fixed
/// aggregate `rate` (queries/sec), round-robin across connections,
/// regardless of how fast responses come back.  Latency is measured from
/// each query's *scheduled* send time, so server-side queueing delay is
/// charged to the server — a closed loop would throttle the offered load
/// down to whatever the server absorbs and hide exactly the tail that
/// p99.9 is supposed to expose.  A single thread multiplexing every
/// socket is also what lets the generator field thousands of concurrent
/// connections without a thread per connection.
[[nodiscard]] BenchRun run_open_load(const std::string& host, int port,
                                     const std::vector<PointQuery>& queries,
                                     const std::vector<QueryKind>& kinds, int connections,
                                     double rate, std::size_t trace_every)
{
    using clock = std::chrono::steady_clock;
    struct LoadConn {
        std::unique_ptr<TcpStream> stream;
        FrameDecoder decoder;
        std::string out;
        std::size_t out_offset = 0;
        std::deque<clock::time_point> due; ///< scheduled times of in-flight queries
        std::uint32_t armed = EPOLLIN;
        bool dirty = false; ///< has unsent bytes queued this tick
    };

    (void)raise_fd_limit(static_cast<std::size_t>(connections) + 64);
    std::vector<LoadConn> conns(static_cast<std::size_t>(connections));
    const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw std::runtime_error("bench: epoll_create1 failed");
    try {
        for (std::size_t c = 0; c < conns.size(); ++c) {
            conns[c].stream = TcpStream::connect(host, port);
            conns[c].stream->set_nonblocking(true);
            epoll_event ev = {};
            ev.events = conns[c].armed;
            ev.data.u64 = c;
            if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conns[c].stream->native_handle(),
                            &ev) != 0)
                throw std::runtime_error("bench: epoll_ctl failed");
        }

        const auto encode_query = [&](std::size_t i) {
            Request request;
            switch (kinds[i]) {
            case QueryKind::distance:
                request.op = Opcode::distance;
                request.from = queries[i].from;
                request.to = queries[i].to;
                break;
            case QueryKind::path:
                request.op = Opcode::path;
                request.from = queries[i].from;
                request.to = queries[i].to;
                break;
            case QueryKind::knearest:
                request.op = Opcode::k_nearest;
                request.from = queries[i].from;
                request.k = 8;
                break;
            }
            std::string body = encode_request(request);
            // Every trace_every-th query carries a sampled trace
            // envelope (id = query index + 1, so ids are nonzero and
            // greppable in the server's trace/flight output).
            if (trace_every > 0 && i % trace_every == 0)
                body = wrap_trace_envelope(TraceContext{i + 1, /*sampled=*/true}, body);
            return encode_frame(body);
        };
        const auto set_interest = [&](std::size_t c, std::uint32_t wanted) {
            if (wanted == conns[c].armed) return;
            epoll_event ev = {};
            ev.events = wanted;
            ev.data.u64 = c;
            if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conns[c].stream->native_handle(),
                            &ev) != 0)
                throw std::runtime_error("bench: epoll_ctl failed");
            conns[c].armed = wanted;
        };
        // Nonblocking flush: the generator must never block on a socket
        // the server has paused (backpressure), or the offered load — the
        // thing an open loop holds constant — would degrade.
        const auto try_flush = [&](std::size_t c) {
            LoadConn& conn = conns[c];
            while (conn.out_offset < conn.out.size()) {
                const ssize_t wrote =
                    ::send(conn.stream->native_handle(), conn.out.data() + conn.out_offset,
                           conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
                if (wrote > 0) {
                    conn.out_offset += static_cast<std::size_t>(wrote);
                    continue;
                }
                if (wrote < 0 && errno == EINTR) continue;
                if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                throw std::runtime_error("bench: server connection failed mid-load");
            }
            if (conn.out_offset == conn.out.size()) {
                conn.out.clear();
                conn.out_offset = 0;
            }
            set_interest(c, conn.out.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT));
        };

        const std::size_t total = queries.size();
        std::size_t sent = 0;
        std::size_t received = 0;
        std::vector<double> latencies;
        latencies.reserve(total);
        const auto t0 = clock::now();
        auto last_done = t0;
        const auto due_at = [&](std::size_t i) {
            return t0 + std::chrono::duration_cast<clock::duration>(
                            std::chrono::duration<double>(static_cast<double>(i) / rate));
        };
        std::vector<std::size_t> dirty;
        epoll_event events[256];
        while (received < total) {
            const auto now = clock::now();
            dirty.clear();
            while (sent < total && due_at(sent) <= now) {
                const std::size_t c = sent % conns.size();
                LoadConn& conn = conns[c];
                conn.out += encode_query(sent);
                conn.due.push_back(due_at(sent));
                if (!conn.dirty) {
                    conn.dirty = true;
                    dirty.push_back(c);
                }
                ++sent;
            }
            for (const std::size_t c : dirty) {
                conns[c].dirty = false;
                try_flush(c);
            }

            int timeout = 100; // replies-only phase: poll generously
            if (sent < total) {
                const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                    due_at(sent) - clock::now());
                timeout = static_cast<int>(std::clamp<long long>(until.count(), 0, 100));
            }
            const int ready = ::epoll_wait(
                epoll_fd, events, static_cast<int>(sizeof(events) / sizeof(events[0])),
                timeout);
            if (ready < 0) {
                if (errno == EINTR) continue;
                throw std::runtime_error("bench: epoll_wait failed");
            }
            for (int e = 0; e < ready; ++e) {
                const std::size_t c = events[e].data.u64;
                LoadConn& conn = conns[c];
                if ((events[e].events & EPOLLOUT) != 0) try_flush(c);
                if ((events[e].events & EPOLLIN) == 0) continue;
                char buffer[64 * 1024];
                while (true) {
                    const ssize_t got =
                        ::recv(conn.stream->native_handle(), buffer, sizeof(buffer), 0);
                    if (got > 0) {
                        conn.decoder.feed(
                            std::string_view(buffer, static_cast<std::size_t>(got)));
                        continue;
                    }
                    if (got < 0 && errno == EINTR) continue;
                    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                    throw std::runtime_error("bench: server closed a connection mid-load");
                }
                const auto done = clock::now();
                while (std::optional<std::string> reply = conn.decoder.next()) {
                    if (conn.due.empty())
                        throw std::runtime_error("bench: reply without an in-flight query");
                    latencies.push_back(
                        std::chrono::duration<double, std::micro>(done - conn.due.front())
                            .count());
                    conn.due.pop_front();
                    ++received;
                    last_done = done;
                }
            }
        }

        const double seconds = std::chrono::duration<double>(last_done - t0).count();
        std::sort(latencies.begin(), latencies.end());
        BenchRun run;
        run.threads = connections;
        run.seconds = seconds;
        run.qps = seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
        run.p50_us = percentile_us(latencies, 0.50);
        run.p90_us = percentile_us(latencies, 0.90);
        run.p99_us = percentile_us(latencies, 0.99);
        run.p99_9_us = percentile_us(latencies, 0.999);
        run.max_us = latencies.empty() ? 0.0 : latencies.back();
        ::close(epoll_fd);
        return run;
    } catch (...) {
        ::close(epoll_fd);
        throw;
    }
}

#else

[[nodiscard]] BenchRun run_open_load(const std::string&, int, const std::vector<PointQuery>&,
                                     const std::vector<QueryKind>&, int, double, std::size_t)
{
    throw std::runtime_error("bench: --rate (open-loop load) requires Linux");
}

#endif // __linux__

void append_run_json(std::string& out, const BenchRun& run)
{
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"threads\":%d,\"seconds\":%.6f,\"qps\":%.1f,\"p50_us\":%.3f,"
                  "\"p90_us\":%.3f,\"p99_us\":%.3f,\"p99_9_us\":%.3f,\"max_us\":%.3f}",
                  run.threads, run.seconds, run.qps, run.p50_us, run.p90_us, run.p99_us,
                  run.p99_9_us, run.max_us);
    out += buffer;
}

/// The byte size of `snapshot` re-encoded under `codec` (no file IO).
[[nodiscard]] std::uint64_t encoded_bytes(const OracleSnapshot& snapshot, SnapshotFormat codec)
{
    std::ostringstream out(std::ios::binary);
    write_snapshot(out, snapshot, codec);
    return static_cast<std::uint64_t>(out.str().size());
}

// --- bench --oracle-ablation ------------------------------------------------

/// One (codec, instance) measurement of the storage/latency/accuracy
/// trade-off: bytes on disk, load time, point-query percentiles, and the
/// worst observed estimate/exact ratio over the sampled source rows.
struct AblationFormatStats {
    std::string format;
    std::string kind;
    std::uint64_t bytes = 0;
    double load_seconds = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double measured_stretch = 0.0; ///< infinity if any finite pair was lost
};

[[nodiscard]] AblationFormatStats measure_format(
    const std::string& path, const std::vector<PointQuery>& queries,
    const std::vector<std::pair<NodeId, std::vector<Weight>>>& exact_rows)
{
    AblationFormatStats stats;
    stats.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(path));

    const auto load0 = std::chrono::steady_clock::now();
    const std::shared_ptr<const DistanceSource> source = open_distance_source(path);
    const auto load1 = std::chrono::steady_clock::now();
    stats.load_seconds = std::chrono::duration<double>(load1 - load0).count();
    stats.format = snapshot_format_name(peek_snapshot_format(path));
    stats.kind = source_kind_name(source->kind());

    const QueryEngine engine(source, QueryEngineConfig{.threads = 1});
    std::vector<double> latencies;
    latencies.reserve(queries.size());
    for (const PointQuery& q : queries) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)engine.distance(q.from, q.to);
        const auto t1 = std::chrono::steady_clock::now();
        latencies.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    std::sort(latencies.begin(), latencies.end());
    stats.p50_us = percentile_us(latencies, 0.50);
    stats.p99_us = percentile_us(latencies, 0.99);

    double worst = 1.0;
    for (const auto& [s, exact] : exact_rows) {
        for (NodeId t = 0; t < static_cast<NodeId>(exact.size()); ++t) {
            if (t == s || !is_finite(exact[static_cast<std::size_t>(t)])) continue;
            const Weight estimate = engine.distance(s, t);
            if (!is_finite(estimate)) {
                worst = std::numeric_limits<double>::infinity();
                continue;
            }
            worst = std::max(worst, static_cast<double>(estimate) /
                                        static_cast<double>(exact[static_cast<std::size_t>(t)]));
        }
    }
    stats.measured_stretch = worst;
    return stats;
}

void append_format_json(std::string& out, const AblationFormatStats& stats)
{
    // An infinite stretch (a pair the format lost) has no JSON spelling;
    // it lands as null so consumers notice instead of mis-parsing "inf".
    char stretch_text[32] = "null";
    if (stats.measured_stretch < std::numeric_limits<double>::infinity())
        std::snprintf(stretch_text, sizeof(stretch_text), "%.4f", stats.measured_stretch);
    char buffer[384];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"format\": \"%s\", \"kind\": \"%s\", \"bytes\": %llu, "
                  "\"load_seconds\": %.6f, \"query_p50_us\": %.3f, \"query_p99_us\": %.3f, "
                  "\"measured_stretch\": %s}",
                  stats.format.c_str(), stats.kind.c_str(),
                  static_cast<unsigned long long>(stats.bytes), stats.load_seconds, stats.p50_us,
                  stats.p99_us, stretch_text);
    out += buffer;
}

/// `bench --oracle-ablation`: for each instance size, build the same
/// oracle three ways (dense v1, dense v2, spanner v3), then measure
/// bytes / load time / query latency / realized stretch for each.  The
/// artifact (BENCH_oracle.json) is the data behind docs/SNAPSHOTS.md's
/// trade-off table.
int cmd_bench_ablation(Args& args)
{
    const std::string out_path = args.value("--out").value_or("BENCH_oracle.json");
    std::vector<int> sizes{48, 96, 192};
    if (const std::optional<std::string> text = args.value("--sizes")) {
        sizes.clear();
        std::istringstream fields(*text);
        for (std::string item; std::getline(fields, item, ',');) sizes.push_back(std::stoi(item));
        if (sizes.empty()) throw std::runtime_error("bench: --sizes needs at least one n");
        for (const int n : sizes)
            if (n < 2) throw std::runtime_error("bench: ablation sizes must be >= 2");
    }
    const std::string family_text = args.value("--family").value_or("er_sparse");
    const std::optional<GraphFamily> family = parse_family(family_text);
    if (!family) throw std::runtime_error("unknown graph family '" + family_text + "'");
    std::uint64_t seed = 7;
    if (const std::optional<std::string> s = args.value("--seed"))
        seed = static_cast<std::uint64_t>(std::stoull(*s));
    long long query_count = 2000;
    if (const std::optional<std::string> q = args.value("--queries")) query_count = std::stoll(*q);
    if (query_count < 1) throw std::runtime_error("bench: --queries must be >= 1");
    int spanner_k = 2;
    if (const std::optional<std::string> k = args.value("--spanner-k")) spanner_k = std::stoi(*k);
    if (spanner_k < 1) throw std::runtime_error("bench: --spanner-k must be >= 1");
    int stretch_sources = 4;
    if (const std::optional<std::string> c = args.value("--stretch-sources"))
        stretch_sources = std::stoi(*c);
    if (stretch_sources < 1) throw std::runtime_error("bench: --stretch-sources must be >= 1");
    args.finish();

    const std::filesystem::path tmp_dir =
        std::filesystem::temp_directory_path() /
        ("ccq_ablation_" + std::to_string(static_cast<unsigned long long>(seed)));
    std::filesystem::create_directories(tmp_dir);

    std::string points_json;
    for (std::size_t index = 0; index < sizes.size(); ++index) {
        const int n = sizes[index];
        Rng instance_rng(seed + static_cast<std::uint64_t>(n));
        const Graph g = make_family_instance(*family, n, WeightRange{1, 100}, instance_rng);

        // Ground truth for the sampled sources (exact Dijkstra on the
        // input graph), shared by all three formats.
        Rng source_rng(seed * 31 + static_cast<std::uint64_t>(n));
        std::vector<NodeId> sources;
        while (sources.size() < static_cast<std::size_t>(std::min(stretch_sources, n))) {
            const NodeId s = static_cast<NodeId>(source_rng.uniform_int(0, n - 1));
            if (std::find(sources.begin(), sources.end(), s) == sources.end())
                sources.push_back(s);
        }
        std::vector<std::pair<NodeId, std::vector<Weight>>> exact_rows;
        for (const NodeId s : sources) exact_rows.emplace_back(s, dijkstra_from(g, s));

        // Identical workload for every format at this n.
        Rng query_rng(seed + 1);
        std::vector<PointQuery> queries;
        queries.reserve(static_cast<std::size_t>(query_count));
        for (long long i = 0; i < query_count; ++i) {
            PointQuery q;
            q.from = static_cast<NodeId>(query_rng.uniform_int(0, n - 1));
            q.to = static_cast<NodeId>(query_rng.uniform_int(0, n - 2));
            if (q.to >= q.from) ++q.to;
            queries.push_back(q);
        }

        // Dense oracle once, persisted under both dense codecs.
        ApspOptions options;
        options.seed = seed;
        const DistanceOracle oracle(g, ApspAlgorithmKind::general, options);
        RoutingTables routing = build_routing_tables(g);
        const OracleSnapshot dense =
            OracleSnapshot::from_result(g, oracle.result(), seed, &routing);
        const std::string v1_path = (tmp_dir / (std::to_string(n) + ".v1.snap")).string();
        const std::string v2_path = (tmp_dir / (std::to_string(n) + ".v2.snap")).string();
        save_snapshot(v1_path, dense, SnapshotFormat::v1_raw);
        save_snapshot(v2_path, dense, SnapshotFormat::v2_compressed);

        // Spanner snapshot of the same instance (codec v3).
        Rng spanner_rng(seed + 2);
        const SpannerResult spanner = baswana_sen_spanner(g, spanner_k, spanner_rng);
        const SparseSnapshot sparse =
            SparseSnapshot::from_spanner(g, spanner, "baswana-sen", seed);
        const std::string v3_path = (tmp_dir / (std::to_string(n) + ".v3.snap")).string();
        save_sparse_snapshot(v3_path, sparse);

        std::string formats_json;
        for (const std::string& path : {v1_path, v2_path, v3_path}) {
            if (!formats_json.empty()) formats_json += ", ";
            const AblationFormatStats stats = measure_format(path, queries, exact_rows);
            append_format_json(formats_json, stats);
            std::printf("n=%d %-13s %9llu bytes  load=%.4fs  p50=%.1fus p99=%.1fus  "
                        "stretch=%.3f\n",
                        n, stats.format.c_str(), static_cast<unsigned long long>(stats.bytes),
                        stats.load_seconds, stats.p50_us, stats.p99_us, stats.measured_stretch);
            std::filesystem::remove(path);
        }

        if (index > 0) points_json += ",\n";
        points_json += "    {\"n\": " + std::to_string(n) +
                       ", \"edges\": " + std::to_string(g.edge_count()) +
                       ", \"spanner_edges\": " + std::to_string(sparse.edges.size()) +
                       ", \"spanner_stretch_bound\": " + std::to_string(sparse.stretch_bound) +
                       ", \"formats\": [" + formats_json + "]}";
    }
    std::filesystem::remove_all(tmp_dir);

    std::string json = "{\n  \"tool\": \"ccq_serve bench --oracle-ablation\",\n";
    json += "  \"family\": \"" + family_text + "\",\n";
    json += "  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"queries\": " + std::to_string(query_count) + ",\n";
    json += "  \"spanner_k\": " + std::to_string(spanner_k) + ",\n";
    json += "  \"stretch_sources\": " + std::to_string(stretch_sources) + ",\n";
    json += "  \"points\": [\n" + points_json + "\n  ]\n}\n";

    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("bench: cannot open " + out_path);
    out << json;
    std::printf("oracle ablation: %zu sizes -> %s\n", sizes.size(), out_path.c_str());
    return 0;
}

int cmd_bench(Args& args)
{
    if (args.flag("--oracle-ablation")) return cmd_bench_ablation(args);
    const std::optional<std::string> snapshot_path = args.value("--snapshot");
    if (!snapshot_path) throw std::runtime_error("bench: --snapshot is required");
    const std::string out_path = args.value("--out").value_or("BENCH_serve.json");
    long long query_count = 50000;
    if (const std::optional<std::string> q = args.value("--queries")) query_count = std::stoll(*q);
    if (query_count < 1) throw std::runtime_error("bench: --queries must be >= 1");
    long long warmup_count = 2000;
    if (const std::optional<std::string> w = args.value("--warmup")) warmup_count = std::stoll(*w);
    if (warmup_count < 0) throw std::runtime_error("bench: --warmup must be >= 0");
    int threads = 4;
    if (const std::optional<std::string> t = args.value("--threads")) threads = std::stoi(*t);
    int net_connections = 0;
    if (const std::optional<std::string> c = args.value("--net"))
        net_connections = std::stoi(*c);
    if (const std::optional<std::string> c = args.value("--connections"))
        net_connections = std::stoi(*c); // spelled-out alias of --net
    if (net_connections < 0) throw std::runtime_error("bench: --net must be >= 0");
    double rate = 0.0; // 0 = closed loop (the historical behavior)
    if (const std::optional<std::string> r = args.value("--rate")) rate = std::stod(*r);
    if (rate < 0.0) throw std::runtime_error("bench: --rate must be >= 0");
    if (rate > 0.0 && net_connections == 0)
        throw std::runtime_error("bench: --rate needs --connections (or --net)");
    std::size_t trace_every = 0; // 0 = no trace envelopes
    if (const std::optional<std::string> every = args.value("--trace-every"))
        trace_every = static_cast<std::size_t>(std::stoull(*every));
    IoBackend io = default_io_backend();
    if (const std::optional<std::string> backend = args.value("--io"))
        io = parse_io_backend(*backend);
    const bool use_mmap = args.flag("--mmap");
    const bool no_recode = args.flag("--no-recode");
    const bool no_metrics = args.flag("--no-metrics");
    const bool metrics_ab = args.flag("--metrics-ab");
    std::uint64_t seed = 42;
    if (const std::optional<std::string> s = args.value("--seed"))
        seed = static_cast<std::uint64_t>(std::stoull(*s));
    const std::string mix_name = args.value("--mix").value_or("mixed");
    args.finish();
    if (threads < 1) throw std::runtime_error("bench: --threads must be >= 1");
    if (metrics_ab && net_connections == 0)
        throw std::runtime_error("bench: --metrics-ab needs --net (or --connections)");
    if (metrics_ab && rate > 0.0)
        throw std::runtime_error(
            "bench: --metrics-ab measures closed-loop qps, drop --rate");
    if (trace_every > 0 && rate <= 0.0)
        throw std::runtime_error("bench: --trace-every needs --rate (open-loop load)");

    // Load (timed): eagerly, just the mmap open + integrity pass, or —
    // for a v3 file — the sparse decode + CSR build.
    const std::uint64_t file_bytes =
        static_cast<std::uint64_t>(std::filesystem::file_size(*snapshot_path));
    const SnapshotFormat format = peek_snapshot_format(*snapshot_path);
    const bool sparse = format == SnapshotFormat::v3_spanner;
    if (sparse && use_mmap)
        throw std::runtime_error(
            "bench: --mmap applies to dense snapshots (v3 decodes into memory)");
    const auto load0 = std::chrono::steady_clock::now();
    std::shared_ptr<const MappedSnapshot> mapped;
    std::shared_ptr<const DistanceSource> sparse_source;
    OracleSnapshot snapshot;
    std::optional<std::uint64_t> v3_bytes;
    if (sparse) {
        SparseSnapshot sparse_snapshot = load_sparse_snapshot(*snapshot_path);
        if (!no_recode) {
            std::ostringstream encoded(std::ios::binary);
            write_sparse_snapshot(encoded, sparse_snapshot);
            v3_bytes = static_cast<std::uint64_t>(encoded.str().size());
        }
        sparse_source = std::make_shared<const SpannerDistanceSource>(std::move(sparse_snapshot),
                                                                      SpannerSourceConfig{});
    } else if (use_mmap) {
        mapped = std::make_shared<const MappedSnapshot>(*snapshot_path);
    } else {
        snapshot = load_snapshot(*snapshot_path);
    }
    const auto load1 = std::chrono::steady_clock::now();
    const double load_seconds = std::chrono::duration<double>(load1 - load0).count();

    const SnapshotMeta meta =
        sparse ? sparse_source->meta() : (use_mmap ? mapped->meta() : snapshot.meta);
    const std::uint32_t file_format_version = format_version(format);
    const int n = meta.node_count;
    if (n < 2) throw std::runtime_error("bench: snapshot too small to query");
    // A spanner source routes on demand (fresh Dijkstra tree per walk).
    const bool can_path =
        sparse ? true : (use_mmap ? mapped->has_routing() : snapshot.has_routing);
    if (mix_name == "path" && !can_path)
        throw std::runtime_error("bench: snapshot has no routing tables, cannot bench --mix path");

    // Codec comparison on the bench instance: re-encode the same oracle
    // under both dense codecs (in memory, no temp files).  The
    // materialized copy is scoped: in --mmap mode it exists only for the
    // re-encode, so the serving runs keep the lazy-decode memory profile
    // — and --no-recode skips the O(n^2) materialization entirely for
    // large artifacts where only qps/latency matter.  In eager mode the
    // copy becomes the one shared snapshot every engine serves from
    // (fresh engine per run = cold cache, without re-copying n^2 cells).
    // Sparse files report only codec_v3_bytes: the source graph needed
    // to rebuild a dense oracle is not in the file, and vice versa.
    std::shared_ptr<const OracleSnapshot> shared_snapshot;
    std::optional<std::uint64_t> v1_bytes;
    std::optional<std::uint64_t> v2_bytes;
    if (!sparse && (!use_mmap || !no_recode)) {
        OracleSnapshot materialized = use_mmap ? mapped->materialize() : std::move(snapshot);
        if (!no_recode) {
            v1_bytes = encoded_bytes(materialized, SnapshotFormat::v1_raw);
            v2_bytes = encoded_bytes(materialized, SnapshotFormat::v2_compressed);
        }
        if (!use_mmap)
            shared_snapshot =
                std::make_shared<const OracleSnapshot>(std::move(materialized));
    }

    // Pre-generate the workload so every run replays identical queries.
    Rng rng(seed);
    std::vector<PointQuery> queries;
    std::vector<QueryKind> kinds;
    queries.reserve(static_cast<std::size_t>(query_count));
    kinds.reserve(static_cast<std::size_t>(query_count));
    for (long long i = 0; i < query_count; ++i) {
        PointQuery q;
        q.from = static_cast<NodeId>(rng.uniform_int(0, n - 1));
        q.to = static_cast<NodeId>(rng.uniform_int(0, n - 2));
        if (q.to >= q.from) ++q.to; // distinct endpoints
        queries.push_back(q);
        if (mix_name == "distance")
            kinds.push_back(QueryKind::distance);
        else if (mix_name == "path")
            kinds.push_back(QueryKind::path);
        else if (mix_name == "mixed") {
            const double r = rng.uniform_real();
            if (can_path && r < 0.3)
                kinds.push_back(QueryKind::path);
            else if (r < 0.5)
                kinds.push_back(QueryKind::knearest);
            else
                kinds.push_back(QueryKind::distance);
        } else
            throw std::runtime_error("bench: unknown --mix '" + mix_name + "'");
    }
    const std::size_t warmup = static_cast<std::size_t>(warmup_count);

    // Fresh engine per run so the path cache starts cold for each; both
    // modes share the underlying data (shared_ptr), so engines are cheap.
    const auto make_engine = [&](QueryEngineConfig config) {
        if (sparse) return QueryEngine(sparse_source, config);
        return use_mmap ? QueryEngine(mapped, config) : QueryEngine(shared_snapshot, config);
    };

    std::vector<BenchRun> runs;
    std::vector<int> thread_counts{1};
    if (threads > 1) thread_counts.push_back(threads);
    for (const int count : thread_counts) {
        const QueryEngine engine = make_engine(QueryEngineConfig{});
        runs.push_back(run_load(engine, queries, kinds, warmup, count));
        std::printf("in-process threads=%d  %.0f queries/s  p50=%.1fus p99=%.1fus\n",
                    runs.back().threads, runs.back().qps, runs.back().p50_us,
                    runs.back().p99_us);
    }
    const bool measured_speedup = runs.size() == 2 && runs[0].qps > 0.0;
    const double speedup = measured_speedup ? runs[1].qps / runs[0].qps : 1.0;

    // The network edge: same workload, one in-process loopback server per
    // run (fresh engine, cold cache), one Client connection per worker.
    // `metrics_on` toggles ServerConfig::metrics so the A/B pass below can
    // price hot-path recording against an otherwise identical server.
    const auto run_net_once = [&](int count, bool metrics_on) {
        // In-place construction: QueryEngine is deliberately immovable
        // (mutex shards), so build it inside the shared_ptr directly.
        const std::shared_ptr<const QueryEngine> engine =
            sparse ? std::make_shared<const QueryEngine>(sparse_source, QueryEngineConfig{})
            : use_mmap
                ? std::make_shared<const QueryEngine>(mapped, QueryEngineConfig{})
                : std::make_shared<const QueryEngine>(shared_snapshot, QueryEngineConfig{});
        ServerConfig server_config;
        server_config.io = io;
        server_config.metrics = metrics_on;
        Server server(engine, server_config);
        const int port = server.listen();
        std::thread accept_thread([&server] { server.run(); });
        const BenchRun run =
            rate > 0.0
                ? run_open_load("127.0.0.1", port, queries, kinds, count, rate, trace_every)
                : run_net_load("127.0.0.1", port, queries, kinds, warmup, count);
        {
            Client control = Client::connect("127.0.0.1", port);
            control.shutdown_server();
        }
        accept_thread.join();
        return run;
    };

    std::vector<BenchRun> net_runs;
    if (net_connections > 0) {
        // An open-loop run measures one operating point (connections x
        // rate); the closed loop keeps its 1-vs-N scaling pair.
        std::vector<int> connection_counts;
        if (rate > 0.0) {
            connection_counts.push_back(net_connections);
        } else {
            connection_counts.push_back(1);
            if (net_connections > 1) connection_counts.push_back(net_connections);
        }
        for (const int count : connection_counts) {
            net_runs.push_back(run_net_once(count, /*metrics_on=*/!no_metrics));
            char rate_label[32] = "";
            if (rate > 0.0)
                std::snprintf(rate_label, sizeof rate_label, " rate=%.0f", rate);
            std::printf("network io=%s connections=%d%s  %.0f queries/s  "
                        "p50=%.1fus p99=%.1fus p99.9=%.1fus\n",
                        io_backend_name(io), net_runs.back().threads, rate_label,
                        net_runs.back().qps, net_runs.back().p50_us,
                        net_runs.back().p99_us, net_runs.back().p99_9_us);
        }
    }

    // Metrics A/B: alternate off/on closed-loop runs and keep each arm's
    // best qps — best-of-N damps scheduler noise where a mean would
    // smear it into the overhead estimate.
    struct MetricsAb {
        double on_qps = 0.0;
        double off_qps = 0.0;
        double overhead_pct = 0.0;
    };
    std::optional<MetricsAb> ab;
    if (metrics_ab) {
        MetricsAb measured;
        constexpr int kAbRepeats = 5;
        for (int repeat = 0; repeat < kAbRepeats; ++repeat) {
            measured.off_qps =
                std::max(measured.off_qps, run_net_once(net_connections, false).qps);
            measured.on_qps =
                std::max(measured.on_qps, run_net_once(net_connections, true).qps);
        }
        measured.overhead_pct =
            measured.off_qps > 0.0
                ? (measured.off_qps - measured.on_qps) / measured.off_qps * 100.0
                : 0.0;
        ab = measured;
        std::printf("metrics A/B io=%s connections=%d  on=%.0f qps, off=%.0f qps, "
                    "overhead=%.2f%%\n",
                    io_backend_name(io), net_connections, ab->on_qps, ab->off_qps,
                    ab->overhead_pct);
    }

    std::string json = "{\n  \"tool\": \"ccq_serve bench\",\n";
    json += "  \"snapshot\": {\"nodes\": " + std::to_string(n) +
            ", \"edges\": " + std::to_string(meta.edge_count) + ", \"algorithm\": \"" +
            json_escape(meta.algorithm) + "\", \"claimed_stretch\": " +
            std::to_string(meta.claimed_stretch) + ", \"routing\": " +
            (can_path ? "true" : "false") + "},\n";
    // Schema contract: every codec_*_bytes key is always present (null
    // when not measured), so consumers can key on shape, not probing.
    json += "  \"snapshot_file\": {\"path\": \"" + json_escape(*snapshot_path) +
            "\", \"bytes\": " + std::to_string(file_bytes) +
            ", \"format_version\": " + std::to_string(file_format_version) +
            ", \"format\": \"" + snapshot_format_name(format) +
            "\", \"source_kind\": \"" +
            (sparse ? source_kind_name(SourceKind::spanner)
                    : source_kind_name(use_mmap ? SourceKind::mapped : SourceKind::dense)) +
            "\", \"load_mode\": \"" + (sparse ? "sparse" : (use_mmap ? "mmap" : "eager")) +
            "\", \"load_seconds\": " + std::to_string(load_seconds) +
            ", \"codec_v1_bytes\": " + (v1_bytes ? std::to_string(*v1_bytes) : "null") +
            ", \"codec_v2_bytes\": " + (v2_bytes ? std::to_string(*v2_bytes) : "null") +
            ", \"codec_v3_bytes\": " + (v3_bytes ? std::to_string(*v3_bytes) : "null") +
            "},\n";
    json += "  \"mix\": \"" + mix_name + "\",\n";
    json += "  \"queries\": " + std::to_string(query_count) + ",\n";
    json += "  \"warmup\": " + std::to_string(warmup_count) + ",\n";
    const unsigned hw = std::thread::hardware_concurrency();
    json += "  \"hardware_threads\": " + std::to_string(hw == 0 ? 1 : hw) + ",\n";
    json += "  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i > 0) json += ", ";
        append_run_json(json, runs[i]);
    }
    json += "],\n";
    // Honest reporting: with a single run there is no measured speedup.
    std::string speedup_text = "null";
    if (measured_speedup) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.3f", speedup);
        speedup_text = buffer;
    }
    json += "  \"speedup_vs_single_thread\": " + speedup_text + ",\n";
    if (ab) {
        char buffer[192];
        std::snprintf(buffer, sizeof(buffer),
                      "{\"connections\": %d, \"metrics_on_qps\": %.1f, "
                      "\"metrics_off_qps\": %.1f, \"overhead_pct\": %.3f}",
                      net_connections, ab->on_qps, ab->off_qps, ab->overhead_pct);
        json += "  \"metrics_overhead\": ";
        json += buffer;
        json += ",\n";
    } else {
        json += "  \"metrics_overhead\": null,\n";
    }
    if (net_runs.empty()) {
        json += "  \"net\": null\n}\n";
    } else {
        std::string rate_text = "null";
        if (rate > 0.0) {
            char buffer[64];
            std::snprintf(buffer, sizeof(buffer), "%.1f", rate);
            rate_text = buffer;
        }
        json += "  \"net\": {\"io\": \"" + std::string(io_backend_name(io)) +
                "\", \"mode\": \"" + (rate > 0.0 ? "open" : "closed") +
                "\", \"connections\": " + std::to_string(net_connections) +
                ", \"rate\": " + rate_text + ", \"runs\": [";
        for (std::size_t i = 0; i < net_runs.size(); ++i) {
            if (i > 0) json += ", ";
            append_run_json(json, net_runs[i]);
        }
        // The headline tail numbers (the highest-connection run) under a
        // stable key so CI and dashboards need not dig through `runs`.
        const BenchRun& last = net_runs.back();
        char latency[256];
        std::snprintf(latency, sizeof(latency),
                      "{\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f,"
                      "\"p99_9_us\":%.3f,\"max_us\":%.3f}",
                      last.p50_us, last.p90_us, last.p99_us, last.p99_9_us, last.max_us);
        json += "], \"latency\": ";
        json += latency;
        json += "}\n}\n";
    }

    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("bench: cannot open " + out_path);
    out << json;
    std::string codec_text = "codec sizes skipped (--no-recode)";
    if (v1_bytes)
        codec_text = "codec v1=" + std::to_string(*v1_bytes) + " v2=" +
                     std::to_string(*v2_bytes) + " bytes";
    else if (v3_bytes)
        codec_text = "codec v3=" + std::to_string(*v3_bytes) + " bytes";
    std::printf("speedup %dx-thread vs 1-thread: %.2fx; %s -> %s\n", threads, speedup,
                codec_text.c_str(), out_path.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) return usage(argv[0]);
    const std::string command = argv[1];
    Args args(argc - 2, argv + 2);
    try {
        if (command == "build") return cmd_build(args);
        if (command == "query") return cmd_query(args);
        if (command == "bench") return cmd_bench(args);
        return usage(argv[0]);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ccq_serve %s: %s\n", command.c_str(), error.what());
        return 2;
    }
}
