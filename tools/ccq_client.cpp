// ccq_client — command-line client for a running ccq_served.
//
//   ccq_client --port 7465 --from 0 --to 50 --path --json
//   ccq_client --port 7465 --from 3 --k 8
//   ccq_client --port 7465 --batch queries.txt --json
//   ccq_client --port 7465 --stats --json
//   ccq_client --port 7465 --metrics [--human]
//   ccq_client --port 7465 --flight [--json]
//   ccq_client --port 7465 --ping
//   ccq_client --port 7465 --shutdown
//   ccq_client --port 7465 --raw-json '{"op":"distance","from":0,"to":5}'
//
// Speaks the binary framed protocol through ccq::Client and renders
// answers as text or JSON (the same shapes ccq_serve query prints, so
// scripts can swap between in-process and networked serving).
// --raw-json exercises the wire-level JSON debug mode instead and
// prints the server's JSON reply verbatim.
//
// --trace-id N tags every request frame of the invocation with a trace
// envelope (ids counting up from N, sampled), so a ccq_served running
// with --trace-out records the request's span chain.  --flight dumps
// the server's flight recorder; --metrics --human summarises the
// latency histograms as interpolated p50/p90/p99 instead of raw
// exposition text.
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccq/net/client.hpp"
#include "ccq/obs/metrics.hpp"
#include "ccq/serve/distance_source.hpp"
#include "tool_common.hpp"

namespace {

using namespace ccq;
using ccq_tools::Args;
using ccq_tools::render_answer;
using ccq_tools::require_ll;

int usage()
{
    std::fprintf(stderr,
                 "usage: ccq_client [--host <ip>] --port <n> [--json] <command>\n"
                 "commands:\n"
                 "  --from <u> --to <v> [--path]   point distance / path query\n"
                 "  --from <u> --k <n>             k nearest targets\n"
                 "  --batch <file> [--path]        one query per 'u v' line\n"
                 "  --stats | --ping | --shutdown  control frames\n"
                 "  --metrics [--human]            Prometheus scrape (raw or p50/p90/p99)\n"
                 "  --flight                       dump the server's flight recorder\n"
                 "  --token <t>                    auth token for --shutdown\n"
                 "  --raw-json <object>            JSON debug mode passthrough\n"
                 "  --trace-id <n>                 tag requests with trace envelopes from id n\n");
    return 1;
}

void print_flight(const std::vector<obs::RequestRecord>& records, bool json)
{
    if (json) {
        std::string out = "{\"records\":[";
        char buf[352];
        for (std::size_t i = 0; i < records.size(); ++i) {
            const obs::RequestRecord& r = records[i];
            const char* op = op_metric_name(op_metric_index(static_cast<Opcode>(r.opcode)));
            std::snprintf(buf, sizeof buf,
                          "%s{\"seq\":%llu,\"trace_id\":\"0x%llx\",\"conn\":%llu,"
                          "\"op\":\"%s\",\"status\":\"%s\",\"sampled\":%s,"
                          "\"request_bytes\":%u,\"reply_bytes\":%u,\"decode_us\":%u,"
                          "\"queue_us\":%u,\"execute_us\":%u,\"encode_us\":%u,"
                          "\"flush_us\":%u,\"total_us\":%llu}",
                          i == 0 ? "" : ",", static_cast<unsigned long long>(r.seq),
                          static_cast<unsigned long long>(r.trace_id),
                          static_cast<unsigned long long>(r.conn_id), op,
                          status_name(static_cast<Status>(r.status)),
                          r.sampled != 0 ? "true" : "false", r.request_bytes, r.reply_bytes,
                          r.decode_us, r.queue_us, r.execute_us, r.encode_us, r.flush_us,
                          static_cast<unsigned long long>(r.total_us()));
            out += buf;
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
        return;
    }
    std::printf("flight recorder: %zu records (oldest first)\n", records.size());
    std::printf("%6s %18s %5s %-15s %-10s %7s %7s %7s %6s %6s %6s %6s %7s\n", "seq",
                "trace_id", "conn", "op", "status", "req_B", "reply_B", "decode", "queue",
                "exec", "encode", "flush", "total");
    for (const obs::RequestRecord& r : records) {
        const char* op = op_metric_name(op_metric_index(static_cast<Opcode>(r.opcode)));
        std::printf("%6llu 0x%016llx %5llu %-15s %-10s %7u %7u %7u %6u %6u %6u %6u %7llu\n",
                    static_cast<unsigned long long>(r.seq),
                    static_cast<unsigned long long>(r.trace_id),
                    static_cast<unsigned long long>(r.conn_id), op,
                    status_name(static_cast<Status>(r.status)), r.request_bytes, r.reply_bytes,
                    r.decode_us, r.queue_us, r.execute_us, r.encode_us, r.flush_us,
                    static_cast<unsigned long long>(r.total_us()));
    }
}

/// The value of `<key>"..."` inside a label block, or nullopt.  Label
/// values here (op names, le bounds) are machine-generated and never
/// contain escape sequences, so scanning to the next quote is exact.
std::optional<std::string> label_value(const std::string& line, const char* key)
{
    const std::size_t at = line.find(key);
    if (at == std::string::npos) return std::nullopt;
    const std::size_t begin = at + std::string(key).size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos) return std::nullopt;
    return line.substr(begin, end - begin);
}

/// Rebuilds each op's log2 latency histogram from the cumulative
/// _bucket lines of the exposition text and prints interpolated
/// quantiles — the human-readable counterpart of the raw scrape.
void print_human_metrics(const std::string& exposition)
{
    static const char* kPrefix = "ccq_request_latency_us_bucket{";
    std::map<std::string, obs::HistogramSnapshot> per_op;
    std::map<std::string, std::uint64_t> cumulative_seen;
    std::size_t pos = 0;
    while (pos < exposition.size()) {
        std::size_t eol = exposition.find('\n', pos);
        if (eol == std::string::npos) eol = exposition.size();
        const std::string line = exposition.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind(kPrefix, 0) != 0) continue;
        const std::optional<std::string> op = label_value(line, "op=\"");
        const std::optional<std::string> le = label_value(line, "le=\"");
        const std::size_t space = line.rfind(' ');
        if (!op || !le || space == std::string::npos) continue;
        const std::uint64_t cumulative = std::stoull(line.substr(space + 1));
        // Bucket i covers values up to 2^i - 1, so the bound maps back
        // to its index via bit_width; "+Inf" is the last bucket.
        const int index = *le == "+Inf"
                              ? obs::kHistogramBuckets - 1
                              : static_cast<int>(std::bit_width(std::stoull(*le)));
        obs::HistogramSnapshot& snap = per_op[*op];
        std::uint64_t& prev = cumulative_seen[*op];
        if (index < 0 || index >= obs::kHistogramBuckets || cumulative < prev) continue;
        snap.counts[static_cast<std::size_t>(index)] = cumulative - prev;
        prev = cumulative;
    }
    std::printf("request latency in us, interpolated from log2 buckets:\n");
    std::printf("%-16s %10s %10s %10s %10s\n", "op", "count", "p50", "p90", "p99");
    for (const auto& [op, snap] : per_op) {
        const std::uint64_t total = snap.total();
        if (total == 0) continue;
        std::printf("%-16s %10llu %10.1f %10.1f %10.1f\n", op.c_str(),
                    static_cast<unsigned long long>(total),
                    obs::histogram_quantile(snap, 0.50), obs::histogram_quantile(snap, 0.90),
                    obs::histogram_quantile(snap, 0.99));
    }
}

int run(Args& args)
{
    const std::string host = args.value("--host").value_or("127.0.0.1");
    const int port = static_cast<int>(require_ll(args.value("--port"), "--port"));
    const bool json = args.flag("--json");
    const bool want_path = args.flag("--path");
    const bool want_stats = args.flag("--stats");
    const bool want_metrics = args.flag("--metrics");
    const bool want_flight = args.flag("--flight");
    const bool human = args.flag("--human");
    const bool want_ping = args.flag("--ping");
    const bool want_shutdown = args.flag("--shutdown");
    const std::optional<std::string> trace_id_text = args.value("--trace-id");
    const std::string token = args.value("--token").value_or("");
    const std::optional<std::string> raw_json = args.value("--raw-json");
    const std::optional<std::string> batch = args.value("--batch");
    const std::optional<std::string> from_text = args.value("--from");
    const std::optional<std::string> to_text = args.value("--to");
    const std::optional<std::string> k_text = args.value("--k");
    args.finish();

    Client client = Client::connect(host, port);
    if (trace_id_text)
        client.enable_trace_envelopes(
            static_cast<std::uint64_t>(std::stoull(*trace_id_text)));

    if (raw_json) {
        std::printf("%s\n", client.json_request(*raw_json).c_str());
        return 0;
    }
    if (want_ping) {
        const std::uint32_t version = client.ping();
        if (json)
            std::printf("{\"ok\":true,\"protocol\":%u}\n", version);
        else
            std::printf("ok (protocol %u)\n", version);
        return 0;
    }
    if (want_shutdown) {
        client.shutdown_server(token);
        if (json)
            std::printf("{\"ok\":true,\"shutdown\":true}\n");
        else
            std::printf("server acknowledged shutdown\n");
        return 0;
    }
    if (want_metrics) {
        const std::string text = client.metrics();
        if (human)
            print_human_metrics(text);
        else
            // Raw exposition text: already line-oriented, newline-terminated.
            std::fputs(text.c_str(), stdout);
        return 0;
    }
    if (want_flight) {
        print_flight(client.flight_records(), json);
        return 0;
    }
    if (want_stats) {
        const ServerStats s = client.stats();
        if (json) {
            std::printf("{\"connections_accepted\":%llu,\"connections_rejected\":%llu,"
                        "\"active_connections\":%llu,"
                        "\"frames_served\":%llu,\"errors\":%llu,\"distance_queries\":%llu,"
                        "\"path_queries\":%llu,\"knearest_queries\":%llu,\"batch_items\":%llu,"
                        "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                        "\"backpressure_pauses\":%llu,\"build_total_rounds\":%.6g,"
                        "\"build_total_words\":%llu,\"source_kind\":\"%s\","
                        "\"stored_cells\":%llu,\"rows_materialized\":%llu,"
                        "\"uptime_seconds\":%.3f,"
                        "\"node_count\":%d,\"has_routing\":%s}\n",
                        static_cast<unsigned long long>(s.connections_accepted),
                        static_cast<unsigned long long>(s.connections_rejected),
                        static_cast<unsigned long long>(s.active_connections),
                        static_cast<unsigned long long>(s.frames_served),
                        static_cast<unsigned long long>(s.errors),
                        static_cast<unsigned long long>(s.distance_queries),
                        static_cast<unsigned long long>(s.path_queries),
                        static_cast<unsigned long long>(s.knearest_queries),
                        static_cast<unsigned long long>(s.batch_items),
                        static_cast<unsigned long long>(s.cache_hits),
                        static_cast<unsigned long long>(s.cache_misses),
                        static_cast<unsigned long long>(s.backpressure_pauses),
                        s.build_total_rounds,
                        static_cast<unsigned long long>(s.build_total_words),
                        source_kind_name(static_cast<SourceKind>(s.source_kind)),
                        static_cast<unsigned long long>(s.stored_cells),
                        static_cast<unsigned long long>(s.rows_materialized),
                        s.uptime_seconds, s.node_count, s.has_routing ? "true" : "false");
        } else {
            std::printf("n=%d routing=%s up=%.1fs source=%s\n", s.node_count,
                        s.has_routing ? "yes" : "no", s.uptime_seconds,
                        source_kind_name(static_cast<SourceKind>(s.source_kind)));
            std::printf("connections: %llu accepted, %llu rejected, %llu active\n",
                        static_cast<unsigned long long>(s.connections_accepted),
                        static_cast<unsigned long long>(s.connections_rejected),
                        static_cast<unsigned long long>(s.active_connections));
            std::printf("frames: %llu ok, %llu errors (%llu distance, %llu path, "
                        "%llu k-nearest, %llu batch items)\n",
                        static_cast<unsigned long long>(s.frames_served),
                        static_cast<unsigned long long>(s.errors),
                        static_cast<unsigned long long>(s.distance_queries),
                        static_cast<unsigned long long>(s.path_queries),
                        static_cast<unsigned long long>(s.knearest_queries),
                        static_cast<unsigned long long>(s.batch_items));
            std::printf("path cache: %llu hits, %llu misses\n",
                        static_cast<unsigned long long>(s.cache_hits),
                        static_cast<unsigned long long>(s.cache_misses));
            std::printf("backpressure: %llu pauses\n",
                        static_cast<unsigned long long>(s.backpressure_pauses));
            std::printf("build ledger: %.6g rounds, %llu words\n", s.build_total_rounds,
                        static_cast<unsigned long long>(s.build_total_words));
            std::printf("source: %llu stored cells, %llu rows materialized\n",
                        static_cast<unsigned long long>(s.stored_cells),
                        static_cast<unsigned long long>(s.rows_materialized));
        }
        return 0;
    }

    if (batch) {
        const std::vector<PointQuery> queries = ccq_tools::read_batch_file(*batch);
        std::vector<PathResult> paths;
        std::vector<Weight> distances;
        if (want_path)
            paths = client.batch_paths(queries);
        else
            distances = client.batch_distances(queries);
        ccq_tools::print_batch_answers(queries, distances, paths, want_path, json);
        return 0;
    }

    const NodeId from = static_cast<NodeId>(require_ll(from_text, "--from"));
    if (k_text) {
        const int k = std::stoi(*k_text);
        ccq_tools::print_nearest(from, client.nearest_targets(from, k), json);
        return 0;
    }
    const NodeId to = static_cast<NodeId>(require_ll(to_text, "--to"));
    if (want_path) {
        const PathResult path = client.path(from, to);
        std::printf("%s\n", render_answer(from, to, path.distance, &path, json).c_str());
    } else {
        std::printf("%s\n",
                    render_answer(from, to, client.distance(from, to), nullptr, json).c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) return usage();
    Args args(argc - 1, argv + 1);
    try {
        return run(args);
    } catch (const rpc_error& error) {
        std::fprintf(stderr, "ccq_client: server rejected the request — %s\n", error.what());
        return 3;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ccq_client: %s\n", error.what());
        return 2;
    }
}
