// ccq_client — command-line client for a running ccq_served.
//
//   ccq_client --port 7465 --from 0 --to 50 --path --json
//   ccq_client --port 7465 --from 3 --k 8
//   ccq_client --port 7465 --batch queries.txt --json
//   ccq_client --port 7465 --stats --json
//   ccq_client --port 7465 --metrics
//   ccq_client --port 7465 --ping
//   ccq_client --port 7465 --shutdown
//   ccq_client --port 7465 --raw-json '{"op":"distance","from":0,"to":5}'
//
// Speaks the binary framed protocol through ccq::Client and renders
// answers as text or JSON (the same shapes ccq_serve query prints, so
// scripts can swap between in-process and networked serving).
// --raw-json exercises the wire-level JSON debug mode instead and
// prints the server's JSON reply verbatim.
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "ccq/net/client.hpp"
#include "tool_common.hpp"

namespace {

using namespace ccq;
using ccq_tools::Args;
using ccq_tools::render_answer;
using ccq_tools::require_ll;

int usage()
{
    std::fprintf(stderr,
                 "usage: ccq_client [--host <ip>] --port <n> [--json] <command>\n"
                 "commands:\n"
                 "  --from <u> --to <v> [--path]   point distance / path query\n"
                 "  --from <u> --k <n>             k nearest targets\n"
                 "  --batch <file> [--path]        one query per 'u v' line\n"
                 "  --stats | --ping | --shutdown  control frames\n"
                 "  --metrics                      Prometheus text scrape\n"
                 "  --token <t>                    auth token for --shutdown\n"
                 "  --raw-json <object>            JSON debug mode passthrough\n");
    return 1;
}

int run(Args& args)
{
    const std::string host = args.value("--host").value_or("127.0.0.1");
    const int port = static_cast<int>(require_ll(args.value("--port"), "--port"));
    const bool json = args.flag("--json");
    const bool want_path = args.flag("--path");
    const bool want_stats = args.flag("--stats");
    const bool want_metrics = args.flag("--metrics");
    const bool want_ping = args.flag("--ping");
    const bool want_shutdown = args.flag("--shutdown");
    const std::string token = args.value("--token").value_or("");
    const std::optional<std::string> raw_json = args.value("--raw-json");
    const std::optional<std::string> batch = args.value("--batch");
    const std::optional<std::string> from_text = args.value("--from");
    const std::optional<std::string> to_text = args.value("--to");
    const std::optional<std::string> k_text = args.value("--k");
    args.finish();

    Client client = Client::connect(host, port);

    if (raw_json) {
        std::printf("%s\n", client.json_request(*raw_json).c_str());
        return 0;
    }
    if (want_ping) {
        const std::uint32_t version = client.ping();
        if (json)
            std::printf("{\"ok\":true,\"protocol\":%u}\n", version);
        else
            std::printf("ok (protocol %u)\n", version);
        return 0;
    }
    if (want_shutdown) {
        client.shutdown_server(token);
        if (json)
            std::printf("{\"ok\":true,\"shutdown\":true}\n");
        else
            std::printf("server acknowledged shutdown\n");
        return 0;
    }
    if (want_metrics) {
        // Raw exposition text: already line-oriented, newline-terminated.
        std::fputs(client.metrics().c_str(), stdout);
        return 0;
    }
    if (want_stats) {
        const ServerStats s = client.stats();
        if (json) {
            std::printf("{\"connections_accepted\":%llu,\"connections_rejected\":%llu,"
                        "\"active_connections\":%llu,"
                        "\"frames_served\":%llu,\"errors\":%llu,\"distance_queries\":%llu,"
                        "\"path_queries\":%llu,\"knearest_queries\":%llu,\"batch_items\":%llu,"
                        "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                        "\"backpressure_pauses\":%llu,\"build_total_rounds\":%.6g,"
                        "\"build_total_words\":%llu,\"uptime_seconds\":%.3f,"
                        "\"node_count\":%d,\"has_routing\":%s}\n",
                        static_cast<unsigned long long>(s.connections_accepted),
                        static_cast<unsigned long long>(s.connections_rejected),
                        static_cast<unsigned long long>(s.active_connections),
                        static_cast<unsigned long long>(s.frames_served),
                        static_cast<unsigned long long>(s.errors),
                        static_cast<unsigned long long>(s.distance_queries),
                        static_cast<unsigned long long>(s.path_queries),
                        static_cast<unsigned long long>(s.knearest_queries),
                        static_cast<unsigned long long>(s.batch_items),
                        static_cast<unsigned long long>(s.cache_hits),
                        static_cast<unsigned long long>(s.cache_misses),
                        static_cast<unsigned long long>(s.backpressure_pauses),
                        s.build_total_rounds,
                        static_cast<unsigned long long>(s.build_total_words),
                        s.uptime_seconds, s.node_count, s.has_routing ? "true" : "false");
        } else {
            std::printf("n=%d routing=%s up=%.1fs\n", s.node_count,
                        s.has_routing ? "yes" : "no", s.uptime_seconds);
            std::printf("connections: %llu accepted, %llu rejected, %llu active\n",
                        static_cast<unsigned long long>(s.connections_accepted),
                        static_cast<unsigned long long>(s.connections_rejected),
                        static_cast<unsigned long long>(s.active_connections));
            std::printf("frames: %llu ok, %llu errors (%llu distance, %llu path, "
                        "%llu k-nearest, %llu batch items)\n",
                        static_cast<unsigned long long>(s.frames_served),
                        static_cast<unsigned long long>(s.errors),
                        static_cast<unsigned long long>(s.distance_queries),
                        static_cast<unsigned long long>(s.path_queries),
                        static_cast<unsigned long long>(s.knearest_queries),
                        static_cast<unsigned long long>(s.batch_items));
            std::printf("path cache: %llu hits, %llu misses\n",
                        static_cast<unsigned long long>(s.cache_hits),
                        static_cast<unsigned long long>(s.cache_misses));
            std::printf("backpressure: %llu pauses\n",
                        static_cast<unsigned long long>(s.backpressure_pauses));
            std::printf("build ledger: %.6g rounds, %llu words\n", s.build_total_rounds,
                        static_cast<unsigned long long>(s.build_total_words));
        }
        return 0;
    }

    if (batch) {
        const std::vector<PointQuery> queries = ccq_tools::read_batch_file(*batch);
        std::vector<PathResult> paths;
        std::vector<Weight> distances;
        if (want_path)
            paths = client.batch_paths(queries);
        else
            distances = client.batch_distances(queries);
        ccq_tools::print_batch_answers(queries, distances, paths, want_path, json);
        return 0;
    }

    const NodeId from = static_cast<NodeId>(require_ll(from_text, "--from"));
    if (k_text) {
        const int k = std::stoi(*k_text);
        ccq_tools::print_nearest(from, client.nearest_targets(from, k), json);
        return 0;
    }
    const NodeId to = static_cast<NodeId>(require_ll(to_text, "--to"));
    if (want_path) {
        const PathResult path = client.path(from, to);
        std::printf("%s\n", render_answer(from, to, path.distance, &path, json).c_str());
    } else {
        std::printf("%s\n",
                    render_answer(from, to, client.distance(from, to), nullptr, json).c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) return usage();
    Args args(argc - 1, argv + 1);
    try {
        return run(args);
    } catch (const rpc_error& error) {
        std::fprintf(stderr, "ccq_client: server rejected the request — %s\n", error.what());
        return 3;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ccq_client: %s\n", error.what());
        return 2;
    }
}
