// ccq_served — the long-running distance-oracle server.
//
//   ccq_served --snapshot wan.snap --port 7465
//   ccq_served --snapshot wan.snap --port 0 --port-file port.txt --mmap
//   ccq_served --snapshot wan.snap --stdio
//
// Loads a snapshot — dense v1/v2 (eagerly, or mmap-backed with --mmap
// so the process starts serving before touching the n^2 payload) or a
// sparse v3 spanner, auto-detected from the file header — and speaks
// the framed protocol of docs/PROTOCOL.md: over TCP by default, or over
// stdin/stdout with --stdio (one connection, ends at EOF).  Graceful
// shutdown on SIGINT/SIGTERM or a shutdown control frame; --port-file
// writes the bound port for scripts that bind an ephemeral port.
//
// Observability: --log-level debug turns on per-connection log lines,
// --trace-out FILE writes a chrome://tracing JSON of the server's life
// (snapshot load span + connection instants + sampled request span
// chains) at shutdown — including shutdown by SIGINT/SIGTERM, so the
// JSON is always well-formed.  --no-metrics disables hot-path metric
// recording (the metrics scrape op still answers, with zero request
// counts).  --flight-records N sizes the flight recorder ring (the
// flight wire op dumps the last N requests), and --slow-query-us T
// logs a structured warn line for any request slower than T.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "ccq/net/server.hpp"
#include "ccq/net/socket.hpp"
#include "ccq/obs/log.hpp"
#include "ccq/obs/trace.hpp"
#include "ccq/serve/distance_source.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"
#include "tool_common.hpp"

namespace {

using namespace ccq;
using ccq_tools::Args;

Server* g_server = nullptr;

void handle_signal(int)
{
    // Only atomics and shutdown(2) behind this call: async-signal-safe.
    if (g_server != nullptr) g_server->request_stop();
}

int usage()
{
    std::fprintf(stderr,
                 "usage: ccq_served --snapshot <file> [--host <ip>] [--port <n>]\n"
                 "       [--port-file <file>] [--mmap] [--stdio] [--threads <n>]\n"
                 "       [--cache <entries>] [--shutdown-token <t>]\n"
                 "       [--io threads|epoll] [--max-connections <n>] [--workers <n>]\n"
                 "       [--log-level error|warn|info|debug] [--trace-out <file>]\n"
                 "       [--no-metrics] [--flight-records <n>] [--slow-query-us <t>]\n");
    return 1;
}

int run(Args& args)
{
    const std::optional<std::string> snapshot_path = args.value("--snapshot");
    if (!snapshot_path) throw std::runtime_error("--snapshot is required");
    ServerConfig config;
    if (const std::optional<std::string> host = args.value("--host")) config.host = *host;
    if (const std::optional<std::string> port = args.value("--port"))
        config.port = std::stoi(*port);
    if (const std::optional<std::string> token = args.value("--shutdown-token"))
        config.shutdown_token = *token;
    if (const std::optional<std::string> io = args.value("--io"))
        config.io = parse_io_backend(*io);
    if (const std::optional<std::string> max_conns = args.value("--max-connections"))
        config.max_connections = std::stoi(*max_conns);
    if (const std::optional<std::string> workers = args.value("--workers"))
        config.workers = std::stoi(*workers);
    if (const std::optional<std::string> level = args.value("--log-level"))
        obs::set_log_level(obs::parse_log_level(*level));
    const std::optional<std::string> trace_out = args.value("--trace-out");
    if (args.flag("--no-metrics")) config.metrics = false;
    if (const std::optional<std::string> records = args.value("--flight-records"))
        config.flight_records = static_cast<std::size_t>(std::stoull(*records));
    if (const std::optional<std::string> slow = args.value("--slow-query-us"))
        config.slow_query_us = std::stoll(*slow);
    const std::optional<std::string> port_file = args.value("--port-file");
    const bool use_mmap = args.flag("--mmap");
    const bool stdio = args.flag("--stdio");
    QueryEngineConfig engine_config;
    if (const std::optional<std::string> threads = args.value("--threads"))
        engine_config.threads = std::stoi(*threads);
    if (const std::optional<std::string> cache = args.value("--cache"))
        engine_config.path_cache_capacity = static_cast<std::size_t>(std::stoull(*cache));
    args.finish();

    if (trace_out) obs::Tracer::global().enable();

    // Format auto-detect: dense v1/v2 (eager or --mmap) and sparse v3
    // all arrive as a DistanceSource; the engine never knows which.
    const std::shared_ptr<const DistanceSource> source =
        open_distance_source(*snapshot_path, DistanceSourceOptions{.prefer_mmap = use_mmap});
    CCQ_LOG_INFO("opened %s (%s, %s source, n=%d, %llu stored cells, routing=%s)",
                 snapshot_path->c_str(),
                 snapshot_format_name(peek_snapshot_format(*snapshot_path)),
                 source_kind_name(source->kind()), source->node_count(),
                 static_cast<unsigned long long>(source->stored_cells()),
                 source->has_routing() ? "yes" : "no");
    const std::shared_ptr<const QueryEngine> engine =
        std::make_shared<const QueryEngine>(source, engine_config);

    Server server(engine, config);
    const auto write_trace = [&] {
        if (!trace_out) return;
        obs::Tracer::global().write(*trace_out);
        CCQ_LOG_INFO("wrote trace (%zu events) to %s", obs::Tracer::global().event_count(),
                     trace_out->c_str());
    };
    if (stdio) {
        // Signals interrupt the blocked stdin read too (request_stop
        // shuts down every registered stream), so Ctrl-C on a stdio
        // server still drops out of serve_stream and writes the trace.
        g_server = &server;
        std::signal(SIGINT, handle_signal);
        std::signal(SIGTERM, handle_signal);
        FdStream stream(0, 1, /*owns=*/false);
        try {
            server.serve_stream(stream);
        } catch (...) {
            g_server = nullptr;
            write_trace();
            throw;
        }
        g_server = nullptr;
        write_trace();
        return 0;
    }

    // Bind before installing the handlers: request_stop() from a signal
    // must never race listener construction inside listen().
    const int port = server.listen();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (port_file) {
        std::ofstream out(*port_file);
        if (!out) throw std::runtime_error("cannot write port file " + *port_file);
        out << port << "\n";
    }
    std::printf("ccq_served: listening on %s:%d (%s backend)\n", config.host.c_str(), port,
                io_backend_name(config.io));
    std::fflush(stdout);
    try {
        server.run();
    } catch (...) {
        // A serving failure still gets a well-formed trace file.
        g_server = nullptr;
        write_trace();
        throw;
    }

    const ServerStats stats = server.stats();
    std::printf("ccq_served: shut down after %.1fs — %llu connections, %llu ok, %llu errors\n",
                stats.uptime_seconds,
                static_cast<unsigned long long>(stats.connections_accepted),
                static_cast<unsigned long long>(stats.frames_served),
                static_cast<unsigned long long>(stats.errors));
    write_trace();
    g_server = nullptr;
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    Args args(argc - 1, argv + 1);
    try {
        return run(args);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "ccq_served: %s\n", error.what());
        return argc < 2 ? usage() : 2;
    }
}
