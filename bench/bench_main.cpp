// Shared main for every bench executable; see run_benchmarks for the
// `--json out.json` convenience flag.
#include "bench_helpers.hpp"

int main(int argc, char** argv) { return ccq::bench::run_benchmarks(argc, argv); }
