// E1 — Theorem 1.1 headline comparison.
//
// Paper claim: a (7^4+eps)-approximation of weighted APSP in
// O(log log log n) rounds, vs prior work: exact APSP via matrix
// exponentiation (polynomial rounds, [CKK+19]) and O(log n)-approximation
// in O(1) rounds (CZ22).  The reproduction sweeps n per algorithm and
// reports simulated rounds plus claimed and measured stretch; the shape
// to check is that the new algorithm's measured stretch stays constant
// while its round count grows only triply-logarithmically (at simulable
// n the asymptotic round advantage over exact matmul is not yet visible —
// see EXPERIMENTS.md).
#include "bench_helpers.hpp"

namespace {

using namespace ccq;
using bench::make_graph;
using bench::report_apsp;

void BM_ExactBaseline(benchmark::State& state)
{
    const Graph g = make_graph(static_cast<int>(state.range(0)));
    ApspResult result;
    for (auto _ : state) result = exact_apsp_clique(g);
    report_apsp(state, g, result);
}
BENCHMARK(BM_ExactBaseline)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// Serial-vs-parallel ablation of the min-plus engine under the exact
// baseline: same graph, same simulated round charges, different
// EngineConfig.  Only the wall-time column may move.
void BM_ExactBaselineEngineAblation(benchmark::State& state)
{
    const Graph g = make_graph(256);
    ApspOptions options;
    options.engine = EngineConfig{static_cast<int>(state.range(0)),
                                  static_cast<int>(state.range(1))};
    ApspResult result;
    for (auto _ : state) result = exact_apsp_clique(g, options);
    report_apsp(state, g, result);
    state.counters["threads"] = static_cast<double>(options.engine.threads);
    state.counters["block_size"] = static_cast<double>(options.engine.block_size);
}
BENCHMARK(BM_ExactBaselineEngineAblation)
    ->ArgNames({"threads", "block"})
    ->ArgsProduct({{1, 4}, {64}})
    ->Unit(benchmark::kMillisecond);

void BM_LognBaselineCZ22(benchmark::State& state)
{
    const Graph g = make_graph(static_cast<int>(state.range(0)));
    ApspResult result;
    for (auto _ : state) result = logn_approx_apsp(g);
    report_apsp(state, g, result);
}
BENCHMARK(BM_LognBaselineCZ22)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GeneralTheorem11(benchmark::State& state)
{
    const Graph g = make_graph(static_cast<int>(state.range(0)));
    ApspResult result;
    for (auto _ : state) result = apsp_general(g);
    report_apsp(state, g, result);
}
BENCHMARK(BM_GeneralTheorem11)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GeneralAcrossFamilies(benchmark::State& state)
{
    const auto family = static_cast<GraphFamily>(state.range(0));
    const Graph g = make_graph(128, 7, 100, family);
    state.SetLabel(family_name(family));
    ApspResult result;
    for (auto _ : state) result = apsp_general(g);
    report_apsp(state, g, result);
}
BENCHMARK(BM_GeneralAcrossFamilies)
    ->Arg(static_cast<int>(GraphFamily::erdos_renyi_sparse))
    ->Arg(static_cast<int>(GraphFamily::erdos_renyi_dense))
    ->Arg(static_cast<int>(GraphFamily::geometric))
    ->Arg(static_cast<int>(GraphFamily::clustered))
    ->Arg(static_cast<int>(GraphFamily::barabasi_albert))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
