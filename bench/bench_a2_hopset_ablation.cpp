// A2 (ablation) — what the hopset buys the k-nearest computation.
//
// Without the Lemma 3.2 hopset, the filtered-power stage must cover the
// graph's true shortest-path hop radius: on hop-deep graphs (paths,
// grids) this needs many more squaring iterations — and therefore rounds
// — than with the hopset's O(a log d) hop bound.  The sweep compares
// iterations-to-exactness with and without the hopset across topologies.
#include "bench_helpers.hpp"

#include <algorithm>

#include "ccq/hopset/knearest_hopset.hpp"
#include "ccq/knearest/knearest.hpp"

namespace {

using namespace ccq;

/// Iterations of h=2 filtered powers until the k-nearest rows stop
/// changing (i.e. are exact), plus the rounds spent.
std::pair<int, double> iterations_until_stable(const SparseMatrix& adjacency, int k, int n)
{
    SparseMatrix previous = filter_k_smallest(adjacency, k);
    RoundLedger ledger;
    CliqueTransport transport(n, CostModel::standard(), ledger);
    int iterations = 0;
    while (iterations < 64) {
        KNearestOptions options;
        options.k = k;
        options.h = 2;
        options.iterations = 1;
        const KNearestResult next = compute_k_nearest(previous, options, transport, "iter");
        ++iterations;
        if (next.rows == previous) break;
        previous = next.rows;
    }
    return {iterations, ledger.total_rounds()};
}

void run_ablation(benchmark::State& state, GraphFamily family)
{
    const int n = 144;
    Rng rng(81);
    const Graph g = make_family_instance(family, n, WeightRange{1, 20}, rng);
    const int k = std::max(2, static_cast<int>(floor_sqrt(n)));
    state.SetLabel(family_name(family));

    int without_iters = 0, with_iters = 0;
    double without_rounds = 0.0, with_rounds = 0.0;
    int hopset_rounds = 0;
    for (auto _ : state) {
        // Without hopset: raw adjacency rows.
        std::tie(without_iters, without_rounds) =
            iterations_until_stable(adjacency_rows(g), k, n);

        // With hopset (built from an exact delta; its O(1)-round cost is
        // reported separately).
        RoundLedger hopset_ledger;
        CliqueTransport transport(n, CostModel::standard(), hopset_ledger);
        const DistanceMatrix exact = exact_apsp(g);
        const Hopset hopset = build_knearest_hopset(g, exact, 1.0, weighted_diameter(exact),
                                                    transport, "hopset", k);
        std::tie(with_iters, with_rounds) =
            iterations_until_stable(augmented_rows(g, hopset), k, n);
        hopset_rounds = static_cast<int>(hopset_ledger.total_rounds());
    }
    state.counters["k"] = k;
    state.counters["iters_without_hopset"] = without_iters;
    state.counters["iters_with_hopset"] = with_iters;
    state.counters["rounds_without"] = without_rounds;
    state.counters["rounds_with"] = with_rounds + hopset_rounds;
    state.counters["hopset_build_rounds"] = hopset_rounds;
}

void BM_HopsetAblation(benchmark::State& state)
{
    run_ablation(state, static_cast<GraphFamily>(state.range(0)));
}
BENCHMARK(BM_HopsetAblation)
    ->Arg(static_cast<int>(GraphFamily::path))
    ->Arg(static_cast<int>(GraphFamily::grid))
    ->Arg(static_cast<int>(GraphFamily::tree))
    ->Arg(static_cast<int>(GraphFamily::erdos_renyi_sparse))
    ->Arg(static_cast<int>(GraphFamily::geometric))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
