// E2 — Theorem 1.2: round / approximation tradeoff.
//
// Paper claim: for any t >= 1, an O(log^{2^-t} n)-approximation in O(t)
// rounds.  The sweep varies the reduction budget t and reports the
// claimed and measured stretch next to the theoretical shape
// log^{2^-t} n.  Note the regime effect discussed in EXPERIMENTS.md: at
// simulable n the O(log n) bootstrap is already below the constant 7 a
// reduction must pay, so the claimed factor saturates quickly — the
// doubly-exponential *shape* column shows what the formula predicts at
// scale.
#include "bench_helpers.hpp"

namespace {

using namespace ccq;
using bench::make_graph;
using bench::report_apsp;

void BM_TradeoffT(benchmark::State& state)
{
    const int t = static_cast<int>(state.range(0));
    const Graph g = make_graph(192, 11);
    ApspResult result;
    for (auto _ : state) result = apsp_tradeoff(g, t);
    report_apsp(state, g, result);
    state.counters["t"] = t;
    state.counters["shape_log_pow"] = tradeoff_stretch_shape(g.node_count(), t);
    // What the shape predicts for a large (non-simulable) instance, to
    // exhibit the doubly exponential decay the theorem is about.
    state.counters["shape_at_2pow30"] = tradeoff_stretch_shape(1 << 30, t);
}
BENCHMARK(BM_TradeoffT)->DenseRange(0, 4)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
