// E10 — Theorem 2.1: the zero-weight reduction costs f(n) + O(1) rounds
// and preserves the inner algorithm's approximation factor.
//
// Sweep the number of zero-weight clusters; report the wrapper's round
// overhead over the bare inner run (must stay a flat constant) and the
// measured stretch through the wrapper.
#include "bench_helpers.hpp"

#include "ccq/core/zero_weights.hpp"

namespace {

using namespace ccq;
using bench::report_apsp;

Graph make_zero_instance(int n, int clusters, std::uint64_t seed)
{
    Rng rng(seed);
    Graph g = erdos_renyi(n, 0.08, WeightRange{1, 50}, rng);
    // `clusters` zero-weight triangles spread over the node range.
    for (int c = 0; c < clusters; ++c) {
        const NodeId base = static_cast<NodeId>((c * n) / std::max(1, clusters));
        if (base + 2 >= n) break;
        g.add_edge(base, base + 1, 0);
        g.add_edge(base + 1, base + 2, 0);
        g.add_edge(base, base + 2, 0);
    }
    return g;
}

void BM_ZeroWeightWrapper(benchmark::State& state)
{
    const int n = 128;
    const int clusters = static_cast<int>(state.range(0));
    const Graph g = make_zero_instance(n, clusters, 61);

    ApspResult wrapped;
    for (auto _ : state) {
        wrapped = apsp_with_zero_weights(
            g, ApspOptions{},
            [](const Graph& inner, const ApspOptions& options) {
                return apsp_general(inner, options);
            });
    }
    report_apsp(state, g, wrapped);
    state.counters["zero_clusters"] = clusters;
    state.counters["reduction_rounds"] =
        wrapped.ledger.rounds_in_phase("zero-weight-reduction") +
        wrapped.ledger.rounds_in_phase("expand");
    state.counters["inner_rounds"] = wrapped.ledger.rounds_in_phase("inner-algorithm");
}
BENCHMARK(BM_ZeroWeightWrapper)->Arg(0)->Arg(4)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
