// E6 — Lemma 7.1 substrate: (2k-1)-spanners with O(k n^{1+1/k}) edges,
// and Corollary 7.2 (O(log n)-approx APSP in O(1) rounds).
//
// Sweep k: measured stretch must stay within 2k-1 and the edge count
// within its bound; the spanner-broadcast APSP's simulated rounds must
// stay flat in n (the O(1)-round claim).
#include "bench_helpers.hpp"

#include <cmath>

#include "ccq/spanner/baswana_sen.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

void BM_SpannerQuality(benchmark::State& state)
{
    const int n = 256;
    const int k = static_cast<int>(state.range(0));
    const Graph g = make_graph(n, 21, 100, GraphFamily::erdos_renyi_dense);
    SpannerResult result{Graph::undirected(0), 1, 1};
    for (auto _ : state) {
        Rng rng(33);
        result = baswana_sen_spanner(g, k, rng);
    }
    state.counters["k"] = k;
    state.counters["input_edges"] = static_cast<double>(g.edge_count());
    state.counters["spanner_edges"] = static_cast<double>(result.spanner.edge_count());
    state.counters["edge_bound"] =
        8.0 * k * std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
    state.counters["stretch_bound"] = 2 * k - 1;
    state.counters["stretch_measured"] = measured_spanner_stretch(g, result.spanner);
}
BENCHMARK(BM_SpannerQuality)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Corollary72RoundsFlatInN(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const Graph g = make_graph(n, 22);
    ApspResult result;
    for (auto _ : state) result = logn_approx_apsp(g);
    bench::report_apsp(state, g, result);
    state.counters["b"] = logn_spanner_parameter(n);
}
BENCHMARK(BM_Corollary72RoundsFlatInN)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
