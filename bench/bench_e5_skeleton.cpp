// E5 — Lemmas 3.4/6.1: skeleton graphs.
//
// Paper claims: |V_S| ∈ O(n log k / k) built in O(1) rounds, and an
// l-approximation of APSP on G_S extends to a 7*l*a^2-approximation on G.
// The sweep varies k, reports skeleton size against the bound, and the
// measured stretch of eta (exact inputs, exact skeleton APSP: bound 7).
#include "bench_helpers.hpp"

#include <algorithm>

#include "ccq/skeleton/skeleton.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

SparseMatrix exact_rows(const DistanceMatrix& exact, int k)
{
    SparseMatrix rows(static_cast<std::size_t>(exact.size()));
    for (NodeId u = 0; u < exact.size(); ++u) {
        SparseRow row;
        for (NodeId v = 0; v < exact.size(); ++v)
            if (is_finite(exact.at(u, v))) row.push_back(SparseEntry{v, exact.at(u, v)});
        std::sort(row.begin(), row.end(), entry_less);
        if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
        rows[static_cast<std::size_t>(u)] = std::move(row);
    }
    return rows;
}

void BM_SkeletonSizeAndStretch(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const int k = static_cast<int>(state.range(1));
    const Graph g = make_graph(n, 9);
    const DistanceMatrix exact = exact_apsp(g);
    const SparseMatrix rows = exact_rows(exact, k);

    RoundLedger ledger;
    int skeleton_size = 0;
    double stretch = 0.0;
    std::size_t skeleton_edges = 0;
    for (auto _ : state) {
        RoundLedger fresh;
        CliqueTransport transport(n, CostModel::standard(), fresh);
        Rng rng(13);
        const SkeletonGraph skeleton = build_skeleton(g, rows, 1.0, rng, transport, "sk");
        const DistanceMatrix eta = extend_skeleton_estimate(
            skeleton, exact_apsp(skeleton.graph), rows, transport, "ext");
        skeleton_size = skeleton.size();
        skeleton_edges = skeleton.graph.edge_count();
        stretch = evaluate_stretch(exact, eta).max_stretch;
        ledger = std::move(fresh);
    }
    state.counters["n"] = n;
    state.counters["k"] = k;
    state.counters["rounds"] = ledger.total_rounds();
    state.counters["skeleton_nodes"] = skeleton_size;
    state.counters["skeleton_edges"] = static_cast<double>(skeleton_edges);
    state.counters["size_bound"] = skeleton_size_bound(n, k);
    state.counters["stretch_max"] = stretch;
    state.counters["stretch_bound"] = 7.0;
}
BENCHMARK(BM_SkeletonSizeAndStretch)
    ->Args({192, 4})
    ->Args({192, 8})
    ->Args({192, 14}) // ~sqrt(n)
    ->Args({192, 32})
    ->Args({192, 64})
    ->Args({384, 20}) // ~sqrt(n) at the larger size
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
