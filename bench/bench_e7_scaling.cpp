// E7 — Lemma 8.1: the weight-scaling family.
//
// Paper claims: O(log n) levels, each of weighted diameter at most
// ceil(2/eps) h^2, and the combined eta is a (1+eps)l-approximation on
// pairs with <= h-hop shortest paths.  The sweep varies the weight range
// (level count must grow logarithmically with the spread) and eps (cap
// grows as 1/eps), and verifies eta's measured stretch with exact level
// estimates (bound 1+eps).
#include "bench_helpers.hpp"

#include "ccq/scaling/weight_scaling.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

void BM_ScalingFamily(benchmark::State& state)
{
    const auto max_weight = static_cast<Weight>(state.range(0));
    const double eps = static_cast<double>(state.range(1)) / 100.0;
    const int n = 96;
    const Graph g = make_graph(n, 19, max_weight);
    const DistanceMatrix exact = exact_apsp(g);
    const int h = std::max(2, shortest_path_hop_diameter(g));

    ScaledFamily family;
    DistanceMatrix eta;
    for (auto _ : state) {
        family = build_scaled_family(g, weighted_diameter(exact), h, eps);
        std::vector<DistanceMatrix> estimates;
        estimates.reserve(family.levels.size());
        for (const ScaledLevel& level : family.levels)
            estimates.push_back(exact_apsp(level.graph));
        eta = combine_scaled_estimates(family, estimates, exact);
    }
    state.counters["max_weight"] = static_cast<double>(max_weight);
    state.counters["eps"] = eps;
    state.counters["levels"] = static_cast<double>(family.levels.size());
    state.counters["level_cap"] = static_cast<double>(family.levels.front().cap);
    state.counters["h"] = h;
    const StretchReport report = evaluate_stretch(exact, eta);
    state.counters["stretch_max"] = report.max_stretch;
    state.counters["stretch_bound"] = 1.0 + eps;
    state.counters["sound"] = report.sound() ? 1.0 : 0.0;
}
BENCHMARK(BM_ScalingFamily)
    ->Args({100, 50})
    ->Args({10000, 50})
    ->Args({1000000, 50})
    ->Args({10000, 25})
    ->Args({10000, 100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
