// A3 (ablation) — distributed constructions vs sequential quality
// ceilings.
//
// The paper's O(1)-round pipeline uses randomized distributed primitives
// (Baswana–Sen spanner via the CZ22 substitution, sampled hitting sets).
// This ablation quantifies the quality they trade for round efficiency by
// comparing against the sequential greedy algorithms on the same inputs:
// spanner size/stretch, and hitting-set size vs the O(n log k / k) bound.
#include "bench_helpers.hpp"

#include <algorithm>

#include "ccq/skeleton/hitting_set.hpp"
#include "ccq/skeleton/skeleton.hpp"
#include "ccq/spanner/greedy.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

void BM_SpannerGreedyVsBaswanaSen(benchmark::State& state)
{
    const int k = static_cast<int>(state.range(0));
    const int n = 192;
    const Graph g = make_graph(n, 91, 100, GraphFamily::erdos_renyi_dense);
    SpannerResult greedy{Graph::undirected(0), 1, 1};
    SpannerResult distributed{Graph::undirected(0), 1, 1};
    for (auto _ : state) {
        Rng rng(92);
        greedy = greedy_spanner(g, k);
        distributed = baswana_sen_spanner(g, k, rng);
    }
    state.counters["k"] = k;
    state.counters["greedy_edges"] = static_cast<double>(greedy.spanner.edge_count());
    state.counters["bs_edges"] = static_cast<double>(distributed.spanner.edge_count());
    state.counters["greedy_stretch"] = measured_spanner_stretch(g, greedy.spanner);
    state.counters["bs_stretch"] = measured_spanner_stretch(g, distributed.spanner);
    state.counters["stretch_bound"] = 2 * k - 1;
}
BENCHMARK(BM_SpannerGreedyVsBaswanaSen)->Arg(2)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HittingSetSampledVsGreedy(benchmark::State& state)
{
    const int k = static_cast<int>(state.range(0));
    const int n = 192;
    const Graph g = make_graph(n, 93);
    const DistanceMatrix exact = exact_apsp(g);
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow row;
        for (NodeId v = 0; v < n; ++v)
            if (is_finite(exact.at(u, v))) row.push_back(SparseEntry{v, exact.at(u, v)});
        std::sort(row.begin(), row.end(), entry_less);
        row.resize(std::min<std::size_t>(row.size(), static_cast<std::size_t>(k)));
        rows[static_cast<std::size_t>(u)] = std::move(row);
    }

    std::size_t sampled_size = 0, greedy_size = 0;
    for (auto _ : state) {
        RoundLedger ledger;
        CliqueTransport transport(n, CostModel::standard(), ledger);
        Rng rng(94);
        sampled_size = compute_hitting_set(rows, k, rng, transport, "hs").size();
        greedy_size = compute_hitting_set_greedy(rows).size();
    }
    state.counters["k"] = k;
    state.counters["sampled_size"] = static_cast<double>(sampled_size);
    state.counters["greedy_size"] = static_cast<double>(greedy_size);
    state.counters["bound"] = skeleton_size_bound(n, k);
}
BENCHMARK(BM_HittingSetSampledVsGreedy)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
