// E3 — Lemma 3.2: sqrt(n)-nearest beta-hopsets in O(1) rounds.
//
// Paper claim: from an a-approximation, a hopset with hop bound
// beta = O(a log d) is built in O(1) rounds.  The sweep varies the
// weighted-diameter regime (via the weight range) and the quality of the
// input approximation (exact a=1 vs the O(log n) bootstrap), and reports
// measured beta against the claimed 2*ceil(a ln d)+3 plus the hopset size
// and the construction's simulated rounds (which must stay flat in d).
#include "bench_helpers.hpp"

#include "ccq/hopset/knearest_hopset.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

void run_hopset_case(benchmark::State& state, const Graph& g, const DistanceMatrix& delta,
                     double a)
{
    Weight diameter = 0;
    for (NodeId u = 0; u < delta.size(); ++u)
        for (NodeId v = 0; v < delta.size(); ++v)
            if (is_finite(delta.at(u, v))) diameter = std::max(diameter, delta.at(u, v));

    RoundLedger ledger;
    Hopset hopset;
    for (auto _ : state) {
        RoundLedger fresh;
        CliqueTransport transport(g.node_count(), CostModel::standard(), fresh);
        hopset = build_knearest_hopset(g, delta, a, std::max<Weight>(2, diameter), transport,
                                       "hopset");
        ledger = std::move(fresh);
    }
    state.counters["n"] = g.node_count();
    state.counters["diameter_bound"] = static_cast<double>(diameter);
    state.counters["a"] = a;
    state.counters["rounds"] = ledger.total_rounds();
    state.counters["hopset_edges"] = static_cast<double>(hopset.edges.size());
    state.counters["beta_claimed"] = hopset.claimed_hop_bound;
    state.counters["beta_measured"] = measured_hopset_bound(g, hopset);
}

void BM_HopsetExactDelta(benchmark::State& state)
{
    const auto max_weight = static_cast<Weight>(state.range(1));
    const Graph g = make_graph(static_cast<int>(state.range(0)), 3, max_weight);
    const DistanceMatrix exact = exact_apsp(g);
    run_hopset_case(state, g, exact, 1.0);
}
BENCHMARK(BM_HopsetExactDelta)
    ->Args({128, 10})
    ->Args({128, 1000})
    ->Args({128, 100000})
    ->Args({256, 1000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_HopsetBootstrapDelta(benchmark::State& state)
{
    const auto max_weight = static_cast<Weight>(state.range(1));
    const Graph g = make_graph(static_cast<int>(state.range(0)), 3, max_weight);
    RoundLedger boot_ledger;
    CliqueTransport boot(g.node_count(), CostModel::standard(), boot_ledger);
    Rng rng(17);
    double a = 1.0;
    const DistanceMatrix delta = bootstrap_logn_approx(g, rng, boot, "boot", &a);
    run_hopset_case(state, g, delta, a);
}
BENCHMARK(BM_HopsetBootstrapDelta)
    ->Args({128, 10})
    ->Args({128, 1000})
    ->Args({128, 100000})
    ->Args({256, 1000})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
