// E9 — Theorem 7.1 and Lemma 3.1: small-diameter APSP and the
// approximation-factor reduction chain.
//
// Paper claims: 21-approximation (standard bandwidth) / 7-approximation
// (Congested-Clique[log^3 n]) in O(log log log n) rounds when
// d ∈ (log n)^{O(1)}; each Lemma 3.1 application turns an a-approximation
// into a 15*sqrt(a)-approximation in O(1) rounds.  Reported: claimed and
// measured stretch for both bandwidth variants, per-phase round
// breakdown, and one reduction's trace (hopset beta, k, skeleton size).
#include "bench_helpers.hpp"

#include "ccq/core/reduction.hpp"
#include "ccq/core/small_diameter.hpp"

namespace {

using namespace ccq;
using bench::make_graph;
using bench::report_apsp;

void BM_SmallDiameter(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const bool wide = state.range(1) != 0;
    // Small weighted diameter: narrow weights on a well-connected graph.
    const Graph g = make_graph(n, 51, 8);
    ApspOptions options;
    options.wide_bandwidth = wide;
    ApspResult result;
    for (auto _ : state) result = apsp_small_diameter(g, options);
    report_apsp(state, g, result);
    state.counters["wide_bandwidth"] = wide ? 1.0 : 0.0;
    state.counters["bound"] = wide ? 7.0 : 21.0;
    state.counters["bootstrap_rounds"] =
        result.ledger.rounds_in_phase("small-diameter/bootstrap");
    state.counters["reduce_rounds"] = result.ledger.rounds_in_phase("small-diameter/reduce");
}
BENCHMARK(BM_SmallDiameter)
    ->Args({96, 0})
    ->Args({96, 1})
    ->Args({192, 0})
    ->Args({192, 1})
    ->Args({384, 0})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ReductionTrace(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const Graph g = make_graph(n, 52, 8);
    const DistanceMatrix exact = exact_apsp(g);

    ReductionOutcome outcome;
    RoundLedger ledger;
    double input_a = 1.0;
    for (auto _ : state) {
        RoundLedger fresh;
        CliqueTransport transport(n, CostModel::standard(), fresh);
        Rng rng(53);
        DistanceMatrix delta = bootstrap_logn_approx(g, rng, transport, "boot", &input_a);
        outcome = reduce_approximation(g, delta, input_a, weighted_diameter(delta),
                                       ApspOptions{}, rng, transport, "red");
        ledger = std::move(fresh);
    }
    state.counters["n"] = n;
    state.counters["input_a"] = input_a;
    state.counters["claimed_out"] = outcome.trace.claimed_stretch;
    state.counters["lemma31_bound"] = 15.0 * std::sqrt(input_a);
    state.counters["stretch_measured"] =
        evaluate_stretch(exact, outcome.estimate).max_stretch;
    state.counters["hopset_beta"] = outcome.trace.hopset_hop_bound;
    state.counters["k"] = static_cast<double>(outcome.trace.k);
    state.counters["power_iterations"] = outcome.trace.power_iterations;
    state.counters["skeleton_nodes"] = outcome.trace.skeleton_size;
    state.counters["rounds"] = ledger.total_rounds();
}
BENCHMARK(BM_ReductionTrace)->Arg(96)->Arg(192)->Arg(384)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
