// E4 — Lemmas 5.1/5.2: k-nearest nodes in O(i) rounds.
//
// Paper claim: for k ∈ O(n^{1/h}), each filtered-power iteration runs in
// O(1) rounds via the bin / h-combination scheme (h * C(p,h) <= n helper
// assignments), so i iterations cover h^i hops in O(i) rounds.  The sweep
// varies (k, h, i), reports simulated rounds per iteration (flat in k
// within the regime), and compares the faithful routed execution against
// the fast path (identical rows, measured loads).
#include "bench_helpers.hpp"

#include "ccq/knearest/knearest.hpp"

namespace {

using namespace ccq;
using bench::make_graph;

void run_knearest(benchmark::State& state, bool faithful)
{
    const int n = 192;
    const Graph g = make_graph(n, 5);
    KNearestOptions options;
    options.k = static_cast<int>(state.range(0));
    options.h = static_cast<int>(state.range(1));
    options.iterations = static_cast<int>(state.range(2));
    options.faithful_bins = faithful;

    RoundLedger ledger;
    KNearestResult result;
    for (auto _ : state) {
        RoundLedger fresh;
        CliqueTransport transport(n, CostModel::standard(), fresh);
        result = compute_k_nearest(adjacency_rows(g), options, transport, "knn");
        ledger = std::move(fresh);
    }
    const BinSchemeParams params = bin_scheme_params(n, options.k, options.h);
    state.counters["k"] = options.k;
    state.counters["h"] = options.h;
    state.counters["i"] = options.iterations;
    state.counters["rounds"] = ledger.total_rounds();
    state.counters["rounds_per_iter"] =
        options.iterations > 0 ? ledger.total_rounds() / options.iterations : 0.0;
    state.counters["words"] = static_cast<double>(ledger.total_words());
    state.counters["hop_budget"] = static_cast<double>(result.hop_budget);
    state.counters["bins_p"] = static_cast<double>(params.p_effective);
    state.counters["combos"] = static_cast<double>(params.combination_count);
    state.counters["degenerate"] = params.degenerate ? 1.0 : 0.0;
}

void BM_KNearestFastPath(benchmark::State& state) { run_knearest(state, false); }
BENCHMARK(BM_KNearestFastPath)
    ->Args({4, 2, 2})
    ->Args({8, 2, 3})
    ->Args({13, 2, 4}) // k = sqrt(n)
    ->Args({4, 3, 2})
    ->Args({8, 3, 2})
    ->Args({4, 4, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_KNearestFaithfulBins(benchmark::State& state) { run_knearest(state, true); }
BENCHMARK(BM_KNearestFaithfulBins)
    ->Args({4, 2, 2})
    ->Args({8, 2, 3})
    ->Args({13, 2, 4})
    ->Args({4, 3, 2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace
