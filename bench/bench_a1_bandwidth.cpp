// A1 (ablation) — bandwidth: what Congested-Clique[B] buys.
//
// DESIGN.md lists the bandwidth ladder as a design choice to ablate: the
// paper uses B = log n (Thm 1.1), log^3 n (Thm 7.1's 7-approx), and
// log^4 n (Thm 8.1).  This sweep runs the same pipeline under increasing
// per-link bandwidth and reports how simulated rounds fall and which
// guarantee tier unlocks (exact skeleton APSP under wide bandwidth).
#include "bench_helpers.hpp"

namespace {

using namespace ccq;
using bench::make_graph;
using bench::report_apsp;

void BM_BandwidthLadder(benchmark::State& state)
{
    const int power = static_cast<int>(state.range(0));
    const int n = 160;
    const Graph g = make_graph(n, 71);
    ApspOptions options;
    options.cost = CostModel::with_log_power_bandwidth(n, power);
    options.wide_bandwidth = power >= 3;
    ApspResult result;
    // The Theorem 1.1 pipeline: its k-nearest stages route loads well
    // above n words/node, so widening the links genuinely cuts rounds
    // (until every primitive reaches the 1-round floor).
    for (auto _ : state) result = apsp_general(g, options);
    report_apsp(state, g, result);
    state.counters["bandwidth_power"] = power;
    state.counters["bandwidth_words"] = options.cost.bandwidth_words;
}
BENCHMARK(BM_BandwidthLadder)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_LenzenFactorSensitivity(benchmark::State& state)
{
    // The simulator's one free constant: rounds charged per full routing
    // batch.  Total rounds must scale exactly linearly with it, which
    // demonstrates that reported shapes are constant-independent.
    const double factor = static_cast<double>(state.range(0));
    const int n = 160;
    const Graph g = make_graph(n, 72);
    ApspOptions options;
    options.cost.lenzen_round_factor = factor;
    ApspResult result;
    for (auto _ : state) result = apsp_general(g, options);
    report_apsp(state, g, result);
    state.counters["lenzen_factor"] = factor;
    state.counters["rounds_per_factor"] = result.ledger.total_rounds() / factor;
}
BENCHMARK(BM_LenzenFactorSensitivity)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace
