// Shared helpers for the experiment benchmarks (E1..E10).
//
// Conventions: every benchmark reports its science through counters —
// simulated Congested-Clique rounds ("rounds"), measured/claimed stretch,
// structure sizes — and wall time only describes the simulator itself.
// Heavy algorithms run one iteration per configuration.
#ifndef CCQ_BENCH_BENCH_HELPERS_HPP
#define CCQ_BENCH_BENCH_HELPERS_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ccq/apsp.hpp"

namespace ccq::bench {

/// Whether the ccq library itself was compiled with NDEBUG.  Debug-build
/// numbers are not perf numbers; everything downstream of this flag
/// exists to keep them out of the committed BENCH_*.json trajectory.
inline constexpr bool library_is_release_build()
{
#ifdef NDEBUG
    return true;
#else
    return false;
#endif
}

/// Stamps a top-level "library_build_type" key into a Google Benchmark
/// JSON file so CI (and readers of the committed BENCH_*.json) can tell a
/// Release run from a Debug run without parsing compiler flags out of
/// `context`.  Inserted right after the opening brace; best-effort — a
/// missing or malformed file is left untouched.
inline void stamp_build_type(const std::string& json_path)
{
    std::ifstream in(json_path);
    if (!in) return;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string json = buffer.str();
    const std::size_t brace = json.find('{');
    if (brace == std::string::npos) return;
    const std::string key = std::string("\n  \"library_build_type\": \"") +
                            (library_is_release_build() ? "release" : "debug") + "\",";
    json.insert(brace + 1, key);
    std::ofstream out(json_path, std::ios::trunc);
    out << json;
}

/// Entry point shared by every bench binary (bench_main.cpp).
///
/// Adds a `--json out.json` flag on top of the standard Google Benchmark
/// flags: it expands to `--benchmark_out=out.json` +
/// `--benchmark_out_format=json`, so CI and future PRs can append runs to
/// the BENCH_*.json perf trajectory without remembering the long
/// spellings.  Everything else is passed through untouched.  The emitted
/// JSON gains a top-level "library_build_type" flag, and Debug builds
/// get a loud warning: their numbers must never be committed as perf
/// results.
inline int run_benchmarks(int argc, char** argv)
{
    std::vector<std::string> args;
    std::string json_path;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
            args.push_back("--benchmark_out=" + json_path);
            args.push_back("--benchmark_out_format=json");
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
            args.push_back("--benchmark_out=" + json_path);
            args.push_back("--benchmark_out_format=json");
        } else {
            args.push_back(arg);
        }
    }
    if (!library_is_release_build()) {
        std::fprintf(stderr,
                     "=================================================================\n"
                     "  WARNING: ccq was built WITHOUT NDEBUG (Debug/assert build).\n"
                     "  These numbers are NOT perf results.  Rebuild with\n"
                     "  -DCMAKE_BUILD_TYPE=Release before committing BENCH_*.json.\n"
                     "=================================================================\n");
    }
    std::vector<char*> translated;
    translated.reserve(args.size());
    for (std::string& arg : args) translated.push_back(arg.data());
    int translated_argc = static_cast<int>(translated.size());
    benchmark::Initialize(&translated_argc, translated.data());
    if (benchmark::ReportUnrecognizedArguments(translated_argc, translated.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!json_path.empty()) stamp_build_type(json_path);
    return 0;
}

/// Deterministic bench instance: Erdős–Rényi with average degree ~6
/// unless a family is specified.
inline Graph make_graph(int n, std::uint64_t seed = 1, Weight max_weight = 100,
                        GraphFamily family = GraphFamily::erdos_renyi_sparse)
{
    Rng rng(seed);
    return make_family_instance(family, n, WeightRange{1, max_weight}, rng);
}

/// Records the standard science counters for an APSP run.
inline void report_apsp(benchmark::State& state, const Graph& g, const ApspResult& result)
{
    const DistanceMatrix exact = exact_apsp(g);
    const StretchReport report = evaluate_stretch(exact, result.estimate);
    state.counters["rounds"] = result.ledger.total_rounds();
    state.counters["words"] = static_cast<double>(result.ledger.total_words());
    state.counters["claimed_stretch"] = result.claimed_stretch;
    state.counters["stretch_max"] = report.max_stretch;
    state.counters["stretch_avg"] = report.avg_stretch;
    state.counters["sound"] = report.sound() ? 1.0 : 0.0;
    state.counters["n"] = g.node_count();
    state.counters["m"] = static_cast<double>(g.edge_count());
}

} // namespace ccq::bench

#endif // CCQ_BENCH_BENCH_HELPERS_HPP
