// Shared helpers for the experiment benchmarks (E1..E10).
//
// Conventions: every benchmark reports its science through counters —
// simulated Congested-Clique rounds ("rounds"), measured/claimed stretch,
// structure sizes — and wall time only describes the simulator itself.
// Heavy algorithms run one iteration per configuration.
#ifndef CCQ_BENCH_BENCH_HELPERS_HPP
#define CCQ_BENCH_BENCH_HELPERS_HPP

#include <benchmark/benchmark.h>

#include "ccq/apsp.hpp"

namespace ccq::bench {

/// Deterministic bench instance: Erdős–Rényi with average degree ~6
/// unless a family is specified.
inline Graph make_graph(int n, std::uint64_t seed = 1, Weight max_weight = 100,
                        GraphFamily family = GraphFamily::erdos_renyi_sparse)
{
    Rng rng(seed);
    return make_family_instance(family, n, WeightRange{1, max_weight}, rng);
}

/// Records the standard science counters for an APSP run.
inline void report_apsp(benchmark::State& state, const Graph& g, const ApspResult& result)
{
    const DistanceMatrix exact = exact_apsp(g);
    const StretchReport report = evaluate_stretch(exact, result.estimate);
    state.counters["rounds"] = result.ledger.total_rounds();
    state.counters["words"] = static_cast<double>(result.ledger.total_words());
    state.counters["claimed_stretch"] = result.claimed_stretch;
    state.counters["stretch_max"] = report.max_stretch;
    state.counters["stretch_avg"] = report.avg_stretch;
    state.counters["sound"] = report.sound() ? 1.0 : 0.0;
    state.counters["n"] = g.node_count();
    state.counters["m"] = static_cast<double>(g.edge_count());
}

} // namespace ccq::bench

#endif // CCQ_BENCH_BENCH_HELPERS_HPP
