// Shared helpers for the experiment benchmarks (E1..E10).
//
// Conventions: every benchmark reports its science through counters —
// simulated Congested-Clique rounds ("rounds"), measured/claimed stretch,
// structure sizes — and wall time only describes the simulator itself.
// Heavy algorithms run one iteration per configuration.
#ifndef CCQ_BENCH_BENCH_HELPERS_HPP
#define CCQ_BENCH_BENCH_HELPERS_HPP

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ccq/apsp.hpp"

namespace ccq::bench {

/// Entry point shared by every bench binary (bench_main.cpp).
///
/// Adds a `--json out.json` flag on top of the standard Google Benchmark
/// flags: it expands to `--benchmark_out=out.json` +
/// `--benchmark_out_format=json`, so CI and future PRs can append runs to
/// the BENCH_*.json perf trajectory without remembering the long
/// spellings.  Everything else is passed through untouched.
inline int run_benchmarks(int argc, char** argv)
{
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            args.push_back("--benchmark_out=" + std::string(argv[++i]));
            args.push_back("--benchmark_out_format=json");
        } else if (arg.rfind("--json=", 0) == 0) {
            args.push_back("--benchmark_out=" + arg.substr(7));
            args.push_back("--benchmark_out_format=json");
        } else {
            args.push_back(arg);
        }
    }
    std::vector<char*> translated;
    translated.reserve(args.size());
    for (std::string& arg : args) translated.push_back(arg.data());
    int translated_argc = static_cast<int>(translated.size());
    benchmark::Initialize(&translated_argc, translated.data());
    if (benchmark::ReportUnrecognizedArguments(translated_argc, translated.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/// Deterministic bench instance: Erdős–Rényi with average degree ~6
/// unless a family is specified.
inline Graph make_graph(int n, std::uint64_t seed = 1, Weight max_weight = 100,
                        GraphFamily family = GraphFamily::erdos_renyi_sparse)
{
    Rng rng(seed);
    return make_family_instance(family, n, WeightRange{1, max_weight}, rng);
}

/// Records the standard science counters for an APSP run.
inline void report_apsp(benchmark::State& state, const Graph& g, const ApspResult& result)
{
    const DistanceMatrix exact = exact_apsp(g);
    const StretchReport report = evaluate_stretch(exact, result.estimate);
    state.counters["rounds"] = result.ledger.total_rounds();
    state.counters["words"] = static_cast<double>(result.ledger.total_words());
    state.counters["claimed_stretch"] = result.claimed_stretch;
    state.counters["stretch_max"] = report.max_stretch;
    state.counters["stretch_avg"] = report.avg_stretch;
    state.counters["sound"] = report.sound() ? 1.0 : 0.0;
    state.counters["n"] = g.node_count();
    state.counters["m"] = static_cast<double>(g.edge_count());
}

} // namespace ccq::bench

#endif // CCQ_BENCH_BENCH_HELPERS_HPP
