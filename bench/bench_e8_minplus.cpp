// E8 — Theorem 6.1 substrate (CDKL21): sparse min-plus product round cost
//
//   O( (rho_S rho_T rho_ST)^{1/3} / n^{2/3} + 1 ).
//
// The sweep varies operand density and reports the formula's round charge
// next to the product's wall time; the skeleton construction's density
// pattern (rho_X <= k, rho_Y <= |S|, rho_XY <= |S|^2/n) must land in the
// O(1)-rounds regime.
#include "bench_helpers.hpp"

#include <cmath>

#include "ccq/matrix/round_cost.hpp"

namespace {

using namespace ccq;

SparseMatrix random_rows(int n, int per_row, std::uint64_t seed)
{
    Rng rng(seed);
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow& row = rows[static_cast<std::size_t>(u)];
        row.push_back(SparseEntry{u, 0});
        for (int j = 1; j < per_row; ++j)
            row.push_back(SparseEntry{static_cast<NodeId>(rng.uniform_int(0, n - 1)),
                                      static_cast<Weight>(rng.uniform_int(1, 1000))});
        normalize_row(row);
    }
    return rows;
}

void BM_SparseProductDensitySweep(benchmark::State& state)
{
    const int n = 512;
    const int per_row = static_cast<int>(state.range(0));
    const SparseMatrix rows = random_rows(n, per_row, 41);
    SparseMatrix product;
    for (auto _ : state) product = min_plus_product(rows, rows, n);
    const double rho = average_density(rows);
    const double rho_out = average_density(product);
    state.counters["rho_in"] = rho;
    state.counters["rho_out"] = rho_out;
    state.counters["rounds_formula"] = sparse_product_rounds(rho, rho, rho_out, n);
    state.counters["n"] = n;
}
BENCHMARK(BM_SparseProductDensitySweep)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DenseProductReference(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const Graph g = ccq::bench::make_graph(n, 42, 100, GraphFamily::erdos_renyi_dense);
    const DistanceMatrix a = adjacency_matrix(g);
    DistanceMatrix c;
    for (auto _ : state) c = min_plus_product(a, a);
    benchmark::DoNotOptimize(c);
    // [CKK+19] round charge for the exact baseline.
    state.counters["rounds_charge"] = std::cbrt(static_cast<double>(n));
}
BENCHMARK(BM_DenseProductReference)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

} // namespace
