// E8 — Theorem 6.1 substrate (CDKL21): sparse min-plus product round cost
//
//   O( (rho_S rho_T rho_ST)^{1/3} / n^{2/3} + 1 ).
//
// The sweep varies operand density and reports the formula's round charge
// next to the product's wall time; the skeleton construction's density
// pattern (rho_X <= k, rho_Y <= |S|, rho_XY <= |S|^2/n) must land in the
// O(1)-rounds regime.
#include "bench_helpers.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <optional>

#include "ccq/matrix/engine.hpp"
#include "ccq/matrix/kernels/kernels.hpp"
#include "ccq/matrix/round_cost.hpp"
#include "ccq/obs/perf.hpp"

namespace {

using namespace ccq;

SparseMatrix random_rows(int n, int per_row, std::uint64_t seed)
{
    Rng rng(seed);
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow& row = rows[static_cast<std::size_t>(u)];
        row.push_back(SparseEntry{u, 0});
        for (int j = 1; j < per_row; ++j)
            row.push_back(SparseEntry{static_cast<NodeId>(rng.uniform_int(0, n - 1)),
                                      static_cast<Weight>(rng.uniform_int(1, 1000))});
        normalize_row(row);
    }
    return rows;
}

void BM_SparseProductDensitySweep(benchmark::State& state)
{
    const int n = 512;
    const int per_row = static_cast<int>(state.range(0));
    const SparseMatrix rows = random_rows(n, per_row, 41);
    SparseMatrix product;
    for (auto _ : state) product = min_plus_product(rows, rows, n);
    const double rho = average_density(rows);
    const double rho_out = average_density(product);
    state.counters["rho_in"] = rho;
    state.counters["rho_out"] = rho_out;
    state.counters["rounds_formula"] = sparse_product_rounds(rho, rho, rho_out, n);
    state.counters["n"] = n;
}
BENCHMARK(BM_SparseProductDensitySweep)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DenseProductReference(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const Graph g = ccq::bench::make_graph(n, 42, 100, GraphFamily::erdos_renyi_dense);
    const DistanceMatrix a = adjacency_matrix(g);
    DistanceMatrix c;
    for (auto _ : state) c = min_plus_product(a, a);
    benchmark::DoNotOptimize(c);
    // [CKK+19] round charge for the exact baseline.
    state.counters["rounds_charge"] = std::cbrt(static_cast<double>(n));
}
BENCHMARK(BM_DenseProductReference)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---- serial-vs-parallel ablation -----------------------------------------
//
// BM_DenseMinPlusSeed is the seed (naive triple loop) kernel;
// BM_DenseMinPlusEngine sweeps {threads} x {block_size} on the same
// operands.  The acceptance bar: at n = 512, threads = 4 the engine must
// be >= 3x faster than the seed kernel with bitwise-identical output
// (the `identical` counter, checked once per configuration).

const DistanceMatrix& bench_operand(int n)
{
    static std::map<int, DistanceMatrix> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        const Graph g = ccq::bench::make_graph(n, 42, 100, GraphFamily::erdos_renyi_dense);
        it = cache.emplace(n, adjacency_matrix(g)).first;
    }
    return it->second;
}

const DistanceMatrix& seed_product(int n)
{
    static std::map<int, DistanceMatrix> cache;
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, min_plus_product_reference(bench_operand(n), bench_operand(n)))
                 .first;
    return it->second;
}

/// Seed serial kernel wall time (milliseconds), best of 3 runs so one
/// scheduler hiccup cannot skew the speedup columns; cached per n.
double seed_serial_ms(int n)
{
    static std::map<int, double> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        const DistanceMatrix& a = bench_operand(n);
        double best_ms = 0.0;
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto start = std::chrono::steady_clock::now();
            const DistanceMatrix c = min_plus_product_reference(a, a);
            const auto stop = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(c.data());
            const double ms =
                std::chrono::duration<double, std::milli>(stop - start).count();
            if (attempt == 0 || ms < best_ms) best_ms = ms;
        }
        it = cache.emplace(n, best_ms).first;
    }
    return it->second;
}

void BM_DenseMinPlusSeed(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const DistanceMatrix& a = bench_operand(n);
    DistanceMatrix c;
    for (auto _ : state) c = min_plus_product_reference(a, a);
    benchmark::DoNotOptimize(c);
    state.counters["n"] = n;
    state.counters["threads"] = 1;
    state.counters["block_size"] = 0; // unblocked
}
BENCHMARK(BM_DenseMinPlusSeed)->ArgName("n")->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DenseMinPlusEngine(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const EngineConfig config{static_cast<int>(state.range(1)),
                              static_cast<int>(state.range(2))};
    const DistanceMatrix& a = bench_operand(n);
    const bool identical = min_plus_product(a, a, config) == seed_product(n);
    // Time the benchmark's own measured loop, so the speedup column uses
    // the same per-iteration mean the Time column reports.
    DistanceMatrix c;
    const auto start = std::chrono::steady_clock::now();
    std::int64_t iterations = 0;
    for (auto _ : state) {
        c = min_plus_product(a, a, config);
        ++iterations;
    }
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(c);
    const double engine_ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(iterations > 0 ? iterations : 1);

    state.counters["n"] = n;
    state.counters["threads"] = static_cast<double>(config.threads);
    state.counters["block_size"] = static_cast<double>(config.block_size);
    state.counters["identical"] = identical ? 1.0 : 0.0;
    state.counters["seed_serial_ms"] = seed_serial_ms(n);
    state.counters["speedup_vs_seed"] = seed_serial_ms(n) / engine_ms;
}
BENCHMARK(BM_DenseMinPlusEngine)
    ->ArgNames({"n", "threads", "block"})
    ->ArgsProduct({{128, 512}, {1, 2, 4}, {8, 64, 128}})
    ->Unit(benchmark::kMillisecond);

// ---- per-{ISA, width} kernel ablation --------------------------------------
//
// One benchmark per {ISA, element width} the host supports (scalar
// always; AVX2/AVX-512 when the CPU has them; i64 always; i32 whenever
// the width rule admits it — which it always does for these max_weight
// = 100 operands), single-threaded so the counters isolate the kernel
// itself.  The acceptance bars: at n = 512 the widest available SIMD
// kernel must beat the blocked scalar kernel (speedup_vs_scalar_kernel
// > 1), and on the SIMD ISAs the i32 kernel must beat the same-ISA i64
// kernel (speedup_vs_same_isa_wide >= 1) — all with bitwise-identical
// output (identical == 1).

/// EngineConfig{1, 64} pinned to an explicit width, so the ablation legs
/// are immune to CCQ_KERNEL_WIDTH in the bench environment.
EngineConfig kernel_config(KernelWidth width)
{
    EngineConfig config{1, 64};
    config.width = width;
    return config;
}

/// Blocked scalar i64-kernel wall time (milliseconds), best of 3; cached.
/// The historical baseline every speedup_vs_scalar_kernel column divides
/// by, so it stays pinned wide even now that auto width packs to i32.
double scalar_kernel_ms(int n)
{
    static std::map<int, double> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        const DistanceMatrix& a = bench_operand(n);
        kernels::set_isa_override(kernels::Isa::scalar);
        double best_ms = 0.0;
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto start = std::chrono::steady_clock::now();
            const DistanceMatrix c = min_plus_product(a, a, kernel_config(KernelWidth::kWide));
            const auto stop = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(c.data());
            const double ms =
                std::chrono::duration<double, std::milli>(stop - start).count();
            if (attempt == 0 || ms < best_ms) best_ms = ms;
        }
        kernels::set_isa_override(std::nullopt);
        it = cache.emplace(n, best_ms).first;
    }
    return it->second;
}

/// Same-ISA i64 wall time (milliseconds), best of 3; cached per {isa, n}.
/// Denominator of the narrow-vs-wide speedup column.
double isa_wide_ms(kernels::Isa isa, int n)
{
    static std::map<std::pair<int, int>, double> cache;
    const auto key = std::make_pair(static_cast<int>(isa), n);
    auto it = cache.find(key);
    if (it == cache.end()) {
        const DistanceMatrix& a = bench_operand(n);
        kernels::set_isa_override(isa);
        double best_ms = 0.0;
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto start = std::chrono::steady_clock::now();
            const DistanceMatrix c = min_plus_product(a, a, kernel_config(KernelWidth::kWide));
            const auto stop = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(c.data());
            const double ms =
                std::chrono::duration<double, std::milli>(stop - start).count();
            if (attempt == 0 || ms < best_ms) best_ms = ms;
        }
        kernels::set_isa_override(std::nullopt);
        it = cache.emplace(key, best_ms).first;
    }
    return it->second;
}

void BM_DenseMinPlusKernel(benchmark::State& state, kernels::Isa isa, KernelWidth width)
{
    const int n = static_cast<int>(state.range(0));
    const DistanceMatrix& a = bench_operand(n);
    const EngineConfig config = kernel_config(width);
    kernels::set_isa_override(isa);
    const ProductPlan plan = preview_product_plan(a, a, config);
    const bool identical = min_plus_product(a, a, config) == seed_product(n);
    DistanceMatrix c;
    // Hardware counters bracket exactly the timed loop; on hosts where
    // perf_event_open is forbidden they degrade to available == false
    // and the derived counters are simply omitted.
    obs::PerfCounters perf;
    perf.start();
    const auto start = std::chrono::steady_clock::now();
    std::int64_t iterations = 0;
    for (auto _ : state) {
        c = min_plus_product(a, a, config);
        ++iterations;
    }
    const auto stop = std::chrono::steady_clock::now();
    const obs::PerfCounts counts = perf.stop();
    benchmark::DoNotOptimize(c);
    kernels::set_isa_override(std::nullopt);
    const double kernel_ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(iterations > 0 ? iterations : 1);

    state.counters["n"] = n;
    state.counters["isa"] = static_cast<double>(isa);
    state.counters["element_width"] = plan.narrow ? 32.0 : 64.0;
    state.counters["identical"] = identical ? 1.0 : 0.0;
    state.counters["speedup_vs_seed"] = seed_serial_ms(n) / kernel_ms;
    state.counters["speedup_vs_scalar_kernel"] = scalar_kernel_ms(n) / kernel_ms;
    state.counters["speedup_vs_same_isa_wide"] = isa_wide_ms(isa, n) / kernel_ms;
    state.counters["perf_available"] = counts.available ? 1.0 : 0.0;
    if (counts.available) {
        const double cells = static_cast<double>(iterations > 0 ? iterations : 1) *
                             static_cast<double>(n) * static_cast<double>(n);
        state.counters["ipc"] = counts.ipc();
        state.counters["cache_misses_per_cell"] =
            static_cast<double>(counts.cache_misses) / cells;
        state.counters["branch_misses_per_cell"] =
            static_cast<double>(counts.branch_misses) / cells;
    }
}

/// Registers the ablation for exactly the {ISA, width} grid this host can
/// run, so a non-AVX runner produces a JSON without fake zero rows.
const int g_register_kernel_benchmarks = [] {
    for (const kernels::Isa isa : kernels::supported_isas()) {
        for (const KernelWidth width : {KernelWidth::kWide, KernelWidth::kNarrowIfSafe}) {
            const std::string name = std::string("BM_DenseMinPlusKernel/isa:") +
                                     kernels::isa_name(isa) +
                                     (width == KernelWidth::kWide ? "/w:i64" : "/w:i32");
            benchmark::RegisterBenchmark(name.c_str(),
                                         [isa, width](benchmark::State& state) {
                                             BM_DenseMinPlusKernel(state, isa, width);
                                         })
                ->ArgName("n")
                ->Arg(128)
                ->Arg(512)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

// ---- sparse-row skip ablation ----------------------------------------------
//
// A spanner-density dense operand (diagonal + ~8 finite cells per row,
// everything else kInfinity — the shape Theorem 1.1's skeleton products
// feed the dense engine) through the dense band kernel with and without
// the sparse-row skip pass.  Acceptance: skip on beats skip off
// (speedup_vs_dense_band > 1) with bitwise-identical output.

const DistanceMatrix& spanner_density_operand(int n)
{
    static std::map<int, DistanceMatrix> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        Rng rng(4242);
        DistanceMatrix m(n);
        m.set_diagonal_zero();
        for (NodeId u = 0; u < n; ++u)
            for (int e = 0; e < 8; ++e)
                m.at(u, static_cast<NodeId>(rng.uniform_int(0, n - 1))) =
                    rng.uniform_int(1, 100);
        it = cache.emplace(n, std::move(m)).first;
    }
    return it->second;
}

/// Dense-band (skip off) wall time on the spanner-density operand, best
/// of 3; cached per {width, n}.
double dense_band_ms(KernelWidth width, int n)
{
    static std::map<std::pair<int, int>, double> cache;
    const auto key = std::make_pair(static_cast<int>(width), n);
    auto it = cache.find(key);
    if (it == cache.end()) {
        const DistanceMatrix& a = spanner_density_operand(n);
        EngineConfig config = kernel_config(width);
        config.sparse_skip = false;
        double best_ms = 0.0;
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto start = std::chrono::steady_clock::now();
            const DistanceMatrix c = min_plus_product(a, a, config);
            const auto stop = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(c.data());
            const double ms =
                std::chrono::duration<double, std::milli>(stop - start).count();
            if (attempt == 0 || ms < best_ms) best_ms = ms;
        }
        it = cache.emplace(key, best_ms).first;
    }
    return it->second;
}

void BM_DenseMinPlusSparseSkip(benchmark::State& state)
{
    const int n = 512;
    const bool skip = state.range(0) != 0;
    const KernelWidth width =
        state.range(1) != 0 ? KernelWidth::kNarrowIfSafe : KernelWidth::kWide;
    const DistanceMatrix& a = spanner_density_operand(n);
    EngineConfig config = kernel_config(width);
    config.sparse_skip = skip;
    const ProductPlan plan = preview_product_plan(a, a, config);
    const bool identical = min_plus_product(a, a, config) == min_plus_product_reference(a, a);
    DistanceMatrix c;
    const auto start = std::chrono::steady_clock::now();
    std::int64_t iterations = 0;
    for (auto _ : state) {
        c = min_plus_product(a, a, config);
        ++iterations;
    }
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(c);
    const double pass_ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(iterations > 0 ? iterations : 1);

    state.counters["n"] = n;
    state.counters["density"] = plan.a_density;
    state.counters["sparse_skip"] = plan.sparse_skip ? 1.0 : 0.0;
    state.counters["element_width"] = plan.narrow ? 32.0 : 64.0;
    state.counters["identical"] = identical ? 1.0 : 0.0;
    state.counters["speedup_vs_dense_band"] = dense_band_ms(width, n) / pass_ms;
}
BENCHMARK(BM_DenseMinPlusSparseSkip)
    ->ArgNames({"skip", "narrow"})
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_SparseMinPlusEngineThreads(benchmark::State& state)
{
    const int n = 512;
    const int per_row = static_cast<int>(state.range(0));
    const EngineConfig config{static_cast<int>(state.range(1)), 64};
    const SparseMatrix rows = random_rows(n, per_row, 41);
    SparseMatrix product;
    for (auto _ : state) product = min_plus_product(rows, rows, n, config);
    state.counters["n"] = n;
    state.counters["rho_in"] = average_density(rows);
    state.counters["threads"] = static_cast<double>(config.threads);
}
BENCHMARK(BM_SparseMinPlusEngineThreads)
    ->ArgNames({"per_row", "threads"})
    ->ArgsProduct({{32, 128}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

} // namespace
