// Hitting sets for k-nearest neighborhoods (Lemma 6.2, step 1).
//
// Sample each node with probability ln(k)/k, then deterministically add
// any node whose approximate k-nearest set is still unhit.  Repeat
// O(log n) times in parallel and keep the smallest result, so the size
// bound O(n log k / k) holds w.h.p.
#ifndef CCQ_SKELETON_HITTING_SET_HPP
#define CCQ_SKELETON_HITTING_SET_HPP

#include <string_view>
#include <vector>

#include "ccq/clique/transport.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

/// Computes a set S hitting every row of `nk_rows` (each row is a node's
/// approximate k-nearest set; every row must be nonempty).  Returns the
/// sorted member list.  Charges the O(1)-round selection protocol of
/// Lemma 6.2 (one bit per node pair per repetition).
[[nodiscard]] std::vector<NodeId> compute_hitting_set(const SparseMatrix& nk_rows, int k,
                                                      Rng& rng, CliqueTransport& transport,
                                                      std::string_view phase,
                                                      int repetitions = 16);

/// Deterministic alternative: greedy set cover over the neighborhoods
/// (pick the node hitting the most uncovered sets, repeat).  Achieves the
/// same O(n log k / k) size class with an H_n-factor guarantee, but needs
/// global aggregation, so it is a sequential ablation baseline, not a
/// constant-round primitive (bench A3).
[[nodiscard]] std::vector<NodeId> compute_hitting_set_greedy(const SparseMatrix& nk_rows);

} // namespace ccq

#endif // CCQ_SKELETON_HITTING_SET_HPP
