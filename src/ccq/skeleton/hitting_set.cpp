#include "ccq/skeleton/hitting_set.hpp"

#include <algorithm>
#include <cmath>

namespace ccq {

std::vector<NodeId> compute_hitting_set(const SparseMatrix& nk_rows, int k, Rng& rng,
                                        CliqueTransport& transport, std::string_view phase,
                                        int repetitions)
{
    const int n = static_cast<int>(nk_rows.size());
    CCQ_EXPECT(n >= 1, "compute_hitting_set: empty input");
    CCQ_EXPECT(k >= 1, "compute_hitting_set: k must be >= 1");
    CCQ_EXPECT(repetitions >= 1, "compute_hitting_set: repetitions must be >= 1");
    for (NodeId v = 0; v < n; ++v) {
        const SparseRow& row = nk_rows[static_cast<std::size_t>(v)];
        const bool has_self = std::any_of(row.begin(), row.end(),
                                          [v](const SparseEntry& e) { return e.node == v; });
        // The fix-up step relies on v ∈ Ñk(v) (true for any set selected by
        // smallest (delta, id), since delta(v,v) = 0).
        CCQ_EXPECT(has_self, "compute_hitting_set: every k-nearest set must contain its owner");
    }
    PhaseScope scope(transport.ledger(), phase);

    const double probability = k >= 2 ? std::log(static_cast<double>(k)) / k : 1.0;

    std::vector<char> best_member;
    std::size_t best_size = static_cast<std::size_t>(n) + 1;
    for (int rep = 0; rep < repetitions; ++rep) {
        std::vector<char> member(static_cast<std::size_t>(n), 0);
        for (NodeId v = 0; v < n; ++v)
            if (rng.bernoulli(probability)) member[static_cast<std::size_t>(v)] = 1;
        // Fix-up: nodes with an unhit neighborhood join themselves.  Note
        // every row contains its owner, so the fix-up always succeeds.
        for (NodeId v = 0; v < n; ++v) {
            const SparseRow& row = nk_rows[static_cast<std::size_t>(v)];
            const bool hit = std::any_of(row.begin(), row.end(), [&](const SparseEntry& e) {
                return member[static_cast<std::size_t>(e.node)] != 0;
            });
            if (!hit) member[static_cast<std::size_t>(v)] = 1;
        }
        const auto size = static_cast<std::size_t>(
            std::count(member.begin(), member.end(), static_cast<char>(1)));
        if (size < best_size) {
            best_size = size;
            best_member = std::move(member);
        }
    }

    // Selection protocol cost: one indicator bit per (node, repetition)
    // to the counting nodes, then one broadcast word per repetition
    // (Lemma 6.2).  All repetitions run in parallel in O(1) rounds.
    RoutingLoad load;
    load.max_sent = static_cast<std::uint64_t>(repetitions);
    load.max_received = static_cast<std::uint64_t>(n);
    load.total_words = static_cast<std::uint64_t>(repetitions) * static_cast<std::uint64_t>(n);
    transport.charge_route("membership-count", load);
    transport.charge_broadcast_all("announce-membership", 1);

    std::vector<NodeId> result;
    for (NodeId v = 0; v < n; ++v)
        if (best_member[static_cast<std::size_t>(v)] != 0) result.push_back(v);
    return result;
}

std::vector<NodeId> compute_hitting_set_greedy(const SparseMatrix& nk_rows)
{
    const int n = static_cast<int>(nk_rows.size());
    // coverage[v]: how many still-uncovered sets node v would hit.
    std::vector<int> coverage(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<NodeId>> sets_containing(static_cast<std::size_t>(n));
    for (NodeId owner = 0; owner < n; ++owner) {
        for (const SparseEntry& e : nk_rows[static_cast<std::size_t>(owner)]) {
            ++coverage[static_cast<std::size_t>(e.node)];
            sets_containing[static_cast<std::size_t>(e.node)].push_back(owner);
        }
    }

    std::vector<char> covered(static_cast<std::size_t>(n), 0);
    std::vector<char> chosen(static_cast<std::size_t>(n), 0);
    int remaining = n;
    std::vector<NodeId> result;
    while (remaining > 0) {
        // Highest current coverage, ties by id.
        NodeId best = 0;
        for (NodeId v = 1; v < n; ++v)
            if (coverage[static_cast<std::size_t>(v)] > coverage[static_cast<std::size_t>(best)])
                best = v;
        CCQ_CHECK(coverage[static_cast<std::size_t>(best)] > 0,
                  "compute_hitting_set_greedy: uncoverable set (row missing its owner?)");
        chosen[static_cast<std::size_t>(best)] = 1;
        result.push_back(best);
        for (const NodeId owner : sets_containing[static_cast<std::size_t>(best)]) {
            if (covered[static_cast<std::size_t>(owner)]) continue;
            covered[static_cast<std::size_t>(owner)] = 1;
            --remaining;
            // The owner's set no longer needs covering: decay its members.
            for (const SparseEntry& e : nk_rows[static_cast<std::size_t>(owner)])
                --coverage[static_cast<std::size_t>(e.node)];
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

} // namespace ccq
