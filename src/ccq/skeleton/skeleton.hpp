// Skeleton graphs (paper Section 6, Lemmas 3.4 and 6.1).
//
// Given, for each node u, an approximate k-nearest set Ñk(u) with local
// distance estimates delta satisfying the two conditions of Lemma 6.1
// (soundness d <= delta <= a*d on the sets, and the separation property
// delta(u,v) <= a*d(u,t) for v in, t outside the set), we build:
//
//  * a hitting set S of size O(n log k / k) (cluster centers),
//  * per-node centers c(u) = argmin_{s in S ∩ Ñk(u)} delta(u, s),
//  * the skeleton graph G_S on S whose edges come from the 2-hop
//    exploration u -> t (t in Ñk(u)) -> v ({t,v} in E or t = v), with
//    weight delta(c(u),u) + delta(u,t) + w_tv + delta(v,c(v)),
//
// such that any l-approximation of APSP on G_S extends to a
// 7*l*a^2-approximation on G via
//    eta(u,v) = delta(u, c(u)) + delta_GS(c(u), c(v)) + delta(c(v), v)
// (pairs covered by the sets use delta directly).
#ifndef CCQ_SKELETON_SKELETON_HPP
#define CCQ_SKELETON_SKELETON_HPP

#include <string_view>
#include <vector>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

struct SkeletonGraph {
    std::vector<NodeId> members;      ///< S, sorted by node id
    std::vector<int> member_index;    ///< node -> compact index in S, or -1
    std::vector<NodeId> center;       ///< c(u) per node (a member of S)
    std::vector<Weight> center_delta; ///< delta(u, c(u)) per node
    Graph graph;                      ///< G_S on compact indices [0, |S|)
    double a = 1.0;                   ///< approximation factor of the input delta

    [[nodiscard]] int size() const noexcept { return static_cast<int>(members.size()); }
};

/// Builds the skeleton graph.  `nk_rows[u]` is Ñk(u) as (node, delta(u,node))
/// entries sorted by (delta, id) and must contain u itself; `a` is the
/// approximation factor the rows satisfy (1 for exact k-nearest sets).
[[nodiscard]] SkeletonGraph build_skeleton(const Graph& g, const SparseMatrix& nk_rows,
                                           double a, Rng& rng, CliqueTransport& transport,
                                           std::string_view phase,
                                           const EngineConfig& engine = {});

/// Extends an l-approximation `delta_gs` of APSP on G_S (indexed by the
/// compact skeleton ids) to the full graph: the eta of Lemma 6.1.  The
/// result is symmetric and satisfies eta >= d and (per Lemma 6.4)
/// eta <= 7*l*a^2*d.
[[nodiscard]] DistanceMatrix extend_skeleton_estimate(const SkeletonGraph& skeleton,
                                                      const DistanceMatrix& delta_gs,
                                                      const SparseMatrix& nk_rows,
                                                      CliqueTransport& transport,
                                                      std::string_view phase);

/// Upper bound on |S| promised by Lemma 6.1: c * n * max(1, ln k) / k.
[[nodiscard]] double skeleton_size_bound(int n, int k, double constant = 4.0);

} // namespace ccq

#endif // CCQ_SKELETON_SKELETON_HPP
