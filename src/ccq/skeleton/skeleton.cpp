#include "ccq/skeleton/skeleton.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "ccq/matrix/round_cost.hpp"
#include "ccq/skeleton/hitting_set.hpp"

namespace ccq {
namespace {

/// Payload for the x-value aggregation: candidate delta(s_a,u)+delta(u,t)
/// flowing from u to t, tagged with s_a = c(u).
struct CenterCandidate {
    NodeId center;
    Weight value;
};

} // namespace

double skeleton_size_bound(int n, int k, double constant)
{
    const double ln_k = std::max(1.0, std::log(static_cast<double>(std::max(2, k))));
    return constant * static_cast<double>(n) * ln_k / static_cast<double>(std::max(1, k));
}

SkeletonGraph build_skeleton(const Graph& g, const SparseMatrix& nk_rows, double a, Rng& rng,
                             CliqueTransport& transport, std::string_view phase,
                             const EngineConfig& engine)
{
    const int n = g.node_count();
    CCQ_EXPECT(static_cast<int>(nk_rows.size()) == n, "build_skeleton: row count mismatch");
    CCQ_EXPECT(a >= 1.0, "build_skeleton: approximation factor must be >= 1");
    PhaseScope scope(transport.ledger(), phase);

    int k = 1;
    for (const SparseRow& row : nk_rows) k = std::max(k, static_cast<int>(row.size()));

    SkeletonGraph skeleton;
    skeleton.a = a;
    skeleton.members = compute_hitting_set(nk_rows, k, rng, transport, "hitting-set");
    skeleton.member_index.assign(static_cast<std::size_t>(n), -1);
    for (std::size_t i = 0; i < skeleton.members.size(); ++i)
        skeleton.member_index[static_cast<std::size_t>(skeleton.members[i])] = static_cast<int>(i);

    // Step 2: centers c(u) — nearest hitting-set member by (delta, id).
    skeleton.center.assign(static_cast<std::size_t>(n), -1);
    skeleton.center_delta.assign(static_cast<std::size_t>(n), kInfinity);
    for (NodeId u = 0; u < n; ++u) {
        for (const SparseEntry& e : nk_rows[static_cast<std::size_t>(u)]) {
            if (skeleton.member_index[static_cast<std::size_t>(e.node)] < 0) continue;
            if (skeleton.center[static_cast<std::size_t>(u)] < 0 ||
                weight_id_less(e.dist, e.node, skeleton.center_delta[static_cast<std::size_t>(u)],
                               skeleton.center[static_cast<std::size_t>(u)])) {
                skeleton.center[static_cast<std::size_t>(u)] = e.node;
                skeleton.center_delta[static_cast<std::size_t>(u)] = e.dist;
            }
        }
        CCQ_CHECK(skeleton.center[static_cast<std::size_t>(u)] >= 0,
                  "build_skeleton: hitting set missed a k-nearest set");
    }
    transport.note_local_computation("select-centers");

    // x(s_a, t) = min over u with c(u)=s_a, t in Ñk(u) of delta(s_a,u)+delta(u,t).
    // Each u sends one candidate to every t in its set; t aggregates.
    MessageExchange<CenterCandidate> x_stage(n);
    for (NodeId u = 0; u < n; ++u) {
        const NodeId s_a = skeleton.center[static_cast<std::size_t>(u)];
        const Weight to_center = skeleton.center_delta[static_cast<std::size_t>(u)];
        for (const SparseEntry& e : nk_rows[static_cast<std::size_t>(u)])
            x_stage.send(u, e.node, CenterCandidate{s_a, saturating_add(to_center, e.dist)});
    }
    const auto x_inboxes = x_stage.deliver(transport, "x-aggregate", /*words_per_record=*/2);

    // Forward aggregated x values to their skeleton row owners.
    MessageExchange<CenterCandidate> x_forward(n); // payload.center reused as t carrier
    for (NodeId t = 0; t < n; ++t) {
        std::unordered_map<NodeId, Weight> best; // s_a -> min value
        for (const auto& routed : x_inboxes[static_cast<std::size_t>(t)]) {
            auto [it, inserted] = best.try_emplace(routed.payload.center, routed.payload.value);
            if (!inserted) it->second = min_weight(it->second, routed.payload.value);
        }
        for (const auto& [s_a, value] : best)
            x_forward.send(t, s_a, CenterCandidate{t, value});
    }
    const auto x_rows_inboxes = x_forward.deliver(transport, "x-to-rows", /*words_per_record=*/2);

    SparseMatrix x_rows(static_cast<std::size_t>(n)); // row s_a: entries (t, x)
    for (NodeId s_a = 0; s_a < n; ++s_a) {
        SparseRow& row = x_rows[static_cast<std::size_t>(s_a)];
        for (const auto& routed : x_rows_inboxes[static_cast<std::size_t>(s_a)])
            row.push_back(SparseEntry{routed.payload.center, routed.payload.value});
        normalize_row(row);
    }

    // y(t, s_b) = min over v with c(v)=s_b and {t,v} in E of w_tv + delta(v,s_b),
    // plus the t=v rule: y(t, c(t)) <= delta(t, c(t)).
    MessageExchange<CenterCandidate> y_stage(n);
    for (NodeId v = 0; v < n; ++v) {
        const NodeId s_b = skeleton.center[static_cast<std::size_t>(v)];
        const Weight to_center = skeleton.center_delta[static_cast<std::size_t>(v)];
        for (const Edge& e : g.neighbors(v))
            y_stage.send(v, e.to, CenterCandidate{s_b, saturating_add(e.weight, to_center)});
    }
    const auto y_inboxes = y_stage.deliver(transport, "y-aggregate", /*words_per_record=*/2);

    SparseMatrix y_rows(static_cast<std::size_t>(n)); // row t: entries (s_b, y)
    for (NodeId t = 0; t < n; ++t) {
        std::unordered_map<NodeId, Weight> best; // s_b -> min value
        best[skeleton.center[static_cast<std::size_t>(t)]] =
            skeleton.center_delta[static_cast<std::size_t>(t)]; // t = v case
        for (const auto& routed : y_inboxes[static_cast<std::size_t>(t)]) {
            auto [it, inserted] = best.try_emplace(routed.payload.center, routed.payload.value);
            if (!inserted) it->second = min_weight(it->second, routed.payload.value);
        }
        SparseRow& row = y_rows[static_cast<std::size_t>(t)];
        for (const auto& [s_b, value] : best) row.push_back(SparseEntry{s_b, value});
        normalize_row(row);
    }

    // Skeleton edge weights = X * Y over min-plus (Lemma 6.2's single
    // sparse product; densities rho_X <= k, rho_Y <= |S|, rho_XY <= |S|^2/n).
    const double s_count = static_cast<double>(skeleton.members.size());
    const double rho_bound = s_count * s_count / static_cast<double>(n) + 1.0;
    const SparseMatrix weights =
        charged_sparse_product(transport, "skeleton-product", x_rows, y_rows, rho_bound,
                               engine);

    // Materialize the undirected skeleton graph on compact indices.
    std::map<std::pair<int, int>, Weight> best_edge;
    for (NodeId s_a = 0; s_a < n; ++s_a) {
        const int ia = skeleton.member_index[static_cast<std::size_t>(s_a)];
        if (ia < 0) continue;
        for (const SparseEntry& e : weights[static_cast<std::size_t>(s_a)]) {
            const int ib = skeleton.member_index[static_cast<std::size_t>(e.node)];
            CCQ_CHECK(ib >= 0, "skeleton edge endpoint must be a skeleton node");
            if (ia == ib) continue;
            const auto key = std::make_pair(std::min(ia, ib), std::max(ia, ib));
            auto [it, inserted] = best_edge.try_emplace(key, e.dist);
            if (!inserted) it->second = min_weight(it->second, e.dist);
        }
    }
    skeleton.graph = Graph::undirected(static_cast<int>(skeleton.members.size()));
    for (const auto& [key, weight] : best_edge)
        skeleton.graph.add_edge(key.first, key.second, weight);
    return skeleton;
}

DistanceMatrix extend_skeleton_estimate(const SkeletonGraph& skeleton,
                                        const DistanceMatrix& delta_gs,
                                        const SparseMatrix& nk_rows,
                                        CliqueTransport& transport, std::string_view phase)
{
    const int n = static_cast<int>(skeleton.center.size());
    const int s = skeleton.size();
    CCQ_EXPECT(delta_gs.size() == s, "extend_skeleton_estimate: delta_gs size mismatch");
    CCQ_EXPECT(static_cast<int>(nk_rows.size()) == n,
               "extend_skeleton_estimate: nk_rows size mismatch");
    PhaseScope scope(transport.ledger(), phase);

    // eta(u,v) = delta(u,c(u)) + delta_GS(c(u),c(v)) + delta(c(v),v),
    // computed as the matrix chain A^T * (D * A) of Lemma 6.3; both
    // products have constant-density operands, so O(1) rounds each.
    const double rho_d = static_cast<double>(s) * static_cast<double>(s) / std::max(1, n);
    transport.ledger().charge("product-DA",
                              sparse_product_rounds(rho_d, 1.0, static_cast<double>(s), n));
    transport.ledger().charge("product-AtB",
                              sparse_product_rounds(1.0, static_cast<double>(s),
                                                    static_cast<double>(n), n));

    // B[s_a][v] = delta_GS(s_a, c(v)) + delta(v, c(v)).
    DistanceMatrix eta(n);
    for (NodeId u = 0; u < n; ++u) {
        const int cu = skeleton.member_index[static_cast<std::size_t>(
            skeleton.center[static_cast<std::size_t>(u)])];
        const Weight du = skeleton.center_delta[static_cast<std::size_t>(u)];
        for (NodeId v = 0; v < n; ++v) {
            const int cv = skeleton.member_index[static_cast<std::size_t>(
                skeleton.center[static_cast<std::size_t>(v)])];
            const Weight dv = skeleton.center_delta[static_cast<std::size_t>(v)];
            eta.at(u, v) = saturating_add(du, saturating_add(
                                                  delta_gs.at(static_cast<NodeId>(cu),
                                                              static_cast<NodeId>(cv)),
                                                  dv));
        }
    }

    // Pairs covered by the k-nearest sets use delta directly (taking the
    // minimum keeps both the soundness and the upper bound).
    for (NodeId u = 0; u < n; ++u)
        for (const SparseEntry& e : nk_rows[static_cast<std::size_t>(u)]) {
            eta.relax(u, e.node, e.dist);
            eta.relax(e.node, u, e.dist);
        }
    eta.set_diagonal_zero();

    // Symmetrize (eta is symmetric in exact arithmetic; the overlay above
    // can introduce one-sided improvements).
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v) {
            const Weight m = min_weight(eta.at(u, v), eta.at(v, u));
            eta.at(u, v) = m;
            eta.at(v, u) = m;
        }
    return eta;
}

} // namespace ccq
