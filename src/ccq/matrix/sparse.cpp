#include "ccq/matrix/sparse.hpp"

#include <algorithm>
#include <utility>

#include "ccq/matrix/engine.hpp"

namespace ccq {

void normalize_row(SparseRow& row)
{
    std::sort(row.begin(), row.end(), [](const SparseEntry& a, const SparseEntry& b) {
        return a.node != b.node ? a.node < b.node : a.dist < b.dist;
    });
    // Unique nodes: first occurrence has the smallest dist.
    row.erase(std::unique(row.begin(), row.end(),
                          [](const SparseEntry& a, const SparseEntry& b) {
                              return a.node == b.node;
                          }),
              row.end());
    std::sort(row.begin(), row.end(), entry_less);
}

SparseMatrix adjacency_rows(const Graph& g, bool include_self)
{
    const int n = g.node_count();
    SparseMatrix rows(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
        SparseRow& row = rows[static_cast<std::size_t>(u)];
        if (include_self) row.push_back(SparseEntry{u, 0});
        for (const Edge& e : g.neighbors(u)) row.push_back(SparseEntry{e.to, e.weight});
        normalize_row(row);
    }
    return rows;
}

SparseMatrix filter_k_smallest(const SparseMatrix& m, int k)
{
    CCQ_EXPECT(k >= 0, "filter_k_smallest: k must be >= 0");
    SparseMatrix result(m.size());
    for (std::size_t u = 0; u < m.size(); ++u) {
        SparseRow row = m[u]; // already canonical: sorted by (dist, id)
        if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
        result[u] = std::move(row);
    }
    return result;
}

SparseMatrix min_plus_product(const SparseMatrix& a, const SparseMatrix& b, int n)
{
    return min_plus_product(a, b, n, EngineConfig{});
}

SparseMatrix hop_power(const SparseMatrix& a, int h, int n)
{
    return hop_power(a, h, n, EngineConfig{});
}

double average_density(const SparseMatrix& m)
{
    if (m.empty()) return 0.0;
    std::size_t total = 0;
    for (const SparseRow& row : m) total += row.size();
    return static_cast<double>(total) / static_cast<double>(m.size());
}

DistanceMatrix sparse_to_dense(const SparseMatrix& m, int n)
{
    CCQ_EXPECT(std::cmp_less_equal(m.size(), static_cast<std::size_t>(n)),
               "sparse_to_dense: n too small");
    DistanceMatrix d(n);
    for (std::size_t u = 0; u < m.size(); ++u)
        for (const SparseEntry& e : m[u]) d.relax(static_cast<NodeId>(u), e.node, e.dist);
    return d;
}

SparseMatrix dense_to_sparse(const DistanceMatrix& d)
{
    SparseMatrix m(static_cast<std::size_t>(d.size()));
    for (NodeId u = 0; u < d.size(); ++u) {
        SparseRow& row = m[static_cast<std::size_t>(u)];
        for (NodeId v = 0; v < d.size(); ++v) {
            const Weight w = d.at(u, v);
            if (is_finite(w)) row.push_back(SparseEntry{v, w});
        }
        std::sort(row.begin(), row.end(), entry_less);
    }
    return m;
}

} // namespace ccq
