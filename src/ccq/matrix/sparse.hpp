// Sparse rows over the min-plus semiring, and filtered matrix products.
//
// Section 5 of the paper phrases the k-nearest computation as *filtered
// matrix multiplication*: keep only the k smallest entries of each row
// (ties by node id) and exponentiate.  Lemma 5.5 shows filtering commutes
// with exponentiation for the k smallest entries; the test suite checks
// that identity directly against these primitives.
//
// Density ρ_M (CDKL21): average number of non-infinity entries per row —
// the quantity that drives the sparse product round cost (Theorem 6.1).
#ifndef CCQ_MATRIX_SPARSE_HPP
#define CCQ_MATRIX_SPARSE_HPP

#include <vector>

#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// One finite entry of a sparse row: "node is reachable at distance dist".
struct SparseEntry {
    NodeId node = 0;
    Weight dist = 0;

    friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

/// Row in canonical form: unique nodes, sorted by (dist, node id).
using SparseRow = std::vector<SparseEntry>;

/// Matrix as one sparse row per source node.
using SparseMatrix = std::vector<SparseRow>;

/// Collapses duplicate nodes to their minimum and sorts by (dist, id).
void normalize_row(SparseRow& row);

/// Entry order used by every "k smallest" selection in the paper.
[[nodiscard]] inline bool entry_less(const SparseEntry& a, const SparseEntry& b) noexcept
{
    return weight_id_less(a.dist, a.node, b.dist, b.node);
}

/// Adjacency rows of `g` (one row per node; `include_self` adds the
/// diagonal zero, matching A[v,v] = 0 of Section 2.1).  Parallel arcs are
/// collapsed to their minimum.
[[nodiscard]] SparseMatrix adjacency_rows(const Graph& g, bool include_self = true);

/// Keeps the k smallest entries of each row, ties by node id (the matrix
/// written as "A-bar" in Section 5).
[[nodiscard]] SparseMatrix filter_k_smallest(const SparseMatrix& m, int k);

/// Min-plus product: row u of the result relaxes through every (v, d1) in
/// a[u] and (w, d2) in b[v].  `n` bounds node ids.  Runs on the
/// row-parallel engine (matrix/engine.hpp) with the default EngineConfig.
[[nodiscard]] SparseMatrix min_plus_product(const SparseMatrix& a, const SparseMatrix& b, int n);

/// a^h over min-plus (h >= 1).  Rows of `a` must contain their diagonal
/// zeros so powers are monotone ("at most h hops" semantics of A^h).
[[nodiscard]] SparseMatrix hop_power(const SparseMatrix& a, int h, int n);

/// Average finite entries per row (ρ of CDKL21 / Theorem 6.1).
[[nodiscard]] double average_density(const SparseMatrix& m);

[[nodiscard]] DistanceMatrix sparse_to_dense(const SparseMatrix& m, int n);
[[nodiscard]] SparseMatrix dense_to_sparse(const DistanceMatrix& d);

} // namespace ccq

#endif // CCQ_MATRIX_SPARSE_HPP
