// Round-cost model for sparse min-plus products (CDKL21, Theorem 6.1).
//
// The product S*T of n x n matrices over the min-plus semiring costs
//     O( (ρ_S ρ_T ρ_ST)^{1/3} / n^{2/3} + 1 )
// rounds in the Congested-Clique, where ρ is average finite entries per
// row and ρ_ST an a-priori *upper bound* on the product's density.  The
// skeleton-graph construction (Lemma 6.2) relies on this cost being O(1)
// for its particular density pattern; tests verify that.
#ifndef CCQ_MATRIX_ROUND_COST_HPP
#define CCQ_MATRIX_ROUND_COST_HPP

#include <string_view>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

/// Theorem 6.1 round formula (the O(.) argument, with unit constant).
[[nodiscard]] double sparse_product_rounds(double rho_s, double rho_t, double rho_st_bound,
                                           int n);

/// Computes S*T and charges Theorem 6.1 rounds for it.  `rho_st_bound` is
/// the caller's a-priori density bound on the product (must be known
/// beforehand, per the theorem statement); the actual product density is
/// verified against it.  The round charge depends only on the densities,
/// never on `engine`.
[[nodiscard]] SparseMatrix charged_sparse_product(CliqueTransport& transport,
                                                  std::string_view phase, const SparseMatrix& s,
                                                  const SparseMatrix& t, double rho_st_bound,
                                                  const EngineConfig& engine = {});

} // namespace ccq

#endif // CCQ_MATRIX_ROUND_COST_HPP
