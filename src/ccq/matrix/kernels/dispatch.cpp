#include <atomic>
#include <cstdlib>
#include <string>

#include "ccq/common/check.hpp"
#include "ccq/matrix/kernels/kernels.hpp"

namespace ccq::kernels {
namespace {

/// -1 = automatic dispatch, otherwise the forced Isa value.
std::atomic<int> g_override{-1};

[[nodiscard]] bool cpu_has(Isa isa)
{
    switch (isa) {
    case Isa::scalar: return true;
#ifdef CCQ_KERNELS_X86
    case Isa::avx2: return __builtin_cpu_supports("avx2") != 0;
    case Isa::avx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    case Isa::avx2:
    case Isa::avx512: return false;
#endif
    }
    return false;
}

/// CCQ_SIMD environment override, parsed once: a recognized ISA that
/// this host supports wins; anything else (including "auto", unset, or
/// an ISA the CPU lacks) means automatic dispatch.
[[nodiscard]] Isa env_or_widest()
{
    static const Isa resolved = [] {
        if (const char* env = std::getenv("CCQ_SIMD")) {
            const std::string want(env);
            for (const Isa isa : {Isa::scalar, Isa::avx2, Isa::avx512})
                if (want == isa_name(isa) && isa_supported(isa)) return isa;
        }
        Isa widest = Isa::scalar;
        for (const Isa isa : {Isa::avx2, Isa::avx512})
            if (isa_supported(isa)) widest = isa;
        return widest;
    }();
    return resolved;
}

} // namespace

const char* isa_name(Isa isa)
{
    switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::avx2: return "avx2";
    case Isa::avx512: return "avx512";
    }
    return "unknown";
}

bool isa_compiled(Isa isa)
{
#ifdef CCQ_KERNELS_X86
    (void)isa;
    return true;
#else
    return isa == Isa::scalar;
#endif
}

bool isa_supported(Isa isa) { return isa_compiled(isa) && cpu_has(isa); }

std::vector<Isa> supported_isas()
{
    std::vector<Isa> isas;
    for (const Isa isa : {Isa::scalar, Isa::avx2, Isa::avx512})
        if (isa_supported(isa)) isas.push_back(isa);
    return isas;
}

Isa dispatch_isa()
{
    const int forced = g_override.load(std::memory_order_acquire);
    if (forced >= 0) return static_cast<Isa>(forced);
    return env_or_widest();
}

DenseBandFn dense_band_kernel(Isa isa) { return band_kernels(isa).dense_wide; }

BandKernels band_kernels(Isa isa)
{
    CCQ_EXPECT(isa_supported(isa), "band_kernels: ISA not supported on this host");
    switch (isa) {
    case Isa::scalar:
        return {&dense_band_scalar, &sparse_band_scalar, &dense_band_scalar_w32,
                &sparse_band_scalar_w32};
#ifdef CCQ_KERNELS_X86
    case Isa::avx2:
        return {&dense_band_avx2, &sparse_band_avx2, &dense_band_avx2_w32,
                &sparse_band_avx2_w32};
    case Isa::avx512:
        return {&dense_band_avx512, &sparse_band_avx512, &dense_band_avx512_w32,
                &sparse_band_avx512_w32};
#else
    case Isa::avx2:
    case Isa::avx512: break;
#endif
    }
    // unreachable: CCQ_EXPECT above
    return {&dense_band_scalar, &sparse_band_scalar, &dense_band_scalar_w32,
            &sparse_band_scalar_w32};
}

void set_isa_override(std::optional<Isa> isa)
{
    if (isa.has_value()) {
        CCQ_EXPECT(isa_supported(*isa), "set_isa_override: ISA not supported on this host");
        g_override.store(static_cast<int>(*isa), std::memory_order_release);
    } else {
        g_override.store(-1, std::memory_order_release);
    }
}

} // namespace ccq::kernels
