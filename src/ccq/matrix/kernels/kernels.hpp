// ISA-dispatched dense min-plus micro-kernels.
//
// The blocked dense engine (matrix/engine.cpp) spends essentially all of
// its time in one loop: for a finite A[i,k], relax C[i, jj..jend) with
// A[i,k] + B[k, jj..jend).  That loop vectorizes cleanly over integer
// lanes (broadcast-add + lane-wise signed min; the INF-skip on A[i,k] is
// hoisted out of the j-loop), so this subsystem provides band kernels
// per instruction set — scalar reference, AVX2, AVX-512 — selected at
// runtime via cpuid, in two element widths and two k-loop shapes:
//
//   width:  i64 (Weight, 4/8 SIMD lanes) and i32 (Weight32, 8/16 lanes).
//           The engine packs operands to i32 only when its width-dispatch
//           rule proves every sum the kernel can form compares identically
//           in both domains (engine.cpp / docs/ENGINE.md), so the unpacked
//           narrow result is bitwise identical to the wide one.
//   shape:  dense (the (ii,kk,jj) tiled nest below) and sparse-row skip
//           (per-row pre-scan of A for finite entries; the k-loop runs
//           off the packed index list — a large win when rows are mostly
//           INF, e.g. spanner-shaped operands).
//
// Contract: every kernel computes, for rows [i0, i1) of C,
//
//   C[i,j] = min(C[i,j], min_{k, A[i,k] finite} A[i,k] + B[k,j])
//
// with raw (non-saturating) additions, byte-for-byte identical to the
// scalar reference for every input whose cells are all <= the width's
// infinity sentinel.  Integer add and min are exact, each C cell depends
// only on its own column, and min is order-independent over exact
// candidates, so neither SIMD width nor the k-loop shape can change a
// single output bit.  tests/test_kernels.cpp enforces this pairwise
// across every compiled {ISA, width, shape}.
//
// All kernels software-prefetch the B row the k-loop will touch
// kPrefetchRowDistance iterations ahead (within the current j-tile), so
// the next tile row is L1-resident by the time its broadcast-add issues.
//
// Selection order: the programmatic override (set_isa_override, used by
// tests and bench ablations), then the CCQ_SIMD environment variable
// ("scalar" | "avx2" | "avx512" | "auto"; unsupported values fall back
// to auto), then the widest ISA the CPU supports.  Building with
// -DCCQ_SIMD=OFF compiles the scalar kernels only; non-x86 targets do
// the same automatically.  Element width is NOT selected here — that is
// the engine's provable per-product decision (EngineConfig::width +
// CCQ_KERNEL_WIDTH).
#ifndef CCQ_MATRIX_KERNELS_KERNELS_HPP
#define CCQ_MATRIX_KERNELS_KERNELS_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "ccq/common/types.hpp"

namespace ccq::kernels {

/// Instruction sets a dense band kernel can target, narrowest first.
enum class Isa {
    scalar = 0, ///< portable reference kernel (always available)
    avx2 = 1,   ///< 4 x i64 / 8 x i32 lanes, compare+blend or native min
    avx512 = 2, ///< 8 x i64 / 16 x i32 lanes, native vpmins{q,d} + masked tail
};

[[nodiscard]] const char* isa_name(Isa isa);

/// Dense band kernel: rows [i0, i1) of C, all of A and B, tiled by bs.
/// See the file header for the exact semantics contract.
using DenseBandFn = void (*)(const Weight* a, const Weight* b, Weight* c, int n, int i0,
                             int i1, int bs);

/// Same contract over the packed i32 domain (sentinel kInfinity32).
using DenseBandFn32 = void (*)(const Weight32* a, const Weight32* b, Weight32* c, int n,
                               int i0, int i1, int bs);

/// The four band kernels one ISA provides: both element widths, each in
/// the dense tiled shape and the sparse-row skip shape.  All four obey
/// the same semantics contract over their width's domain.
struct BandKernels {
    DenseBandFn dense_wide;
    DenseBandFn sparse_wide;
    DenseBandFn32 dense_narrow;
    DenseBandFn32 sparse_narrow;
};

/// How many k-loop iterations ahead the kernels prefetch the next B row
/// of the current j-tile.  Tuned on the CI-class hardware: 1 row keeps
/// the prefetch inside the tile's reuse window without thrashing L1 on
/// small block sizes.
inline constexpr int kPrefetchRowDistance = 1;

namespace detail {

/// Prefetch every cacheline of [p, p + bytes) for reading.
inline void prefetch_span(const void* p, std::size_t bytes) noexcept
{
#if defined(__GNUC__) || defined(__clang__)
    const char* c = static_cast<const char*>(p);
    for (std::size_t off = 0; off < bytes; off += 64) __builtin_prefetch(c + off, 0, 3);
#else
    (void)p;
    (void)bytes;
#endif
}

} // namespace detail

/// True if this binary contains a kernel for `isa` (CCQ_SIMD=ON and an
/// x86-64 toolchain; scalar is always compiled).
[[nodiscard]] bool isa_compiled(Isa isa);

/// True if `isa` is compiled in AND the running CPU supports it.
[[nodiscard]] bool isa_supported(Isa isa);

/// Every ISA usable on this host, narrowest first (never empty).
[[nodiscard]] std::vector<Isa> supported_isas();

/// The ISA the engine will use: override > CCQ_SIMD env > widest
/// supported.  Always returns a supported ISA.
[[nodiscard]] Isa dispatch_isa();

/// The wide dense band kernel for `isa`; requires isa_supported(isa).
[[nodiscard]] DenseBandFn dense_band_kernel(Isa isa);

/// All four band kernels for `isa`; requires isa_supported(isa).
[[nodiscard]] BandKernels band_kernels(Isa isa);

/// Forces dispatch_isa() to `isa` (must be supported); nullopt restores
/// automatic dispatch.  For tests and bench ablations.
void set_isa_override(std::optional<Isa> isa);

// Per-ISA entry points (dispatch.cpp wires them up; exposed so the
// differential tests can call an ISA directly).  Calling an entry point
// whose ISA the CPU lacks is undefined (SIGILL); gate on isa_supported.
void dense_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs);
void sparse_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                        int bs);
void dense_band_scalar_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                           int i1, int bs);
void sparse_band_scalar_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                            int i1, int bs);
#if !defined(CCQ_SIMD_DISABLED) && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CCQ_KERNELS_X86 1
void dense_band_avx2(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                     int bs);
void sparse_band_avx2(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                      int bs);
void dense_band_avx2_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                         int i1, int bs);
void sparse_band_avx2_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                          int i1, int bs);
void dense_band_avx512(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs);
void sparse_band_avx512(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                        int bs);
void dense_band_avx512_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                           int i1, int bs);
void sparse_band_avx512_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                            int i1, int bs);
#endif

} // namespace ccq::kernels

#endif // CCQ_MATRIX_KERNELS_KERNELS_HPP
