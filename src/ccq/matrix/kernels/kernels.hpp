// ISA-dispatched dense min-plus micro-kernels.
//
// The blocked dense engine (matrix/engine.cpp) spends essentially all of
// its time in one loop: for a finite A[i,k], relax C[i, jj..jend) with
// A[i,k] + B[k, jj..jend).  That loop vectorizes cleanly over 64-bit
// lanes (broadcast-add + lane-wise signed min; the INF-skip on A[i,k] is
// hoisted out of the j-loop), so this subsystem provides one band kernel
// per instruction set — scalar reference, AVX2, AVX-512 — selected at
// runtime via cpuid.
//
// Contract: every kernel computes, for rows [i0, i1) of C,
//
//   C[i,j] = min(C[i,j], min_{k, A[i,k] finite} A[i,k] + B[k,j])
//
// with raw (non-saturating) additions, byte-for-byte identical to the
// scalar reference for every input whose cells are all <= kInfinity.
// 64-bit integer add and min are exact, each C cell depends only on its
// own column, and the k-order of relaxations is preserved, so SIMD width
// cannot change a single output bit.  tests/test_kernels.cpp enforces
// this pairwise across every compiled ISA.
//
// Selection order: the programmatic override (set_isa_override, used by
// tests and bench ablations), then the CCQ_SIMD environment variable
// ("scalar" | "avx2" | "avx512" | "auto"; unsupported values fall back
// to auto), then the widest ISA the CPU supports.  Building with
// -DCCQ_SIMD=OFF compiles the scalar kernel only; non-x86 targets do the
// same automatically.
#ifndef CCQ_MATRIX_KERNELS_KERNELS_HPP
#define CCQ_MATRIX_KERNELS_KERNELS_HPP

#include <optional>
#include <vector>

#include "ccq/common/types.hpp"

namespace ccq::kernels {

/// Instruction sets a dense band kernel can target, narrowest first.
enum class Isa {
    scalar = 0, ///< portable reference kernel (always available)
    avx2 = 1,   ///< 4 x 64-bit lanes, compare+blend min
    avx512 = 2, ///< 8 x 64-bit lanes, native vpminsq + masked tail
};

[[nodiscard]] const char* isa_name(Isa isa);

/// Dense band kernel: rows [i0, i1) of C, all of A and B, tiled by bs.
/// See the file header for the exact semantics contract.
using DenseBandFn = void (*)(const Weight* a, const Weight* b, Weight* c, int n, int i0,
                             int i1, int bs);

/// True if this binary contains a kernel for `isa` (CCQ_SIMD=ON and an
/// x86-64 toolchain; scalar is always compiled).
[[nodiscard]] bool isa_compiled(Isa isa);

/// True if `isa` is compiled in AND the running CPU supports it.
[[nodiscard]] bool isa_supported(Isa isa);

/// Every ISA usable on this host, narrowest first (never empty).
[[nodiscard]] std::vector<Isa> supported_isas();

/// The ISA the engine will use: override > CCQ_SIMD env > widest
/// supported.  Always returns a supported ISA.
[[nodiscard]] Isa dispatch_isa();

/// The band kernel for `isa`; requires isa_supported(isa).
[[nodiscard]] DenseBandFn dense_band_kernel(Isa isa);

/// Forces dispatch_isa() to `isa` (must be supported); nullopt restores
/// automatic dispatch.  For tests and bench ablations.
void set_isa_override(std::optional<Isa> isa);

// Per-ISA entry points (dispatch.cpp wires them up; exposed so the
// differential tests can call an ISA directly).  Calling an entry point
// whose ISA the CPU lacks is undefined (SIGILL); gate on isa_supported.
void dense_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs);
#if !defined(CCQ_SIMD_DISABLED) && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CCQ_KERNELS_X86 1
void dense_band_avx2(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                     int bs);
void dense_band_avx512(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs);
#endif

} // namespace ccq::kernels

#endif // CCQ_MATRIX_KERNELS_KERNELS_HPP
