#include "ccq/matrix/kernels/kernels.hpp"

#ifdef CCQ_KERNELS_X86

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace ccq::kernels {

// AVX2 has no 64-bit min instruction, so min(cur, cand) is a signed
// compare + byte blend.  All cells are in [0, 2*kInfinity) < 2^63, so
// the signed compare is exact — the same total order the scalar kernel
// uses — and the result is bitwise identical to dense_band_scalar.
__attribute__((target("avx2"))) void dense_band_avx2(const Weight* a, const Weight* b,
                                                     Weight* c, int n, int i0, int i1, int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight* arow = a + static_cast<std::size_t>(i) * n;
                    Weight* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight aik = arow[k];
                        if (!is_finite(aik)) continue; // INF-skip, hoisted off the j-loop
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight));
                        const Weight* brow = b + static_cast<std::size_t>(k) * n;
                        const __m256i vaik = _mm256_set1_epi64x(aik);
                        int j = jj;
                        for (; j + 4 <= jend; j += 4) {
                            const __m256i vb = _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(brow + j));
                            const __m256i vc =
                                _mm256_loadu_si256(reinterpret_cast<__m256i*>(crow + j));
                            const __m256i cand = _mm256_add_epi64(vaik, vb);
                            // cur > cand ? cand : cur, lane-wise signed.
                            const __m256i take = _mm256_cmpgt_epi64(vc, cand);
                            const __m256i best = _mm256_blendv_epi8(vc, cand, take);
                            _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), best);
                        }
                        for (; j < jend; ++j) {
                            const Weight cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

// Narrow (i32) lanes: 8 per vector instead of 4, and AVX2 *does* have a
// native signed 32-bit min (vpminsd).  The engine's width rule keeps
// every candidate below 2^31 (finite sums < kInfinity32, finite +
// sentinel < 2*kInfinity32), so add_epi32 never wraps and the signed
// min orders exactly like the i64 domain.
__attribute__((target("avx2"))) void dense_band_avx2_w32(const Weight32* a, const Weight32* b,
                                                         Weight32* c, int n, int i0, int i1,
                                                         int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight32* arow = a + static_cast<std::size_t>(i) * n;
                    Weight32* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight32 aik = arow[k];
                        if (!is_finite32(aik)) continue;
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight32));
                        const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                        const __m256i vaik = _mm256_set1_epi32(aik);
                        int j = jj;
                        for (; j + 8 <= jend; j += 8) {
                            const __m256i vb = _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(brow + j));
                            const __m256i vc =
                                _mm256_loadu_si256(reinterpret_cast<__m256i*>(crow + j));
                            const __m256i cand = _mm256_add_epi32(vaik, vb);
                            _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j),
                                                _mm256_min_epi32(vc, cand));
                        }
                        for (; j < jend; ++j) {
                            const Weight32 cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

// Sparse-row skip shape (see sparse_band_scalar): packed finite-k list
// per row, same AVX2 inner loop.
__attribute__((target("avx2"))) void sparse_band_avx2(const Weight* a, const Weight* b,
                                                      Weight* c, int n, int i0, int i1, int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight));
                const int k = ks[t];
                const Weight aik = arow[k];
                const Weight* brow = b + static_cast<std::size_t>(k) * n;
                const __m256i vaik = _mm256_set1_epi64x(aik);
                int j = jj;
                for (; j + 4 <= jend; j += 4) {
                    const __m256i vb =
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
                    const __m256i vc =
                        _mm256_loadu_si256(reinterpret_cast<__m256i*>(crow + j));
                    const __m256i cand = _mm256_add_epi64(vaik, vb);
                    const __m256i take = _mm256_cmpgt_epi64(vc, cand);
                    const __m256i best = _mm256_blendv_epi8(vc, cand, take);
                    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), best);
                }
                for (; j < jend; ++j) {
                    const Weight cand = aik + brow[j];
                    if (cand < crow[j]) crow[j] = cand;
                }
            }
        }
    }
}

__attribute__((target("avx2"))) void sparse_band_avx2_w32(const Weight32* a, const Weight32* b,
                                                          Weight32* c, int n, int i0, int i1,
                                                          int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight32* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite32(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight32* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight32));
                const int k = ks[t];
                const Weight32 aik = arow[k];
                const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                const __m256i vaik = _mm256_set1_epi32(aik);
                int j = jj;
                for (; j + 8 <= jend; j += 8) {
                    const __m256i vb =
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow + j));
                    const __m256i vc =
                        _mm256_loadu_si256(reinterpret_cast<__m256i*>(crow + j));
                    const __m256i cand = _mm256_add_epi32(vaik, vb);
                    _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j),
                                        _mm256_min_epi32(vc, cand));
                }
                for (; j < jend; ++j) {
                    const Weight32 cand = aik + brow[j];
                    if (cand < crow[j]) crow[j] = cand;
                }
            }
        }
    }
}

} // namespace ccq::kernels

#endif // CCQ_KERNELS_X86
