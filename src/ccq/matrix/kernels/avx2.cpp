#include "ccq/matrix/kernels/kernels.hpp"

#ifdef CCQ_KERNELS_X86

#include <immintrin.h>

#include <algorithm>

namespace ccq::kernels {

// AVX2 has no 64-bit min instruction, so min(cur, cand) is a signed
// compare + byte blend.  All cells are in [0, 2*kInfinity) < 2^63, so
// the signed compare is exact — the same total order the scalar kernel
// uses — and the result is bitwise identical to dense_band_scalar.
__attribute__((target("avx2"))) void dense_band_avx2(const Weight* a, const Weight* b,
                                                     Weight* c, int n, int i0, int i1, int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight* arow = a + static_cast<std::size_t>(i) * n;
                    Weight* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight aik = arow[k];
                        if (!is_finite(aik)) continue; // INF-skip, hoisted off the j-loop
                        const Weight* brow = b + static_cast<std::size_t>(k) * n;
                        const __m256i vaik = _mm256_set1_epi64x(aik);
                        int j = jj;
                        for (; j + 4 <= jend; j += 4) {
                            const __m256i vb = _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(brow + j));
                            const __m256i vc =
                                _mm256_loadu_si256(reinterpret_cast<__m256i*>(crow + j));
                            const __m256i cand = _mm256_add_epi64(vaik, vb);
                            // cur > cand ? cand : cur, lane-wise signed.
                            const __m256i take = _mm256_cmpgt_epi64(vc, cand);
                            const __m256i best = _mm256_blendv_epi8(vc, cand, take);
                            _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j), best);
                        }
                        for (; j < jend; ++j) {
                            const Weight cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

} // namespace ccq::kernels

#endif // CCQ_KERNELS_X86
