#include "ccq/matrix/kernels/kernels.hpp"

#ifdef CCQ_KERNELS_X86

#include <immintrin.h>

#include <algorithm>
#include <vector>

#if defined(__GNUC__) && !defined(__clang__)
// _mm512_min_epi64 passes _mm512_undefined_epi32() as the (fully masked
// out) merge source; GCC's -Wmaybe-uninitialized cannot see the mask
// (GCC PR105593).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace ccq::kernels {

// AVX-512F: 8 x 64-bit lanes with a native signed min (vpminsq) and a
// masked tail, so every block width runs branch-free.  Same raw-add /
// signed-min algebra as the scalar kernel — bitwise identical output.
__attribute__((target("avx512f"))) void dense_band_avx512(const Weight* a, const Weight* b,
                                                          Weight* c, int n, int i0, int i1,
                                                          int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight* arow = a + static_cast<std::size_t>(i) * n;
                    Weight* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight aik = arow[k];
                        if (!is_finite(aik)) continue; // INF-skip, hoisted off the j-loop
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight));
                        const Weight* brow = b + static_cast<std::size_t>(k) * n;
                        const __m512i vaik = _mm512_set1_epi64(aik);
                        int j = jj;
                        for (; j + 8 <= jend; j += 8) {
                            const __m512i vb = _mm512_loadu_si512(brow + j);
                            const __m512i vc = _mm512_loadu_si512(crow + j);
                            const __m512i cand = _mm512_add_epi64(vaik, vb);
                            _mm512_storeu_si512(crow + j, _mm512_min_epi64(vc, cand));
                        }
                        if (j < jend) {
                            const __mmask8 tail =
                                static_cast<__mmask8>((1u << (jend - j)) - 1u);
                            const __m512i vb = _mm512_maskz_loadu_epi64(tail, brow + j);
                            const __m512i vc = _mm512_maskz_loadu_epi64(tail, crow + j);
                            const __m512i cand = _mm512_add_epi64(vaik, vb);
                            _mm512_mask_storeu_epi64(crow + j, tail,
                                                     _mm512_min_epi64(vc, cand));
                        }
                    }
                }
            }
        }
    }
}

// Narrow (i32) lanes: 16 per vector with native vpminsd and a 16-bit
// tail mask.  The engine's width rule keeps every candidate below 2^31
// (finite sums < kInfinity32, finite + sentinel < 2*kInfinity32), so
// add_epi32 never wraps and the signed min orders exactly like i64.
__attribute__((target("avx512f"))) void dense_band_avx512_w32(const Weight32* a,
                                                              const Weight32* b, Weight32* c,
                                                              int n, int i0, int i1, int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight32* arow = a + static_cast<std::size_t>(i) * n;
                    Weight32* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight32 aik = arow[k];
                        if (!is_finite32(aik)) continue;
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight32));
                        const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                        const __m512i vaik = _mm512_set1_epi32(aik);
                        int j = jj;
                        for (; j + 16 <= jend; j += 16) {
                            const __m512i vb = _mm512_loadu_si512(brow + j);
                            const __m512i vc = _mm512_loadu_si512(crow + j);
                            const __m512i cand = _mm512_add_epi32(vaik, vb);
                            _mm512_storeu_si512(crow + j, _mm512_min_epi32(vc, cand));
                        }
                        if (j < jend) {
                            const __mmask16 tail =
                                static_cast<__mmask16>((1u << (jend - j)) - 1u);
                            const __m512i vb = _mm512_maskz_loadu_epi32(tail, brow + j);
                            const __m512i vc = _mm512_maskz_loadu_epi32(tail, crow + j);
                            const __m512i cand = _mm512_add_epi32(vaik, vb);
                            _mm512_mask_storeu_epi32(crow + j, tail,
                                                     _mm512_min_epi32(vc, cand));
                        }
                    }
                }
            }
        }
    }
}

// Sparse-row skip shape (see sparse_band_scalar): packed finite-k list
// per row, same AVX-512 inner loop.
__attribute__((target("avx512f"))) void sparse_band_avx512(const Weight* a, const Weight* b,
                                                           Weight* c, int n, int i0, int i1,
                                                           int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight));
                const int k = ks[t];
                const Weight aik = arow[k];
                const Weight* brow = b + static_cast<std::size_t>(k) * n;
                const __m512i vaik = _mm512_set1_epi64(aik);
                int j = jj;
                for (; j + 8 <= jend; j += 8) {
                    const __m512i vb = _mm512_loadu_si512(brow + j);
                    const __m512i vc = _mm512_loadu_si512(crow + j);
                    const __m512i cand = _mm512_add_epi64(vaik, vb);
                    _mm512_storeu_si512(crow + j, _mm512_min_epi64(vc, cand));
                }
                if (j < jend) {
                    const __mmask8 tail = static_cast<__mmask8>((1u << (jend - j)) - 1u);
                    const __m512i vb = _mm512_maskz_loadu_epi64(tail, brow + j);
                    const __m512i vc = _mm512_maskz_loadu_epi64(tail, crow + j);
                    const __m512i cand = _mm512_add_epi64(vaik, vb);
                    _mm512_mask_storeu_epi64(crow + j, tail, _mm512_min_epi64(vc, cand));
                }
            }
        }
    }
}

__attribute__((target("avx512f"))) void sparse_band_avx512_w32(const Weight32* a,
                                                               const Weight32* b, Weight32* c,
                                                               int n, int i0, int i1, int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight32* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite32(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight32* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight32));
                const int k = ks[t];
                const Weight32 aik = arow[k];
                const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                const __m512i vaik = _mm512_set1_epi32(aik);
                int j = jj;
                for (; j + 16 <= jend; j += 16) {
                    const __m512i vb = _mm512_loadu_si512(brow + j);
                    const __m512i vc = _mm512_loadu_si512(crow + j);
                    const __m512i cand = _mm512_add_epi32(vaik, vb);
                    _mm512_storeu_si512(crow + j, _mm512_min_epi32(vc, cand));
                }
                if (j < jend) {
                    const __mmask16 tail = static_cast<__mmask16>((1u << (jend - j)) - 1u);
                    const __m512i vb = _mm512_maskz_loadu_epi32(tail, brow + j);
                    const __m512i vc = _mm512_maskz_loadu_epi32(tail, crow + j);
                    const __m512i cand = _mm512_add_epi32(vaik, vb);
                    _mm512_mask_storeu_epi32(crow + j, tail, _mm512_min_epi32(vc, cand));
                }
            }
        }
    }
}

} // namespace ccq::kernels

#endif // CCQ_KERNELS_X86
