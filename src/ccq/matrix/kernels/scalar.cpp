#include <algorithm>

#include "ccq/matrix/kernels/kernels.hpp"

namespace ccq::kernels {

/// Portable reference band kernel (the PR-1 blocked loop, unchanged).
/// Uses raw additions: every stored cell stays <= kInfinity, and with
/// aik < kInfinity the sum aik + B[k,j] is < 2^63/2 (no overflow), so
/// "store only if smaller than the current cell" reproduces the
/// saturating_add / relax semantics of the seed kernel bit for bit.
/// The SIMD kernels replicate exactly this loop nest; only the j-loop
/// body is widened.
void dense_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight* arow = a + static_cast<std::size_t>(i) * n;
                    Weight* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight aik = arow[k];
                        if (!is_finite(aik)) continue; // INF-skip, hoisted off the j-loop
                        const Weight* brow = b + static_cast<std::size_t>(k) * n;
                        for (int j = jj; j < jend; ++j) {
                            const Weight cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

} // namespace ccq::kernels
