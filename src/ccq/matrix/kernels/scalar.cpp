#include <algorithm>
#include <vector>

#include "ccq/matrix/kernels/kernels.hpp"

namespace ccq::kernels {

/// Portable reference band kernel (the PR-1 blocked loop, unchanged).
/// Uses raw additions: every stored cell stays <= kInfinity, and with
/// aik < kInfinity the sum aik + B[k,j] is < 2^63/2 (no overflow), so
/// "store only if smaller than the current cell" reproduces the
/// saturating_add / relax semantics of the seed kernel bit for bit.
/// The SIMD kernels replicate exactly this loop nest; only the j-loop
/// body is widened.
void dense_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                       int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight* arow = a + static_cast<std::size_t>(i) * n;
                    Weight* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight aik = arow[k];
                        if (!is_finite(aik)) continue; // INF-skip, hoisted off the j-loop
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight));
                        const Weight* brow = b + static_cast<std::size_t>(k) * n;
                        for (int j = jj; j < jend; ++j) {
                            const Weight cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

/// Narrow (i32) twin of dense_band_scalar over the packed domain: every
/// cell is <= kInfinity32, and the engine's width rule guarantees finite
/// sums stay < kInfinity32 while finite + kInfinity32 stays < 2^31, so
/// the same compare-and-store loop is exact (no wraparound, identical
/// ordering to the i64 domain).
void dense_band_scalar_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                           int i1, int bs)
{
    for (int ii = i0; ii < i1; ii += bs) {
        const int iend = std::min(ii + bs, i1);
        for (int kk = 0; kk < n; kk += bs) {
            const int kend = std::min(kk + bs, n);
            for (int jj = 0; jj < n; jj += bs) {
                const int jend = std::min(jj + bs, n);
                for (int i = ii; i < iend; ++i) {
                    const Weight32* arow = a + static_cast<std::size_t>(i) * n;
                    Weight32* crow = c + static_cast<std::size_t>(i) * n;
                    for (int k = kk; k < kend; ++k) {
                        const Weight32 aik = arow[k];
                        if (!is_finite32(aik)) continue;
                        const int pk = k + kPrefetchRowDistance;
                        if (pk < n)
                            detail::prefetch_span(b + static_cast<std::size_t>(pk) * n + jj,
                                                  static_cast<std::size_t>(jend - jj) *
                                                      sizeof(Weight32));
                        const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                        for (int j = jj; j < jend; ++j) {
                            const Weight32 cand = aik + brow[j];
                            if (cand < crow[j]) crow[j] = cand;
                        }
                    }
                }
            }
        }
    }
}

/// Sparse-row skip pass: pre-scans each A row of the band for finite
/// entries and drives the k-loop off the packed index list.  The same
/// set of (i, k) relaxations runs in ascending k per j-tile; min over
/// exact candidates is order-independent, so the output is bitwise
/// identical to the dense shape — the win is skipping the INF cells of
/// mostly-empty rows once per row instead of once per (j-tile, k).
void sparse_band_scalar(const Weight* a, const Weight* b, Weight* c, int n, int i0, int i1,
                        int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight));
                const int k = ks[t];
                const Weight aik = arow[k];
                const Weight* brow = b + static_cast<std::size_t>(k) * n;
                for (int j = jj; j < jend; ++j) {
                    const Weight cand = aik + brow[j];
                    if (cand < crow[j]) crow[j] = cand;
                }
            }
        }
    }
}

/// Narrow twin of sparse_band_scalar.
void sparse_band_scalar_w32(const Weight32* a, const Weight32* b, Weight32* c, int n, int i0,
                            int i1, int bs)
{
    std::vector<int> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (int i = i0; i < i1; ++i) {
        const Weight32* arow = a + static_cast<std::size_t>(i) * n;
        ks.clear();
        for (int k = 0; k < n; ++k)
            if (is_finite32(arow[k])) ks.push_back(k);
        if (ks.empty()) continue;
        Weight32* crow = c + static_cast<std::size_t>(i) * n;
        for (int jj = 0; jj < n; jj += bs) {
            const int jend = std::min(jj + bs, n);
            for (std::size_t t = 0; t < ks.size(); ++t) {
                if (t + kPrefetchRowDistance < ks.size())
                    detail::prefetch_span(
                        b + static_cast<std::size_t>(ks[t + kPrefetchRowDistance]) * n + jj,
                        static_cast<std::size_t>(jend - jj) * sizeof(Weight32));
                const int k = ks[t];
                const Weight32 aik = arow[k];
                const Weight32* brow = b + static_cast<std::size_t>(k) * n;
                for (int j = jj; j < jend; ++j) {
                    const Weight32 cand = aik + brow[j];
                    if (cand < crow[j]) crow[j] = cand;
                }
            }
        }
    }
}

} // namespace ccq::kernels
