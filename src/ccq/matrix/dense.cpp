#include "ccq/matrix/dense.hpp"

#include "ccq/graph/graph.hpp"

namespace ccq {

DistanceMatrix adjacency_matrix(const Graph& g)
{
    DistanceMatrix a(g.node_count());
    a.set_diagonal_zero();
    for (NodeId u = 0; u < g.node_count(); ++u)
        for (const Edge& e : g.neighbors(u)) a.relax(u, e.to, e.weight);
    return a;
}

DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product: size mismatch");
    const int n = a.size();
    DistanceMatrix c(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId k = 0; k < n; ++k) {
            const Weight aik = a.at(i, k);
            if (!is_finite(aik)) continue;
            for (NodeId j = 0; j < n; ++j) {
                const Weight cand = saturating_add(aik, b.at(k, j));
                c.relax(i, j, cand);
            }
        }
    }
    return c;
}

DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used)
{
    int used = 0;
    const int n = a.size();
    // (n-1) hops suffice; square until the hop budget covers that.
    for (std::int64_t hops = 1; hops < n - 1; hops *= 2) {
        a = min_plus_product(a, a);
        ++used;
    }
    if (products_used != nullptr) *products_used = used;
    return a;
}

DistanceMatrix entrywise_min(const DistanceMatrix& a, const DistanceMatrix& b)
{
    CCQ_EXPECT(a.size() == b.size(), "entrywise_min: size mismatch");
    DistanceMatrix c(a.size());
    for (NodeId i = 0; i < a.size(); ++i)
        for (NodeId j = 0; j < a.size(); ++j) c.at(i, j) = min_weight(a.at(i, j), b.at(i, j));
    return c;
}

bool is_symmetric(const DistanceMatrix& a)
{
    for (NodeId i = 0; i < a.size(); ++i)
        for (NodeId j = i + 1; j < a.size(); ++j)
            if (a.at(i, j) != a.at(j, i)) return false;
    return true;
}

} // namespace ccq
