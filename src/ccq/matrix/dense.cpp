#include "ccq/matrix/dense.hpp"

#include <utility>

#include "ccq/graph/graph.hpp"
#include "ccq/matrix/engine.hpp"

namespace ccq {

DistanceMatrix adjacency_matrix(const Graph& g)
{
    DistanceMatrix a(g.node_count());
    a.set_diagonal_zero();
    for (NodeId u = 0; u < g.node_count(); ++u)
        for (const Edge& e : g.neighbors(u)) a.relax(u, e.to, e.weight);
    return a;
}

DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b)
{
    return min_plus_product(a, b, EngineConfig{});
}

DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used)
{
    return min_plus_closure(std::move(a), products_used, EngineConfig{});
}

DistanceMatrix entrywise_min(const DistanceMatrix& a, const DistanceMatrix& b)
{
    CCQ_EXPECT(a.size() == b.size(), "entrywise_min: size mismatch");
    DistanceMatrix c(a.size());
    for (NodeId i = 0; i < a.size(); ++i)
        for (NodeId j = 0; j < a.size(); ++j) c.at(i, j) = min_weight(a.at(i, j), b.at(i, j));
    return c;
}

bool is_symmetric(const DistanceMatrix& a)
{
    for (NodeId i = 0; i < a.size(); ++i)
        for (NodeId j = i + 1; j < a.size(); ++j)
            if (a.at(i, j) != a.at(j, i)) return false;
    return true;
}

} // namespace ccq
