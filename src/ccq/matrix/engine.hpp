// Cache-blocked, multithreaded min-plus engine.
//
// Every algorithm in the paper bottoms out in min-plus products (dense
// [CKK+19]-style squaring for the exact baseline, sparse/filtered
// products for the k-nearest and skeleton stages), so they all share the
// kernels below.  EngineConfig{threads, block_size} selects the local
// execution strategy only: outputs are bitwise identical to the seed
// (reference) kernels for every configuration — min is associative and
// commutative, and the saturating arithmetic is replicated exactly — and
// simulated round charges never depend on it.
#ifndef CCQ_MATRIX_ENGINE_HPP
#define CCQ_MATRIX_ENGINE_HPP

#include "ccq/common/parallel.hpp"
#include "ccq/matrix/dense.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

/// Finite-cell density of A below which the engine swaps the dense band
/// kernel for the sparse-row skip pass (per-row packed finite-k lists).
/// Both shapes are bitwise identical; the threshold only tunes speed.
inline constexpr double kSparseSkipThreshold = 0.25;

/// The per-product kernel decisions the engine derives from one scan of
/// the operands — exposed so tests and bench ablations can assert the
/// width-dispatch rule instead of reverse-engineering it from timings.
struct ProductPlan {
    bool narrow = false;     ///< i32 kernels selected (provably bitwise safe)
    bool sparse_skip = false; ///< sparse-row skip pass selected for A's density
    Weight max_a = 0;        ///< max finite cell of A (0 when none)
    Weight max_b = 0;        ///< max finite cell of B (0 when none)
    double a_density = 0.0;  ///< finite fraction of A's cells
};

/// The plan min_plus_product would execute for these operands — the
/// width rule (`max_a + max_b < kInfinity32`, gated by engine.width /
/// CCQ_KERNEL_WIDTH) and the sparse-skip threshold decision.
[[nodiscard]] ProductPlan preview_product_plan(const DistanceMatrix& a,
                                               const DistanceMatrix& b,
                                               const EngineConfig& engine);

/// Process-lifetime engine counters (relaxed atomics), rendered into the
/// obs/ registry by the server's collector: dense products by element
/// width, plus how many ran the sparse-row skip pass.
struct EngineCounters {
    std::uint64_t products_wide = 0;
    std::uint64_t products_narrow = 0;
    std::uint64_t products_sparse_skip = 0;
};

/// Snapshot of the global counters.
[[nodiscard]] EngineCounters engine_counters() noexcept;

/// Blocked parallel C[i,j] = min_k A[i,k] + B[k,j].  Tiles all three loop
/// dimensions by engine.block_size and parallelizes block rows of C on
/// the ISA-dispatched SIMD band kernels (matrix/kernels/), with
/// first-touch C initialization and a stable band->thread mapping for
/// NUMA locality.  Per product the engine picks the element width (i64 /
/// packed i32) and k-loop shape (dense / sparse-row skip) from one scan
/// of the operands; every choice is bitwise identical.  docs/ENGINE.md
/// describes the full execution model.
[[nodiscard]] DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b,
                                              const EngineConfig& engine);

/// Min-plus closure A^(n-1) by repeated squaring on the blocked kernel.
/// Stops as soon as a squaring reaches the fixed point (A*A == A), so
/// `products_used` reports the squarings actually run — at most
/// ceil(log2(n-1)), often fewer on low-diameter instances — with output
/// bitwise identical to the full schedule.
[[nodiscard]] DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used,
                                              const EngineConfig& engine);

/// Row-parallel sparse product (rows of the result are independent; each
/// worker keeps its own dense scratch accumulator).
[[nodiscard]] SparseMatrix min_plus_product(const SparseMatrix& a, const SparseMatrix& b, int n,
                                            const EngineConfig& engine);

/// Sparse product with the Lemma 5.5 row filter fused into the kernel:
/// each result row keeps only its k smallest entries (ties by node id).
/// Identical to filter_k_smallest(min_plus_product(a, b, n), k) but never
/// materializes the unfiltered rows.
[[nodiscard]] SparseMatrix min_plus_product_filtered(const SparseMatrix& a,
                                                     const SparseMatrix& b, int n, int k,
                                                     const EngineConfig& engine);

/// a^h over min-plus on the parallel sparse kernel (h >= 1).
[[nodiscard]] SparseMatrix hop_power(const SparseMatrix& a, int h, int n,
                                     const EngineConfig& engine);

/// filter_k_smallest(hop_power(a, h, n), k) with the final product run
/// through the fused filtered kernel — the shape every Lemma 5.2 / 5.5
/// filtered-power iteration uses.
[[nodiscard]] SparseMatrix filtered_hop_power(const SparseMatrix& a, int h, int k, int n,
                                              const EngineConfig& engine);

/// Seed (naive triple-loop / per-row relax) kernels, kept as the ground
/// truth for the randomized equivalence tests and the bench ablations.
[[nodiscard]] DistanceMatrix min_plus_product_reference(const DistanceMatrix& a,
                                                        const DistanceMatrix& b);
[[nodiscard]] SparseMatrix min_plus_product_reference(const SparseMatrix& a,
                                                      const SparseMatrix& b, int n);

} // namespace ccq

#endif // CCQ_MATRIX_ENGINE_HPP
