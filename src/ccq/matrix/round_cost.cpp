#include "ccq/matrix/round_cost.hpp"

#include <cmath>

#include "ccq/matrix/engine.hpp"

namespace ccq {

double sparse_product_rounds(double rho_s, double rho_t, double rho_st_bound, int n)
{
    CCQ_EXPECT(n >= 1, "sparse_product_rounds: n >= 1");
    CCQ_EXPECT(rho_s >= 0 && rho_t >= 0 && rho_st_bound >= 0,
               "sparse_product_rounds: densities must be nonnegative");
    const double numerator = std::cbrt(rho_s * rho_t * rho_st_bound);
    const double denominator = std::pow(static_cast<double>(n), 2.0 / 3.0);
    return numerator / denominator + 1.0;
}

SparseMatrix charged_sparse_product(CliqueTransport& transport, std::string_view phase,
                                    const SparseMatrix& s, const SparseMatrix& t,
                                    double rho_st_bound, const EngineConfig& engine)
{
    const int n = transport.node_count();
    const double rho_s = average_density(s);
    const double rho_t = average_density(t);
    SparseMatrix product = min_plus_product(s, t, n, engine);
    const double rho_st = average_density(product);
    CCQ_CHECK(rho_st <= rho_st_bound + 1e-9,
              "charged_sparse_product: a-priori density bound violated");
    transport.ledger().charge(phase, sparse_product_rounds(rho_s, rho_t, rho_st_bound, n),
                              static_cast<std::uint64_t>(rho_s * static_cast<double>(s.size())) +
                                  static_cast<std::uint64_t>(rho_t * static_cast<double>(t.size())));
    return product;
}

} // namespace ccq
