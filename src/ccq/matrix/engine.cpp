#include "ccq/matrix/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "ccq/matrix/kernels/kernels.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {
namespace {

/// Relaxes row u of a*b into the dense scratch `best`, recording touched
/// columns.  Byte-for-byte the reference row loop, shared by the plain
/// and filtered sparse paths.
void relax_sparse_row(const SparseMatrix& a, const SparseMatrix& b, std::size_t u,
                      std::vector<Weight>& best, std::vector<NodeId>& touched)
{
    touched.clear();
    for (const SparseEntry& via : a[u]) {
        for (const SparseEntry& hop : b[static_cast<std::size_t>(via.node)]) {
            const Weight cand = saturating_add(via.dist, hop.dist);
            Weight& cell = best[static_cast<std::size_t>(hop.node)];
            if (cell == kInfinity) touched.push_back(hop.node);
            cell = min_weight(cell, cand);
        }
    }
}

/// Drains the scratch into a canonical row; keep >= 0 applies the
/// Lemma 5.5 k-smallest filter before the final sort (nth_element on the
/// total (dist, id) order selects exactly the entries the reference
/// sort-then-resize keeps).
SparseRow collect_sparse_row(std::vector<Weight>& best, std::vector<NodeId>& touched, int keep)
{
    SparseRow row;
    row.reserve(touched.size());
    for (const NodeId w : touched) {
        row.push_back(SparseEntry{w, best[static_cast<std::size_t>(w)]});
        best[static_cast<std::size_t>(w)] = kInfinity;
    }
    if (keep >= 0 && std::cmp_less(keep, row.size())) {
        std::nth_element(row.begin(), row.begin() + keep, row.end(), entry_less);
        row.resize(static_cast<std::size_t>(keep));
    }
    std::sort(row.begin(), row.end(), entry_less);
    return row;
}

/// Shared driver for the plain (keep = -1) and filtered sparse products.
SparseMatrix sparse_product_impl(const SparseMatrix& a, const SparseMatrix& b, int n, int keep,
                                 const EngineConfig& engine)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product(sparse): size mismatch");
    CCQ_EXPECT(std::cmp_less_equal(a.size(), static_cast<std::size_t>(n)),
               "min_plus_product(sparse): n too small");
    SparseMatrix result(a.size());
    parallel_chunks(engine.resolved_threads(), 0, static_cast<int>(a.size()), 1,
                    [&](int row_begin, int row_end) {
                        std::vector<Weight> best(static_cast<std::size_t>(n), kInfinity);
                        std::vector<NodeId> touched;
                        for (int u = row_begin; u < row_end; ++u) {
                            relax_sparse_row(a, b, static_cast<std::size_t>(u), best, touched);
                            result[static_cast<std::size_t>(u)] =
                                collect_sparse_row(best, touched, keep);
                        }
                    });
    return result;
}

} // namespace

DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b,
                                const EngineConfig& engine)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product: size mismatch");
    const int n = a.size();
    if (n == 0) return DistanceMatrix(0);
    obs::TraceSpan span("min_plus_product", "engine",
                        obs::Tracer::global().enabled()
                            ? "{\"n\":" + std::to_string(n) + "}"
                            : std::string());
    const int bs = std::min(engine.resolved_block_size(), n);
    const Weight* ap = a.data();
    const Weight* bp = b.data();
    // The band kernel for the dispatched ISA (cpuid + CCQ_SIMD override),
    // resolved once per product.  Every ISA is bitwise identical.
    const kernels::DenseBandFn band = kernels::dense_band_kernel(kernels::dispatch_isa());
    // C starts uninitialized; each strided band task first-touches its
    // own rows (fill = the kInfinity the old constructor wrote) before
    // relaxing them, so with pinned workers the pages of band i live on
    // the NUMA node that computes band i — for this product and, thanks
    // to the stable strided mapping, every later one.
    DistanceMatrix c = DistanceMatrix::uninitialized(n);
    Weight* cp = c.data();
    parallel_chunks_pinned(engine.resolved_threads(), 0, n, bs, [&](int i0, int i1) {
        std::fill(cp + static_cast<std::size_t>(i0) * n,
                  cp + static_cast<std::size_t>(i1) * n, kInfinity);
        band(ap, bp, cp, n, i0, i1, bs);
    });
    return c;
}

DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used, const EngineConfig& engine)
{
    int used = 0;
    const int n = a.size();
    // (n-1) hops suffice; square until the hop budget covers that — or
    // until a squaring changes nothing.  At a fixed point A*A == A every
    // further squaring is the identity, so stopping early returns the
    // exact matrix the full ceil(log2(n-1)) schedule would.
    for (std::int64_t hops = 1; hops < n - 1; hops *= 2) {
        obs::TraceSpan span("min_plus_closure/square", "engine",
                            obs::Tracer::global().enabled()
                                ? "{\"iteration\":" + std::to_string(used) + "}"
                                : std::string());
        DistanceMatrix next = min_plus_product(a, a, engine);
        ++used;
        const bool fixed_point = next == a;
        a = std::move(next);
        if (fixed_point) break;
    }
    if (products_used != nullptr) *products_used = used;
    return a;
}

SparseMatrix min_plus_product(const SparseMatrix& a, const SparseMatrix& b, int n,
                              const EngineConfig& engine)
{
    return sparse_product_impl(a, b, n, /*keep=*/-1, engine);
}

SparseMatrix min_plus_product_filtered(const SparseMatrix& a, const SparseMatrix& b, int n,
                                       int k, const EngineConfig& engine)
{
    CCQ_EXPECT(k >= 0, "min_plus_product_filtered: k must be >= 0");
    return sparse_product_impl(a, b, n, k, engine);
}

SparseMatrix hop_power(const SparseMatrix& a, int h, int n, const EngineConfig& engine)
{
    CCQ_EXPECT(h >= 1, "hop_power: h must be >= 1");
    SparseMatrix result = a;
    for (int i = 1; i < h; ++i) result = min_plus_product(result, a, n, engine);
    return result;
}

SparseMatrix filtered_hop_power(const SparseMatrix& a, int h, int k, int n,
                                const EngineConfig& engine)
{
    CCQ_EXPECT(h >= 1, "filtered_hop_power: h must be >= 1");
    CCQ_EXPECT(k >= 0, "filtered_hop_power: k must be >= 0");
    if (h == 1) return filter_k_smallest(a, k);
    SparseMatrix result = a;
    for (int i = 1; i < h - 1; ++i) result = min_plus_product(result, a, n, engine);
    return min_plus_product_filtered(result, a, n, k, engine);
}

DistanceMatrix min_plus_product_reference(const DistanceMatrix& a, const DistanceMatrix& b)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product: size mismatch");
    const int n = a.size();
    DistanceMatrix c(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId k = 0; k < n; ++k) {
            const Weight aik = a.at(i, k);
            if (!is_finite(aik)) continue;
            for (NodeId j = 0; j < n; ++j) {
                const Weight cand = saturating_add(aik, b.at(k, j));
                c.relax(i, j, cand);
            }
        }
    }
    return c;
}

SparseMatrix min_plus_product_reference(const SparseMatrix& a, const SparseMatrix& b, int n)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product(sparse): size mismatch");
    CCQ_EXPECT(std::cmp_less_equal(a.size(), static_cast<std::size_t>(n)),
               "min_plus_product(sparse): n too small");
    SparseMatrix result(a.size());
    std::vector<Weight> best(static_cast<std::size_t>(n), kInfinity);
    std::vector<NodeId> touched;
    for (std::size_t u = 0; u < a.size(); ++u) {
        relax_sparse_row(a, b, u, best, touched);
        result[u] = collect_sparse_row(best, touched, /*keep=*/-1);
    }
    return result;
}

} // namespace ccq
