#include "ccq/matrix/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ccq/matrix/kernels/kernels.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {
namespace {

// ---- width dispatch + sparse-skip planning ---------------------------------

std::atomic<std::uint64_t> g_products_wide{0};
std::atomic<std::uint64_t> g_products_narrow{0};
std::atomic<std::uint64_t> g_products_sparse_skip{0};

/// CCQ_KERNEL_WIDTH environment policy, parsed once: "wide" forces i64,
/// "narrow" means narrow-if-safe, anything else (incl. "auto"/unset)
/// leaves the decision to the default rule.  Consulted only when the
/// config says kAuto, so programmatic settings (tests, ablations) win.
[[nodiscard]] KernelWidth env_kernel_width()
{
    static const KernelWidth resolved = [] {
        if (const char* env = std::getenv("CCQ_KERNEL_WIDTH")) {
            const std::string want(env);
            if (want == "wide") return KernelWidth::kWide;
            if (want == "narrow") return KernelWidth::kNarrowIfSafe;
        }
        return KernelWidth::kAuto;
    }();
    return resolved;
}

[[nodiscard]] KernelWidth resolved_kernel_width(const EngineConfig& engine)
{
    KernelWidth width = engine.width;
    if (width == KernelWidth::kAuto) width = env_kernel_width();
    if (width == KernelWidth::kAuto) width = KernelWidth::kNarrowIfSafe;
    return width;
}

struct OperandScan {
    Weight max_finite = 0;
    std::size_t finite_cells = 0;
};

/// One parallel pass over the cells: max finite value + finite count.
[[nodiscard]] OperandScan scan_operand(const DistanceMatrix& m, int threads)
{
    const int n = m.size();
    const Weight* p = m.data();
    std::mutex mutex;
    OperandScan total;
    parallel_chunks(threads, 0, n, 1, [&](int r0, int r1) {
        OperandScan local;
        const Weight* cell = p + static_cast<std::size_t>(r0) * n;
        const Weight* end = p + static_cast<std::size_t>(r1) * n;
        for (; cell != end; ++cell) {
            if (is_finite(*cell)) {
                ++local.finite_cells;
                if (*cell > local.max_finite) local.max_finite = *cell;
            }
        }
        const std::lock_guard<std::mutex> lock(mutex);
        total.finite_cells += local.finite_cells;
        if (local.max_finite > total.max_finite) total.max_finite = local.max_finite;
    });
    return total;
}

/// The width-dispatch rule.  Narrow is provably safe when
///
///   max_a + max_b < kInfinity32
///
/// (maxes over *finite* cells; 0 when a matrix has none): then every
/// finite cell packs losslessly (each max < kInfinity32), every
/// finite+finite candidate stays < kInfinity32 — exactly the i64 sum —
/// and every finite+sentinel candidate lands in (kInfinity32, 2^31), so
/// it loses all comparisons just like its >= kInfinity i64 twin.  Add
/// and min are exact in both domains, so the unpacked narrow product is
/// bitwise identical to the wide one (docs/ENGINE.md spells out the
/// case analysis; tests/test_kernel_width.cpp straddles the boundary).
[[nodiscard]] ProductPlan make_plan(const DistanceMatrix& a, const DistanceMatrix& b,
                                    const EngineConfig& engine)
{
    const int n = a.size();
    const int threads = engine.resolved_threads();
    const OperandScan sa = scan_operand(a, threads);
    const OperandScan sb = scan_operand(b, threads);
    ProductPlan plan;
    plan.max_a = sa.max_finite;
    plan.max_b = sb.max_finite;
    const std::size_t cells = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    plan.a_density =
        cells == 0 ? 0.0 : static_cast<double>(sa.finite_cells) / static_cast<double>(cells);
    plan.sparse_skip = engine.sparse_skip && plan.a_density < kSparseSkipThreshold;
    plan.narrow = resolved_kernel_width(engine) != KernelWidth::kWide &&
                  plan.max_a + plan.max_b < static_cast<Weight>(kInfinity32);
    return plan;
}

/// Pack rows [r0, r1) into the i32 domain: finite cells map to
/// themselves (they fit — the width rule bounds them), kInfinity maps
/// to kInfinity32.
void pack_rows(const Weight* src, Weight32* dst, int n, int r0, int r1)
{
    const Weight* cell = src + static_cast<std::size_t>(r0) * n;
    const Weight* end = src + static_cast<std::size_t>(r1) * n;
    Weight32* out = dst + static_cast<std::size_t>(r0) * n;
    for (; cell != end; ++cell, ++out)
        *out = is_finite(*cell) ? static_cast<Weight32>(*cell) : kInfinity32;
}

/// Relaxes row u of a*b into the dense scratch `best`, recording touched
/// columns.  Byte-for-byte the reference row loop, shared by the plain
/// and filtered sparse paths.
void relax_sparse_row(const SparseMatrix& a, const SparseMatrix& b, std::size_t u,
                      std::vector<Weight>& best, std::vector<NodeId>& touched)
{
    touched.clear();
    for (const SparseEntry& via : a[u]) {
        for (const SparseEntry& hop : b[static_cast<std::size_t>(via.node)]) {
            const Weight cand = saturating_add(via.dist, hop.dist);
            Weight& cell = best[static_cast<std::size_t>(hop.node)];
            if (cell == kInfinity) touched.push_back(hop.node);
            cell = min_weight(cell, cand);
        }
    }
}

/// Drains the scratch into a canonical row; keep >= 0 applies the
/// Lemma 5.5 k-smallest filter before the final sort (nth_element on the
/// total (dist, id) order selects exactly the entries the reference
/// sort-then-resize keeps).
SparseRow collect_sparse_row(std::vector<Weight>& best, std::vector<NodeId>& touched, int keep)
{
    SparseRow row;
    row.reserve(touched.size());
    for (const NodeId w : touched) {
        row.push_back(SparseEntry{w, best[static_cast<std::size_t>(w)]});
        best[static_cast<std::size_t>(w)] = kInfinity;
    }
    if (keep >= 0 && std::cmp_less(keep, row.size())) {
        std::nth_element(row.begin(), row.begin() + keep, row.end(), entry_less);
        row.resize(static_cast<std::size_t>(keep));
    }
    std::sort(row.begin(), row.end(), entry_less);
    return row;
}

/// Shared driver for the plain (keep = -1) and filtered sparse products.
SparseMatrix sparse_product_impl(const SparseMatrix& a, const SparseMatrix& b, int n, int keep,
                                 const EngineConfig& engine)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product(sparse): size mismatch");
    CCQ_EXPECT(std::cmp_less_equal(a.size(), static_cast<std::size_t>(n)),
               "min_plus_product(sparse): n too small");
    SparseMatrix result(a.size());
    parallel_chunks(engine.resolved_threads(), 0, static_cast<int>(a.size()), 1,
                    [&](int row_begin, int row_end) {
                        std::vector<Weight> best(static_cast<std::size_t>(n), kInfinity);
                        std::vector<NodeId> touched;
                        for (int u = row_begin; u < row_end; ++u) {
                            relax_sparse_row(a, b, static_cast<std::size_t>(u), best, touched);
                            result[static_cast<std::size_t>(u)] =
                                collect_sparse_row(best, touched, keep);
                        }
                    });
    return result;
}

} // namespace

ProductPlan preview_product_plan(const DistanceMatrix& a, const DistanceMatrix& b,
                                 const EngineConfig& engine)
{
    CCQ_EXPECT(a.size() == b.size(), "preview_product_plan: size mismatch");
    return make_plan(a, b, engine);
}

EngineCounters engine_counters() noexcept
{
    EngineCounters counters;
    counters.products_wide = g_products_wide.load(std::memory_order_relaxed);
    counters.products_narrow = g_products_narrow.load(std::memory_order_relaxed);
    counters.products_sparse_skip = g_products_sparse_skip.load(std::memory_order_relaxed);
    return counters;
}

DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b,
                                const EngineConfig& engine)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product: size mismatch");
    const int n = a.size();
    if (n == 0) return DistanceMatrix(0);
    const ProductPlan plan = make_plan(a, b, engine);
    obs::TraceSpan span(
        "min_plus_product", "engine",
        obs::Tracer::global().enabled()
            ? "{\"n\":" + std::to_string(n) +
                  ",\"width\":" + (plan.narrow ? "\"narrow\"" : "\"wide\"") +
                  ",\"sparse_skip\":" + (plan.sparse_skip ? "true" : "false") +
                  ",\"max_a\":" + std::to_string(plan.max_a) +
                  ",\"max_b\":" + std::to_string(plan.max_b) +
                  ",\"a_density\":" + std::to_string(plan.a_density) + "}"
            : std::string());
    const int bs = std::min(engine.resolved_block_size(), n);
    const int threads = engine.resolved_threads();
    const std::size_t cells = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    // The band kernels for the dispatched ISA (cpuid + CCQ_SIMD
    // override), resolved once per product.  Every ISA, element width,
    // and k-loop shape is bitwise identical.
    const kernels::BandKernels band = kernels::band_kernels(kernels::dispatch_isa());
    (plan.narrow ? g_products_narrow : g_products_wide).fetch_add(1, std::memory_order_relaxed);
    if (plan.sparse_skip) g_products_sparse_skip.fetch_add(1, std::memory_order_relaxed);
    // C starts uninitialized; each strided band task first-touches its
    // own rows (fill = the kInfinity the old constructor wrote) before
    // relaxing them, so with pinned workers the pages of band i live on
    // the NUMA node that computes band i — for this product and, thanks
    // to the stable strided mapping, every later one.
    DistanceMatrix c = DistanceMatrix::uninitialized(n);
    Weight* cp = c.data();
    if (plan.narrow) {
        // Narrow path: pack both operands to i32 (O(n^2), amortized by
        // the O(n^3) kernel), run the 2x-lane kernels, unpack each band
        // back to i64 on the thread that computed it so the first touch
        // of C's pages stays band-local.
        const std::unique_ptr<Weight32[]> a32(new Weight32[cells]);
        const std::unique_ptr<Weight32[]> b32(new Weight32[cells]);
        const std::unique_ptr<Weight32[]> c32(new Weight32[cells]);
        parallel_chunks(threads, 0, n, 1, [&](int r0, int r1) {
            pack_rows(a.data(), a32.get(), n, r0, r1);
            pack_rows(b.data(), b32.get(), n, r0, r1);
        });
        const kernels::DenseBandFn32 band32 =
            plan.sparse_skip ? band.sparse_narrow : band.dense_narrow;
        parallel_chunks_pinned(threads, 0, n, bs, [&](int i0, int i1) {
            Weight32* cb = c32.get() + static_cast<std::size_t>(i0) * n;
            std::fill(cb, c32.get() + static_cast<std::size_t>(i1) * n, kInfinity32);
            band32(a32.get(), b32.get(), c32.get(), n, i0, i1, bs);
            const Weight32* in = c32.get() + static_cast<std::size_t>(i0) * n;
            const Weight32* end = c32.get() + static_cast<std::size_t>(i1) * n;
            Weight* out = cp + static_cast<std::size_t>(i0) * n;
            for (; in != end; ++in, ++out)
                *out = is_finite32(*in) ? static_cast<Weight>(*in) : kInfinity;
        });
        return c;
    }
    const Weight* ap = a.data();
    const Weight* bp = b.data();
    const kernels::DenseBandFn band64 = plan.sparse_skip ? band.sparse_wide : band.dense_wide;
    parallel_chunks_pinned(threads, 0, n, bs, [&](int i0, int i1) {
        std::fill(cp + static_cast<std::size_t>(i0) * n,
                  cp + static_cast<std::size_t>(i1) * n, kInfinity);
        band64(ap, bp, cp, n, i0, i1, bs);
    });
    return c;
}

DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used, const EngineConfig& engine)
{
    int used = 0;
    const int n = a.size();
    // (n-1) hops suffice; square until the hop budget covers that — or
    // until a squaring changes nothing.  At a fixed point A*A == A every
    // further squaring is the identity, so stopping early returns the
    // exact matrix the full ceil(log2(n-1)) schedule would.
    for (std::int64_t hops = 1; hops < n - 1; hops *= 2) {
        obs::TraceSpan span("min_plus_closure/square", "engine",
                            obs::Tracer::global().enabled()
                                ? "{\"iteration\":" + std::to_string(used) + "}"
                                : std::string());
        DistanceMatrix next = min_plus_product(a, a, engine);
        ++used;
        const bool fixed_point = next == a;
        a = std::move(next);
        if (fixed_point) break;
    }
    if (products_used != nullptr) *products_used = used;
    return a;
}

SparseMatrix min_plus_product(const SparseMatrix& a, const SparseMatrix& b, int n,
                              const EngineConfig& engine)
{
    return sparse_product_impl(a, b, n, /*keep=*/-1, engine);
}

SparseMatrix min_plus_product_filtered(const SparseMatrix& a, const SparseMatrix& b, int n,
                                       int k, const EngineConfig& engine)
{
    CCQ_EXPECT(k >= 0, "min_plus_product_filtered: k must be >= 0");
    return sparse_product_impl(a, b, n, k, engine);
}

SparseMatrix hop_power(const SparseMatrix& a, int h, int n, const EngineConfig& engine)
{
    CCQ_EXPECT(h >= 1, "hop_power: h must be >= 1");
    SparseMatrix result = a;
    for (int i = 1; i < h; ++i) result = min_plus_product(result, a, n, engine);
    return result;
}

SparseMatrix filtered_hop_power(const SparseMatrix& a, int h, int k, int n,
                                const EngineConfig& engine)
{
    CCQ_EXPECT(h >= 1, "filtered_hop_power: h must be >= 1");
    CCQ_EXPECT(k >= 0, "filtered_hop_power: k must be >= 0");
    if (h == 1) return filter_k_smallest(a, k);
    SparseMatrix result = a;
    for (int i = 1; i < h - 1; ++i) result = min_plus_product(result, a, n, engine);
    return min_plus_product_filtered(result, a, n, k, engine);
}

DistanceMatrix min_plus_product_reference(const DistanceMatrix& a, const DistanceMatrix& b)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product: size mismatch");
    const int n = a.size();
    DistanceMatrix c(n);
    for (NodeId i = 0; i < n; ++i) {
        for (NodeId k = 0; k < n; ++k) {
            const Weight aik = a.at(i, k);
            if (!is_finite(aik)) continue;
            for (NodeId j = 0; j < n; ++j) {
                const Weight cand = saturating_add(aik, b.at(k, j));
                c.relax(i, j, cand);
            }
        }
    }
    return c;
}

SparseMatrix min_plus_product_reference(const SparseMatrix& a, const SparseMatrix& b, int n)
{
    CCQ_EXPECT(a.size() == b.size(), "min_plus_product(sparse): size mismatch");
    CCQ_EXPECT(std::cmp_less_equal(a.size(), static_cast<std::size_t>(n)),
               "min_plus_product(sparse): n too small");
    SparseMatrix result(a.size());
    std::vector<Weight> best(static_cast<std::size_t>(n), kInfinity);
    std::vector<NodeId> touched;
    for (std::size_t u = 0; u < a.size(); ++u) {
        relax_sparse_row(a, b, u, best, touched);
        result[u] = collect_sparse_row(best, touched, /*keep=*/-1);
    }
    return result;
}

} // namespace ccq
