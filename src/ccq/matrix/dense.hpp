// Dense distance matrices over the tropical (min-plus) semiring.
//
// Section 2.1 of the paper: APSP is matrix exponentiation over
// (Z>=0 ∪ {∞}, min, +).  A^h holds the h-hop distances; once h reaches the
// maximum shortest-path hop count, A^h is the distance matrix.
#ifndef CCQ_MATRIX_DENSE_HPP
#define CCQ_MATRIX_DENSE_HPP

#include <vector>

#include "ccq/common/check.hpp"
#include "ccq/common/types.hpp"

namespace ccq {

class Graph;

/// Square matrix of path lengths with kInfinity as "no path".
class DistanceMatrix {
public:
    DistanceMatrix() = default;
    explicit DistanceMatrix(int n, Weight fill = kInfinity)
        : n_(n), cells_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill)
    {
        CCQ_EXPECT(n >= 0, "DistanceMatrix: negative size");
    }

    [[nodiscard]] int size() const noexcept { return n_; }

    [[nodiscard]] Weight& at(NodeId u, NodeId v)
    {
        CCQ_EXPECT(in_range(u) && in_range(v), "DistanceMatrix::at out of range");
        return cells_[index(u, v)];
    }
    [[nodiscard]] Weight at(NodeId u, NodeId v) const
    {
        CCQ_EXPECT(in_range(u) && in_range(v), "DistanceMatrix::at out of range");
        return cells_[index(u, v)];
    }

    /// Replaces at(u,v) with min(at(u,v), w).
    void relax(NodeId u, NodeId v, Weight w)
    {
        Weight& cell = at(u, v);
        cell = min_weight(cell, w);
    }

    void set_diagonal_zero()
    {
        for (NodeId u = 0; u < n_; ++u) at(u, u) = 0;
    }

    [[nodiscard]] bool in_range(NodeId u) const noexcept { return u >= 0 && u < n_; }

    /// Row-major storage (n*n entries) for the blocked engine kernels;
    /// all invariants (entries <= kInfinity) are the caller's to keep.
    [[nodiscard]] Weight* data() noexcept { return cells_.data(); }
    [[nodiscard]] const Weight* data() const noexcept { return cells_.data(); }

    friend bool operator==(const DistanceMatrix&, const DistanceMatrix&) = default;

private:
    [[nodiscard]] std::size_t index(NodeId u, NodeId v) const noexcept
    {
        return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(v);
    }

    int n_ = 0;
    std::vector<Weight> cells_;
};

/// Weighted adjacency matrix of `g` with zero diagonal (paper notation A).
[[nodiscard]] DistanceMatrix adjacency_matrix(const Graph& g);

/// Min-plus product C[i,j] = min_k A[i,k] + B[k,j].  O(n^3); runs on the
/// blocked engine (matrix/engine.hpp) with the default EngineConfig.
[[nodiscard]] DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b);

/// Min-plus closure A^(n-1) by repeated squaring; `products_used`, when
/// non-null, receives the number of squarings (the [CKK+19] baseline
/// charges O(n^{1/3}) rounds per product).
[[nodiscard]] DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used = nullptr);

/// Entry-wise minimum.
[[nodiscard]] DistanceMatrix entrywise_min(const DistanceMatrix& a, const DistanceMatrix& b);

/// True if the matrix is symmetric (undirected distances).
[[nodiscard]] bool is_symmetric(const DistanceMatrix& a);

} // namespace ccq

#endif // CCQ_MATRIX_DENSE_HPP
