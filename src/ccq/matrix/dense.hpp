// Dense distance matrices over the tropical (min-plus) semiring.
//
// Section 2.1 of the paper: APSP is matrix exponentiation over
// (Z>=0 ∪ {∞}, min, +).  A^h holds the h-hop distances; once h reaches the
// maximum shortest-path hop count, A^h is the distance matrix.
#ifndef CCQ_MATRIX_DENSE_HPP
#define CCQ_MATRIX_DENSE_HPP

#include <memory>
#include <vector>

#include "ccq/common/check.hpp"
#include "ccq/common/types.hpp"

namespace ccq {

class Graph;

namespace detail {

/// std::allocator that leaves value-less constructions default-
/// initialized (i.e. uninitialized for Weight), so the engine can defer
/// the first write of each C band to the worker thread that owns it —
/// the NUMA first-touch policy.  Explicit fills (vector(n, value)) are
/// unaffected.
template <class T>
struct uninit_allocator : std::allocator<T> {
    template <class U>
    struct rebind {
        using other = uninit_allocator<U>;
    };
    template <class U>
    void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U))
    {
        ::new (static_cast<void*>(p)) U;
    }
    template <class U, class... Args>
    void construct(U* p, Args&&... args)
    {
        std::construct_at(p, std::forward<Args>(args)...);
    }
};

} // namespace detail

/// Square matrix of path lengths with kInfinity as "no path".
class DistanceMatrix {
public:
    DistanceMatrix() = default;
    explicit DistanceMatrix(int n, Weight fill = kInfinity)
        : n_(n), cells_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill)
    {
        CCQ_EXPECT(n >= 0, "DistanceMatrix: negative size");
    }

    /// A matrix whose cells are allocated but NOT initialized.  Only for
    /// the engine's first-touch path: every cell must be written (by the
    /// worker that owns its band) before any read.
    [[nodiscard]] static DistanceMatrix uninitialized(int n)
    {
        CCQ_EXPECT(n >= 0, "DistanceMatrix: negative size");
        DistanceMatrix m;
        m.n_ = n;
        m.cells_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
        return m;
    }

    [[nodiscard]] int size() const noexcept { return n_; }

    [[nodiscard]] Weight& at(NodeId u, NodeId v)
    {
        CCQ_EXPECT(in_range(u) && in_range(v), "DistanceMatrix::at out of range");
        return cells_[index(u, v)];
    }
    [[nodiscard]] Weight at(NodeId u, NodeId v) const
    {
        CCQ_EXPECT(in_range(u) && in_range(v), "DistanceMatrix::at out of range");
        return cells_[index(u, v)];
    }

    /// Replaces at(u,v) with min(at(u,v), w).
    void relax(NodeId u, NodeId v, Weight w)
    {
        Weight& cell = at(u, v);
        cell = min_weight(cell, w);
    }

    void set_diagonal_zero()
    {
        for (NodeId u = 0; u < n_; ++u) at(u, u) = 0;
    }

    [[nodiscard]] bool in_range(NodeId u) const noexcept { return u >= 0 && u < n_; }

    /// Row-major storage (n*n entries) for the blocked engine kernels;
    /// all invariants (entries <= kInfinity) are the caller's to keep.
    [[nodiscard]] Weight* data() noexcept { return cells_.data(); }
    [[nodiscard]] const Weight* data() const noexcept { return cells_.data(); }

    friend bool operator==(const DistanceMatrix&, const DistanceMatrix&) = default;

private:
    [[nodiscard]] std::size_t index(NodeId u, NodeId v) const noexcept
    {
        return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(v);
    }

    int n_ = 0;
    std::vector<Weight, detail::uninit_allocator<Weight>> cells_;
};

/// Weighted adjacency matrix of `g` with zero diagonal (paper notation A).
[[nodiscard]] DistanceMatrix adjacency_matrix(const Graph& g);

/// Min-plus product C[i,j] = min_k A[i,k] + B[k,j].  O(n^3); runs on the
/// blocked engine (matrix/engine.hpp) with the default EngineConfig.
[[nodiscard]] DistanceMatrix min_plus_product(const DistanceMatrix& a, const DistanceMatrix& b);

/// Min-plus closure A^(n-1) by repeated squaring; `products_used`, when
/// non-null, receives the number of squarings (the [CKK+19] baseline
/// charges O(n^{1/3}) rounds per product).
[[nodiscard]] DistanceMatrix min_plus_closure(DistanceMatrix a, int* products_used = nullptr);

/// Entry-wise minimum.
[[nodiscard]] DistanceMatrix entrywise_min(const DistanceMatrix& a, const DistanceMatrix& b);

/// True if the matrix is symmetric (undirected distances).
[[nodiscard]] bool is_symmetric(const DistanceMatrix& a);

} // namespace ccq

#endif // CCQ_MATRIX_DENSE_HPP
