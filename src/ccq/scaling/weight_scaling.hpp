// Weight scaling (paper Section 8.1, Lemma 8.1).
//
// Reduces distance approximation on G to approximation on O(log n) graphs
// G_0..G_L, each of weighted diameter at most ceil(2/eps) * h^2:
//
//   H_i : every weight rounded up to a multiple of 2^i,
//   K_i : a "cap" edge of weight 2^i * B * h^2 added between every pair,
//   G_i : K_i with all weights divided by 2^i.
//
// Given an l-approximation on each G_i and the coarse h-approximation
// delta used for level selection, the combined eta satisfies
//   eta >= d                                   (always), and
//   eta <= (1+eps) * l * d                     (pairs with an <= h-hop
//                                               shortest path).
//
// Representation note (see DESIGN.md): the Theta(n^2) cap edges of K_i
// are never materialized.  Because every cap edge has the same weight and
// exists between every pair, d_{K_i}(u,v) = min(d_{H_i}(u,v), cap), so the
// level graph stores H_i with weights clamped to the cap and the cap is
// applied to the level estimates in combine_scaled_estimates.
#ifndef CCQ_SCALING_WEIGHT_SCALING_HPP
#define CCQ_SCALING_WEIGHT_SCALING_HPP

#include <vector>

#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

struct ScaledLevel {
    Graph graph;          ///< H_i, rescaled and clamped to `cap` (sparse part of G_i)
    Weight scale = 1;     ///< 2^i
    Weight cap = 0;       ///< B * h^2 — G_i's diameter bound and implicit cap edge
    int index = 0;
};

struct ScaledFamily {
    std::vector<ScaledLevel> levels;
    int cap_factor_b = 0; ///< B = ceil(2/eps)
    int hop_bound_h = 0;  ///< h of Lemma 8.1
    double eps = 0.0;
};

/// Builds the family for all levels the selection rule can pick given
/// that the selector delta never exceeds `max_estimate`.
[[nodiscard]] ScaledFamily build_scaled_family(const Graph& g, Weight max_estimate, int h,
                                               double eps);

/// The level index the combination rule assigns to a pair with coarse
/// estimate `delta_uv` (Section 8.1 "Computing eta(u,v)").
[[nodiscard]] int select_level(const ScaledFamily& family, Weight delta_uv);

/// Combines per-level estimates into eta.  `level_estimates[i]` must be an
/// estimate of APSP on the *sparse* level graph; the implicit cap edge is
/// applied here (min with cap).  `delta` is the coarse h-approximation
/// used for level selection.
[[nodiscard]] DistanceMatrix combine_scaled_estimates(
    const ScaledFamily& family, const std::vector<DistanceMatrix>& level_estimates,
    const DistanceMatrix& delta);

} // namespace ccq

#endif // CCQ_SCALING_WEIGHT_SCALING_HPP
