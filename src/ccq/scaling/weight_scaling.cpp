#include "ccq/scaling/weight_scaling.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ccq/common/math.hpp"

namespace ccq {

ScaledFamily build_scaled_family(const Graph& g, Weight max_estimate, int h, double eps)
{
    CCQ_EXPECT(h >= 1, "build_scaled_family: h must be >= 1");
    CCQ_EXPECT(eps > 0.0, "build_scaled_family: eps must be positive");
    CCQ_EXPECT(max_estimate >= 0, "build_scaled_family: negative estimate bound");

    ScaledFamily family;
    family.eps = eps;
    family.hop_bound_h = h;
    family.cap_factor_b = static_cast<int>(std::ceil(2.0 / eps));
    const Weight cap =
        static_cast<Weight>(family.cap_factor_b) * static_cast<Weight>(h) * static_cast<Weight>(h);

    // Levels 0..L, where L is the smallest index with 2^L * cap > max_estimate
    // (so the selection rule always lands inside the family).
    int level_count = 1;
    while ((static_cast<Weight>(1) << (level_count - 1)) <= max_estimate / std::max<Weight>(cap, 1))
        ++level_count;
    ++level_count; // one guard level above the threshold

    for (int i = 0; i < level_count; ++i) {
        const Weight scale = static_cast<Weight>(1) << i;
        Graph level(g.node_count(), g.orientation());
        for (const WeightedEdge& e : g.edge_list()) {
            // H_i: round up to a multiple of 2^i; G_i: divide by 2^i and
            // clamp to the cap (the implicit complete cap edge dominates
            // anything heavier).
            const Weight rescaled = ceil_div(e.weight, scale);
            level.add_edge(e.u, e.v, std::min(rescaled, cap));
        }
        family.levels.push_back(ScaledLevel{std::move(level), scale, cap, i});
    }
    return family;
}

int select_level(const ScaledFamily& family, Weight delta_uv)
{
    CCQ_EXPECT(!family.levels.empty(), "select_level: empty family");
    CCQ_EXPECT(delta_uv >= 0, "select_level: negative estimate");
    const Weight cap = family.levels.front().cap;
    // Section 8.1: delta < (B/2) h^2 selects i = 0 directly; otherwise the
    // unique i with 2^{i-1} cap <= delta < 2^i cap — which is also 0 for
    // delta in [cap/2, cap).
    if (delta_uv < cap) return 0;
    int i = 1;
    while ((static_cast<Weight>(1) << i) <= delta_uv / std::max<Weight>(cap, 1)) ++i;
    CCQ_CHECK(std::cmp_less(i, family.levels.size()),
              "select_level: estimate exceeds the family's range");
    return i;
}

DistanceMatrix combine_scaled_estimates(const ScaledFamily& family,
                                        const std::vector<DistanceMatrix>& level_estimates,
                                        const DistanceMatrix& delta)
{
    CCQ_EXPECT(level_estimates.size() == family.levels.size(),
               "combine_scaled_estimates: one estimate per level required");
    const int n = delta.size();
    for (const DistanceMatrix& m : level_estimates)
        CCQ_EXPECT(m.size() == n, "combine_scaled_estimates: size mismatch");

    DistanceMatrix eta(n);
    eta.set_diagonal_zero();
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = 0; v < n; ++v) {
            if (u == v) continue;
            const Weight coarse = delta.at(u, v);
            if (!is_finite(coarse)) {
                // No coarse estimate: the pair is disconnected in G.
                eta.at(u, v) = kInfinity;
                continue;
            }
            const int level = select_level(family, coarse);
            const ScaledLevel& info = family.levels[static_cast<std::size_t>(level)];
            // Implicit cap edge of K_i, then undo the 2^i scaling.
            const Weight capped =
                min_weight(level_estimates[static_cast<std::size_t>(level)].at(u, v), info.cap);
            eta.at(u, v) =
                capped >= kInfinity / info.scale ? kInfinity : capped * info.scale;
        }
    }
    return eta;
}

} // namespace ccq
