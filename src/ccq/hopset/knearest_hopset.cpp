#include "ccq/hopset/knearest_hopset.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "ccq/common/math.hpp"
#include "ccq/graph/exact.hpp"

namespace ccq {
namespace {

/// Approximate k-nearest set of v by (delta, id); includes v itself since
/// delta(v, v) = 0 is minimal.
std::vector<NodeId> approx_nearest_by_delta(const DistanceMatrix& delta, NodeId v, int k)
{
    const int n = delta.size();
    std::vector<NodeId> order(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) order[static_cast<std::size_t>(u)] = u;
    const auto by_delta = [&](NodeId a, NodeId b) {
        return weight_id_less(delta.at(v, a), a, delta.at(v, b), b);
    };
    if (k < n) {
        std::nth_element(order.begin(), order.begin() + k, order.end(), by_delta);
        order.resize(static_cast<std::size_t>(k));
    }
    return order;
}

/// Dijkstra over an edge set held as per-source lists; nodes are global
/// ids, visited lazily via hash maps (the local subgraph touches only
/// O(k^2) nodes).
std::unordered_map<NodeId, Weight> local_dijkstra(
    const std::unordered_map<NodeId, std::vector<Edge>>& adjacency, NodeId source)
{
    std::unordered_map<NodeId, Weight> dist;
    dist[source] = 0;
    using Item = std::pair<Weight, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0, source);
    while (!queue.empty()) {
        const auto [d, u] = queue.top();
        queue.pop();
        const auto it = dist.find(u);
        if (it == dist.end() || it->second != d) continue;
        const auto edges = adjacency.find(u);
        if (edges == adjacency.end()) continue;
        for (const Edge& e : edges->second) {
            const Weight cand = saturating_add(d, e.weight);
            auto [slot, inserted] = dist.try_emplace(e.to, cand);
            if (!inserted && cand >= slot->second) continue;
            slot->second = cand;
            queue.emplace(cand, e.to);
        }
    }
    return dist;
}

} // namespace

Hopset build_knearest_hopset(const Graph& g, const DistanceMatrix& delta, double a,
                             Weight diameter_bound, CliqueTransport& transport,
                             std::string_view phase, int k, const EngineConfig& engine)
{
    const int n = g.node_count();
    CCQ_EXPECT(delta.size() == n, "build_knearest_hopset: delta size mismatch");
    CCQ_EXPECT(a >= 1.0, "build_knearest_hopset: approximation factor must be >= 1");
    CCQ_EXPECT(diameter_bound >= 0, "build_knearest_hopset: negative diameter bound");
    if (k < 0) k = static_cast<int>(floor_sqrt(n));
    k = std::clamp(k, 1, n);
    PhaseScope scope(transport.ledger(), phase);
    const int threads = engine.resolved_threads();

    // Step 1 (local): approximate k-nearest sets by delta.
    std::vector<std::vector<NodeId>> nearest(static_cast<std::size_t>(n));
    parallel_chunks(threads, 0, n, 1, [&](int v0, int v1) {
        for (NodeId v = v0; v < v1; ++v)
            nearest[static_cast<std::size_t>(v)] = approx_nearest_by_delta(delta, v, k);
    });
    transport.note_local_computation("select-approx-nearest");

    // Step 2: each v learns the k lightest out-edges of each u in its set.
    // Senders duplicate one k-edge list to many requesters, so this is a
    // Lemma 2.2 (receive-bounded) routing instance.
    std::vector<std::vector<Edge>> lightest(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) lightest[static_cast<std::size_t>(u)] = g.lightest_out_edges(u, k);

    MessageExchange<WeightedEdge> exchange(n);
    for (NodeId v = 0; v < n; ++v) {
        for (const NodeId u : nearest[static_cast<std::size_t>(v)]) {
            for (const Edge& e : lightest[static_cast<std::size_t>(u)])
                exchange.send(u, v, WeightedEdge{u, e.to, e.weight});
        }
    }
    const auto inboxes = exchange.deliver(transport, "collect-lightest-edges",
                                          /*words_per_record=*/2, /*redundant=*/true);

    // Steps 3-4: local shortest paths; record shortcuts to the set members.
    // The per-node subproblems are independent, so they run in parallel;
    // the shortcut lists are then drained serially in node order, keeping
    // edge order and message staging identical to a serial execution.
    Hopset hopset;
    hopset.k = k;
    std::vector<std::vector<WeightedEdge>> shortcuts(static_cast<std::size_t>(n));
    parallel_chunks(threads, 0, n, 1, [&](int v0, int v1) {
        for (NodeId v = v0; v < v1; ++v) {
            std::unordered_map<NodeId, std::vector<Edge>> adjacency;
            for (const auto& routed : inboxes[static_cast<std::size_t>(v)])
                adjacency[routed.payload.u].push_back(
                    Edge{routed.payload.v, routed.payload.weight});
            for (const Edge& e : g.neighbors(v)) adjacency[v].push_back(e);

            const std::unordered_map<NodeId, Weight> local = local_dijkstra(adjacency, v);
            for (const NodeId u : nearest[static_cast<std::size_t>(v)]) {
                if (u == v) continue;
                const auto it = local.find(u);
                if (it == local.end() || !is_finite(it->second)) continue;
                shortcuts[static_cast<std::size_t>(v)].push_back(WeightedEdge{v, u, it->second});
            }
        }
    });
    MessageExchange<WeightedEdge> reverse_notify(n);
    for (NodeId v = 0; v < n; ++v) {
        for (const WeightedEdge& shortcut : shortcuts[static_cast<std::size_t>(v)]) {
            hopset.edges.push_back(shortcut);
            reverse_notify.send(v, shortcut.v, shortcut);
        }
    }
    // Make each shortcut known to both endpoints (one Lenzen round).
    (void)reverse_notify.deliver(transport, "notify-endpoints", /*words_per_record=*/2);

    // Lemma 4.2: hop bound 2*ceil(a ln d) + 3.
    const double log_d = std::log(static_cast<double>(std::max<Weight>(2, diameter_bound)));
    hopset.claimed_hop_bound = 2 * static_cast<int>(std::ceil(a * log_d)) + 3;
    return hopset;
}

Graph augmented_graph(const Graph& g, const Hopset& hopset)
{
    Graph result(g.node_count(), g.orientation());
    for (const WeightedEdge& e : g.edge_list()) result.add_edge(e.u, e.v, e.weight);
    for (const WeightedEdge& e : hopset.edges) result.add_edge(e.u, e.v, e.weight);
    return result;
}

SparseMatrix augmented_rows(const Graph& g, const Hopset& hopset)
{
    SparseMatrix rows = adjacency_rows(g, /*include_self=*/true);
    for (const WeightedEdge& e : hopset.edges) {
        rows[static_cast<std::size_t>(e.u)].push_back(SparseEntry{e.v, e.weight});
        if (!g.is_directed())
            rows[static_cast<std::size_t>(e.v)].push_back(SparseEntry{e.u, e.weight});
    }
    for (SparseRow& row : rows) normalize_row(row);
    return rows;
}

int measured_hopset_bound(const Graph& g, const Hopset& hopset)
{
    const Graph augmented = augmented_graph(g, hopset);
    const int n = g.node_count();
    int worst = 0;
    for (NodeId v = 0; v < n; ++v) {
        const std::vector<Weight> dist = dijkstra_from(g, v);
        const std::vector<int> hops = min_hops_on_shortest_paths(augmented, v);
        // True k-nearest of v by (distance, id).
        std::vector<NodeId> order(static_cast<std::size_t>(n));
        for (NodeId u = 0; u < n; ++u) order[static_cast<std::size_t>(u)] = u;
        std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
            return weight_id_less(dist[static_cast<std::size_t>(x)], x,
                                  dist[static_cast<std::size_t>(y)], y);
        });
        const int limit = std::min(hopset.k, n);
        for (int rank = 0; rank < limit; ++rank) {
            const NodeId u = order[static_cast<std::size_t>(rank)];
            if (!is_finite(dist[static_cast<std::size_t>(u)])) break;
            worst = std::max(worst, hops[static_cast<std::size_t>(u)]);
        }
    }
    return worst;
}

} // namespace ccq
