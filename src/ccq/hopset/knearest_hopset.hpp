// k-nearest beta-hopsets (paper Section 4, Lemma 3.2).
//
// Given an a-approximation delta of APSP, adds shortcut edges H such that
//  * distances are preserved: d_{G∪H} = d_G, and
//  * every node reaches each of its k nearest nodes within
//    beta = O(a log d) hops at exact distance,
// in O(1) rounds.  Works for directed graphs as well (the paper proves the
// lemma in the directed setting); for undirected inputs each shortcut is
// usable in both directions.
//
// Algorithm (Section 4.1): each node v takes its approximate k-nearest
// set (by delta, ties by id), asks each member for its k lightest
// outgoing edges, runs a local shortest-path computation on the received
// subgraph plus its own out-edges, and records the resulting local
// distances as shortcut edges.
#ifndef CCQ_HOPSET_KNEAREST_HOPSET_HPP
#define CCQ_HOPSET_KNEAREST_HOPSET_HPP

#include <string_view>
#include <vector>

#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"
#include "ccq/matrix/sparse.hpp"

namespace ccq {

struct Hopset {
    /// Directed shortcut edges (from, to, exact-path length d'(from,to)).
    std::vector<WeightedEdge> edges;
    int k = 0;
    /// Analytic hop bound from Lemma 4.2: 2*ceil(a ln d) + 3, evaluated
    /// with the caller's diameter upper bound.
    int claimed_hop_bound = 0;
};

/// Builds a k-nearest O(a log d)-hopset from an a-approximation `delta`.
/// `k` defaults to floor(sqrt(n)) (the paper's headline instantiation).
/// `diameter_bound` upper-bounds the weighted diameter d (pass the max
/// finite delta entry if unknown; it is only used for the claimed bound).
/// The per-node local computations (nearest-set selection, local
/// shortest paths) are independent and run in parallel per `engine`.
[[nodiscard]] Hopset build_knearest_hopset(const Graph& g, const DistanceMatrix& delta,
                                           double a, Weight diameter_bound,
                                           CliqueTransport& transport, std::string_view phase,
                                           int k = -1, const EngineConfig& engine = {});

/// G ∪ H with the same orientation as `g`.  For undirected `g`, shortcut
/// (v,u,w) becomes an undirected edge — valid because w is the length of
/// a real v-u path in `g`.
[[nodiscard]] Graph augmented_graph(const Graph& g, const Hopset& hopset);

/// Adjacency rows of G ∪ H including diagonal zeros (input format for the
/// k-nearest computation of Section 5).
[[nodiscard]] SparseMatrix augmented_rows(const Graph& g, const Hopset& hopset);

/// Measurement helper for E3: the maximum, over nodes v and their true
/// k-nearest u, of the minimum hop count among shortest v-u paths in
/// G ∪ H.  This is the empirical beta the hopset achieves.
[[nodiscard]] int measured_hopset_bound(const Graph& g, const Hopset& hopset);

} // namespace ccq

#endif // CCQ_HOPSET_KNEAREST_HOPSET_HPP
