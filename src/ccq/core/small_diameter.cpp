#include "ccq/core/small_diameter.hpp"

#include <algorithm>

#include "ccq/core/baselines.hpp"
#include "ccq/graph/metrics.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace ccq {
namespace {

/// Upper bound on useful reduction applications: the factor cannot drop
/// below the 7 of an exact-skeleton extension, and each application takes
/// a square root, so a handful always suffices (O(log log log n)).
constexpr int kMaxUsefulReductions = 8;

} // namespace

DistanceMatrix small_diameter_impl(const Graph& g, Weight diameter_bound,
                                   const ApspOptions& options, Rng& rng,
                                   CliqueTransport& transport, std::string_view phase,
                                   double* claimed, std::vector<ReductionTrace>* traces)
{
    PhaseScope scope(transport.ledger(), phase);
    const int n = g.node_count();

    // Tiny instances: broadcast everything, solve exactly.
    if (n <= 8) {
        SubgraphApspResult exact =
            apsp_via_full_broadcast(g, transport, "tiny-exact", options.engine);
        if (claimed != nullptr) *claimed = 1.0;
        return std::move(exact.estimate);
    }

    double a = 1.0;
    DistanceMatrix delta =
        bootstrap_logn_approx(g, rng, transport, "bootstrap", &a, options.engine);

    const int limit = options.max_reduction_iterations >= 0
                          ? std::min(options.max_reduction_iterations, kMaxUsefulReductions)
                          : kMaxUsefulReductions;
    for (int iteration = 0; iteration < limit; ++iteration) {
        // A reduction ends with a skeleton extension (factor >= 7*1), so
        // once a <= 7 no application can improve the guarantee.
        if (a <= 7.0) break;
        ReductionOutcome outcome =
            reduce_approximation(g, delta, a, diameter_bound, options, rng, transport,
                                 "reduce");
        if (traces != nullptr) traces->push_back(outcome.trace);
        const bool improved = outcome.trace.claimed_stretch < a;
        // Even a non-improving application yields a valid estimate; keep
        // the better guarantee.
        if (improved) {
            delta = std::move(outcome.estimate);
            a = outcome.trace.claimed_stretch;
        } else {
            break;
        }
    }

    if (claimed != nullptr) *claimed = a;
    return delta;
}

ApspResult apsp_small_diameter(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "small-diameter";
    ApspOptions effective = options;
    if (options.wide_bandwidth &&
        effective.cost.bandwidth_words <= 1.0) {
        // Theorem 7.1's second bullet runs in Congested-Clique[log^3 n].
        effective.cost = CostModel::with_log_power_bandwidth(std::max(2, g.node_count()), 3);
    }
    CliqueTransport transport(std::max(1, g.node_count()), effective.cost, result.ledger);
    Rng rng(options.seed);

    // The theorem assumes d ∈ (log n)^{O(1)}; the implementation accepts
    // any graph and uses an upper bound on d for parameter schedules.
    const Weight diameter_bound = std::max<Weight>(
        2, static_cast<Weight>(g.node_count()) * std::max<Weight>(1, g.max_weight()));
    result.estimate = small_diameter_impl(g, diameter_bound, effective, rng, transport,
                                          "small-diameter", &result.claimed_stretch);
    return result;
}

} // namespace ccq
