// Approximation-factor reduction (paper Lemma 3.1).
//
// Given an a-approximation delta of APSP, produce an O(sqrt(a))-
// approximation in O(1) rounds (when log d ∈ a^{O(1)}).  Pipeline:
//   1. sqrt(n)-nearest O(a log d)-hopset from delta       (Lemma 3.2)
//   2. exact k-nearest distances via filtered powers      (Lemma 3.3)
//   3. skeleton graph over ~O(n log k / k) nodes          (Lemma 3.4)
//   4. APSP on the skeleton via (2b-1)-spanner broadcast  (Cor. 7.1)
//      — or exactly, when the skeleton is small enough to broadcast —
//   5. extension back to G with factor 7*l                (Lemma 3.4)
// The claimed stretch is accumulated from the stages actually taken;
// with the paper's schedule (b = sqrt(a)) it is below 15*sqrt(a).
#ifndef CCQ_CORE_REDUCTION_HPP
#define CCQ_CORE_REDUCTION_HPP

#include <string_view>

#include "ccq/clique/transport.hpp"
#include "ccq/common/rng.hpp"
#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Trace of one reduction application (reported by bench E9).
struct ReductionTrace {
    int hopset_hop_bound = 0; ///< beta-hat of the hopset built in step 1
    int h = 0;                ///< per-iteration hop base of step 2
    std::int64_t k = 0;       ///< k-nearest count of steps 2-3
    int power_iterations = 0; ///< i with h^i >= beta-hat
    int skeleton_size = 0;    ///< |V_S|
    int spanner_b = 0;        ///< b of step 4 (0 when solved exactly)
    bool exact_skeleton_apsp = false;
    double claimed_stretch = 1.0;
};

struct ReductionOutcome {
    DistanceMatrix estimate;
    ReductionTrace trace;
};

/// Applies Lemma 3.1 once.  `delta` must be an `a`-approximation of APSP
/// on `g`; `diameter_bound` upper-bounds the weighted diameter (drives the
/// hopset's claimed hop bound — pass the max finite delta entry).
[[nodiscard]] ReductionOutcome reduce_approximation(const Graph& g, const DistanceMatrix& delta,
                                                    double a, Weight diameter_bound,
                                                    const ApspOptions& options, Rng& rng,
                                                    CliqueTransport& transport,
                                                    std::string_view phase);

} // namespace ccq

#endif // CCQ_CORE_REDUCTION_HPP
