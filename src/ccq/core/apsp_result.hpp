// Common result and option types for the composed APSP algorithms.
#ifndef CCQ_CORE_APSP_RESULT_HPP
#define CCQ_CORE_APSP_RESULT_HPP

#include <cstdint>
#include <string>

#include "ccq/clique/ledger.hpp"
#include "ccq/clique/transport.hpp"
#include "ccq/common/parallel.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Parameter schedules (see DESIGN.md "Parameter profiles").
///
/// `paper` evaluates the literal asymptotic formulas (with safe clamps);
/// at simulable n these often collapse into the degenerate branches the
/// paper itself prescribes.  `practical` keeps the same algorithmic
/// structure but scales constants so every stage is genuinely exercised.
enum class ParamProfile { paper, practical };

struct ApspOptions {
    ParamProfile profile = ParamProfile::practical;
    std::uint64_t seed = 1;
    CostModel cost = CostModel::standard();
    /// Local-execution strategy of the min-plus engine (threads, dense
    /// block size).  Orthogonal to `cost`: results and simulated round
    /// charges are identical for every setting; only wall-clock changes.
    EngineConfig engine;
    /// eps of the weight-scaling lemma and the final stretch slack.
    double eps = 0.25;
    /// Theorem 1.2's t: maximum applications of the Lemma 3.1 reduction
    /// (-1 = run until the approximation stops improving; Theorems 1.1/7.1).
    int max_reduction_iterations = -1;
    /// Model the widened-bandwidth variants (Congested-Clique[log^3 n] in
    /// Theorem 7.1, [log^4 n] in Theorem 8.1): skeleton APSP becomes
    /// exact, improving 21 -> 7 and 7^4 -> 7^3.
    bool wide_bandwidth = false;
    /// Execute every k-nearest stage through the faithful Section 5.2
    /// bin / h-combination routing instead of the fast filtered-power
    /// path.  Identical results, real message movement, slower simulation.
    bool faithful_bin_scheme = false;
};

struct ApspResult {
    DistanceMatrix estimate;
    /// The approximation factor this execution *guarantees*, accumulated
    /// from the factors of the stages actually taken (e.g. 7 * l * a^2
    /// per skeleton extension).  Measured stretch must never exceed it.
    double claimed_stretch = 1.0;
    RoundLedger ledger;
    std::string algorithm;
};

} // namespace ccq

#endif // CCQ_CORE_APSP_RESULT_HPP
