// APSP approximation in general graphs (Theorems 8.1 and 1.1).
//
// Theorem 8.1 (Congested-Clique[log^4 n]): bootstrap an O(log n)-approx,
// build a sqrt(n)-nearest hopset, apply the weight-scaling lemma to get
// O(log n) small-diameter graphs, run Theorem 7.1 on all of them in
// parallel, combine into estimates valid for the sqrt(n)-nearest pairs,
// and extend with a skeleton graph — a (7^3 + eps)-approximation in
// O(log log log n) rounds.
//
// Theorem 1.1 (standard bandwidth): first shrink the node set — compute
// polylog-many nearest neighbors, build a skeleton with n/polylog nodes,
// and simulate the Theorem 8.1 algorithm on the skeleton with widened
// per-pair bandwidth — a (7^4 + eps)-approximation, same round count.
#ifndef CCQ_CORE_GENERAL_APSP_HPP
#define CCQ_CORE_GENERAL_APSP_HPP

#include <string_view>

#include "ccq/common/rng.hpp"
#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Theorem 8.1 entry point (the [log^4 n] bandwidth is applied
/// automatically unless options.cost already widens it).
[[nodiscard]] ApspResult apsp_large_bandwidth(const Graph& g, const ApspOptions& options = {});

/// Theorem 1.1 entry point — the paper's headline algorithm.
[[nodiscard]] ApspResult apsp_general(const Graph& g, const ApspOptions& options = {});

/// Internal form of Theorem 8.1 on an existing transport.
[[nodiscard]] DistanceMatrix large_bandwidth_impl(const Graph& g, const ApspOptions& options,
                                                  Rng& rng, CliqueTransport& transport,
                                                  std::string_view phase, double* claimed);

} // namespace ccq

#endif // CCQ_CORE_GENERAL_APSP_HPP
