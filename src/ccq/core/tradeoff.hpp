// Round / approximation tradeoff (Theorem 1.2).
//
// Limiting the Theorem 1.1 pipeline to t applications of the Lemma 3.1
// reduction (Lemma 8.2/8.3) yields an O(log^{2^-t} n)-approximation in
// O(t) rounds: t = 1 gives ~O(sqrt(log n)), t = 2 gives ~O(log^{1/4} n),
// and so on, converging to the constant-factor headline result.
#ifndef CCQ_CORE_TRADEOFF_HPP
#define CCQ_CORE_TRADEOFF_HPP

#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Theorem 1.2 entry point: at most `t` reduction applications inside
/// every small-diameter stage.
[[nodiscard]] ApspResult apsp_tradeoff(const Graph& g, int t, const ApspOptions& options = {});

/// The theoretical stretch shape O(log^{2^-t} n) (unit constant), for
/// comparing measured curves in experiment E2.
[[nodiscard]] double tradeoff_stretch_shape(int n, int t);

} // namespace ccq

#endif // CCQ_CORE_TRADEOFF_HPP
