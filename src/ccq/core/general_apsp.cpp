#include "ccq/core/general_apsp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ccq/common/math.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/core/small_diameter.hpp"
#include "ccq/hopset/knearest_hopset.hpp"
#include "ccq/knearest/knearest.hpp"
#include "ccq/scaling/weight_scaling.hpp"
#include "ccq/skeleton/skeleton.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace ccq {
namespace {

/// Largest finite entry of a distance estimate (diameter upper bound).
Weight max_finite_entry(const DistanceMatrix& m)
{
    Weight best = 0;
    for (NodeId u = 0; u < m.size(); ++u)
        for (NodeId v = 0; v < m.size(); ++v) {
            const Weight w = m.at(u, v);
            if (is_finite(w)) best = std::max(best, w);
        }
    return best;
}

/// Rows of the k smallest (eta, id) entries per node — the approximate
/// nearest sets Ñk(u) of Theorem 8.1's skeleton stage.  Rows are
/// independent and selected in parallel per `engine`.
SparseMatrix nearest_rows_from_estimate(const DistanceMatrix& eta, int k,
                                        const EngineConfig& engine)
{
    const int n = eta.size();
    SparseMatrix rows(static_cast<std::size_t>(n));
    parallel_chunks(engine.resolved_threads(), 0, n, 1, [&](int u0, int u1) {
        for (NodeId u = u0; u < u1; ++u) {
            SparseRow row;
            row.reserve(static_cast<std::size_t>(n));
            for (NodeId v = 0; v < n; ++v) {
                const Weight w = eta.at(u, v);
                if (is_finite(w)) row.push_back(SparseEntry{v, w});
            }
            std::sort(row.begin(), row.end(), entry_less);
            if (std::cmp_less(k, row.size())) row.resize(static_cast<std::size_t>(k));
            rows[static_cast<std::size_t>(u)] = std::move(row);
        }
    });
    return rows;
}

/// Theorem 1.1's outer k: log^4 n in the paper profile, a scaled-down
/// variant that still shrinks the skeleton at simulable n otherwise.
std::int64_t outer_nearest_count(const ApspOptions& options, int n)
{
    const auto log_n = static_cast<std::int64_t>(ceil_log2(std::max(2, n)));
    if (options.profile == ParamProfile::paper)
        return std::min<std::int64_t>(n, log_n * log_n * log_n * log_n);
    return std::clamp<std::int64_t>(std::min<std::int64_t>(log_n * log_n, floor_sqrt(n)), 1, n);
}

} // namespace

DistanceMatrix large_bandwidth_impl(const Graph& g, const ApspOptions& options, Rng& rng,
                                    CliqueTransport& transport, std::string_view phase,
                                    double* claimed)
{
    PhaseScope scope(transport.ledger(), phase);
    const int n = g.node_count();

    if (n <= 8) {
        SubgraphApspResult exact =
            apsp_via_full_broadcast(g, transport, "tiny-exact", options.engine);
        if (claimed != nullptr) *claimed = 1.0;
        return std::move(exact.estimate);
    }

    // Step 1: O(log n)-approximation and sqrt(n)-nearest hopset.
    double a0 = 1.0;
    const DistanceMatrix delta0 =
        bootstrap_logn_approx(g, rng, transport, "bootstrap", &a0, options.engine);
    const Weight max_estimate = max_finite_entry(delta0);
    const Hopset hopset = build_knearest_hopset(g, delta0, a0, std::max<Weight>(2, max_estimate),
                                                transport, "hopset", /*k=*/-1, options.engine);

    // Step 2a: weight scaling on G ∪ H.  The selector delta0 is an
    // h-approximation for h = max(hop bound, a0).
    const Graph augmented = augmented_graph(g, hopset);
    const int h_scale =
        std::max(hopset.claimed_hop_bound, static_cast<int>(std::ceil(a0)));
    const ScaledFamily family =
        build_scaled_family(augmented, std::max<Weight>(1, max_estimate), h_scale, options.eps);

    // Step 2b: Theorem 7.1 on every level, in parallel lanes (the widened
    // bandwidth carries the O(log n)-fold duplication).
    ApspOptions level_options = options;
    level_options.wide_bandwidth = true; // levels run the 7-approx variant
    std::vector<DistanceMatrix> level_estimates;
    double level_stretch = 1.0;
    {
        ParallelScope lanes(transport.ledger(), "scaled-levels");
        for (const ScaledLevel& level : family.levels) {
            double level_claimed = 1.0;
            level_estimates.push_back(small_diameter_impl(level.graph, level.cap, level_options,
                                                          rng, transport, "level",
                                                          &level_claimed));
            level_stretch = std::max(level_stretch, level_claimed);
            lanes.next_lane();
        }
    }
    const DistanceMatrix eta0 = combine_scaled_estimates(family, level_estimates, delta0);
    const double eta0_stretch = (1.0 + options.eps) * level_stretch;

    // Step 3: skeleton over the approximate sqrt(n)-nearest sets, solved
    // exactly (the widened bandwidth affords broadcasting G_S whole).
    const int k = std::max<int>(1, static_cast<int>(floor_sqrt(n)));
    const SparseMatrix rows = nearest_rows_from_estimate(eta0, k, options.engine);
    const SkeletonGraph skeleton =
        build_skeleton(g, rows, eta0_stretch, rng, transport, "skeleton", options.engine);
    const SubgraphApspResult skeleton_apsp =
        apsp_via_full_broadcast(skeleton.graph, transport, "skeleton-apsp", options.engine);
    const DistanceMatrix eta = extend_skeleton_estimate(skeleton, skeleton_apsp.estimate, rows,
                                                        transport, "extend");

    // Lemma 6.1: 7 * l * a^2 with l = 1, a = eta0_stretch.
    if (claimed != nullptr) *claimed = 7.0 * eta0_stretch * eta0_stretch;
    return eta;
}

ApspResult apsp_large_bandwidth(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "large-bandwidth";
    ApspOptions effective = options;
    if (effective.cost.bandwidth_words <= 1.0)
        effective.cost = CostModel::with_log_power_bandwidth(std::max(2, g.node_count()), 4);
    CliqueTransport transport(std::max(1, g.node_count()), effective.cost, result.ledger);
    Rng rng(options.seed);
    result.estimate = large_bandwidth_impl(g, effective, rng, transport, "large-bandwidth",
                                           &result.claimed_stretch);
    return result;
}

ApspResult apsp_general(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "general";
    const int n = g.node_count();
    CliqueTransport transport(std::max(1, n), options.cost, result.ledger);
    Rng rng(options.seed);
    PhaseScope scope(result.ledger, "general");

    if (n <= 8) {
        SubgraphApspResult exact =
            apsp_via_full_broadcast(g, transport, "tiny-exact", options.engine);
        result.estimate = std::move(exact.estimate);
        result.claimed_stretch = 1.0;
        return result;
    }

    // Step 1: exact distances to the polylog-many nearest nodes
    // (Lemma 5.2 with h = 2; nodes reach their k nearest within k hops).
    const std::int64_t k = outer_nearest_count(options, n);
    KNearestOptions knn_options;
    knn_options.k = static_cast<int>(k);
    knn_options.h = 2;
    knn_options.faithful_bins = options.faithful_bin_scheme;
    knn_options.iterations = std::max(1, ceil_log2(std::max<std::int64_t>(2, k)));
    knn_options.engine = options.engine;
    const KNearestResult nearest = compute_k_nearest(adjacency_rows(g, /*include_self=*/true),
                                                     knn_options, transport, "outer-k-nearest");

    // Step 2: skeleton with n/polylog nodes (Lemma 3.4, exact sets).
    const SkeletonGraph skeleton = build_skeleton(g, nearest.rows, /*a=*/1.0, rng, transport,
                                                  "outer-skeleton", options.engine);

    // Degenerate protection: if the skeleton did not shrink the node set,
    // run Theorem 8.1 directly (correct; only the simulation trick is moot).
    if (skeleton.size() >= n) {
        ApspOptions direct = options;
        direct.cost = CostModel::with_log_power_bandwidth(std::max(2, n), 4);
        CliqueTransport wide(std::max(1, n), direct.cost, result.ledger);
        result.estimate =
            large_bandwidth_impl(g, direct, rng, wide, "direct-large-bandwidth",
                                 &result.claimed_stretch);
        return result;
    }

    // Step 3: simulate the Theorem 8.1 algorithm on G_S with per-pair
    // bandwidth log^4 n; Lemma 2.1 carries the widened messages across
    // the full clique with O(1) overhead.
    ApspOptions inner = options;
    inner.cost = CostModel::with_log_power_bandwidth(std::max(2, n), 4);
    CliqueTransport skeleton_transport(std::max(1, skeleton.size()), inner.cost,
                                       result.ledger);
    double inner_claimed = 1.0;
    const DistanceMatrix delta_gs = large_bandwidth_impl(
        skeleton.graph, inner, rng, skeleton_transport, "skeleton-sim", &inner_claimed);

    // Step 4: extend back to G (Lemma 3.4: factor 7 * l, a = 1).
    result.estimate = extend_skeleton_estimate(skeleton, delta_gs, nearest.rows, transport,
                                               "extend");
    result.claimed_stretch = 7.0 * inner_claimed;
    return result;
}

} // namespace ccq
