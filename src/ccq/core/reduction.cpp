#include "ccq/core/reduction.hpp"

#include <algorithm>
#include <cmath>

#include "ccq/common/math.hpp"
#include "ccq/hopset/knearest_hopset.hpp"
#include "ccq/knearest/knearest.hpp"
#include "ccq/skeleton/skeleton.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace ccq {
namespace {

/// Step-2 schedule: hop base h and set size k.
///
/// Paper profile (proof of Lemma 3.1): h = a^{1/4}/2, k = n^{1/h}, both
/// clamped to usable integer ranges (h >= 2 so iterating gains hops,
/// k <= sqrt(n) so the sqrt(n)-nearest hopset still covers the set).
/// Practical profile: h = 2 and k = sqrt(n) — the same structure with
/// constants that exercise every stage at simulable n.
void choose_schedule(const ApspOptions& options, int n, double a, int& h, std::int64_t& k)
{
    const auto sqrt_n = floor_sqrt(n);
    if (options.profile == ParamProfile::paper) {
        h = std::clamp(static_cast<int>(std::llround(std::pow(a, 0.25) / 2.0)), 2, 16);
        k = std::clamp<std::int64_t>(floor_nth_root(n, h), 1, sqrt_n);
    } else {
        h = 2;
        k = std::max<std::int64_t>(1, sqrt_n);
    }
}

/// Step-4 schedule: spanner parameter b.  Paper: b = sqrt(a).  Both
/// profiles then raise b until the spanner broadcast fits the O(n)-word
/// budget of Corollary 7.1 (|V_S|^{1+1/b} <= c*n), which the paper's size
/// analysis guarantees for its parameters; the explicit loop keeps the
/// round charge honest when clamped parameters leave a larger skeleton.
int choose_spanner_b(double a, int skeleton_size, int n)
{
    int b = std::max(1, static_cast<int>(std::llround(std::sqrt(a))));
    const double budget = 4.0 * static_cast<double>(std::max(n, 2));
    const double s = static_cast<double>(std::max(skeleton_size, 2));
    while (b < 2 * ceil_log2(std::max(n, 2)) &&
           std::pow(s, 1.0 + 1.0 / b) > budget)
        ++b;
    return b;
}

} // namespace

ReductionOutcome reduce_approximation(const Graph& g, const DistanceMatrix& delta, double a,
                                      Weight diameter_bound, const ApspOptions& options,
                                      Rng& rng, CliqueTransport& transport,
                                      std::string_view phase)
{
    const int n = g.node_count();
    CCQ_EXPECT(delta.size() == n, "reduce_approximation: delta size mismatch");
    CCQ_EXPECT(a >= 1.0, "reduce_approximation: a must be >= 1");
    PhaseScope scope(transport.ledger(), phase);

    ReductionOutcome outcome;

    // Step 1: sqrt(n)-nearest O(a log d)-hopset (Lemma 3.2).
    const Hopset hopset = build_knearest_hopset(g, delta, a, diameter_bound, transport,
                                                "hopset", /*k=*/-1, options.engine);
    outcome.trace.hopset_hop_bound = hopset.claimed_hop_bound;

    // Step 2: exact distances to the k nearest (Lemma 3.3): iterate the
    // filtered power until h^i covers the hopset's hop bound.
    int h = 2;
    std::int64_t k = 1;
    choose_schedule(options, n, a, h, k);
    int iterations = 1;
    while (saturating_pow(h, iterations) < hopset.claimed_hop_bound) ++iterations;
    outcome.trace.h = h;
    outcome.trace.k = k;
    outcome.trace.power_iterations = iterations;

    KNearestOptions knn_options;
    knn_options.k = static_cast<int>(k);
    knn_options.h = h;
    knn_options.iterations = iterations;
    knn_options.faithful_bins = options.faithful_bin_scheme;
    knn_options.engine = options.engine;
    const KNearestResult nearest =
        compute_k_nearest(augmented_rows(g, hopset), knn_options, transport, "k-nearest");

    // Step 3: skeleton graph from the exact k-nearest sets (Lemma 3.4,
    // a = 1 because the distances are exact).
    const SkeletonGraph skeleton = build_skeleton(g, nearest.rows, /*a=*/1.0, rng, transport,
                                                  "skeleton", options.engine);
    outcome.trace.skeleton_size = skeleton.size();

    // Step 4: APSP on the skeleton.  Exact when all skeleton edges fit the
    // O(n)-word broadcast budget (this is how Theorem 7.1 achieves its
    // 7-approximation under Congested-Clique[log^3 n]); otherwise Cor 7.1.
    const double broadcast_budget_words =
        4.0 * static_cast<double>(n) * std::max(1.0, transport.cost().bandwidth_words);
    SubgraphApspResult skeleton_apsp;
    if (options.wide_bandwidth ||
        3.0 * static_cast<double>(skeleton.graph.edge_count()) <= broadcast_budget_words) {
        skeleton_apsp = apsp_via_full_broadcast(skeleton.graph, transport, "skeleton-apsp",
                                                options.engine);
        outcome.trace.exact_skeleton_apsp = true;
    } else {
        const int b = choose_spanner_b(a, skeleton.size(), n);
        skeleton_apsp = apsp_via_spanner(skeleton.graph, b, rng, transport, "skeleton-apsp",
                                         options.engine);
        outcome.trace.spanner_b = b;
    }

    // Step 5: extend to the full graph (Lemma 3.4: factor 7*l with a = 1).
    outcome.estimate = extend_skeleton_estimate(skeleton, skeleton_apsp.estimate, nearest.rows,
                                                transport, "extend");
    outcome.trace.claimed_stretch = 7.0 * skeleton_apsp.claimed_stretch;
    return outcome;
}

} // namespace ccq
