#include "ccq/core/loglog_apsp.hpp"

#include <algorithm>

#include "ccq/common/math.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/hopset/knearest_hopset.hpp"
#include "ccq/knearest/knearest.hpp"
#include "ccq/skeleton/skeleton.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace ccq {
namespace {

Weight max_finite_entry(const DistanceMatrix& m)
{
    Weight best = 0;
    for (NodeId u = 0; u < m.size(); ++u)
        for (NodeId v = 0; v < m.size(); ++v)
            if (is_finite(m.at(u, v))) best = std::max(best, m.at(u, v));
    return best;
}

} // namespace

ApspResult apsp_loglog(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "loglog";
    const int n = g.node_count();
    ApspOptions effective = options;
    if (options.wide_bandwidth && effective.cost.bandwidth_words <= 1.0)
        effective.cost = CostModel::with_log_power_bandwidth(std::max(2, n), 3);
    CliqueTransport transport(std::max(1, n), effective.cost, result.ledger);
    Rng rng(options.seed);
    PhaseScope scope(result.ledger, "loglog");

    if (n <= 8) {
        SubgraphApspResult exact =
            apsp_via_full_broadcast(g, transport, "tiny-exact", options.engine);
        result.estimate = std::move(exact.estimate);
        result.claimed_stretch = 1.0;
        return result;
    }

    // Step 1: O(log n)-approximation (Cor. 7.2) in O(1) rounds.
    double a = 1.0;
    const DistanceMatrix delta =
        bootstrap_logn_approx(g, rng, transport, "bootstrap", &a, options.engine);

    // Step 2: sqrt(n)-nearest O(a log d)-hopset (Lemma 3.2).
    const Weight diameter_bound = std::max<Weight>(2, max_finite_entry(delta));
    const Hopset hopset = build_knearest_hopset(g, delta, a, diameter_bound, transport,
                                                "hopset", /*k=*/-1, options.engine);

    // Step 3: distances to the sqrt(n)-nearest nodes with h = 2 and
    // i ∈ O(log log n) squarings (Lemma 3.3).
    KNearestOptions knn_options;
    knn_options.k = std::max(1, static_cast<int>(floor_sqrt(n)));
    knn_options.h = 2;
    knn_options.faithful_bins = options.faithful_bin_scheme;
    knn_options.engine = options.engine;
    knn_options.iterations = 1;
    while (saturating_pow(2, knn_options.iterations) < hopset.claimed_hop_bound)
        ++knn_options.iterations;
    const KNearestResult nearest =
        compute_k_nearest(augmented_rows(g, hopset), knn_options, transport, "k-nearest");

    // Step 4: skeleton graph with k = sqrt(n) (Lemma 3.4, exact sets).
    const SkeletonGraph skeleton = build_skeleton(g, nearest.rows, /*a=*/1.0, rng, transport,
                                                  "skeleton", options.engine);

    // Step 5: 3-spanner of G_S broadcast to everyone (21-approx), or the
    // whole of G_S under widened bandwidth (7-approx).
    SubgraphApspResult skeleton_apsp;
    if (options.wide_bandwidth) {
        skeleton_apsp = apsp_via_full_broadcast(skeleton.graph, transport, "skeleton-apsp",
                                                options.engine);
    } else {
        skeleton_apsp = apsp_via_spanner(skeleton.graph, 2, rng, transport, "skeleton-apsp",
                                         options.engine);
    }

    // Step 6: extension (Lemma 3.4: factor 7 * l).
    result.estimate = extend_skeleton_estimate(skeleton, skeleton_apsp.estimate, nearest.rows,
                                               transport, "extend");
    result.claimed_stretch = 7.0 * skeleton_apsp.claimed_stretch;
    return result;
}

} // namespace ccq
