#include "ccq/core/zero_weights.hpp"

#include <algorithm>
#include <map>

#include "ccq/mst/boruvka.hpp"

namespace ccq {

ZeroWeightReduction build_zero_weight_reduction(const Graph& g, CliqueTransport& transport,
                                                std::string_view phase)
{
    CCQ_EXPECT(!g.is_directed(), "build_zero_weight_reduction: undirected input required");
    PhaseScope scope(transport.ledger(), phase);
    const int n = g.node_count();

    // Step 1: minimum spanning forest; its zero-weight edges span exactly
    // the zero-components (Appendix A; Nowicki MST substituted by Borůvka,
    // charged at the cited O(1) bound).
    const MstResult msf = boruvka_msf(g);
    transport.charge_constant_round_mst("mst");

    // Union over zero-weight forest edges (known to all nodes since the
    // whole MST is broadcast by the cited algorithm).
    std::vector<NodeId> parent(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
    const auto find = [&](NodeId v) {
        while (parent[static_cast<std::size_t>(v)] != v) {
            parent[static_cast<std::size_t>(v)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
            v = parent[static_cast<std::size_t>(v)];
        }
        return v;
    };
    for (const WeightedEdge& e : msf.edges) {
        if (e.weight != 0) continue;
        const NodeId ru = find(e.u), rv = find(e.v);
        if (ru != rv) parent[static_cast<std::size_t>(std::max(ru, rv))] = std::min(ru, rv);
    }

    ZeroWeightReduction reduction;
    reduction.component.assign(static_cast<std::size_t>(n), -1);
    for (NodeId v = 0; v < n; ++v) {
        const NodeId root = find(v);
        if (reduction.component[static_cast<std::size_t>(root)] < 0) {
            reduction.component[static_cast<std::size_t>(root)] =
                static_cast<int>(reduction.leaders.size());
            reduction.leaders.push_back(root); // smallest id first by scan order
        }
        reduction.component[static_cast<std::size_t>(v)] =
            reduction.component[static_cast<std::size_t>(root)];
    }
    transport.note_local_computation("identify-components");

    // Step 3: minimum-weight edge between every pair of components.
    // Every node reports, per foreign leader, its lightest incident edge
    // into that component (one message per (node, leader) pair).
    std::map<std::pair<int, int>, Weight> lightest;
    std::uint64_t per_node_messages = 0;
    for (NodeId u = 0; u < n; ++u) {
        std::map<int, Weight> best_of_u;
        for (const Edge& e : g.neighbors(u)) {
            const int cu = reduction.component[static_cast<std::size_t>(u)];
            const int cv = reduction.component[static_cast<std::size_t>(e.to)];
            if (cu == cv) continue;
            auto [it, inserted] = best_of_u.try_emplace(cv, e.weight);
            if (!inserted) it->second = min_weight(it->second, e.weight);
        }
        per_node_messages = std::max<std::uint64_t>(per_node_messages, best_of_u.size());
        for (const auto& [cv, w] : best_of_u) {
            const int cu = reduction.component[static_cast<std::size_t>(u)];
            const auto key = std::make_pair(std::min(cu, cv), std::max(cu, cv));
            auto [it, inserted] = lightest.try_emplace(key, w);
            if (!inserted) it->second = min_weight(it->second, w);
        }
    }
    RoutingLoad load;
    load.max_sent = per_node_messages * 2;
    load.max_received = static_cast<std::uint64_t>(n) * 2;
    load.total_words = 2ULL * static_cast<std::uint64_t>(lightest.size());
    transport.charge_route("min-crossing-edges", load);

    reduction.compressed = Graph::undirected(static_cast<int>(reduction.leaders.size()));
    for (const auto& [key, weight] : lightest) {
        CCQ_CHECK(weight > 0, "compressed graph must have positive weights");
        reduction.compressed.add_edge(key.first, key.second, weight);
    }
    return reduction;
}

ApspResult apsp_with_zero_weights(const Graph& g, const ApspOptions& options,
                                  const InnerApspAlgorithm& inner)
{
    ApspResult result;
    result.algorithm = "zero-weight-wrapper";
    CliqueTransport transport(std::max(1, g.node_count()), options.cost, result.ledger);

    const ZeroWeightReduction reduction =
        build_zero_weight_reduction(g, transport, "zero-weight-reduction");

    ApspResult compressed = inner(reduction.compressed, options);
    result.ledger.charge("inner-algorithm", compressed.ledger.total_rounds(),
                         compressed.ledger.total_words());
    result.claimed_stretch = compressed.claimed_stretch;

    // Expansion: each leader tells its members the distances to all other
    // leaders (each node receives |leaders| <= n words).
    RoutingLoad expand;
    expand.max_sent = static_cast<std::uint64_t>(g.node_count());
    expand.max_received = static_cast<std::uint64_t>(reduction.leaders.size());
    expand.total_words = static_cast<std::uint64_t>(g.node_count()) *
                         static_cast<std::uint64_t>(reduction.leaders.size());
    transport.charge_route("expand", expand);

    const int n = g.node_count();
    result.estimate = DistanceMatrix(n);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = 0; v < n; ++v) {
            const int cu = reduction.component[static_cast<std::size_t>(u)];
            const int cv = reduction.component[static_cast<std::size_t>(v)];
            result.estimate.at(u, v) =
                cu == cv ? 0
                         : compressed.estimate.at(static_cast<NodeId>(cu),
                                                  static_cast<NodeId>(cv));
        }
    }
    return result;
}

} // namespace ccq
