// Zero-weight reduction (Theorem 2.1 / Appendix A).
//
// Wraps any positive-weight APSP approximation so it accepts nonnegative
// weights, at +O(1) rounds and no stretch loss: contract the connected
// components of the zero-weight subgraph (found via the MST substrate),
// run the inner algorithm on the compressed graph with minimum
// inter-component edge weights, and expand the answers back.
#ifndef CCQ_CORE_ZERO_WEIGHTS_HPP
#define CCQ_CORE_ZERO_WEIGHTS_HPP

#include <functional>
#include <vector>

#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// The inner positive-weight algorithm (e.g. apsp_general or
/// apsp_small_diameter bound to options).
using InnerApspAlgorithm = std::function<ApspResult(const Graph&, const ApspOptions&)>;

struct ZeroWeightReduction {
    std::vector<int> component;   ///< zero-component label per node
    std::vector<NodeId> leaders;  ///< smallest-id member per component
    Graph compressed;             ///< one node per component, positive weights
};

/// Computes the contraction of the zero-weight subgraph's components.
/// Exposed separately so tests can validate it against a direct
/// union-find over zero edges.
[[nodiscard]] ZeroWeightReduction build_zero_weight_reduction(const Graph& g,
                                                              CliqueTransport& transport,
                                                              std::string_view phase);

/// Theorem 2.1: runs `inner` on the compressed graph and expands.
[[nodiscard]] ApspResult apsp_with_zero_weights(const Graph& g, const ApspOptions& options,
                                                const InnerApspAlgorithm& inner);

} // namespace ccq

#endif // CCQ_CORE_ZERO_WEIGHTS_HPP
