#include "ccq/core/stretch.hpp"

#include <algorithm>

#include "ccq/common/check.hpp"

namespace ccq {

StretchReport evaluate_stretch(const DistanceMatrix& exact, const DistanceMatrix& estimate)
{
    CCQ_EXPECT(exact.size() == estimate.size(), "evaluate_stretch: size mismatch");
    StretchReport report;
    double sum = 0.0;
    for (NodeId u = 0; u < exact.size(); ++u) {
        for (NodeId v = 0; v < exact.size(); ++v) {
            if (u == v) continue;
            const Weight d = exact.at(u, v);
            const Weight e = estimate.at(u, v);
            if (is_finite(d) != is_finite(e)) {
                ++report.reachability_mismatches;
                continue;
            }
            if (!is_finite(d)) continue;
            if (e < d) {
                ++report.lower_bound_violations;
                continue;
            }
            if (d == 0) {
                // Any multiplicative approximation must map 0 to 0.
                if (e == 0) {
                    ++report.finite_pairs;
                    sum += 1.0;
                } else {
                    ++report.lower_bound_violations;
                }
                continue;
            }
            ++report.finite_pairs;
            const double ratio = static_cast<double>(e) / static_cast<double>(d);
            report.max_stretch = std::max(report.max_stretch, ratio);
            sum += ratio;
        }
    }
    report.avg_stretch = report.finite_pairs > 0 ? sum / static_cast<double>(report.finite_pairs)
                                                 : 1.0;
    return report;
}

} // namespace ccq
