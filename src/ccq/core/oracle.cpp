#include "ccq/core/oracle.hpp"

#include "ccq/core/baselines.hpp"
#include "ccq/core/general_apsp.hpp"
#include "ccq/core/loglog_apsp.hpp"
#include "ccq/core/small_diameter.hpp"
#include "ccq/core/zero_weights.hpp"

namespace ccq {
namespace {

ApspResult dispatch(const Graph& g, ApspAlgorithmKind kind, const ApspOptions& options)
{
    switch (kind) {
    case ApspAlgorithmKind::exact_baseline: return exact_apsp_clique(g, options);
    case ApspAlgorithmKind::logn_baseline: return logn_approx_apsp(g, options);
    case ApspAlgorithmKind::loglog: return apsp_loglog(g, options);
    case ApspAlgorithmKind::small_diameter: return apsp_small_diameter(g, options);
    case ApspAlgorithmKind::large_bandwidth: return apsp_large_bandwidth(g, options);
    case ApspAlgorithmKind::general: return apsp_general(g, options);
    }
    throw check_error("DistanceOracle: unknown algorithm kind");
}

bool has_zero_weight_edge(const Graph& g)
{
    for (NodeId u = 0; u < g.node_count(); ++u)
        for (const Edge& e : g.neighbors(u))
            if (e.weight == 0) return true;
    return false;
}

} // namespace

const char* algorithm_kind_name(ApspAlgorithmKind kind)
{
    switch (kind) {
    case ApspAlgorithmKind::exact_baseline: return "exact-minplus";
    case ApspAlgorithmKind::logn_baseline: return "logn-spanner";
    case ApspAlgorithmKind::loglog: return "loglog";
    case ApspAlgorithmKind::small_diameter: return "small-diameter";
    case ApspAlgorithmKind::large_bandwidth: return "large-bandwidth";
    case ApspAlgorithmKind::general: return "general";
    }
    return "unknown";
}

DistanceOracle::DistanceOracle(const Graph& g, ApspAlgorithmKind kind,
                               const ApspOptions& options)
{
    CCQ_EXPECT(!g.is_directed(),
               "DistanceOracle: the composed algorithms require undirected graphs");
    if (has_zero_weight_edge(g)) {
        // Theorem 2.1: contract zero components, run the positive-weight
        // algorithm, expand.
        result_ = apsp_with_zero_weights(
            g, options, [kind](const Graph& inner, const ApspOptions& inner_options) {
                return dispatch(inner, kind, inner_options);
            });
        result_.algorithm = std::string(algorithm_kind_name(kind)) + "+zero-weights";
    } else {
        result_ = dispatch(g, kind, options);
    }
}

} // namespace ccq
