// Baseline APSP algorithms the paper compares against (experiment E1).
//
//  * exact_apsp_clique — distance-product exponentiation ([CKK+19]:
//    O(n^{1/3}) rounds per dense product, at most ceil(log2(n-1))
//    products; the ledger charges the squarings actually run, since the
//    closure stops at the min-plus fixed point — in the clique model,
//    global convergence detection is a 1-bit aggregate per product,
//    which the word-level cost model already treats as free).
//  * logn_approx_apsp — the CZ22-style O(1)-round O(log n)-approximation
//    via spanner broadcast (Corollary 7.2).  Also the bootstrap stage of
//    every composed algorithm.
#ifndef CCQ_CORE_BASELINES_HPP
#define CCQ_CORE_BASELINES_HPP

#include <string_view>

#include "ccq/common/rng.hpp"
#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Exact APSP baseline: min-plus squaring of the adjacency matrix.
[[nodiscard]] ApspResult exact_apsp_clique(const Graph& g, const ApspOptions& options = {});

/// O(log n)-approximation in O(1) rounds (Corollary 7.2 / CZ22 baseline).
[[nodiscard]] ApspResult logn_approx_apsp(const Graph& g, const ApspOptions& options = {});

/// Internal form of the bootstrap used by composed algorithms: runs on an
/// existing transport and reports the claimed factor via `claimed`.
[[nodiscard]] DistanceMatrix bootstrap_logn_approx(const Graph& g, Rng& rng,
                                                   CliqueTransport& transport,
                                                   std::string_view phase, double* claimed,
                                                   const EngineConfig& engine = {});

} // namespace ccq

#endif // CCQ_CORE_BASELINES_HPP
