// DistanceOracle: the library's one-call facade.
//
// Wraps algorithm selection, the zero-weight reduction, and the result
// bookkeeping behind a query object:
//
//   ccq::DistanceOracle oracle(g);                 // Theorem 1.1 defaults
//   Weight d = oracle.distance(u, v);              // estimate
//   double s = oracle.claimed_stretch();           // guarantee
//   double r = oracle.simulated_rounds();          // model cost
#ifndef CCQ_CORE_ORACLE_HPP
#define CCQ_CORE_ORACLE_HPP

#include <string>

#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Which composed algorithm the oracle runs.
enum class ApspAlgorithmKind {
    exact_baseline,   ///< min-plus exponentiation (polynomial rounds)
    logn_baseline,    ///< CZ22-style O(log n)-approx, O(1) rounds
    loglog,           ///< Section 3.2: 21-approx, O(log log n) rounds
    small_diameter,   ///< Theorem 7.1
    large_bandwidth,  ///< Theorem 8.1
    general,          ///< Theorem 1.1 (default)
};

[[nodiscard]] const char* algorithm_kind_name(ApspAlgorithmKind kind);

class DistanceOracle {
public:
    /// Runs the chosen algorithm at construction time.  Graphs with zero
    /// edge weights are handled transparently via the Theorem 2.1
    /// reduction.
    explicit DistanceOracle(const Graph& g, ApspAlgorithmKind kind = ApspAlgorithmKind::general,
                            const ApspOptions& options = {});

    [[nodiscard]] Weight distance(NodeId u, NodeId v) const { return result_.estimate.at(u, v); }
    [[nodiscard]] bool reachable(NodeId u, NodeId v) const
    {
        return is_finite(result_.estimate.at(u, v));
    }
    [[nodiscard]] double claimed_stretch() const noexcept { return result_.claimed_stretch; }
    [[nodiscard]] double simulated_rounds() const noexcept
    {
        return result_.ledger.total_rounds();
    }
    [[nodiscard]] const ApspResult& result() const noexcept { return result_; }
    [[nodiscard]] const std::string& algorithm() const noexcept { return result_.algorithm; }

private:
    ApspResult result_;
};

} // namespace ccq

#endif // CCQ_CORE_ORACLE_HPP
