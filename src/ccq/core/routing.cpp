#include "ccq/core/routing.hpp"

#include <queue>
#include <utility>

#include "ccq/graph/exact.hpp"

namespace ccq {

std::vector<NodeId> RoutingTables::route(NodeId from, NodeId to) const
{
    CCQ_EXPECT(valid(from) && valid(to), "RoutingTables::route: out of range");
    std::vector<NodeId> path{from};
    NodeId current = from;
    // A well-formed table reaches `to` within n-1 hops.  Tables can come
    // from untrusted snapshots, so a longer walk (forwarding cycle) or an
    // out-of-range hop means corruption: terminate and report unreachable.
    for (int steps = 0; current != to; ++steps) {
        if (steps >= n_) return {}; // forwarding cycle in a corrupted table
        const NodeId next = next_hop(current, to);
        if (!valid(next)) return {}; // unreachable (or corrupted hop id)
        path.push_back(next);
        current = next;
    }
    return path;
}

RoutingTables build_routing_tables(const Graph& backbone)
{
    CCQ_EXPECT(!backbone.is_directed(), "build_routing_tables: undirected backbone required");
    const int n = backbone.node_count();
    std::vector<NodeId> next(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);

    // One Dijkstra per destination over the backbone; the parent pointers
    // toward the destination are exactly the next hops.  (Each node can
    // do this locally once the backbone is broadcast.)
    for (NodeId dest = 0; dest < n; ++dest) {
        std::vector<Weight> dist(static_cast<std::size_t>(n), kInfinity);
        std::vector<NodeId> toward(static_cast<std::size_t>(n), -1);
        dist[static_cast<std::size_t>(dest)] = 0;
        using Item = std::pair<Weight, NodeId>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
        queue.emplace(0, dest);
        while (!queue.empty()) {
            const auto [d, u] = queue.top();
            queue.pop();
            if (d != dist[static_cast<std::size_t>(u)]) continue;
            for (const Edge& e : backbone.neighbors(u)) {
                const Weight cand = saturating_add(d, e.weight);
                Weight& cur = dist[static_cast<std::size_t>(e.to)];
                // Deterministic tie-break by hop id keeps tables stable.
                if (cand < cur ||
                    (cand == cur && toward[static_cast<std::size_t>(e.to)] > u)) {
                    cur = cand;
                    toward[static_cast<std::size_t>(e.to)] = u;
                    queue.emplace(cand, e.to);
                }
            }
        }
        for (NodeId u = 0; u < n; ++u) {
            if (u == dest) continue;
            next[static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dest)] = toward[static_cast<std::size_t>(u)];
        }
    }
    return RoutingTables(n, std::move(next));
}

Weight route_length(const Graph& g, const std::vector<NodeId>& route)
{
    if (route.size() < 2) return route.empty() ? kInfinity : 0;
    Weight total = 0;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        Weight best = kInfinity;
        for (const Edge& e : g.neighbors(route[i]))
            if (e.to == route[i + 1]) best = min_weight(best, e.weight);
        if (!is_finite(best)) return kInfinity; // not an edge of g
        total = saturating_add(total, best);
    }
    return total;
}

} // namespace ccq
