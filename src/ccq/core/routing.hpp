// Compact routing from APSP estimates.
//
// The paper motivates APSP by its "close connection to network routing"
// (Section 1).  This layer turns the library's distance estimates into
// actionable next-hop routing tables: every node stores, per destination,
// the neighbor to forward to, and the guarantee is that greedy forwarding
// terminates with a route of length at most the estimate used.
//
// Construction: route toward the destination along the structure that
// produced the estimate — here, a spanner/subgraph whose edges are known
// locally after the broadcast stage, which is exactly what the O(1)-round
// algorithms disseminate.
#ifndef CCQ_CORE_ROUTING_HPP
#define CCQ_CORE_ROUTING_HPP

#include <vector>

#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// next_hop[u][v]: the neighbor u forwards to for destination v (u == v
/// or unreachable: -1).
class RoutingTables {
public:
    RoutingTables() = default;
    RoutingTables(int n, std::vector<NodeId> next_hops)
        : n_(n), next_hop_(std::move(next_hops))
    {
        CCQ_EXPECT(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_) ==
                       next_hop_.size(),
                   "RoutingTables: size mismatch");
    }

    [[nodiscard]] int size() const noexcept { return n_; }

    [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const
    {
        CCQ_EXPECT(valid(from) && valid(to), "RoutingTables::next_hop: out of range");
        return next_hop_[static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
                         static_cast<std::size_t>(to)];
    }

    /// Follows next hops from `from` to `to`.  Returns the node sequence
    /// (starting at `from`, ending at `to`), or an empty vector if the
    /// destination is unreachable.  The walk is hardened for serving
    /// against untrusted tables (e.g. loaded from disk): a forwarding
    /// cycle, an out-of-range hop, or any walk longer than n hops is
    /// reported as unreachable rather than looping or throwing.
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;

private:
    [[nodiscard]] bool valid(NodeId v) const noexcept { return v >= 0 && v < n_; }

    int n_ = 0;
    std::vector<NodeId> next_hop_;
};

/// Builds next-hop tables by routing along `backbone` (a subgraph of the
/// communication graph whose edges every node knows, e.g. the broadcast
/// spanner).  Routes followed through the tables have length exactly
/// d_backbone(u, v), hence within the backbone's stretch of d_G.
[[nodiscard]] RoutingTables build_routing_tables(const Graph& backbone);

/// Total length of a route under graph `g` (kInfinity for an empty or
/// broken route).
[[nodiscard]] Weight route_length(const Graph& g, const std::vector<NodeId>& route);

} // namespace ccq

#endif // CCQ_CORE_ROUTING_HPP
