#include "ccq/core/baselines.hpp"

#include "ccq/graph/exact.hpp"
#include "ccq/matrix/engine.hpp"
#include "ccq/spanner/spanner_apsp.hpp"

namespace ccq {

ApspResult exact_apsp_clique(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "exact-minplus";
    CliqueTransport transport(std::max(1, g.node_count()), options.cost, result.ledger);

    int products = 0;
    DistanceMatrix closure = min_plus_closure(adjacency_matrix(g), &products, options.engine);
    transport.charge_dense_products("minplus-squaring", products);

    result.estimate = std::move(closure);
    result.claimed_stretch = 1.0;
    return result;
}

DistanceMatrix bootstrap_logn_approx(const Graph& g, Rng& rng, CliqueTransport& transport,
                                     std::string_view phase, double* claimed,
                                     const EngineConfig& engine)
{
    const int b = logn_spanner_parameter(g.node_count());
    SubgraphApspResult approx = apsp_via_spanner(g, b, rng, transport, phase, engine);
    if (claimed != nullptr) *claimed = approx.claimed_stretch;
    return std::move(approx.estimate);
}

ApspResult logn_approx_apsp(const Graph& g, const ApspOptions& options)
{
    ApspResult result;
    result.algorithm = "logn-spanner";
    CliqueTransport transport(std::max(1, g.node_count()), options.cost, result.ledger);
    Rng rng(options.seed);
    result.estimate = bootstrap_logn_approx(g, rng, transport, "logn-approx",
                                            &result.claimed_stretch, options.engine);
    return result;
}

} // namespace ccq
