// APSP approximation in small weighted-diameter graphs (Theorem 7.1).
//
// Bootstrap an O(log n)-approximation (Cor. 7.2), then repeatedly apply
// the Lemma 3.1 reduction, roughly squaring-rooting the approximation
// factor per O(1)-round application until it stops improving (after
// O(log log log n) applications the factor is constant).  The final
// application solves the skeleton exactly when the broadcast budget
// permits: 21-approximation under standard bandwidth, 7-approximation
// under Congested-Clique[log^3 n] (`wide_bandwidth`).
#ifndef CCQ_CORE_SMALL_DIAMETER_HPP
#define CCQ_CORE_SMALL_DIAMETER_HPP

#include <string_view>
#include <vector>

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/reduction.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Theorem 7.1 entry point.
[[nodiscard]] ApspResult apsp_small_diameter(const Graph& g, const ApspOptions& options = {});

/// Internal form running on an existing transport.  `diameter_bound`
/// upper-bounds the weighted diameter (pass the scaling cap for the G_i
/// levels of Theorem 8.1); `claimed` receives the guaranteed factor;
/// `traces`, when non-null, collects one entry per reduction applied.
[[nodiscard]] DistanceMatrix small_diameter_impl(const Graph& g, Weight diameter_bound,
                                                 const ApspOptions& options, Rng& rng,
                                                 CliqueTransport& transport,
                                                 std::string_view phase, double* claimed,
                                                 std::vector<ReductionTrace>* traces = nullptr);

} // namespace ccq

#endif // CCQ_CORE_SMALL_DIAMETER_HPP
