// Stretch evaluation: how a distance estimate compares to ground truth.
#ifndef CCQ_CORE_STRETCH_HPP
#define CCQ_CORE_STRETCH_HPP

#include <cstddef>

#include "ccq/matrix/dense.hpp"

namespace ccq {

struct StretchReport {
    double max_stretch = 1.0; ///< max over pairs of estimate / exact
    double avg_stretch = 1.0; ///< mean over finite pairs
    std::size_t finite_pairs = 0;
    /// Estimates below the true distance (must be 0 for a sound algorithm).
    std::size_t lower_bound_violations = 0;
    /// Pairs where exactly one side is infinite (must be 0).
    std::size_t reachability_mismatches = 0;

    [[nodiscard]] bool sound() const noexcept
    {
        return lower_bound_violations == 0 && reachability_mismatches == 0;
    }
};

/// Compares `estimate` to `exact` over all ordered pairs (u != v).
[[nodiscard]] StretchReport evaluate_stretch(const DistanceMatrix& exact,
                                             const DistanceMatrix& estimate);

} // namespace ccq

#endif // CCQ_CORE_STRETCH_HPP
