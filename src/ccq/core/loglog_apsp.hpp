// The O(log log n)-round O(1)-approximation (paper Section 3.2).
//
// The stepping-stone result between the poly(log n) prior work and the
// O(log log log n) headline: bootstrap an O(log n)-approximation, build a
// sqrt(n)-nearest O(log^2 n)-hopset, compute the sqrt(n)-nearest nodes
// with h = 2 and i ∈ O(log log n) squarings, build a skeleton graph on
// O(sqrt(n) log n) nodes, solve it with a 3-spanner broadcast, and extend:
// a 21-approximation in O(log log n) rounds (7-approximation under
// Congested-Clique[log^3 n], where the whole skeleton is broadcast).
//
// Kept as a separate entry point because its round profile differs from
// Theorem 7.1's reduction chain: one shot with k = sqrt(n) and
// O(log log n) filtered-power iterations, instead of O(log log log n)
// successive factor reductions.
#ifndef CCQ_CORE_LOGLOG_APSP_HPP
#define CCQ_CORE_LOGLOG_APSP_HPP

#include "ccq/core/apsp_result.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Section 3.2 entry point.
[[nodiscard]] ApspResult apsp_loglog(const Graph& g, const ApspOptions& options = {});

} // namespace ccq

#endif // CCQ_CORE_LOGLOG_APSP_HPP
