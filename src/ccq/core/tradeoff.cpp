#include "ccq/core/tradeoff.hpp"

#include <cmath>

#include "ccq/common/math.hpp"
#include "ccq/core/general_apsp.hpp"

namespace ccq {

ApspResult apsp_tradeoff(const Graph& g, int t, const ApspOptions& options)
{
    CCQ_EXPECT(t >= 0, "apsp_tradeoff: t must be >= 0");
    ApspOptions limited = options;
    limited.max_reduction_iterations = t;
    ApspResult result = apsp_general(g, limited);
    result.algorithm = "tradeoff(t=" + std::to_string(t) + ")";
    return result;
}

double tradeoff_stretch_shape(int n, int t)
{
    CCQ_EXPECT(n >= 2 && t >= 0, "tradeoff_stretch_shape: need n >= 2, t >= 0");
    const double log_n = static_cast<double>(ceil_log2(n));
    return std::pow(log_n, std::pow(2.0, -t));
}

} // namespace ccq
