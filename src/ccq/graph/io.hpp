// Graph serialization: a DIMACS-like edge-list format.
//
//   c <comment>
//   p <undirected|directed> <node-count> <edge-count>
//   e <u> <v> <weight>
//
// Used by the examples and by downstream users to run the library on
// their own instances.
#ifndef CCQ_GRAPH_IO_HPP
#define CCQ_GRAPH_IO_HPP

#include <iosfwd>
#include <string>

#include "ccq/graph/graph.hpp"

namespace ccq {

/// Thrown on malformed input.
class graph_io_error : public std::runtime_error {
public:
    explicit graph_io_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

void write_graph(std::ostream& out, const Graph& g, std::string_view comment = {});
[[nodiscard]] Graph read_graph(std::istream& in);

void save_graph(const std::string& path, const Graph& g, std::string_view comment = {});
[[nodiscard]] Graph load_graph(const std::string& path);

} // namespace ccq

#endif // CCQ_GRAPH_IO_HPP
