// Synthetic workload generators.
//
// The paper has no published input traces (it is a theory result), so the
// evaluation harness generates graph families spanning the regimes the
// analysis distinguishes: sparse vs dense, small vs large weighted
// diameter, uniform vs highly skewed weights, and clustered topologies
// that stress the skeleton-graph machinery.  Every generator is
// deterministic given the Rng seed.
#ifndef CCQ_GRAPH_GENERATORS_HPP
#define CCQ_GRAPH_GENERATORS_HPP

#include "ccq/common/rng.hpp"
#include "ccq/graph/graph.hpp"

namespace ccq {

/// Edge-weight sampling policy.
struct WeightRange {
    Weight lo = 1;
    Weight hi = 100;

    [[nodiscard]] Weight sample(Rng& rng) const
    {
        CCQ_EXPECT(0 <= lo && lo <= hi, "WeightRange: need 0 <= lo <= hi");
        return static_cast<Weight>(rng.uniform_int(lo, hi));
    }
};

/// Path 0-1-...-(n-1).  Maximal hop diameter.
[[nodiscard]] Graph path_graph(int n, WeightRange weights, Rng& rng);

/// Cycle over n >= 3 nodes.
[[nodiscard]] Graph cycle_graph(int n, WeightRange weights, Rng& rng);

/// Star centered at node 0.  Diameter 2 hops.
[[nodiscard]] Graph star_graph(int n, WeightRange weights, Rng& rng);

/// Complete graph K_n.
[[nodiscard]] Graph complete_graph(int n, WeightRange weights, Rng& rng);

/// rows x cols grid.
[[nodiscard]] Graph grid_graph(int rows, int cols, WeightRange weights, Rng& rng);

/// Uniform random spanning tree over n nodes (random attachment order).
[[nodiscard]] Graph random_tree(int n, WeightRange weights, Rng& rng);

/// Erdős–Rényi G(n, p).  If `ensure_connected`, a random spanning tree is
/// superimposed first so the instance has finite distances everywhere.
[[nodiscard]] Graph erdos_renyi(int n, double p, WeightRange weights, Rng& rng,
                                bool ensure_connected = true);

/// Random geometric graph on the unit square: nodes connect within
/// `radius`; edge weight scales the Euclidean distance into `weights`.
/// Produces locality the skeleton machinery can exploit.
[[nodiscard]] Graph random_geometric(int n, double radius, WeightRange weights, Rng& rng,
                                     bool ensure_connected = true);

/// Barabási–Albert preferential attachment, `attach` edges per new node.
/// Skewed degree distribution.
[[nodiscard]] Graph barabasi_albert(int n, int attach, WeightRange weights, Rng& rng);

/// `clusters` dense blobs (intra-edge prob. p_in, weights `weights`) joined
/// by sparse heavy bridges (prob. p_out, weights scaled by bridge_factor).
/// Stresses hitting sets and hierarchical distance scales.
[[nodiscard]] Graph clustered_graph(int n, int clusters, double p_in, double p_out,
                                    WeightRange weights, Weight bridge_factor, Rng& rng);

/// Adds minimum plumbing (one sampled edge per extra component) so the
/// graph becomes connected.  No-op when already connected.
void make_connected(Graph& g, WeightRange weights, Rng& rng);

/// Named family selector so tests and benches can sweep families
/// uniformly.
enum class GraphFamily {
    path,
    cycle,
    star,
    grid,
    tree,
    erdos_renyi_sparse,
    erdos_renyi_dense,
    geometric,
    barabasi_albert,
    clustered,
};

[[nodiscard]] const char* family_name(GraphFamily family);

/// Builds a representative instance of `family` with ~n nodes.
[[nodiscard]] Graph make_family_instance(GraphFamily family, int n, WeightRange weights,
                                         Rng& rng);

} // namespace ccq

#endif // CCQ_GRAPH_GENERATORS_HPP
