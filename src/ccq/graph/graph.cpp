#include "ccq/graph/graph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace ccq {

Graph::Graph(int node_count, Orientation orientation) : orientation_(orientation)
{
    CCQ_EXPECT(node_count >= 0, "Graph: negative node count");
    adjacency_.resize(static_cast<std::size_t>(node_count));
}

void Graph::add_edge(NodeId u, NodeId v, Weight weight)
{
    CCQ_EXPECT(is_valid_node(u) && is_valid_node(v), "add_edge: endpoint out of range");
    CCQ_EXPECT(weight >= 0 && is_finite(weight), "add_edge: weight must be finite and >= 0");
    adjacency_[static_cast<std::size_t>(u)].push_back(Edge{v, weight});
    ++arc_count_;
    if (!is_directed()) {
        adjacency_[static_cast<std::size_t>(v)].push_back(Edge{u, weight});
        ++arc_count_;
    }
}

Weight Graph::max_weight() const noexcept
{
    Weight result = 0;
    for (const auto& list : adjacency_)
        for (const Edge& e : list) result = std::max(result, e.weight);
    return result;
}

std::vector<Edge> Graph::lightest_out_edges(NodeId u, int k) const
{
    CCQ_EXPECT(is_valid_node(u), "lightest_out_edges: node out of range");
    CCQ_EXPECT(k >= 0, "lightest_out_edges: k must be >= 0");
    std::vector<Edge> edges(neighbors(u).begin(), neighbors(u).end());
    const auto by_weight_then_id = [](const Edge& a, const Edge& b) {
        return weight_id_less(a.weight, a.to, b.weight, b.to);
    };
    if (std::cmp_less(k, edges.size())) {
        std::nth_element(edges.begin(), edges.begin() + k, edges.end(), by_weight_then_id);
        edges.resize(static_cast<std::size_t>(k));
    }
    std::sort(edges.begin(), edges.end(), by_weight_then_id);
    return edges;
}

std::vector<WeightedEdge> Graph::edge_list() const
{
    std::vector<WeightedEdge> result;
    result.reserve(edge_count());
    for (NodeId u = 0; u < node_count(); ++u) {
        for (const Edge& e : neighbors(u)) {
            if (is_directed() || u <= e.to) result.push_back(WeightedEdge{u, e.to, e.weight});
        }
    }
    return result;
}

Graph Graph::simplified() const
{
    Graph result(node_count(), orientation_);
    std::map<std::pair<NodeId, NodeId>, Weight> best;
    for (NodeId u = 0; u < node_count(); ++u) {
        for (const Edge& e : neighbors(u)) {
            if (u == e.to) continue; // drop self-loops
            NodeId a = u, b = e.to;
            if (!is_directed() && a > b) std::swap(a, b);
            if (is_directed() || u <= e.to) {
                auto [it, inserted] = best.try_emplace({a, b}, e.weight);
                if (!inserted) it->second = std::min(it->second, e.weight);
            }
        }
    }
    for (const auto& [key, weight] : best) result.add_edge(key.first, key.second, weight);
    return result;
}

Graph Graph::with_weights_clamped(Weight cap) const
{
    CCQ_EXPECT(cap >= 0, "with_weights_clamped: cap must be >= 0");
    Graph result(node_count(), orientation_);
    for (NodeId u = 0; u < node_count(); ++u) {
        for (const Edge& e : neighbors(u)) {
            if (is_directed() || u <= e.to)
                result.add_edge(u, e.to, std::min(e.weight, cap));
        }
    }
    return result;
}

Graph graph_from_edges(int node_count, Orientation orientation,
                       std::span<const WeightedEdge> edges)
{
    Graph g(node_count, orientation);
    for (const WeightedEdge& e : edges) g.add_edge(e.u, e.v, e.weight);
    return g;
}

} // namespace ccq
