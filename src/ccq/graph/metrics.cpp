#include "ccq/graph/metrics.hpp"

#include <algorithm>

#include "ccq/graph/exact.hpp"

namespace ccq {

std::vector<int> connected_components(const Graph& g)
{
    const int n = g.node_count();
    // Union-find over the underlying undirected graph.
    std::vector<NodeId> parent(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
    const auto find = [&](NodeId v) {
        while (parent[static_cast<std::size_t>(v)] != v) {
            parent[static_cast<std::size_t>(v)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
            v = parent[static_cast<std::size_t>(v)];
        }
        return v;
    };
    for (NodeId u = 0; u < n; ++u) {
        for (const Edge& e : g.neighbors(u)) {
            const NodeId ru = find(u), rv = find(e.to);
            if (ru != rv) parent[static_cast<std::size_t>(std::max(ru, rv))] = std::min(ru, rv);
        }
    }
    std::vector<int> label(static_cast<std::size_t>(n), -1);
    int next = 0;
    for (NodeId v = 0; v < n; ++v) {
        const NodeId root = find(v);
        if (label[static_cast<std::size_t>(root)] < 0) label[static_cast<std::size_t>(root)] = next++;
        label[static_cast<std::size_t>(v)] = label[static_cast<std::size_t>(root)];
    }
    return label;
}

bool is_connected(const Graph& g)
{
    if (g.node_count() <= 1) return true;
    const std::vector<int> label = connected_components(g);
    return std::all_of(label.begin(), label.end(), [](int c) { return c == 0; });
}

Weight weighted_diameter(const DistanceMatrix& exact_distances)
{
    Weight best = 0;
    for (NodeId u = 0; u < exact_distances.size(); ++u) {
        for (NodeId v = 0; v < exact_distances.size(); ++v) {
            const Weight d = exact_distances.at(u, v);
            if (is_finite(d)) best = std::max(best, d);
        }
    }
    return best;
}

Weight weighted_diameter(const Graph& g)
{
    Weight best = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
        for (const Weight d : dijkstra_from(g, s))
            if (is_finite(d)) best = std::max(best, d);
    }
    return best;
}

int shortest_path_hop_diameter(const Graph& g)
{
    int best = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
        for (const int h : min_hops_on_shortest_paths(g, s)) best = std::max(best, h);
    }
    return best;
}

DegreeStats degree_stats(const Graph& g)
{
    DegreeStats stats;
    const int n = g.node_count();
    if (n == 0) return stats;
    stats.min_degree = static_cast<int>(g.neighbors(0).size());
    for (NodeId v = 0; v < n; ++v) {
        const int deg = static_cast<int>(g.neighbors(v).size());
        stats.min_degree = std::min(stats.min_degree, deg);
        stats.max_degree = std::max(stats.max_degree, deg);
        stats.avg_degree += deg;
    }
    stats.avg_degree /= n;
    return stats;
}

} // namespace ccq
