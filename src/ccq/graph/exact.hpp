// Exact shortest-path references.
//
// These are the sequential ground-truth oracles the reproduction measures
// against: Dijkstra-based APSP, Floyd–Warshall (cross-check), hop-limited
// distances (the h-hop distance A^h of Section 2.1), and the minimum hop
// count over shortest paths (used to measure hopset hop bounds, Section 4).
#ifndef CCQ_GRAPH_EXACT_HPP
#define CCQ_GRAPH_EXACT_HPP

#include <vector>

#include "ccq/common/parallel.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Single-source shortest path lengths (works for both orientations).
[[nodiscard]] std::vector<Weight> dijkstra_from(const Graph& g, NodeId source);

/// All-pairs shortest paths via n Dijkstra runs; sources are independent
/// and run in parallel per `engine`.
[[nodiscard]] DistanceMatrix exact_apsp(const Graph& g, const EngineConfig& engine = {});

/// All-pairs shortest paths via Floyd–Warshall (O(n^3), for cross-checks).
[[nodiscard]] DistanceMatrix exact_apsp_floyd_warshall(const Graph& g);

/// Single-source h-hop distances: minimum length over paths with at most
/// `max_hops` edges (Bellman–Ford truncated at `max_hops` rounds).
[[nodiscard]] std::vector<Weight> hop_limited_from(const Graph& g, NodeId source, int max_hops);

/// All-pairs h-hop distances (the matrix A^h of Section 2.1); sources run
/// in parallel per `engine`.
[[nodiscard]] DistanceMatrix hop_limited_apsp(const Graph& g, int max_hops,
                                              const EngineConfig& engine = {});

/// For each node v: the minimum number of edges over all *shortest*
/// source→v paths (kInfinity distance ⇒ hop count reported as -1).
/// Used to verify that a hopset H guarantees β-hop shortest paths.
[[nodiscard]] std::vector<int> min_hops_on_shortest_paths(const Graph& g, NodeId source);

} // namespace ccq

#endif // CCQ_GRAPH_EXACT_HPP
