#include "ccq/graph/io.hpp"

#include <fstream>
#include <sstream>

namespace ccq {

void write_graph(std::ostream& out, const Graph& g, std::string_view comment)
{
    if (!comment.empty()) out << "c " << comment << '\n';
    out << "p " << (g.is_directed() ? "directed" : "undirected") << ' ' << g.node_count() << ' '
        << g.edge_count() << '\n';
    for (const WeightedEdge& e : g.edge_list())
        out << "e " << e.u << ' ' << e.v << ' ' << e.weight << '\n';
}

Graph read_graph(std::istream& in)
{
    std::string line;
    bool have_header = false;
    Graph g = Graph::undirected(0);
    std::size_t declared_edges = 0;
    std::size_t seen_edges = 0;
    int line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        std::istringstream fields(line);
        std::string tag;
        if (!(fields >> tag) || tag == "c") continue; // blank or comment
        if (tag == "p") {
            if (have_header)
                throw graph_io_error("read_graph: duplicate header at line " +
                                     std::to_string(line_number));
            std::string orientation;
            int n = 0;
            if (!(fields >> orientation >> n >> declared_edges) || n < 0)
                throw graph_io_error("read_graph: malformed header at line " +
                                     std::to_string(line_number));
            if (orientation == "undirected")
                g = Graph::undirected(n);
            else if (orientation == "directed")
                g = Graph::directed(n);
            else
                throw graph_io_error("read_graph: unknown orientation '" + orientation + "'");
            have_header = true;
        } else if (tag == "e") {
            if (!have_header)
                throw graph_io_error("read_graph: edge before header at line " +
                                     std::to_string(line_number));
            long long u = 0, v = 0, w = 0;
            if (!(fields >> u >> v >> w))
                throw graph_io_error("read_graph: malformed edge at line " +
                                     std::to_string(line_number));
            try {
                g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                           static_cast<Weight>(w));
            } catch (const check_error& error) {
                throw graph_io_error("read_graph: invalid edge at line " +
                                     std::to_string(line_number) + ": " + error.what());
            }
            ++seen_edges;
        } else {
            throw graph_io_error("read_graph: unknown record '" + tag + "' at line " +
                                 std::to_string(line_number));
        }
    }
    if (!have_header) throw graph_io_error("read_graph: missing header");
    if (seen_edges != declared_edges)
        throw graph_io_error("read_graph: header declares " + std::to_string(declared_edges) +
                             " edges, found " + std::to_string(seen_edges));
    return g;
}

void save_graph(const std::string& path, const Graph& g, std::string_view comment)
{
    std::ofstream out(path);
    if (!out) throw graph_io_error("save_graph: cannot open " + path);
    write_graph(out, g, comment);
}

Graph load_graph(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw graph_io_error("load_graph: cannot open " + path);
    return read_graph(in);
}

} // namespace ccq
