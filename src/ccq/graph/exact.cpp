#include "ccq/graph/exact.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>

namespace ccq {

std::vector<Weight> dijkstra_from(const Graph& g, NodeId source)
{
    CCQ_EXPECT(g.is_valid_node(source), "dijkstra_from: source out of range");
    const int n = g.node_count();
    std::vector<Weight> dist(static_cast<std::size_t>(n), kInfinity);
    dist[static_cast<std::size_t>(source)] = 0;

    using Item = std::pair<Weight, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0, source);
    while (!queue.empty()) {
        const auto [d, u] = queue.top();
        queue.pop();
        if (d != dist[static_cast<std::size_t>(u)]) continue; // stale entry
        for (const Edge& e : g.neighbors(u)) {
            const Weight cand = saturating_add(d, e.weight);
            Weight& cur = dist[static_cast<std::size_t>(e.to)];
            if (cand < cur) {
                cur = cand;
                queue.emplace(cand, e.to);
            }
        }
    }
    return dist;
}

DistanceMatrix exact_apsp(const Graph& g, const EngineConfig& engine)
{
    const int n = g.node_count();
    DistanceMatrix result(n);
    parallel_chunks(engine.resolved_threads(), 0, n, 1, [&](int s0, int s1) {
        for (NodeId s = s0; s < s1; ++s) {
            const std::vector<Weight> dist = dijkstra_from(g, s);
            for (NodeId v = 0; v < n; ++v) result.at(s, v) = dist[static_cast<std::size_t>(v)];
        }
    });
    return result;
}

DistanceMatrix exact_apsp_floyd_warshall(const Graph& g)
{
    DistanceMatrix d = adjacency_matrix(g);
    const int n = d.size();
    for (NodeId k = 0; k < n; ++k) {
        for (NodeId i = 0; i < n; ++i) {
            const Weight dik = d.at(i, k);
            if (!is_finite(dik)) continue;
            for (NodeId j = 0; j < n; ++j)
                d.relax(i, j, saturating_add(dik, d.at(k, j)));
        }
    }
    return d;
}

std::vector<Weight> hop_limited_from(const Graph& g, NodeId source, int max_hops)
{
    CCQ_EXPECT(g.is_valid_node(source), "hop_limited_from: source out of range");
    CCQ_EXPECT(max_hops >= 0, "hop_limited_from: negative hop budget");
    const int n = g.node_count();
    std::vector<Weight> dist(static_cast<std::size_t>(n), kInfinity);
    dist[static_cast<std::size_t>(source)] = 0;
    std::vector<NodeId> frontier{source};

    // Synchronous rounds: round r relaxes from the *previous* round's
    // values only, so dist after r rounds is exactly the min over paths
    // with at most r hops (in-place relaxation would let a value improved
    // earlier in the same round propagate again, counting r+1 hops as r).
    for (int round = 0; round < max_hops && !frontier.empty(); ++round) {
        std::vector<Weight> next_dist = dist;
        std::vector<NodeId> next;
        std::vector<char> queued(static_cast<std::size_t>(n), 0);
        for (const NodeId u : frontier) {
            const Weight du = dist[static_cast<std::size_t>(u)];
            for (const Edge& e : g.neighbors(u)) {
                const Weight cand = saturating_add(du, e.weight);
                Weight& cur = next_dist[static_cast<std::size_t>(e.to)];
                if (cand < cur) {
                    cur = cand;
                    if (!queued[static_cast<std::size_t>(e.to)]) {
                        queued[static_cast<std::size_t>(e.to)] = 1;
                        next.push_back(e.to);
                    }
                }
            }
        }
        dist = std::move(next_dist);
        frontier = std::move(next);
    }
    return dist;
}

DistanceMatrix hop_limited_apsp(const Graph& g, int max_hops, const EngineConfig& engine)
{
    const int n = g.node_count();
    DistanceMatrix result(n);
    parallel_chunks(engine.resolved_threads(), 0, n, 1, [&](int s0, int s1) {
        for (NodeId s = s0; s < s1; ++s) {
            const std::vector<Weight> dist = hop_limited_from(g, s, max_hops);
            for (NodeId v = 0; v < n; ++v) result.at(s, v) = dist[static_cast<std::size_t>(v)];
        }
    });
    return result;
}

std::vector<int> min_hops_on_shortest_paths(const Graph& g, NodeId source)
{
    CCQ_EXPECT(g.is_valid_node(source), "min_hops_on_shortest_paths: source out of range");
    const int n = g.node_count();

    // Lexicographic Dijkstra on (length, hops): the primary key recovers
    // shortest-path lengths, the secondary key minimizes hop count among
    // shortest paths.  Correct even with zero-weight edges.
    std::vector<Weight> dist(static_cast<std::size_t>(n), kInfinity);
    std::vector<int> hops(static_cast<std::size_t>(n), std::numeric_limits<int>::max());
    dist[static_cast<std::size_t>(source)] = 0;
    hops[static_cast<std::size_t>(source)] = 0;

    using Item = std::tuple<Weight, int, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0, 0, source);
    while (!queue.empty()) {
        const auto [d, h, u] = queue.top();
        queue.pop();
        if (d != dist[static_cast<std::size_t>(u)] || h != hops[static_cast<std::size_t>(u)])
            continue; // stale entry
        for (const Edge& e : g.neighbors(u)) {
            const Weight cand = saturating_add(d, e.weight);
            const int cand_hops = h + 1;
            Weight& cur = dist[static_cast<std::size_t>(e.to)];
            int& cur_hops = hops[static_cast<std::size_t>(e.to)];
            if (cand < cur || (cand == cur && cand_hops < cur_hops)) {
                cur = cand;
                cur_hops = cand_hops;
                queue.emplace(cand, cand_hops, e.to);
            }
        }
    }
    for (NodeId v = 0; v < n; ++v) {
        if (!is_finite(dist[static_cast<std::size_t>(v)])) hops[static_cast<std::size_t>(v)] = -1;
    }
    return hops;
}

} // namespace ccq
