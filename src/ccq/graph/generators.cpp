#include "ccq/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "ccq/common/math.hpp"
#include "ccq/graph/metrics.hpp"

namespace ccq {

Graph path_graph(int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 1, "path_graph: need n >= 1");
    Graph g = Graph::undirected(n);
    for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, weights.sample(rng));
    return g;
}

Graph cycle_graph(int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 3, "cycle_graph: need n >= 3");
    Graph g = path_graph(n, weights, rng);
    g.add_edge(n - 1, 0, weights.sample(rng));
    return g;
}

Graph star_graph(int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 1, "star_graph: need n >= 1");
    Graph g = Graph::undirected(n);
    for (NodeId v = 1; v < n; ++v) g.add_edge(0, v, weights.sample(rng));
    return g;
}

Graph complete_graph(int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 1, "complete_graph: need n >= 1");
    Graph g = Graph::undirected(n);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v, weights.sample(rng));
    return g;
}

Graph grid_graph(int rows, int cols, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(rows >= 1 && cols >= 1, "grid_graph: need positive dimensions");
    Graph g = Graph::undirected(rows * cols);
    const auto id = [cols](int r, int c) { return static_cast<NodeId>(r * cols + c); };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), weights.sample(rng));
            if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), weights.sample(rng));
        }
    }
    return g;
}

Graph random_tree(int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 1, "random_tree: need n >= 1");
    Graph g = Graph::undirected(n);
    for (NodeId v = 1; v < n; ++v) {
        const NodeId parent = static_cast<NodeId>(rng.uniform_int(0, v - 1));
        g.add_edge(parent, v, weights.sample(rng));
    }
    return g;
}

Graph erdos_renyi(int n, double p, WeightRange weights, Rng& rng, bool ensure_connected)
{
    CCQ_EXPECT(n >= 1, "erdos_renyi: need n >= 1");
    CCQ_EXPECT(p >= 0.0 && p <= 1.0, "erdos_renyi: p out of [0,1]");
    Graph g = Graph::undirected(n);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v)
            if (rng.bernoulli(p)) g.add_edge(u, v, weights.sample(rng));
    if (ensure_connected) make_connected(g, weights, rng);
    return g;
}

Graph random_geometric(int n, double radius, WeightRange weights, Rng& rng,
                       bool ensure_connected)
{
    CCQ_EXPECT(n >= 1, "random_geometric: need n >= 1");
    CCQ_EXPECT(radius > 0.0, "random_geometric: radius must be positive");
    std::vector<std::pair<double, double>> points(static_cast<std::size_t>(n));
    for (auto& [x, y] : points) {
        x = rng.uniform_real();
        y = rng.uniform_real();
    }
    Graph g = Graph::undirected(n);
    const Weight span = weights.hi - weights.lo;
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            const double dx = points[static_cast<std::size_t>(u)].first -
                              points[static_cast<std::size_t>(v)].first;
            const double dy = points[static_cast<std::size_t>(u)].second -
                              points[static_cast<std::size_t>(v)].second;
            const double dist = std::sqrt(dx * dx + dy * dy);
            if (dist <= radius) {
                // Weight proportional to geometric length, mapped into range.
                const Weight w =
                    weights.lo + static_cast<Weight>(static_cast<double>(span) * dist / radius);
                g.add_edge(u, v, std::clamp(w, weights.lo, weights.hi));
            }
        }
    }
    if (ensure_connected) make_connected(g, weights, rng);
    return g;
}

Graph barabasi_albert(int n, int attach, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 2, "barabasi_albert: need n >= 2");
    CCQ_EXPECT(attach >= 1, "barabasi_albert: need attach >= 1");
    Graph g = Graph::undirected(n);
    // Preferential attachment via the repeated-endpoints trick.
    std::vector<NodeId> endpoints;
    g.add_edge(0, 1, weights.sample(rng));
    endpoints.push_back(0);
    endpoints.push_back(1);
    for (NodeId v = 2; v < n; ++v) {
        const int degree_links = std::min<int>(attach, v);
        std::vector<NodeId> chosen;
        while (static_cast<int>(chosen.size()) < degree_links) {
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(endpoints.size()) - 1));
            const NodeId target = endpoints[pick];
            if (std::find(chosen.begin(), chosen.end(), target) == chosen.end())
                chosen.push_back(target);
        }
        for (const NodeId target : chosen) {
            g.add_edge(v, target, weights.sample(rng));
            endpoints.push_back(v);
            endpoints.push_back(target);
        }
    }
    return g;
}

Graph clustered_graph(int n, int clusters, double p_in, double p_out, WeightRange weights,
                      Weight bridge_factor, Rng& rng)
{
    CCQ_EXPECT(n >= 1 && clusters >= 1, "clustered_graph: bad sizes");
    CCQ_EXPECT(bridge_factor >= 1, "clustered_graph: bridge_factor must be >= 1");
    Graph g = Graph::undirected(n);
    const auto cluster_of = [&](NodeId v) { return static_cast<int>(v) % clusters; };
    const WeightRange bridge_weights{weights.lo * bridge_factor, weights.hi * bridge_factor};
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            const bool same = cluster_of(u) == cluster_of(v);
            if (rng.bernoulli(same ? p_in : p_out)) {
                g.add_edge(u, v, same ? weights.sample(rng) : bridge_weights.sample(rng));
            }
        }
    }
    make_connected(g, bridge_weights, rng);
    return g;
}

void make_connected(Graph& g, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(!g.is_directed(), "make_connected: undirected graphs only");
    const int n = g.node_count();
    if (n <= 1) return;
    const std::vector<int> label = connected_components(g);
    // Pick one representative per component; chain them with fresh edges.
    std::map<int, NodeId> representative;
    for (NodeId v = 0; v < n; ++v) representative.try_emplace(label[static_cast<std::size_t>(v)], v);
    NodeId previous = -1;
    for (const auto& [component, node] : representative) {
        (void)component;
        if (previous >= 0) {
            // Attach at a random node of the previous component for variety.
            g.add_edge(previous, node, weights.sample(rng));
        }
        previous = node;
    }
    const NodeId rnd = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    (void)rnd; // draw kept for stream stability across versions
}

const char* family_name(GraphFamily family)
{
    switch (family) {
    case GraphFamily::path: return "path";
    case GraphFamily::cycle: return "cycle";
    case GraphFamily::star: return "star";
    case GraphFamily::grid: return "grid";
    case GraphFamily::tree: return "tree";
    case GraphFamily::erdos_renyi_sparse: return "er_sparse";
    case GraphFamily::erdos_renyi_dense: return "er_dense";
    case GraphFamily::geometric: return "geometric";
    case GraphFamily::barabasi_albert: return "barabasi_albert";
    case GraphFamily::clustered: return "clustered";
    }
    return "unknown";
}

Graph make_family_instance(GraphFamily family, int n, WeightRange weights, Rng& rng)
{
    CCQ_EXPECT(n >= 4, "make_family_instance: need n >= 4");
    switch (family) {
    case GraphFamily::path: return path_graph(n, weights, rng);
    case GraphFamily::cycle: return cycle_graph(n, weights, rng);
    case GraphFamily::star: return star_graph(n, weights, rng);
    case GraphFamily::grid: {
        const int rows = std::max(2, static_cast<int>(floor_sqrt(n)));
        const int cols = std::max(2, (n + rows - 1) / rows);
        return grid_graph(rows, cols, weights, rng);
    }
    case GraphFamily::tree: return random_tree(n, weights, rng);
    case GraphFamily::erdos_renyi_sparse:
        return erdos_renyi(n, 3.0 / std::max(1, n), weights, rng);
    case GraphFamily::erdos_renyi_dense:
        return erdos_renyi(n, 0.3, weights, rng);
    case GraphFamily::geometric:
        return random_geometric(n, 2.0 / std::sqrt(static_cast<double>(std::max(1, n))), weights,
                                rng);
    case GraphFamily::barabasi_albert: return barabasi_albert(n, 3, weights, rng);
    case GraphFamily::clustered:
        return clustered_graph(n, std::max(2, n / 32), 0.4, 0.002, weights, /*bridge_factor=*/8,
                               rng);
    }
    throw check_error("make_family_instance: unknown family");
}

} // namespace ccq
