// Weighted graph representation.
//
// The input graph of the APSP problem (paper, Section 2.1): simple,
// weighted, with polynomially bounded nonnegative integer weights.  Most
// of the paper concerns undirected graphs, but the hopset (Section 4) and
// k-nearest (Section 5) machinery is stated for directed graphs, so the
// representation supports both orientations.
#ifndef CCQ_GRAPH_GRAPH_HPP
#define CCQ_GRAPH_GRAPH_HPP

#include <span>
#include <vector>

#include "ccq/common/check.hpp"
#include "ccq/common/types.hpp"

namespace ccq {

/// Outgoing half-edge.
struct Edge {
    NodeId to = 0;
    Weight weight = 0;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/// Full edge, used for edge-list interchange.
struct WeightedEdge {
    NodeId u = 0;
    NodeId v = 0;
    Weight weight = 0;

    friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

enum class Orientation { undirected, directed };

/// Adjacency-list graph over nodes [0, n).
///
/// Invariants: all endpoints are valid node ids and all weights are
/// nonnegative and finite.  For undirected graphs every edge is stored as
/// two arcs; `edge_count()` reports logical edges while `arc_count()`
/// reports stored arcs.  Parallel edges are permitted (algorithms that
/// need simple graphs deduplicate explicitly via `simplified()`).
class Graph {
public:
    /// Empty undirected graph (useful as a default member).
    Graph() : Graph(0, Orientation::undirected) {}

    Graph(int node_count, Orientation orientation);

    [[nodiscard]] static Graph undirected(int node_count)
    {
        return Graph(node_count, Orientation::undirected);
    }
    [[nodiscard]] static Graph directed(int node_count)
    {
        return Graph(node_count, Orientation::directed);
    }

    /// Adds edge {u, v} (undirected) or arc (u, v) (directed).
    void add_edge(NodeId u, NodeId v, Weight weight);

    [[nodiscard]] int node_count() const noexcept { return static_cast<int>(adjacency_.size()); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return arc_count_; }
    [[nodiscard]] std::size_t edge_count() const noexcept
    {
        return is_directed() ? arc_count_ : arc_count_ / 2;
    }
    [[nodiscard]] bool is_directed() const noexcept
    {
        return orientation_ == Orientation::directed;
    }
    [[nodiscard]] Orientation orientation() const noexcept { return orientation_; }

    [[nodiscard]] std::span<const Edge> neighbors(NodeId u) const
    {
        CCQ_EXPECT(is_valid_node(u), "neighbors: node out of range");
        return adjacency_[static_cast<std::size_t>(u)];
    }

    [[nodiscard]] bool is_valid_node(NodeId u) const noexcept
    {
        return u >= 0 && u < node_count();
    }

    /// Largest edge weight (0 for an empty graph).
    [[nodiscard]] Weight max_weight() const noexcept;

    /// The `k` lightest outgoing edges of `u`, ties broken by target id.
    /// This is the edge-selection rule of Section 4 (hopset) and Section 5
    /// (k-nearest filtering), where the tie order is load-bearing.
    [[nodiscard]] std::vector<Edge> lightest_out_edges(NodeId u, int k) const;

    /// All edges as a list (each undirected edge appears once, u <= v).
    [[nodiscard]] std::vector<WeightedEdge> edge_list() const;

    /// Copy with parallel edges collapsed to their minimum weight and
    /// self-loops removed.
    [[nodiscard]] Graph simplified() const;

    /// Copy with every edge weight clamped to `cap` (used by the
    /// weight-scaling lemma's implicit complete "cap" edges).
    [[nodiscard]] Graph with_weights_clamped(Weight cap) const;

private:
    std::vector<std::vector<Edge>> adjacency_;
    Orientation orientation_;
    std::size_t arc_count_ = 0;
};

/// Builds a graph from an edge list.
[[nodiscard]] Graph graph_from_edges(int node_count, Orientation orientation,
                                     std::span<const WeightedEdge> edges);

/// Comparison used everywhere a "k smallest" selection appears in the
/// paper: order by (weight, node id).  Returns true if (wa, a) < (wb, b).
[[nodiscard]] constexpr bool weight_id_less(Weight wa, NodeId a, Weight wb, NodeId b) noexcept
{
    return wa != wb ? wa < wb : a < b;
}

} // namespace ccq

#endif // CCQ_GRAPH_GRAPH_HPP
