// Structural graph metrics used by tests, benches and parameter schedules.
#ifndef CCQ_GRAPH_METRICS_HPP
#define CCQ_GRAPH_METRICS_HPP

#include <vector>

#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Connected-component label per node (undirected sense: directed graphs
/// are treated as their underlying undirected graph).  Labels are dense,
/// starting at 0, assigned in order of smallest member id.
[[nodiscard]] std::vector<int> connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Maximum finite pairwise distance ("weighted diameter", Section 2.1).
/// Returns 0 for graphs with fewer than 2 nodes.
[[nodiscard]] Weight weighted_diameter(const Graph& g);
[[nodiscard]] Weight weighted_diameter(const DistanceMatrix& exact_distances);

/// Maximum hop count over shortest paths (the smallest h with A^h = A^n).
[[nodiscard]] int shortest_path_hop_diameter(const Graph& g);

struct DegreeStats {
    int min_degree = 0;
    int max_degree = 0;
    double avg_degree = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

} // namespace ccq

#endif // CCQ_GRAPH_METRICS_HPP
