#include "ccq/mst/boruvka.hpp"

#include <algorithm>
#include <numeric>

namespace ccq {
namespace {

class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n))
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    NodeId find(NodeId v)
    {
        while (parent_[static_cast<std::size_t>(v)] != v) {
            parent_[static_cast<std::size_t>(v)] =
                parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
            v = parent_[static_cast<std::size_t>(v)];
        }
        return v;
    }

    bool unite(NodeId a, NodeId b)
    {
        const NodeId ra = find(a), rb = find(b);
        if (ra == rb) return false;
        parent_[static_cast<std::size_t>(std::max(ra, rb))] = std::min(ra, rb);
        return true;
    }

private:
    std::vector<NodeId> parent_;
};

/// Canonical deterministic edge order: (weight, min endpoint, max endpoint).
bool edge_less(const WeightedEdge& a, const WeightedEdge& b)
{
    const NodeId a_lo = std::min(a.u, a.v), a_hi = std::max(a.u, a.v);
    const NodeId b_lo = std::min(b.u, b.v), b_hi = std::max(b.u, b.v);
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a_lo != b_lo) return a_lo < b_lo;
    return a_hi < b_hi;
}

} // namespace

MstResult boruvka_msf(const Graph& g)
{
    CCQ_EXPECT(!g.is_directed(), "boruvka_msf: undirected input required");
    const int n = g.node_count();
    const std::vector<WeightedEdge> edges = g.edge_list();

    MstResult result;
    UnionFind components(n);
    int remaining = n;
    while (true) {
        // Cheapest outgoing edge per component, deterministic ties.
        std::vector<const WeightedEdge*> cheapest(static_cast<std::size_t>(n), nullptr);
        bool any = false;
        for (const WeightedEdge& e : edges) {
            if (e.u == e.v) continue;
            const NodeId cu = components.find(e.u), cv = components.find(e.v);
            if (cu == cv) continue;
            any = true;
            for (const NodeId c : {cu, cv}) {
                const WeightedEdge*& slot = cheapest[static_cast<std::size_t>(c)];
                if (slot == nullptr || edge_less(e, *slot)) slot = &e;
            }
        }
        if (!any) break;
        ++result.boruvka_phases;
        for (NodeId c = 0; c < n; ++c) {
            const WeightedEdge* e = cheapest[static_cast<std::size_t>(c)];
            if (e == nullptr) continue;
            if (components.unite(e->u, e->v)) {
                result.edges.push_back(*e);
                result.total_weight = saturating_add(result.total_weight, e->weight);
                --remaining;
            }
        }
        if (remaining <= 1) break;
    }
    return result;
}

MstResult kruskal_msf(const Graph& g)
{
    CCQ_EXPECT(!g.is_directed(), "kruskal_msf: undirected input required");
    std::vector<WeightedEdge> edges = g.edge_list();
    std::sort(edges.begin(), edges.end(), edge_less);
    MstResult result;
    UnionFind components(g.node_count());
    for (const WeightedEdge& e : edges) {
        if (e.u == e.v) continue;
        if (components.unite(e.u, e.v)) {
            result.edges.push_back(e);
            result.total_weight = saturating_add(result.total_weight, e.weight);
        }
    }
    return result;
}

} // namespace ccq
