// Minimum spanning forest (substrate for the zero-weight reduction).
//
// Theorem 2.1 (Appendix A) identifies zero-weight clusters by computing an
// MST with Nowicki's O(1)-round Congested-Clique algorithm and filtering
// its zero-weight edges.  We substitute Borůvka phases (deterministic
// given the tie-breaking rule); the reduction only consumes the MST edge
// set, so any minimum spanning forest is interchangeable.
#ifndef CCQ_MST_BORUVKA_HPP
#define CCQ_MST_BORUVKA_HPP

#include <vector>

#include "ccq/graph/graph.hpp"

namespace ccq {

struct MstResult {
    std::vector<WeightedEdge> edges; ///< minimum spanning forest edges
    Weight total_weight = 0;
    int boruvka_phases = 0; ///< phases used (<= ceil(log2 n))
};

/// Minimum spanning forest via Borůvka.  Ties are broken by
/// (weight, min endpoint, max endpoint), making the result deterministic.
[[nodiscard]] MstResult boruvka_msf(const Graph& g);

/// Reference implementation (Kruskal) for cross-checking total weight.
[[nodiscard]] MstResult kruskal_msf(const Graph& g);

} // namespace ccq

#endif // CCQ_MST_BORUVKA_HPP
