#include "ccq/serve/query_engine.hpp"

#include <algorithm>

namespace ccq {

QueryEngine::QueryEngine(std::shared_ptr<const DistanceSource> source, QueryEngineConfig config)
    : source_(std::move(source)), config_(config)
{
    CCQ_EXPECT(source_ != nullptr, "QueryEngine: null distance source");
    meta_ = source_->meta();
    has_routing_ = source_->has_routing();
    init_cache();
}

QueryEngine::QueryEngine(OracleSnapshot snapshot, QueryEngineConfig config)
    : QueryEngine(std::make_shared<const DenseSnapshotSource>(
                      std::make_shared<const OracleSnapshot>(std::move(snapshot))),
                  config)
{
}

QueryEngine::QueryEngine(std::shared_ptr<const OracleSnapshot> snapshot, QueryEngineConfig config)
    : QueryEngine(std::make_shared<const DenseSnapshotSource>(std::move(snapshot)), config)
{
}

QueryEngine::QueryEngine(std::shared_ptr<const MappedSnapshot> mapped, QueryEngineConfig config)
    : QueryEngine(std::make_shared<const MappedSnapshotSource>(std::move(mapped)), config)
{
}

void QueryEngine::init_cache()
{
    CCQ_EXPECT(config_.cache_shards >= 1, "QueryEngine: cache_shards must be >= 1");
    const int shard_count = config_.path_cache_capacity == 0 ? 1 : config_.cache_shards;
    shard_capacity_ = config_.path_cache_capacity == 0
                          ? 0
                          : std::max<std::size_t>(
                                1, config_.path_cache_capacity /
                                       static_cast<std::size_t>(shard_count));
    shards_ = std::vector<CacheShard>(static_cast<std::size_t>(shard_count));
}

Weight QueryEngine::distance(NodeId from, NodeId to) const
{
    CCQ_EXPECT(valid(from) && valid(to), "QueryEngine::distance: node out of range");
    return estimate_at(from, to);
}

QueryEngine::PathPtr QueryEngine::cache_lookup(std::uint64_t key) const
{
    if (shard_capacity_ == 0) return nullptr;
    CacheShard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second); // touch
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
}

void QueryEngine::cache_insert(std::uint64_t key, PathPtr value) const
{
    if (shard_capacity_ == 0) return;
    CacheShard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.contains(key)) return; // a concurrent walker beat us
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    if (shard.index.size() > shard_capacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

PathResult QueryEngine::reconstruct_path(NodeId from, NodeId to) const
{
    PathResult result;
    result.distance = estimate_at(from, to);
    result.nodes = source_->route(from, to);
    // A walkable route paired with an infinite estimate (or vice versa)
    // only arises from a corrupted snapshot; serve it as unreachable
    // rather than as a self-contradictory answer.
    result.reachable = !result.nodes.empty() && is_finite(result.distance);
    if (!result.reachable) {
        result.distance = kInfinity;
        result.nodes.clear();
    }
    return result;
}

PathResult QueryEngine::path(NodeId from, NodeId to) const
{
    CCQ_EXPECT(valid(from) && valid(to), "QueryEngine::path: node out of range");
    CCQ_EXPECT(has_routing_,
               "QueryEngine::path: snapshot has no routing tables (rebuild with routing)");
    const std::uint64_t key = pair_key(from, to);
    if (const PathPtr cached = cache_lookup(key)) return *cached;
    PathResult result = reconstruct_path(from, to);
    cache_insert(key, std::make_shared<const PathResult>(result));
    return result;
}

std::vector<NearTarget> QueryEngine::nearest_targets(NodeId from, int k) const
{
    CCQ_EXPECT(valid(from), "QueryEngine::nearest_targets: node out of range");
    CCQ_EXPECT(k >= 0, "QueryEngine::nearest_targets: k must be >= 0");
    // Whole-row read: sparse sources reconstruct the row once instead of
    // paying n virtual point lookups.
    std::vector<Weight> row(static_cast<std::size_t>(meta_.node_count), kInfinity);
    source_->fill_row(from, row);
    std::vector<NearTarget> candidates;
    candidates.reserve(static_cast<std::size_t>(meta_.node_count));
    for (NodeId v = 0; v < meta_.node_count; ++v) {
        if (v == from) continue;
        const Weight d = row[static_cast<std::size_t>(v)];
        if (!is_finite(d)) continue;
        candidates.push_back({v, d});
    }
    const std::size_t keep = std::min<std::size_t>(candidates.size(),
                                                   static_cast<std::size_t>(k));
    const auto by_weight_then_id = [](const NearTarget& a, const NearTarget& b) {
        return weight_id_less(a.distance, a.node, b.distance, b.node);
    };
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(keep),
                      candidates.end(), by_weight_then_id);
    candidates.resize(keep);
    return candidates;
}

std::vector<Weight> QueryEngine::batch_distances(std::span<const PointQuery> queries) const
{
    batch_sizes_.record(static_cast<std::int64_t>(queries.size()));
    std::vector<Weight> results(queries.size(), kInfinity);
    parallel_chunks(resolved_thread_count(config_.threads), 0, static_cast<int>(queries.size()), 1,
                    [&](int begin, int end) {
                        for (int i = begin; i < end; ++i)
                            results[static_cast<std::size_t>(i)] =
                                distance(queries[static_cast<std::size_t>(i)].from,
                                         queries[static_cast<std::size_t>(i)].to);
                    });
    return results;
}

std::vector<PathResult> QueryEngine::batch_paths(std::span<const PointQuery> queries) const
{
    batch_sizes_.record(static_cast<std::int64_t>(queries.size()));
    std::vector<PathResult> results(queries.size());
    parallel_chunks(resolved_thread_count(config_.threads), 0, static_cast<int>(queries.size()), 1,
                    [&](int begin, int end) {
                        for (int i = begin; i < end; ++i)
                            results[static_cast<std::size_t>(i)] =
                                path(queries[static_cast<std::size_t>(i)].from,
                                     queries[static_cast<std::size_t>(i)].to);
                    });
    return results;
}

} // namespace ccq
