// Query engine over a DistanceSource: the serve-many half of
// build-once/serve-many.
//
// The engine answers four query shapes against an immutable source:
// point distance (one source read), full path reconstruction (the
// source's route), k-nearest targets (row scan with the library's
// (weight, id) tie order), and batched query vectors, which are
// partitioned across the shared ccq::ThreadPool.
//
// The engine never branches on how the oracle is stored — dense
// in-memory, mmap'd file, or sparse spanner all arrive as the same
// DistanceSource interface (serve/distance_source.hpp); the
// snapshot-taking constructors below are conveniences that wrap the
// right concrete source.
//
// All query methods are const and safe to call concurrently: the
// source is read-only after construction, and the only mutable state
// — the LRU cache of reconstructed paths — is sharded by query key with
// one mutex per shard so concurrent walkers rarely contend.
#ifndef CCQ_SERVE_QUERY_ENGINE_HPP
#define CCQ_SERVE_QUERY_ENGINE_HPP

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ccq/common/parallel.hpp"
#include "ccq/obs/metrics.hpp"
#include "ccq/serve/distance_source.hpp"
#include "ccq/serve/snapshot.hpp"

namespace ccq {

/// A (source, destination) point query.
struct PointQuery {
    NodeId from = 0;
    NodeId to = 0;

    friend bool operator==(const PointQuery&, const PointQuery&) = default;
};

/// Result of a path-reconstruction query.
struct PathResult {
    bool reachable = false;
    /// The snapshot's estimate for the pair; kInfinity whenever the walk
    /// failed (true unreachability or a corrupted table).
    Weight distance = kInfinity;
    std::vector<NodeId> nodes;    ///< from -> ... -> to; empty when unreachable

    friend bool operator==(const PathResult&, const PathResult&) = default;
};

/// One entry of a k-nearest-targets answer.
struct NearTarget {
    NodeId node = -1;
    Weight distance = kInfinity;

    friend bool operator==(const NearTarget&, const NearTarget&) = default;
};

struct QueryEngineConfig {
    /// Concurrency of the batch entry points (0 = one per hardware
    /// thread, 1 = strictly serial on the caller).
    int threads = 0;
    /// Total reconstructed-path cache capacity, split across shards.
    /// 0 disables caching.
    std::size_t path_cache_capacity = 4096;
    /// Number of independent LRU shards (each with its own mutex).
    int cache_shards = 16;
};

/// Aggregate cache counters (monotonic since construction).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0; ///< LRU entries displaced by inserts
};

class QueryEngine {
public:
    /// Serves any DistanceSource — the one constructor every other
    /// constructor delegates to.
    explicit QueryEngine(std::shared_ptr<const DistanceSource> source,
                         QueryEngineConfig config = {});

    /// Takes ownership of the snapshot; the engine is immutable afterwards.
    explicit QueryEngine(OracleSnapshot snapshot, QueryEngineConfig config = {});

    /// Shares an already-loaded snapshot: several engines (e.g. one per
    /// bench run, each with a cold cache) can serve the same n^2 data
    /// without copying it.
    explicit QueryEngine(std::shared_ptr<const OracleSnapshot> snapshot,
                         QueryEngineConfig config = {});

    /// Serves straight from an mmap'd snapshot (lazy row decode for the
    /// compressed codec); the mapping is shared and must stay alive for
    /// the engine's lifetime, which the shared_ptr guarantees.
    explicit QueryEngine(std::shared_ptr<const MappedSnapshot> mapped,
                         QueryEngineConfig config = {});

    [[nodiscard]] int node_count() const noexcept { return meta_.node_count; }
    [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
    [[nodiscard]] bool has_routing() const noexcept { return has_routing_; }
    /// The source answering this engine's queries.
    [[nodiscard]] const DistanceSource& source() const noexcept { return *source_; }
    [[nodiscard]] SourceKind source_kind() const noexcept { return source_->kind(); }
    /// True when serving from an mmap'd file instead of owned memory.
    [[nodiscard]] bool is_mapped() const noexcept
    {
        return source_->kind() == SourceKind::mapped;
    }

    /// Distance estimate for (from, to); kInfinity when unreachable.
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const;

    /// Full path reconstruction by next-hop walking (requires a snapshot
    /// with routing tables).  Walks are hop-budgeted, so corrupted tables
    /// report unreachable instead of looping.  Results are cached.
    [[nodiscard]] PathResult path(NodeId from, NodeId to) const;

    /// The k targets nearest to `from` (excluding `from` itself and
    /// unreachable nodes), ordered by (distance, node id).  Returns fewer
    /// than k when fewer are reachable.
    [[nodiscard]] std::vector<NearTarget> nearest_targets(NodeId from, int k) const;

    /// Batched entry points: answers queries[i] into result[i], executing
    /// chunks of the batch concurrently on the shared ThreadPool.
    [[nodiscard]] std::vector<Weight> batch_distances(std::span<const PointQuery> queries) const;
    [[nodiscard]] std::vector<PathResult> batch_paths(std::span<const PointQuery> queries) const;

    [[nodiscard]] CacheStats cache_stats() const noexcept
    {
        return {cache_hits_.load(std::memory_order_relaxed),
                cache_misses_.load(std::memory_order_relaxed),
                cache_evictions_.load(std::memory_order_relaxed)};
    }

    /// Distribution of batch sizes seen by the batch entry points
    /// (one observation per batch_distances/batch_paths call).
    [[nodiscard]] obs::HistogramSnapshot batch_size_distribution() const noexcept
    {
        return batch_sizes_.snapshot();
    }

private:
    using PathPtr = std::shared_ptr<const PathResult>;

    /// One LRU shard: most-recent at the front of `order`.
    struct CacheShard {
        std::mutex mutex;
        std::list<std::pair<std::uint64_t, PathPtr>> order;
        std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, PathPtr>>::iterator>
            index;
    };

    [[nodiscard]] bool valid(NodeId v) const noexcept
    {
        return v >= 0 && v < meta_.node_count;
    }
    [[nodiscard]] std::uint64_t pair_key(NodeId from, NodeId to) const noexcept
    {
        return static_cast<std::uint64_t>(from) *
                   static_cast<std::uint64_t>(meta_.node_count) +
               static_cast<std::uint64_t>(to);
    }
    [[nodiscard]] CacheShard& shard_for(std::uint64_t key) const noexcept
    {
        // splitmix64 finalizer: pair_key is from*n + to, so a bare modulo
        // would pin every query for one destination to one shard whenever
        // n is a multiple of the shard count.
        std::uint64_t mixed = key + 0x9e3779b97f4a7c15ULL;
        mixed = (mixed ^ (mixed >> 30)) * 0xbf58476d1ce4e5b9ULL;
        mixed = (mixed ^ (mixed >> 27)) * 0x94d049bb133111ebULL;
        mixed ^= mixed >> 31;
        return shards_[mixed % shards_.size()];
    }
    [[nodiscard]] PathPtr cache_lookup(std::uint64_t key) const;
    void cache_insert(std::uint64_t key, PathPtr value) const;
    [[nodiscard]] PathResult reconstruct_path(NodeId from, NodeId to) const;
    [[nodiscard]] Weight estimate_at(NodeId from, NodeId to) const
    {
        return source_->distance(from, to);
    }
    void init_cache();

    std::shared_ptr<const DistanceSource> source_; ///< the one read path
    SnapshotMeta meta_;
    bool has_routing_ = false;
    QueryEngineConfig config_;
    std::size_t shard_capacity_ = 0; ///< max entries per shard (0 = caching off)
    mutable std::vector<CacheShard> shards_;
    mutable std::atomic<std::uint64_t> cache_hits_{0};
    mutable std::atomic<std::uint64_t> cache_misses_{0};
    mutable std::atomic<std::uint64_t> cache_evictions_{0};
    mutable obs::Histogram batch_sizes_;
};

} // namespace ccq

#endif // CCQ_SERVE_QUERY_ENGINE_HPP
