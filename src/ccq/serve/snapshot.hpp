// Oracle snapshot persistence: the build-once half of build-once/serve-many.
//
// The paper motivates APSP by its "close connection to network routing"
// (Section 1); related work (Bui et al. 2024, Censor-Hillel et al. 2019)
// underlines that construction is the expensive one-time phase, after
// which distance and path queries should be cheap lookups.  This layer
// makes the expensive phase durable: everything a serving process needs
// — graph metadata, the distance estimate, the claimed stretch, the
// round-ledger summary, and (optionally) next-hop routing tables — is
// serialized into one versioned, checksummed binary artifact.
//
// Envelope (all integers little-endian, fixed width):
//
//   magic    8 bytes  "CCQSNAP\n"
//   version  u32      1 (raw codec) or 2 (compressed codec)
//   length   u64      payload byte count (truncation detection)
//   payload  ...      meta + estimate + optional next hops
//   checksum u64      FNV-1a 64 of the payload (corruption detection)
//
// Version 1 stores every estimate cell as a fixed 8-byte integer and
// every next hop as 4 bytes.  Version 2 ("codec v2") stores each row
// delta-encoded as zigzag varints behind a row-offset table, which both
// shrinks the file (neighboring estimates are close; unreachable runs
// collapse to one byte per cell) and enables lazy per-row decoding.
//
// Readers accept both versions and reject unknown versions, short
// files, and checksum mismatches with snapshot_io_error; a successful
// load round-trips bitwise.  MappedSnapshot serves either version
// straight from an mmap'd file: integrity is verified once at open, and
// v2 rows are decoded on first touch (decode-once, thread-safe).
#ifndef CCQ_SERVE_SNAPSHOT_HPP
#define CCQ_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Thrown on malformed, truncated, corrupted, or wrong-version input.
class snapshot_io_error : public std::runtime_error {
public:
    explicit snapshot_io_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// On-disk encodings; the envelope version field is the codec.
enum class SnapshotCodec : std::uint32_t {
    raw = 1,        ///< fixed-width cells (format version 1)
    compressed = 2, ///< per-row delta+varint behind offset tables (version 2)
};

inline constexpr std::uint32_t kSnapshotVersionRaw = 1;
inline constexpr std::uint32_t kSnapshotVersionCompressed = 2;
/// Highest format version this reader understands.
inline constexpr std::uint32_t kSnapshotFormatVersion = kSnapshotVersionCompressed;

/// Everything about the build that is not the bulk payload.
struct SnapshotMeta {
    int node_count = 0;
    std::uint64_t edge_count = 0;   ///< of the source graph
    bool directed = false;
    Weight max_weight = 0;          ///< largest edge weight of the source graph
    std::string algorithm;          ///< ApspResult::algorithm
    double claimed_stretch = 1.0;   ///< ApspResult::claimed_stretch
    double total_rounds = 0.0;      ///< ledger summary
    std::uint64_t total_words = 0;  ///< ledger summary
    std::uint64_t build_seed = 0;   ///< ApspOptions::seed used at build time

    friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// A persisted distance oracle: metadata, the estimate matrix, and
/// optionally next-hop routing tables for path reconstruction.
struct OracleSnapshot {
    SnapshotMeta meta;
    DistanceMatrix estimate;
    bool has_routing = false;
    RoutingTables routing; ///< meaningful only when has_routing

    /// Assembles a snapshot from a finished build.  `routing`, when
    /// non-null, must have the same node count as the estimate.
    [[nodiscard]] static OracleSnapshot from_result(const Graph& source, const ApspResult& result,
                                                    std::uint64_t build_seed,
                                                    const RoutingTables* routing = nullptr);
};

void write_snapshot(std::ostream& out, const OracleSnapshot& snapshot,
                    SnapshotCodec codec = SnapshotCodec::raw);
[[nodiscard]] OracleSnapshot read_snapshot(std::istream& in);

void save_snapshot(const std::string& path, const OracleSnapshot& snapshot,
                   SnapshotCodec codec = SnapshotCodec::raw);
[[nodiscard]] OracleSnapshot load_snapshot(const std::string& path);

/// An oracle served directly from an mmap'd snapshot file.
///
/// Opening verifies the full envelope (magic, version, length, FNV-1a
/// checksum) and validates the row-offset tables, but does not
/// materialize the n^2 estimate: version-1 cells are read in place, and
/// version-2 rows are decoded on first touch into a per-row cache
/// (std::call_once, so concurrent readers are safe and each row is
/// decoded exactly once).  All accessors are const and thread-safe.
class MappedSnapshot {
public:
    explicit MappedSnapshot(const std::string& path);
    ~MappedSnapshot();
    MappedSnapshot(const MappedSnapshot&) = delete;
    MappedSnapshot& operator=(const MappedSnapshot&) = delete;

    [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
    [[nodiscard]] int node_count() const noexcept { return meta_.node_count; }
    [[nodiscard]] bool has_routing() const noexcept { return has_routing_; }
    [[nodiscard]] std::uint32_t format_version() const noexcept { return version_; }
    [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }

    /// Distance estimate for (from, to); kInfinity when unreachable.
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const;

    /// Next hop of `from` toward `to` (-1 when none); requires routing.
    [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

    /// Hop-budgeted next-hop walk with the same hardening as
    /// RoutingTables::route: cycles, out-of-range hops, and walks longer
    /// than n hops report unreachable (empty) instead of looping.
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;

    /// Full eager decode into an in-memory snapshot (for tests and for
    /// re-encoding under a different codec).
    [[nodiscard]] OracleSnapshot materialize() const;

private:
    struct WeightRowSlot {
        std::once_flag once;
        std::vector<Weight> cells;
    };
    struct HopRowSlot {
        std::once_flag once;
        std::vector<NodeId> hops;
    };

    [[nodiscard]] const std::vector<Weight>& estimate_row(NodeId u) const;
    [[nodiscard]] const std::vector<NodeId>& hop_row(NodeId u) const;
    void check_node(NodeId v, const char* what) const;

    // The mapped file; payload_ points into it.
    void* map_ = nullptr;
    std::size_t map_size_ = 0;
    std::uint64_t file_bytes_ = 0;
    const char* payload_ = nullptr;
    std::size_t payload_size_ = 0;
    std::uint32_t version_ = 0;

    SnapshotMeta meta_;
    bool has_routing_ = false;

    // v1: byte offsets of the fixed-width cell blocks inside the payload.
    std::size_t v1_estimate_offset_ = 0;
    std::size_t v1_routing_offset_ = 0;

    // v2: row-offset tables (validated at open) and decode-once caches.
    std::vector<std::size_t> est_row_offsets_; ///< n+1 offsets into est blob
    std::size_t est_blob_offset_ = 0;
    std::vector<std::size_t> hop_row_offsets_;
    std::size_t hop_blob_offset_ = 0;
    mutable std::unique_ptr<WeightRowSlot[]> est_rows_;
    mutable std::unique_ptr<HopRowSlot[]> hop_rows_;
};

} // namespace ccq

#endif // CCQ_SERVE_SNAPSHOT_HPP
