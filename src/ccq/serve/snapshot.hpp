// Oracle snapshot persistence: the build-once half of build-once/serve-many.
//
// The paper motivates APSP by its "close connection to network routing"
// (Section 1); related work (Bui et al. 2024, Censor-Hillel et al. 2019)
// underlines that construction is the expensive one-time phase, after
// which distance and path queries should be cheap lookups.  This layer
// makes the expensive phase durable: everything a serving process needs
// — graph metadata, the distance estimate, the claimed stretch, the
// round-ledger summary, and (optionally) next-hop routing tables — is
// serialized into one versioned, checksummed binary artifact.
//
// Envelope (all integers little-endian, fixed width):
//
//   magic    8 bytes  "CCQSNAP\n"
//   version  u32      SnapshotFormat (1, 2 or 3)
//   length   u64      payload byte count (truncation detection)
//   payload  ...      format-dependent (see below)
//   checksum u64      FNV-1a 64 of the payload (corruption detection)
//
// Version 1 stores every estimate cell as a fixed 8-byte integer and
// every next hop as 4 bytes.  Version 2 ("codec v2") stores each row
// delta-encoded as zigzag varints behind a row-offset table, which both
// shrinks the file (neighboring estimates are close; unreachable runs
// collapse to one byte per cell) and enables lazy per-row decoding.
// Version 3 ("codec v3") stores no distance matrix at all: only a
// spanner edge list in CSR form (delta-varint targets + varint weights),
// O(k n^{1+1/k}) cells instead of n^2 — distances are reconstructed at
// query time by SpannerDistanceSource (serve/distance_source.hpp).
//
// Dense readers accept versions 1 and 2 and reject everything else
// (including v3, with a pointer at the sparse loader) with
// snapshot_io_error naming the found version; a successful load
// round-trips bitwise.  MappedSnapshot serves version 1 or 2 straight
// from an mmap'd file: integrity is verified once at open, and v2 rows
// are decoded on first touch (decode-once, thread-safe).
#ifndef CCQ_SERVE_SNAPSHOT_HPP
#define CCQ_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"
#include "ccq/spanner/baswana_sen.hpp"

namespace ccq {

/// Thrown on malformed, truncated, corrupted, or wrong-version input.
class snapshot_io_error : public std::runtime_error {
public:
    explicit snapshot_io_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// On-disk encodings; the envelope version field is the format.  Every
/// writer, reader, and tool names formats through this enum — the
/// integer only appears on the wire.
enum class SnapshotFormat : std::uint32_t {
    v1_raw = 1,        ///< dense, fixed-width cells
    v2_compressed = 2, ///< dense, per-row delta+varint behind offset tables
    v3_spanner = 3,    ///< sparse: spanner edge list only (CSR, delta+varint)
};

/// Highest format version any reader in this build understands.
inline constexpr std::uint32_t kSnapshotFormatVersion =
    static_cast<std::uint32_t>(SnapshotFormat::v3_spanner);

/// The wire value of a format.
[[nodiscard]] constexpr std::uint32_t format_version(SnapshotFormat format) noexcept
{
    return static_cast<std::uint32_t>(format);
}

/// "v1-raw" / "v2-compressed" / "v3-spanner" (for logs, bench JSON, CLI).
[[nodiscard]] const char* snapshot_format_name(SnapshotFormat format) noexcept;

/// Reads just the envelope header of a snapshot file and returns its
/// format, so callers (ccq_served, ccq_serve, bench) can pick the dense
/// or sparse load path before committing to either.  Throws
/// snapshot_io_error on missing files, bad magic, or a version this
/// build does not understand (naming the found version).
[[nodiscard]] SnapshotFormat peek_snapshot_format(const std::string& path);

/// Everything about the build that is not the bulk payload.
struct SnapshotMeta {
    int node_count = 0;
    std::uint64_t edge_count = 0;   ///< of the source graph
    bool directed = false;
    Weight max_weight = 0;          ///< largest edge weight of the source graph
    std::string algorithm;          ///< ApspResult::algorithm
    double claimed_stretch = 1.0;   ///< ApspResult::claimed_stretch
    double total_rounds = 0.0;      ///< ledger summary
    std::uint64_t total_words = 0;  ///< ledger summary
    std::uint64_t build_seed = 0;   ///< ApspOptions::seed used at build time

    friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// A persisted distance oracle: metadata, the estimate matrix, and
/// optionally next-hop routing tables for path reconstruction.
struct OracleSnapshot {
    SnapshotMeta meta;
    DistanceMatrix estimate;
    bool has_routing = false;
    RoutingTables routing; ///< meaningful only when has_routing

    /// Assembles a snapshot from a finished build.  `routing`, when
    /// non-null, must have the same node count as the estimate.
    [[nodiscard]] static OracleSnapshot from_result(const Graph& source, const ApspResult& result,
                                                    std::uint64_t build_seed,
                                                    const RoutingTables* routing = nullptr);
};

void write_snapshot(std::ostream& out, const OracleSnapshot& snapshot,
                    SnapshotFormat format = SnapshotFormat::v1_raw);
[[nodiscard]] OracleSnapshot read_snapshot(std::istream& in);

void save_snapshot(const std::string& path, const OracleSnapshot& snapshot,
                   SnapshotFormat format = SnapshotFormat::v1_raw);
[[nodiscard]] OracleSnapshot load_snapshot(const std::string& path);

/// A persisted sparse oracle (format v3): the spanner edge list plus the
/// source graph's metadata and the stretch contract.  The n^2 estimate
/// is never stored; SpannerDistanceSource reconstructs rows on demand.
///
/// v3 payload layout (after the shared meta block):
///
///   stretch_bound  u32          guaranteed multiplicative stretch (2k-1)
///   parameter_k    u32          the k used by the construction
///   construction   string       "baswana-sen" / "greedy" / ...
///   edge_count     u64          m, undirected spanner edges
///   offsets        (n+1) x u64  CSR row u holds edges {u,v} with v > u
///   blob           offsets[n] bytes of concatenated rows; each edge is
///                  varint(target delta, strictly positive) + varint(weight)
///
/// Storing each undirected edge once under its smaller endpoint with
/// strictly increasing targets makes every delta >= 1, so a valid blob
/// spends at least 2 bytes per edge — the pre-allocation bound the
/// reader proves before trusting the claimed edge count.
struct SparseSnapshot {
    SnapshotMeta meta;        ///< describes the SOURCE graph, not the spanner
    int stretch_bound = 1;
    int parameter_k = 1;
    std::string construction; ///< spanner algorithm name
    std::vector<WeightedEdge> edges; ///< u <= v, sorted, deduplicated

    /// Assembles a sparse snapshot from a spanner of `source`.
    [[nodiscard]] static SparseSnapshot from_spanner(const Graph& source,
                                                     const SpannerResult& result,
                                                     std::string construction,
                                                     std::uint64_t build_seed);

    /// The spanner as an adjacency-list graph (undirected).
    [[nodiscard]] Graph spanner_graph() const;

    friend bool operator==(const SparseSnapshot&, const SparseSnapshot&) = default;
};

void write_sparse_snapshot(std::ostream& out, const SparseSnapshot& snapshot);
[[nodiscard]] SparseSnapshot read_sparse_snapshot(std::istream& in);

void save_sparse_snapshot(const std::string& path, const SparseSnapshot& snapshot);
[[nodiscard]] SparseSnapshot load_sparse_snapshot(const std::string& path);

/// An oracle served directly from an mmap'd snapshot file.
///
/// Opening verifies the full envelope (magic, version, length, FNV-1a
/// checksum) and validates the row-offset tables, but does not
/// materialize the n^2 estimate: version-1 cells are read in place, and
/// version-2 rows are decoded on first touch into a per-row cache
/// (std::call_once, so concurrent readers are safe and each row is
/// decoded exactly once).  All accessors are const and thread-safe.
/// Dense formats only; a v3 file loads via load_sparse_snapshot /
/// open_distance_source instead.
class MappedSnapshot {
public:
    explicit MappedSnapshot(const std::string& path);
    ~MappedSnapshot();
    MappedSnapshot(const MappedSnapshot&) = delete;
    MappedSnapshot& operator=(const MappedSnapshot&) = delete;

    [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
    [[nodiscard]] int node_count() const noexcept { return meta_.node_count; }
    [[nodiscard]] bool has_routing() const noexcept { return has_routing_; }
    [[nodiscard]] std::uint32_t format_version() const noexcept { return version_; }
    [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }

    /// Distance estimate for (from, to); kInfinity when unreachable.
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const;

    /// Next hop of `from` toward `to` (-1 when none); requires routing.
    [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const;

    /// Hop-budgeted next-hop walk with the same hardening as
    /// RoutingTables::route: cycles, out-of-range hops, and walks longer
    /// than n hops report unreachable (empty) instead of looping.
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const;

    /// Full eager decode into an in-memory snapshot (for tests and for
    /// re-encoding under a different format).
    [[nodiscard]] OracleSnapshot materialize() const;

private:
    struct WeightRowSlot {
        std::once_flag once;
        std::vector<Weight> cells;
    };
    struct HopRowSlot {
        std::once_flag once;
        std::vector<NodeId> hops;
    };

    [[nodiscard]] const std::vector<Weight>& estimate_row(NodeId u) const;
    [[nodiscard]] const std::vector<NodeId>& hop_row(NodeId u) const;
    void check_node(NodeId v, const char* what) const;

    // The mapped file; payload_ points into it.
    void* map_ = nullptr;
    std::size_t map_size_ = 0;
    std::uint64_t file_bytes_ = 0;
    const char* payload_ = nullptr;
    std::size_t payload_size_ = 0;
    std::uint32_t version_ = 0;

    SnapshotMeta meta_;
    bool has_routing_ = false;

    // v1: byte offsets of the fixed-width cell blocks inside the payload.
    std::size_t v1_estimate_offset_ = 0;
    std::size_t v1_routing_offset_ = 0;

    // v2: row-offset tables (validated at open) and decode-once caches.
    std::vector<std::size_t> est_row_offsets_; ///< n+1 offsets into est blob
    std::size_t est_blob_offset_ = 0;
    std::vector<std::size_t> hop_row_offsets_;
    std::size_t hop_blob_offset_ = 0;
    mutable std::unique_ptr<WeightRowSlot[]> est_rows_;
    mutable std::unique_ptr<HopRowSlot[]> hop_rows_;
};

} // namespace ccq

#endif // CCQ_SERVE_SNAPSHOT_HPP
