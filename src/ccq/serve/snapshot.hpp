// Oracle snapshot persistence: the build-once half of build-once/serve-many.
//
// The paper motivates APSP by its "close connection to network routing"
// (Section 1); related work (Bui et al. 2024, Censor-Hillel et al. 2019)
// underlines that construction is the expensive one-time phase, after
// which distance and path queries should be cheap lookups.  This layer
// makes the expensive phase durable: everything a serving process needs
// — graph metadata, the distance estimate, the claimed stretch, the
// round-ledger summary, and (optionally) next-hop routing tables — is
// serialized into one versioned, checksummed binary artifact.
//
// Format (all integers little-endian, fixed width):
//
//   magic    8 bytes  "CCQSNAP\n"
//   version  u32      kSnapshotFormatVersion
//   length   u64      payload byte count (truncation detection)
//   payload  ...      meta + estimate cells + optional next hops
//   checksum u64      FNV-1a 64 of the payload (corruption detection)
//
// Readers reject unknown versions, short files, and checksum mismatches
// with snapshot_io_error; a successful load round-trips bitwise.
#ifndef CCQ_SERVE_SNAPSHOT_HPP
#define CCQ_SERVE_SNAPSHOT_HPP

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/matrix/dense.hpp"

namespace ccq {

/// Thrown on malformed, truncated, corrupted, or wrong-version input.
class snapshot_io_error : public std::runtime_error {
public:
    explicit snapshot_io_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Bump on any layout change; readers reject every other value.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Everything about the build that is not the bulk payload.
struct SnapshotMeta {
    int node_count = 0;
    std::uint64_t edge_count = 0;   ///< of the source graph
    bool directed = false;
    Weight max_weight = 0;          ///< largest edge weight of the source graph
    std::string algorithm;          ///< ApspResult::algorithm
    double claimed_stretch = 1.0;   ///< ApspResult::claimed_stretch
    double total_rounds = 0.0;      ///< ledger summary
    std::uint64_t total_words = 0;  ///< ledger summary
    std::uint64_t build_seed = 0;   ///< ApspOptions::seed used at build time

    friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// A persisted distance oracle: metadata, the estimate matrix, and
/// optionally next-hop routing tables for path reconstruction.
struct OracleSnapshot {
    SnapshotMeta meta;
    DistanceMatrix estimate;
    bool has_routing = false;
    RoutingTables routing; ///< meaningful only when has_routing

    /// Assembles a snapshot from a finished build.  `routing`, when
    /// non-null, must have the same node count as the estimate.
    [[nodiscard]] static OracleSnapshot from_result(const Graph& source, const ApspResult& result,
                                                    std::uint64_t build_seed,
                                                    const RoutingTables* routing = nullptr);
};

void write_snapshot(std::ostream& out, const OracleSnapshot& snapshot);
[[nodiscard]] OracleSnapshot read_snapshot(std::istream& in);

void save_snapshot(const std::string& path, const OracleSnapshot& snapshot);
[[nodiscard]] OracleSnapshot load_snapshot(const std::string& path);

} // namespace ccq

#endif // CCQ_SERVE_SNAPSHOT_HPP
