// The versioned read path of the serving stack: every consumer of
// distance estimates (QueryEngine, path reconstruction, k-nearest,
// batching, the path cache, the wire server) queries an abstract
// DistanceSource instead of branching on how the snapshot is stored.
//
// Three concrete sources exist today:
//
//   DenseSnapshotSource    an owned/shared in-memory OracleSnapshot
//   MappedSnapshotSource   an mmap'd dense file (lazy v2 row decode)
//   SpannerDistanceSource  a sparse v3 snapshot: only the spanner edge
//                          list is stored; distances are reconstructed
//                          at query time by Dijkstra over the spanner,
//                          one source row at a time, with a sharded LRU
//                          row cache absorbing reuse
//
// The dense pair answers with the snapshot's exact stored cells — the
// refactor is test-enforced bitwise-identical to the pre-DistanceSource
// engine.  The spanner source answers within the construction's stretch
// bound: exact <= answer <= stretch * exact (also test-enforced).
//
// This is the storage/serving trade-off of the deterministic
// spanner-based APSP route (Censor-Hillel–Dory–Korhonen–Leitersdorf,
// arXiv 1903.05956): O(k n^{1+1/k}) stored cells instead of n^2, paid
// for with per-row Dijkstra latency on cache misses.
#ifndef CCQ_SERVE_DISTANCE_SOURCE_HPP
#define CCQ_SERVE_DISTANCE_SOURCE_HPP

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccq/serve/snapshot.hpp"

namespace ccq {

/// How a DistanceSource stores its answers.  On the stats wire (and in
/// metrics) since stats v3, so the integer values are a contract.
enum class SourceKind : std::uint8_t {
    dense = 0,   ///< in-memory n^2 estimate
    mapped = 1,  ///< mmap'd dense file
    spanner = 2, ///< sparse spanner, rows reconstructed on demand
};

/// "dense" / "mapped" / "spanner" (metric label values, logs, JSON).
[[nodiscard]] const char* source_kind_name(SourceKind kind) noexcept;

/// A read-only oracle: answers distance (and optionally path) queries
/// for one immutable snapshot.  All methods are const and thread-safe;
/// implementations may keep internal caches but must answer every query
/// identically regardless of cache state (cold == warm, test-enforced).
class DistanceSource {
public:
    virtual ~DistanceSource() = default;

    [[nodiscard]] virtual SourceKind kind() const noexcept = 0;
    [[nodiscard]] virtual const SnapshotMeta& meta() const noexcept = 0;
    /// True when route() can answer (routing tables, or a structure —
    /// like the spanner — that paths can be computed from).
    [[nodiscard]] virtual bool has_routing() const noexcept = 0;

    /// Distance estimate for (from, to); kInfinity when unreachable.
    /// Both nodes must be in range (callers validate).
    [[nodiscard]] virtual Weight distance(NodeId from, NodeId to) const = 0;

    /// Copies the full estimate row of `from` into `out` (size n).  Row
    /// consumers (k-nearest scans) go through this so sparse sources pay
    /// one reconstruction per row, not n virtual point lookups.
    virtual void fill_row(NodeId from, std::span<Weight> out) const = 0;

    /// The node sequence from -> ... -> to; empty when unreachable (or
    /// when a corrupted table breaks the walk).  Requires has_routing().
    [[nodiscard]] virtual std::vector<NodeId> route(NodeId from, NodeId to) const = 0;

    /// Cells the backing snapshot actually stores: n^2 for dense
    /// formats, the spanner edge count for v3.  On the stats wire.
    [[nodiscard]] virtual std::uint64_t stored_cells() const noexcept = 0;

    /// Lazy-row bookkeeping; zero for sources that store rows directly.
    [[nodiscard]] virtual std::uint64_t rows_materialized() const noexcept { return 0; }
    [[nodiscard]] virtual std::uint64_t row_cache_hits() const noexcept { return 0; }

    [[nodiscard]] int node_count() const noexcept { return meta().node_count; }
};

/// Dense source over an owned/shared in-memory snapshot.
class DenseSnapshotSource final : public DistanceSource {
public:
    explicit DenseSnapshotSource(std::shared_ptr<const OracleSnapshot> snapshot);

    [[nodiscard]] SourceKind kind() const noexcept override { return SourceKind::dense; }
    [[nodiscard]] const SnapshotMeta& meta() const noexcept override { return snapshot_->meta; }
    [[nodiscard]] bool has_routing() const noexcept override { return snapshot_->has_routing; }
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const override;
    void fill_row(NodeId from, std::span<Weight> out) const override;
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const override;
    [[nodiscard]] std::uint64_t stored_cells() const noexcept override;

    [[nodiscard]] const OracleSnapshot& snapshot() const noexcept { return *snapshot_; }

private:
    std::shared_ptr<const OracleSnapshot> snapshot_;
};

/// Dense source over an mmap'd snapshot file (v1 in-place cells, v2
/// decode-once lazy rows — both inside MappedSnapshot).
class MappedSnapshotSource final : public DistanceSource {
public:
    explicit MappedSnapshotSource(std::shared_ptr<const MappedSnapshot> mapped);

    [[nodiscard]] SourceKind kind() const noexcept override { return SourceKind::mapped; }
    [[nodiscard]] const SnapshotMeta& meta() const noexcept override { return mapped_->meta(); }
    [[nodiscard]] bool has_routing() const noexcept override { return mapped_->has_routing(); }
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const override;
    void fill_row(NodeId from, std::span<Weight> out) const override;
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const override;
    [[nodiscard]] std::uint64_t stored_cells() const noexcept override;

    [[nodiscard]] const MappedSnapshot& mapped() const noexcept { return *mapped_; }

private:
    std::shared_ptr<const MappedSnapshot> mapped_;
};

struct SpannerSourceConfig {
    /// Reconstructed rows kept across queries (0 disables caching: every
    /// point query runs a fresh Dijkstra — correct but slow).
    std::size_t row_cache_rows = 1024;
    /// Independent LRU shards, each with its own mutex.
    int cache_shards = 16;
};

/// Sparse source over a v3 snapshot: the spanner is held as a CSR
/// adjacency (symmetrized at load), and the row for a query source is
/// materialized on first touch by a Dijkstra over the spanner — each
/// relaxation settles a node at most once, so the walk is bounded by
/// n-1 hops by construction.  Materialized rows live in a sharded LRU
/// keyed by source node; rows_materialized()/row_cache_hits() expose
/// the hit economics to stats and metrics.
///
/// Answers obey exact <= distance(u,v) <= stretch_bound * exact, where
/// exact is the true distance in the source graph (spanner guarantee).
class SpannerDistanceSource final : public DistanceSource {
public:
    explicit SpannerDistanceSource(SparseSnapshot snapshot, SpannerSourceConfig config = {});

    [[nodiscard]] SourceKind kind() const noexcept override { return SourceKind::spanner; }
    [[nodiscard]] const SnapshotMeta& meta() const noexcept override { return meta_; }
    /// Paths come from the same Dijkstra that answers distances, so a
    /// spanner source always routes — no n^2 next-hop tables needed.
    [[nodiscard]] bool has_routing() const noexcept override { return true; }
    [[nodiscard]] Weight distance(NodeId from, NodeId to) const override;
    void fill_row(NodeId from, std::span<Weight> out) const override;
    [[nodiscard]] std::vector<NodeId> route(NodeId from, NodeId to) const override;
    [[nodiscard]] std::uint64_t stored_cells() const noexcept override
    {
        return spanner_edges_;
    }
    [[nodiscard]] std::uint64_t rows_materialized() const noexcept override
    {
        return rows_materialized_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t row_cache_hits() const noexcept override
    {
        return row_cache_hits_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] int stretch_bound() const noexcept { return stretch_bound_; }
    [[nodiscard]] int parameter_k() const noexcept { return parameter_k_; }
    [[nodiscard]] const std::string& construction() const noexcept { return construction_; }

private:
    using RowPtr = std::shared_ptr<const std::vector<Weight>>;

    struct RowShard {
        std::mutex mutex;
        std::list<std::pair<NodeId, RowPtr>> order; ///< most-recent first
        std::unordered_map<NodeId, std::list<std::pair<NodeId, RowPtr>>::iterator> index;
    };

    [[nodiscard]] RowPtr row(NodeId from) const;
    [[nodiscard]] std::vector<Weight> run_dijkstra(NodeId from,
                                                   std::vector<NodeId>* parent) const;

    SnapshotMeta meta_;
    int stretch_bound_ = 1;
    int parameter_k_ = 1;
    std::string construction_;
    std::uint64_t spanner_edges_ = 0;

    // CSR over the symmetrized spanner: arcs of u are
    // arcs_[offsets_[u], offsets_[u+1]).
    std::vector<std::size_t> offsets_;
    std::vector<Edge> arcs_;

    std::size_t shard_capacity_ = 0; ///< rows per shard (0 = caching off)
    mutable std::vector<RowShard> shards_;
    mutable std::atomic<std::uint64_t> rows_materialized_{0};
    mutable std::atomic<std::uint64_t> row_cache_hits_{0};
};

struct DistanceSourceOptions {
    /// Dense files: serve from an mmap instead of an eager load.
    /// Ignored for v3 (the sparse edge list loads eagerly either way).
    bool prefer_mmap = false;
    /// Row cache of a spanner source (v3 files only).
    std::size_t spanner_row_cache_rows = 1024;
};

/// Opens a snapshot file of any format as the right DistanceSource:
/// peeks the envelope version, then loads v1/v2 as a dense (or mmap)
/// source and v3 as a SpannerDistanceSource.  This is how ccq_served,
/// ccq_serve query, and bench auto-detect v3.
[[nodiscard]] std::shared_ptr<const DistanceSource>
open_distance_source(const std::string& path, const DistanceSourceOptions& options = {});

} // namespace ccq

#endif // CCQ_SERVE_DISTANCE_SOURCE_HPP
