#include "ccq/serve/distance_source.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "ccq/common/check.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {

const char* source_kind_name(SourceKind kind) noexcept
{
    switch (kind) {
    case SourceKind::dense: return "dense";
    case SourceKind::mapped: return "mapped";
    case SourceKind::spanner: return "spanner";
    }
    return "unknown";
}

// --- DenseSnapshotSource ----------------------------------------------------

DenseSnapshotSource::DenseSnapshotSource(std::shared_ptr<const OracleSnapshot> snapshot)
    : snapshot_(std::move(snapshot))
{
    CCQ_EXPECT(snapshot_ != nullptr, "DenseSnapshotSource: null snapshot");
    CCQ_EXPECT(snapshot_->meta.node_count == snapshot_->estimate.size(),
               "DenseSnapshotSource: snapshot meta/estimate mismatch");
    CCQ_EXPECT(!snapshot_->has_routing ||
                   snapshot_->routing.size() == snapshot_->meta.node_count,
               "DenseSnapshotSource: snapshot routing size mismatch");
}

Weight DenseSnapshotSource::distance(NodeId from, NodeId to) const
{
    return snapshot_->estimate.at(from, to);
}

void DenseSnapshotSource::fill_row(NodeId from, std::span<Weight> out) const
{
    const int n = snapshot_->meta.node_count;
    CCQ_EXPECT(from >= 0 && from < n, "DenseSnapshotSource::fill_row: node out of range");
    CCQ_EXPECT(out.size() == static_cast<std::size_t>(n),
               "DenseSnapshotSource::fill_row: bad row size");
    const Weight* row =
        snapshot_->estimate.data() + static_cast<std::size_t>(from) * static_cast<std::size_t>(n);
    std::copy_n(row, static_cast<std::size_t>(n), out.data());
}

std::vector<NodeId> DenseSnapshotSource::route(NodeId from, NodeId to) const
{
    CCQ_EXPECT(snapshot_->has_routing,
               "DenseSnapshotSource::route: snapshot has no routing tables");
    return snapshot_->routing.route(from, to);
}

std::uint64_t DenseSnapshotSource::stored_cells() const noexcept
{
    const std::uint64_t n = static_cast<std::uint64_t>(snapshot_->meta.node_count);
    return n * n;
}

// --- MappedSnapshotSource ---------------------------------------------------

MappedSnapshotSource::MappedSnapshotSource(std::shared_ptr<const MappedSnapshot> mapped)
    : mapped_(std::move(mapped))
{
    CCQ_EXPECT(mapped_ != nullptr, "MappedSnapshotSource: null mapped snapshot");
}

Weight MappedSnapshotSource::distance(NodeId from, NodeId to) const
{
    return mapped_->distance(from, to);
}

void MappedSnapshotSource::fill_row(NodeId from, std::span<Weight> out) const
{
    const int n = mapped_->node_count();
    CCQ_EXPECT(out.size() == static_cast<std::size_t>(n),
               "MappedSnapshotSource::fill_row: bad row size");
    // v2 decodes the row once on the first cell; the loop then reads the
    // mapped snapshot's own per-row cache.
    for (NodeId v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = mapped_->distance(from, v);
}

std::vector<NodeId> MappedSnapshotSource::route(NodeId from, NodeId to) const
{
    return mapped_->route(from, to);
}

std::uint64_t MappedSnapshotSource::stored_cells() const noexcept
{
    const std::uint64_t n = static_cast<std::uint64_t>(mapped_->node_count());
    return n * n;
}

// --- SpannerDistanceSource --------------------------------------------------

SpannerDistanceSource::SpannerDistanceSource(SparseSnapshot snapshot, SpannerSourceConfig config)
    : meta_(snapshot.meta),
      stretch_bound_(snapshot.stretch_bound),
      parameter_k_(snapshot.parameter_k),
      construction_(std::move(snapshot.construction)),
      spanner_edges_(snapshot.edges.size())
{
    CCQ_EXPECT(config.cache_shards >= 1,
               "SpannerDistanceSource: cache_shards must be >= 1");
    const int n = meta_.node_count;

    // CSR over the symmetrized spanner (the snapshot stores each edge
    // once under its smaller endpoint; queries walk both directions).
    std::vector<std::size_t> degree(static_cast<std::size_t>(n) + 1, 0);
    for (const WeightedEdge& edge : snapshot.edges) {
        ++degree[static_cast<std::size_t>(edge.u) + 1];
        ++degree[static_cast<std::size_t>(edge.v) + 1];
    }
    offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
    for (int u = 0; u < n; ++u)
        offsets_[static_cast<std::size_t>(u) + 1] =
            offsets_[static_cast<std::size_t>(u)] + degree[static_cast<std::size_t>(u) + 1];
    arcs_.resize(offsets_.back());
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const WeightedEdge& edge : snapshot.edges) {
        arcs_[cursor[static_cast<std::size_t>(edge.u)]++] = {edge.v, edge.weight};
        arcs_[cursor[static_cast<std::size_t>(edge.v)]++] = {edge.u, edge.weight};
    }

    const int shard_count = config.row_cache_rows == 0 ? 1 : config.cache_shards;
    shard_capacity_ =
        config.row_cache_rows == 0
            ? 0
            : std::max<std::size_t>(1, config.row_cache_rows /
                                           static_cast<std::size_t>(shard_count));
    shards_ = std::vector<RowShard>(static_cast<std::size_t>(shard_count));
}

std::vector<Weight> SpannerDistanceSource::run_dijkstra(NodeId from,
                                                        std::vector<NodeId>* parent) const
{
    const int n = meta_.node_count;
    std::vector<Weight> dist(static_cast<std::size_t>(n), kInfinity);
    if (parent != nullptr) parent->assign(static_cast<std::size_t>(n), -1);
    dist[static_cast<std::size_t>(from)] = 0;

    // Min-heap ordered by (distance, node): the node tiebreak makes the
    // settle order — and therefore the parent trees — deterministic.
    // Each node settles at most once, so the reconstruction is bounded
    // by n-1 hops by construction.
    using HeapEntry = std::pair<Weight, NodeId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
    heap.push({0, from});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d != dist[static_cast<std::size_t>(u)]) continue; // stale entry
        const std::size_t begin = offsets_[static_cast<std::size_t>(u)];
        const std::size_t end = offsets_[static_cast<std::size_t>(u) + 1];
        for (std::size_t i = begin; i < end; ++i) {
            const Edge& edge = arcs_[i];
            const Weight candidate = saturating_add(d, edge.weight);
            if (candidate < dist[static_cast<std::size_t>(edge.to)]) {
                dist[static_cast<std::size_t>(edge.to)] = candidate;
                if (parent != nullptr) (*parent)[static_cast<std::size_t>(edge.to)] = u;
                heap.push({candidate, edge.to});
            }
        }
    }
    return dist;
}

SpannerDistanceSource::RowPtr SpannerDistanceSource::row(NodeId from) const
{
    CCQ_EXPECT(from >= 0 && from < meta_.node_count,
               "SpannerDistanceSource: node out of range");
    if (shard_capacity_ == 0) {
        rows_materialized_.fetch_add(1, std::memory_order_relaxed);
        return std::make_shared<const std::vector<Weight>>(run_dijkstra(from, nullptr));
    }
    RowShard& shard = shards_[static_cast<std::size_t>(from) % shards_.size()];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(from);
        if (it != shard.index.end()) {
            shard.order.splice(shard.order.begin(), shard.order, it->second); // touch
            row_cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second->second;
        }
    }
    // Dijkstra outside the shard lock: concurrent misses on the same row
    // may both compute it (identical answers), but never block each
    // other or readers of other rows in the shard.
    obs::TraceSpan span("serve/spanner_row", "serve");
    rows_materialized_.fetch_add(1, std::memory_order_relaxed);
    RowPtr fresh = std::make_shared<const std::vector<Weight>>(run_dijkstra(from, nullptr));
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.index.find(from); it != shard.index.end())
        return it->second->second; // a concurrent walker beat us
    shard.order.emplace_front(from, fresh);
    shard.index.emplace(from, shard.order.begin());
    if (shard.index.size() > shard_capacity_) {
        shard.index.erase(shard.order.back().first);
        shard.order.pop_back();
    }
    return fresh;
}

Weight SpannerDistanceSource::distance(NodeId from, NodeId to) const
{
    CCQ_EXPECT(to >= 0 && to < meta_.node_count, "SpannerDistanceSource: node out of range");
    return (*row(from))[static_cast<std::size_t>(to)];
}

void SpannerDistanceSource::fill_row(NodeId from, std::span<Weight> out) const
{
    CCQ_EXPECT(out.size() == static_cast<std::size_t>(meta_.node_count),
               "SpannerDistanceSource::fill_row: bad row size");
    const RowPtr cells = row(from);
    std::copy(cells->begin(), cells->end(), out.begin());
}

std::vector<NodeId> SpannerDistanceSource::route(NodeId from, NodeId to) const
{
    CCQ_EXPECT(from >= 0 && from < meta_.node_count && to >= 0 && to < meta_.node_count,
               "SpannerDistanceSource::route: node out of range");
    std::vector<NodeId> parent;
    const std::vector<Weight> dist = run_dijkstra(from, &parent);
    if (!is_finite(dist[static_cast<std::size_t>(to)])) return {};
    std::vector<NodeId> path;
    for (NodeId v = to; v != -1; v = parent[static_cast<std::size_t>(v)]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;
}

// --- factory ----------------------------------------------------------------

std::shared_ptr<const DistanceSource> open_distance_source(const std::string& path,
                                                           const DistanceSourceOptions& options)
{
    const SnapshotFormat format = peek_snapshot_format(path);
    if (format == SnapshotFormat::v3_spanner) {
        SpannerSourceConfig config;
        config.row_cache_rows = options.spanner_row_cache_rows;
        return std::make_shared<const SpannerDistanceSource>(load_sparse_snapshot(path), config);
    }
    if (options.prefer_mmap)
        return std::make_shared<const MappedSnapshotSource>(
            std::make_shared<const MappedSnapshot>(path));
    return std::make_shared<const DenseSnapshotSource>(
        std::make_shared<const OracleSnapshot>(load_snapshot(path)));
}

} // namespace ccq
