#include "ccq/serve/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "ccq/common/bytes.hpp"
#include "ccq/obs/trace.hpp"

namespace ccq {
namespace {

constexpr std::array<char, 8> kMagic = {'C', 'C', 'Q', 'S', 'N', 'A', 'P', '\n'};
constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 8;
constexpr std::size_t kFooterBytes = 8;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes)
{
    std::uint64_t hash = kFnvOffset;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnvPrime;
    }
    return hash;
}

// --- shared payload pieces --------------------------------------------------

void encode_meta(std::string& payload, const SnapshotMeta& meta)
{
    put_i32(payload, meta.node_count);
    put_u64(payload, meta.edge_count);
    put_u32(payload, meta.directed ? 1 : 0);
    put_i64(payload, meta.max_weight);
    put_string(payload, meta.algorithm);
    put_f64(payload, meta.claimed_stretch);
    put_f64(payload, meta.total_rounds);
    put_u64(payload, meta.total_words);
    put_u64(payload, meta.build_seed);
}

[[nodiscard]] SnapshotMeta decode_meta(ByteReader& reader)
{
    SnapshotMeta meta;
    meta.node_count = reader.i32();
    if (meta.node_count < 0) throw snapshot_io_error("read_snapshot: negative node count");
    meta.edge_count = reader.u64();
    const std::uint32_t directed = reader.u32();
    if (directed > 1) throw snapshot_io_error("read_snapshot: malformed orientation flag");
    meta.directed = directed == 1;
    meta.max_weight = reader.i64();
    meta.algorithm = reader.str();
    meta.claimed_stretch = reader.f64();
    meta.total_rounds = reader.f64();
    meta.total_words = reader.u64();
    meta.build_seed = reader.u64();
    return meta;
}

[[nodiscard]] bool decode_flag(ByteReader& reader, const char* what)
{
    const std::uint32_t flag = reader.u32();
    if (flag > 1) throw snapshot_io_error(std::string("read_snapshot: malformed ") + what);
    return flag == 1;
}

// --- version 1: fixed-width cells -------------------------------------------

[[nodiscard]] std::string encode_payload_v1(const OracleSnapshot& snapshot)
{
    const int n = snapshot.meta.node_count;
    std::string payload;
    const std::size_t cells = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    payload.reserve(64 + snapshot.meta.algorithm.size() + cells * (snapshot.has_routing ? 12 : 8));

    encode_meta(payload, snapshot.meta);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) put_i64(payload, snapshot.estimate.at(u, v));
    put_u32(payload, snapshot.has_routing ? 1 : 0);
    if (snapshot.has_routing)
        for (NodeId u = 0; u < n; ++u)
            for (NodeId v = 0; v < n; ++v) put_i32(payload, snapshot.routing.next_hop(u, v));
    return payload;
}

// Decoded-cell invariants, enforced by BOTH codecs at load time.  The
// dense engine's raw-add kernels assume every stored cell is in
// [0, kInfinity] (the no-overflow argument in matrix/kernels/), so a
// crafted or corrupted snapshot must never hand an out-of-range cell
// back to anything that might feed the engine — reject at the decode
// boundary instead.

void check_estimate_cell(std::int64_t value)
{
    if (value < 0 || value > kInfinity)
        throw snapshot_io_error("read_snapshot: estimate cell out of range");
}

void check_next_hop(std::int64_t value, int n)
{
    if (value < -1 || value >= n)
        throw snapshot_io_error("read_snapshot: next hop out of range");
}

[[nodiscard]] OracleSnapshot decode_payload_v1(std::string_view payload)
{
    ByteReader reader(payload);
    OracleSnapshot snapshot;
    snapshot.meta = decode_meta(reader);

    // node_count is untrusted (FNV-1a detects accidents, not forgery):
    // prove the payload actually holds n^2 cells before allocating n^2.
    const int n = snapshot.meta.node_count;
    const std::uint64_t cells =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    if (cells > reader.remaining() / 8)
        throw snapshot_io_error("read_snapshot: node count exceeds payload size");
    snapshot.estimate = DistanceMatrix(n);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) {
            const Weight value = reader.i64();
            check_estimate_cell(value);
            snapshot.estimate.at(u, v) = value;
        }

    snapshot.has_routing = decode_flag(reader, "routing flag");
    if (snapshot.has_routing) {
        if (cells > reader.remaining() / 4)
            throw snapshot_io_error("read_snapshot: routing table exceeds payload size");
        std::vector<NodeId> next_hops(static_cast<std::size_t>(cells));
        for (NodeId& hop : next_hops) {
            hop = reader.i32();
            check_next_hop(hop, n);
        }
        snapshot.routing = RoutingTables(n, std::move(next_hops));
    }
    if (!reader.exhausted())
        throw snapshot_io_error("read_snapshot: trailing bytes after payload");
    return snapshot;
}

// --- version 2: per-row delta+varint behind a row-offset table --------------
//
// Section layout (used for the estimate and, when present, the routing
// table):
//
//   offsets  (n+1) x u64   row i occupies blob[offsets[i], offsets[i+1])
//   blob     offsets[n] bytes of concatenated rows
//
// Each row is delta-encoded from 0: cell_j = prev + zigzag-varint, with
// prev starting at 0.  Every cell takes at least one byte, so a valid
// section's blob holds at least n bytes per row — the pre-allocation
// bound used against forged node counts.

template <class Cell>
void encode_v2_rows(std::string& payload, int n, const Cell* cells)
{
    std::string blob;
    std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (int u = 0; u < n; ++u) {
        std::int64_t prev = 0;
        const Cell* row = cells + static_cast<std::size_t>(u) * static_cast<std::size_t>(n);
        for (int v = 0; v < n; ++v) {
            const std::int64_t value = static_cast<std::int64_t>(row[v]);
            put_varint_i64(blob, value - prev);
            prev = value;
        }
        offsets[static_cast<std::size_t>(u) + 1] = blob.size();
    }
    for (const std::uint64_t offset : offsets) put_u64(payload, offset);
    payload += blob;
}

/// A validated v2 section: absolute blob position plus row offsets.
struct V2Section {
    std::vector<std::size_t> row_offsets; ///< n+1 entries, relative to blob
    std::size_t blob_offset = 0;          ///< absolute position in the payload
};

/// Reads and validates one section's offset table, advances the reader
/// past the blob.  All bounds are proven before any n-sized allocation.
[[nodiscard]] V2Section read_v2_section(ByteReader& reader, int n, const char* what)
{
    const std::uint64_t entries = static_cast<std::uint64_t>(n) + 1;
    if (entries > reader.remaining() / 8)
        throw snapshot_io_error(std::string("read_snapshot: node count exceeds payload size (") +
                                what + " offsets)");
    V2Section section;
    section.row_offsets.resize(static_cast<std::size_t>(entries));
    for (std::size_t i = 0; i < section.row_offsets.size(); ++i) {
        const std::uint64_t offset = reader.u64();
        if (offset > reader.remaining())
            throw snapshot_io_error(std::string("read_snapshot: ") + what +
                                    " row offset exceeds payload size");
        section.row_offsets[i] = static_cast<std::size_t>(offset);
    }
    if (section.row_offsets.front() != 0)
        throw snapshot_io_error(std::string("read_snapshot: ") + what +
                                " offsets do not start at zero");
    for (std::size_t i = 0; i + 1 < section.row_offsets.size(); ++i) {
        if (section.row_offsets[i + 1] < section.row_offsets[i])
            throw snapshot_io_error(std::string("read_snapshot: ") + what +
                                    " row offsets not monotone");
        // Every cell costs at least one varint byte: a shorter row can
        // only come from a forged header, so reject before decoding.
        if (section.row_offsets[i + 1] - section.row_offsets[i] < static_cast<std::size_t>(n))
            throw snapshot_io_error(std::string("read_snapshot: ") + what +
                                    " row shorter than the node count");
    }
    const std::size_t blob_size = section.row_offsets.back();
    if (blob_size > reader.remaining())
        throw snapshot_io_error(std::string("read_snapshot: ") + what +
                                " blob exceeds payload size");
    section.blob_offset = reader.position();
    (void)reader.bytes(blob_size);
    return section;
}

/// prev + delta with wrap-around semantics: a forged delta must reach
/// the range check below as a deterministic (aliased) value, never as
/// signed-overflow UB.  Unsigned wrap + the C++20 modular narrowing
/// conversion back to int64 make the addition well-defined for every
/// input.
[[nodiscard]] std::int64_t wrapping_add(std::int64_t prev, std::int64_t delta)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(prev) +
                                     static_cast<std::uint64_t>(delta));
}

void decode_weight_row(std::string_view row_bytes, int n, Weight* out)
{
    ByteReader reader(row_bytes);
    std::int64_t prev = 0;
    for (int v = 0; v < n; ++v) {
        const std::int64_t value = wrapping_add(prev, reader.varint_i64());
        check_estimate_cell(value);
        out[v] = value;
        prev = value;
    }
    if (!reader.exhausted())
        throw snapshot_io_error("read_snapshot: trailing bytes in estimate row");
}

void decode_hop_row(std::string_view row_bytes, int n, NodeId* out)
{
    ByteReader reader(row_bytes);
    std::int64_t prev = 0;
    for (int v = 0; v < n; ++v) {
        const std::int64_t value = wrapping_add(prev, reader.varint_i64());
        check_next_hop(value, n);
        out[v] = static_cast<NodeId>(value);
        prev = value;
    }
    if (!reader.exhausted())
        throw snapshot_io_error("read_snapshot: trailing bytes in routing row");
}

[[nodiscard]] std::string_view section_row(std::string_view payload, const V2Section& section,
                                           int u)
{
    const std::size_t begin = section.row_offsets[static_cast<std::size_t>(u)];
    const std::size_t end = section.row_offsets[static_cast<std::size_t>(u) + 1];
    return payload.substr(section.blob_offset + begin, end - begin);
}

[[nodiscard]] std::string encode_payload_v2(const OracleSnapshot& snapshot)
{
    const int n = snapshot.meta.node_count;
    std::string payload;
    encode_meta(payload, snapshot.meta);
    encode_v2_rows(payload, n, snapshot.estimate.data());
    put_u32(payload, snapshot.has_routing ? 1 : 0);
    if (snapshot.has_routing) {
        // RoutingTables exposes per-cell access only; gather rows once.
        std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
        for (NodeId u = 0; u < n; ++u)
            for (NodeId v = 0; v < n; ++v)
                hops[static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(v)] = snapshot.routing.next_hop(u, v);
        encode_v2_rows(payload, n, hops.data());
    }
    return payload;
}

[[nodiscard]] OracleSnapshot decode_payload_v2(std::string_view payload)
{
    ByteReader reader(payload);
    OracleSnapshot snapshot;
    snapshot.meta = decode_meta(reader);
    const int n = snapshot.meta.node_count;

    const V2Section estimate = read_v2_section(reader, n, "estimate");
    snapshot.estimate = DistanceMatrix(n);
    for (NodeId u = 0; u < n; ++u)
        decode_weight_row(section_row(payload, estimate, u), n,
                          snapshot.estimate.data() + static_cast<std::size_t>(u) *
                                                         static_cast<std::size_t>(n));

    snapshot.has_routing = decode_flag(reader, "routing flag");
    if (snapshot.has_routing) {
        const V2Section routing = read_v2_section(reader, n, "routing");
        std::vector<NodeId> hops(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
        for (NodeId u = 0; u < n; ++u)
            decode_hop_row(section_row(payload, routing, u), n,
                           hops.data() + static_cast<std::size_t>(u) *
                                             static_cast<std::size_t>(n));
        snapshot.routing = RoutingTables(n, std::move(hops));
    }
    if (!reader.exhausted())
        throw snapshot_io_error("read_snapshot: trailing bytes after payload");
    return snapshot;
}

[[nodiscard]] OracleSnapshot decode_payload(std::uint32_t version, std::string_view payload)
{
    try {
        return version == format_version(SnapshotFormat::v1_raw) ? decode_payload_v1(payload)
                                                                 : decode_payload_v2(payload);
    } catch (const decode_error& error) {
        throw snapshot_io_error(std::string("read_snapshot: ") + error.what());
    }
}

// Every unknown-version rejection goes through here so the message
// always names the version that was found, not just "unsupported".
[[noreturn]] void throw_unknown_version(const char* who, std::uint32_t version)
{
    throw snapshot_io_error(std::string(who) + ": unsupported snapshot format version " +
                            std::to_string(version) + " (this build understands 1.." +
                            std::to_string(kSnapshotFormatVersion) + ")");
}

void write_envelope(std::ostream& out, SnapshotFormat format, std::string_view payload,
                    const char* who)
{
    std::string header;
    header.append(kMagic.data(), kMagic.size());
    put_u32(header, format_version(format));
    put_u64(header, payload.size());

    std::string footer;
    put_u64(footer, fnv1a(payload));

    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    if (!out) throw snapshot_io_error(std::string(who) + ": stream write failed");
}

struct Envelope {
    std::uint32_t version = 0;
    std::string payload;
};

/// Reads magic + version + length + payload + checksum; verifies
/// everything except the version (callers gate on the formats they can
/// decode, so the error can point at the right loader).
[[nodiscard]] Envelope read_envelope(std::istream& in, const char* who)
{
    std::string header(kHeaderBytes, '\0');
    in.read(header.data(), static_cast<std::streamsize>(header.size()));
    if (static_cast<std::size_t>(in.gcount()) != header.size())
        throw snapshot_io_error(std::string(who) + ": truncated header");
    if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0)
        throw snapshot_io_error(std::string(who) + ": bad magic (not a ccq snapshot)");

    ByteReader fields(std::string_view(header).substr(kMagic.size()));
    Envelope envelope;
    envelope.version = fields.u32();
    const std::uint64_t payload_size = fields.u64();

    // The length field sits outside the checksummed payload, so it is
    // untrusted: read in bounded chunks instead of allocating it upfront,
    // so a corrupted huge length ends as "truncated payload" once the
    // stream runs dry rather than as a multi-GB allocation.
    std::string& payload = envelope.payload;
    constexpr std::uint64_t kChunk = 1 << 20;
    while (payload.size() < payload_size) {
        const std::uint64_t want = std::min<std::uint64_t>(kChunk, payload_size - payload.size());
        const std::size_t old_size = payload.size();
        payload.resize(old_size + want);
        in.read(payload.data() + old_size, static_cast<std::streamsize>(want));
        if (static_cast<std::uint64_t>(in.gcount()) != want)
            throw snapshot_io_error(std::string(who) + ": truncated payload");
    }

    std::string footer(kFooterBytes, '\0');
    in.read(footer.data(), static_cast<std::streamsize>(footer.size()));
    if (static_cast<std::size_t>(in.gcount()) != footer.size())
        throw snapshot_io_error(std::string(who) + ": truncated checksum");
    ByteReader footer_reader(footer);
    if (footer_reader.u64() != fnv1a(payload))
        throw snapshot_io_error(std::string(who) + ": checksum mismatch (corrupted snapshot)");
    return envelope;
}

} // namespace

const char* snapshot_format_name(SnapshotFormat format) noexcept
{
    switch (format) {
    case SnapshotFormat::v1_raw: return "v1-raw";
    case SnapshotFormat::v2_compressed: return "v2-compressed";
    case SnapshotFormat::v3_spanner: return "v3-spanner";
    }
    return "unknown";
}

SnapshotFormat peek_snapshot_format(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw snapshot_io_error("peek_snapshot_format: cannot open " + path);
    std::string header(kHeaderBytes, '\0');
    in.read(header.data(), static_cast<std::streamsize>(header.size()));
    if (static_cast<std::size_t>(in.gcount()) != header.size())
        throw snapshot_io_error("peek_snapshot_format: truncated header in " + path);
    if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0)
        throw snapshot_io_error("peek_snapshot_format: bad magic (not a ccq snapshot): " + path);
    ByteReader fields(std::string_view(header).substr(kMagic.size()));
    const std::uint32_t version = fields.u32();
    if (version < format_version(SnapshotFormat::v1_raw) || version > kSnapshotFormatVersion)
        throw_unknown_version("peek_snapshot_format", version);
    return static_cast<SnapshotFormat>(version);
}

OracleSnapshot OracleSnapshot::from_result(const Graph& source, const ApspResult& result,
                                           std::uint64_t build_seed,
                                           const RoutingTables* routing)
{
    CCQ_EXPECT(source.node_count() == result.estimate.size(),
               "OracleSnapshot::from_result: graph/result size mismatch");
    OracleSnapshot snapshot;
    snapshot.meta.node_count = source.node_count();
    snapshot.meta.edge_count = source.edge_count();
    snapshot.meta.directed = source.is_directed();
    snapshot.meta.max_weight = source.max_weight();
    snapshot.meta.algorithm = result.algorithm;
    snapshot.meta.claimed_stretch = result.claimed_stretch;
    snapshot.meta.total_rounds = result.ledger.total_rounds();
    snapshot.meta.total_words = result.ledger.total_words();
    snapshot.meta.build_seed = build_seed;
    snapshot.estimate = result.estimate;
    if (routing != nullptr) {
        CCQ_EXPECT(routing->size() == source.node_count(),
                   "OracleSnapshot::from_result: routing size mismatch");
        snapshot.has_routing = true;
        snapshot.routing = *routing;
    }
    return snapshot;
}

void write_snapshot(std::ostream& out, const OracleSnapshot& snapshot, SnapshotFormat format)
{
    obs::TraceSpan span("snapshot/write", "serve");
    const SnapshotMeta& meta = snapshot.meta;
    CCQ_EXPECT(meta.node_count == snapshot.estimate.size(),
               "write_snapshot: meta/estimate node count mismatch");
    CCQ_EXPECT(!snapshot.has_routing || snapshot.routing.size() == meta.node_count,
               "write_snapshot: routing node count mismatch");
    CCQ_EXPECT(format == SnapshotFormat::v1_raw || format == SnapshotFormat::v2_compressed,
               "write_snapshot: dense snapshots are v1 or v2 (v3 is write_sparse_snapshot)");

    const std::string payload = format == SnapshotFormat::v1_raw ? encode_payload_v1(snapshot)
                                                                 : encode_payload_v2(snapshot);
    write_envelope(out, format, payload, "write_snapshot");
}

OracleSnapshot read_snapshot(std::istream& in)
{
    obs::TraceSpan span("snapshot/read", "serve");
    const Envelope envelope = read_envelope(in, "read_snapshot");
    if (envelope.version == format_version(SnapshotFormat::v3_spanner))
        throw snapshot_io_error(
            "read_snapshot: format version 3 stores a sparse spanner, not a dense matrix; "
            "load it with load_sparse_snapshot or open_distance_source");
    if (envelope.version != format_version(SnapshotFormat::v1_raw) &&
        envelope.version != format_version(SnapshotFormat::v2_compressed))
        throw_unknown_version("read_snapshot", envelope.version);
    return decode_payload(envelope.version, envelope.payload);
}

void save_snapshot(const std::string& path, const OracleSnapshot& snapshot, SnapshotFormat format)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw snapshot_io_error("save_snapshot: cannot open " + path);
    write_snapshot(out, snapshot, format);
    out.flush();
    if (!out) throw snapshot_io_error("save_snapshot: write to " + path + " failed");
}

OracleSnapshot load_snapshot(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw snapshot_io_error("load_snapshot: cannot open " + path);
    return read_snapshot(in);
}

// --- version 3: sparse spanner edge list (CSR, delta+varint) ----------------

SparseSnapshot SparseSnapshot::from_spanner(const Graph& source, const SpannerResult& result,
                                            std::string construction, std::uint64_t build_seed)
{
    CCQ_EXPECT(source.node_count() == result.spanner.node_count(),
               "SparseSnapshot::from_spanner: graph/spanner size mismatch");
    CCQ_EXPECT(!source.is_directed(),
               "SparseSnapshot::from_spanner: spanners are for undirected graphs");
    SparseSnapshot snapshot;
    snapshot.meta.node_count = source.node_count();
    snapshot.meta.edge_count = source.edge_count();
    snapshot.meta.directed = false;
    snapshot.meta.max_weight = source.max_weight();
    snapshot.meta.algorithm = "spanner-" + construction;
    snapshot.meta.claimed_stretch = static_cast<double>(result.stretch_bound);
    snapshot.meta.build_seed = build_seed;
    snapshot.stretch_bound = result.stretch_bound;
    snapshot.parameter_k = result.parameter_k;
    snapshot.construction = std::move(construction);

    // Canonical edge list: u <= v, self-loops dropped, parallels collapsed
    // to their minimum weight, sorted by (u, v) — the order the CSR
    // encoding (strictly increasing targets per row) requires.
    std::vector<WeightedEdge> edges = result.spanner.edge_list();
    for (WeightedEdge& edge : edges)
        if (edge.u > edge.v) std::swap(edge.u, edge.v);
    std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
        if (a.u != b.u) return a.u < b.u;
        if (a.v != b.v) return a.v < b.v;
        return a.weight < b.weight;
    });
    for (const WeightedEdge& edge : edges) {
        if (edge.u == edge.v) continue;
        if (!snapshot.edges.empty() && snapshot.edges.back().u == edge.u &&
            snapshot.edges.back().v == edge.v)
            continue; // sorted by weight within (u, v): the kept one is minimal
        snapshot.edges.push_back(edge);
    }
    return snapshot;
}

Graph SparseSnapshot::spanner_graph() const
{
    Graph g(meta.node_count, Orientation::undirected);
    for (const WeightedEdge& edge : edges) g.add_edge(edge.u, edge.v, edge.weight);
    return g;
}

namespace {

[[nodiscard]] std::string encode_payload_v3(const SparseSnapshot& snapshot)
{
    const int n = snapshot.meta.node_count;
    std::string payload;
    encode_meta(payload, snapshot.meta);
    put_u32(payload, static_cast<std::uint32_t>(snapshot.stretch_bound));
    put_u32(payload, static_cast<std::uint32_t>(snapshot.parameter_k));
    put_string(payload, snapshot.construction);
    put_u64(payload, snapshot.edges.size());

    std::string blob;
    std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
    std::size_t next = 0;
    for (int u = 0; u < n; ++u) {
        NodeId prev = static_cast<NodeId>(u);
        while (next < snapshot.edges.size() && snapshot.edges[next].u == u) {
            const WeightedEdge& edge = snapshot.edges[next];
            CCQ_EXPECT(edge.v > prev && edge.v < n && edge.weight >= 0 &&
                           edge.weight < kInfinity,
                       "write_sparse_snapshot: edge list not canonical (sorted, u < v, "
                       "finite weights)");
            put_varint_u64(blob, static_cast<std::uint64_t>(edge.v - prev));
            put_varint_u64(blob, static_cast<std::uint64_t>(edge.weight));
            prev = edge.v;
            ++next;
        }
        offsets[static_cast<std::size_t>(u) + 1] = blob.size();
    }
    CCQ_EXPECT(next == snapshot.edges.size(),
               "write_sparse_snapshot: edge endpoints out of node range");
    for (const std::uint64_t offset : offsets) put_u64(payload, offset);
    payload += blob;
    return payload;
}

[[nodiscard]] SparseSnapshot decode_payload_v3(std::string_view payload)
{
    ByteReader reader(payload);
    SparseSnapshot snapshot;
    snapshot.meta = decode_meta(reader);
    const int n = snapshot.meta.node_count;
    if (snapshot.meta.directed)
        throw snapshot_io_error("read_sparse_snapshot: spanner snapshots are undirected");

    const std::uint32_t stretch = reader.u32();
    const std::uint32_t k = reader.u32();
    if (stretch < 1 || stretch > std::numeric_limits<std::int32_t>::max() || k < 1 ||
        k > std::numeric_limits<std::int32_t>::max())
        throw snapshot_io_error("read_sparse_snapshot: stretch/k out of range");
    snapshot.stretch_bound = static_cast<int>(stretch);
    snapshot.parameter_k = static_cast<int>(k);
    snapshot.construction = reader.str();

    // edge_count is untrusted (FNV-1a detects accidents, not forgery):
    // each edge costs at least 2 blob bytes (delta + weight varints), so
    // prove the payload can hold m edges before allocating m.
    const std::uint64_t m = reader.u64();
    if (m > reader.remaining() / 2)
        throw snapshot_io_error("read_sparse_snapshot: edge count exceeds payload size");

    const std::uint64_t entries = static_cast<std::uint64_t>(n) + 1;
    if (entries > reader.remaining() / 8)
        throw snapshot_io_error(
            "read_sparse_snapshot: node count exceeds payload size (spanner offsets)");
    std::vector<std::size_t> offsets(static_cast<std::size_t>(entries));
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        const std::uint64_t offset = reader.u64();
        if (offset > reader.remaining())
            throw snapshot_io_error(
                "read_sparse_snapshot: spanner row offset exceeds payload size");
        offsets[i] = static_cast<std::size_t>(offset);
    }
    if (offsets.front() != 0)
        throw snapshot_io_error("read_sparse_snapshot: spanner offsets do not start at zero");
    for (std::size_t i = 0; i + 1 < offsets.size(); ++i)
        if (offsets[i + 1] < offsets[i])
            throw snapshot_io_error("read_sparse_snapshot: spanner row offsets not monotone");
    const std::size_t blob_size = offsets.back();
    if (blob_size > reader.remaining())
        throw snapshot_io_error("read_sparse_snapshot: spanner blob exceeds payload size");
    const std::size_t blob_offset = reader.position();
    (void)reader.bytes(blob_size);
    if (!reader.exhausted())
        throw snapshot_io_error("read_sparse_snapshot: trailing bytes after payload");

    snapshot.edges.reserve(static_cast<std::size_t>(m));
    for (int u = 0; u < n; ++u) {
        const std::size_t begin = offsets[static_cast<std::size_t>(u)];
        const std::size_t end = offsets[static_cast<std::size_t>(u) + 1];
        ByteReader row(payload.substr(blob_offset + begin, end - begin));
        NodeId prev = static_cast<NodeId>(u);
        while (!row.exhausted()) {
            const std::uint64_t delta = row.varint_u64();
            // delta >= 1 keeps targets strictly increasing; the sum
            // check also rejects targets past the last node.
            if (delta == 0 ||
                delta > static_cast<std::uint64_t>(n) - static_cast<std::uint64_t>(prev) - 1)
                throw snapshot_io_error("read_sparse_snapshot: spanner target out of range");
            const NodeId target = static_cast<NodeId>(prev + static_cast<NodeId>(delta));
            const std::uint64_t weight = row.varint_u64();
            if (weight >= static_cast<std::uint64_t>(kInfinity))
                throw snapshot_io_error("read_sparse_snapshot: edge weight out of range");
            if (snapshot.edges.size() >= m)
                throw snapshot_io_error(
                    "read_sparse_snapshot: more edges than the declared count");
            snapshot.edges.push_back({static_cast<NodeId>(u), target,
                                      static_cast<Weight>(weight)});
            prev = target;
        }
    }
    if (snapshot.edges.size() != m)
        throw snapshot_io_error("read_sparse_snapshot: fewer edges than the declared count");
    return snapshot;
}

} // namespace

void write_sparse_snapshot(std::ostream& out, const SparseSnapshot& snapshot)
{
    obs::TraceSpan span("snapshot/write_sparse", "serve");
    CCQ_EXPECT(snapshot.meta.node_count >= 0, "write_sparse_snapshot: negative node count");
    write_envelope(out, SnapshotFormat::v3_spanner, encode_payload_v3(snapshot),
                   "write_sparse_snapshot");
}

SparseSnapshot read_sparse_snapshot(std::istream& in)
{
    obs::TraceSpan span("snapshot/read_sparse", "serve");
    const Envelope envelope = read_envelope(in, "read_sparse_snapshot");
    if (envelope.version == format_version(SnapshotFormat::v1_raw) ||
        envelope.version == format_version(SnapshotFormat::v2_compressed))
        throw snapshot_io_error("read_sparse_snapshot: format version " +
                                std::to_string(envelope.version) +
                                " is a dense snapshot; load it with load_snapshot");
    if (envelope.version != format_version(SnapshotFormat::v3_spanner))
        throw_unknown_version("read_sparse_snapshot", envelope.version);
    try {
        return decode_payload_v3(envelope.payload);
    } catch (const decode_error& error) {
        throw snapshot_io_error(std::string("read_sparse_snapshot: ") + error.what());
    }
}

void save_sparse_snapshot(const std::string& path, const SparseSnapshot& snapshot)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw snapshot_io_error("save_sparse_snapshot: cannot open " + path);
    write_sparse_snapshot(out, snapshot);
    out.flush();
    if (!out) throw snapshot_io_error("save_sparse_snapshot: write to " + path + " failed");
}

SparseSnapshot load_sparse_snapshot(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw snapshot_io_error("load_sparse_snapshot: cannot open " + path);
    return read_sparse_snapshot(in);
}

// --- MappedSnapshot ---------------------------------------------------------

MappedSnapshot::MappedSnapshot(const std::string& path)
{
    obs::TraceSpan span("snapshot/mmap_open", "serve");
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw snapshot_io_error("MappedSnapshot: cannot open " + path);
    struct stat info = {};
    if (::fstat(fd, &info) != 0) {
        ::close(fd);
        throw snapshot_io_error("MappedSnapshot: cannot stat " + path);
    }
    map_size_ = static_cast<std::size_t>(info.st_size);
    file_bytes_ = static_cast<std::uint64_t>(info.st_size);
    if (map_size_ < kHeaderBytes + kFooterBytes) {
        ::close(fd);
        throw snapshot_io_error("MappedSnapshot: truncated header");
    }
    map_ = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        throw snapshot_io_error("MappedSnapshot: mmap failed for " + path);
    }

    try {
        const char* bytes = static_cast<const char*>(map_);
        if (std::memcmp(bytes, kMagic.data(), kMagic.size()) != 0)
            throw snapshot_io_error("MappedSnapshot: bad magic (not a ccq snapshot)");
        ByteReader header(std::string_view(bytes + kMagic.size(), 4 + 8));
        version_ = header.u32();
        if (version_ == ccq::format_version(SnapshotFormat::v3_spanner))
            throw snapshot_io_error(
                "MappedSnapshot: format version 3 stores a sparse spanner, not a dense "
                "matrix; load it with load_sparse_snapshot or open_distance_source");
        if (version_ != ccq::format_version(SnapshotFormat::v1_raw) &&
            version_ != ccq::format_version(SnapshotFormat::v2_compressed))
            throw_unknown_version("MappedSnapshot", version_);
        const std::uint64_t payload_size = header.u64();
        if (payload_size != map_size_ - kHeaderBytes - kFooterBytes)
            throw snapshot_io_error(
                "MappedSnapshot: payload length does not match the file size");
        payload_ = bytes + kHeaderBytes;
        payload_size_ = static_cast<std::size_t>(payload_size);

        // One sequential pass at open: afterwards every lazily decoded row
        // is covered by the verified checksum.
        ByteReader footer(std::string_view(payload_ + payload_size_, kFooterBytes));
        if (footer.u64() != fnv1a(std::string_view(payload_, payload_size_)))
            throw snapshot_io_error("MappedSnapshot: checksum mismatch (corrupted snapshot)");

        const std::string_view payload(payload_, payload_size_);
        ByteReader reader(payload);
        try {
            meta_ = decode_meta(reader);
            const int n = meta_.node_count;
            const std::uint64_t cells =
                static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
            if (version_ == ccq::format_version(SnapshotFormat::v1_raw)) {
                if (cells > reader.remaining() / 8)
                    throw snapshot_io_error(
                        "read_snapshot: node count exceeds payload size");
                v1_estimate_offset_ = reader.position();
                // v1 cells are later read in place with no per-read
                // validation, so the load-time invariant check happens
                // here: one extra sequential pass over bytes the
                // checksum pass above already paged in.
                {
                    ByteReader cells_reader(
                        payload.substr(v1_estimate_offset_,
                                       static_cast<std::size_t>(cells) * 8));
                    for (std::uint64_t i = 0; i < cells; ++i)
                        check_estimate_cell(cells_reader.i64());
                }
                (void)reader.bytes(static_cast<std::size_t>(cells) * 8);
                has_routing_ = decode_flag(reader, "routing flag");
                if (has_routing_) {
                    if (cells > reader.remaining() / 4)
                        throw snapshot_io_error(
                            "read_snapshot: routing table exceeds payload size");
                    v1_routing_offset_ = reader.position();
                    ByteReader hops_reader(
                        payload.substr(v1_routing_offset_,
                                       static_cast<std::size_t>(cells) * 4));
                    for (std::uint64_t i = 0; i < cells; ++i)
                        check_next_hop(hops_reader.i32(), n);
                    (void)reader.bytes(static_cast<std::size_t>(cells) * 4);
                }
            } else {
                const V2Section estimate = read_v2_section(reader, n, "estimate");
                est_row_offsets_.assign(estimate.row_offsets.begin(),
                                        estimate.row_offsets.end());
                est_blob_offset_ = estimate.blob_offset;
                est_rows_ = std::make_unique<WeightRowSlot[]>(static_cast<std::size_t>(n));
                has_routing_ = decode_flag(reader, "routing flag");
                if (has_routing_) {
                    const V2Section routing = read_v2_section(reader, n, "routing");
                    hop_row_offsets_.assign(routing.row_offsets.begin(),
                                            routing.row_offsets.end());
                    hop_blob_offset_ = routing.blob_offset;
                    hop_rows_ = std::make_unique<HopRowSlot[]>(static_cast<std::size_t>(n));
                }
            }
            if (!reader.exhausted())
                throw snapshot_io_error("read_snapshot: trailing bytes after payload");
        } catch (const decode_error& error) {
            throw snapshot_io_error(std::string("MappedSnapshot: ") + error.what());
        }
    } catch (...) {
        ::munmap(map_, map_size_);
        map_ = nullptr;
        throw;
    }
}

MappedSnapshot::~MappedSnapshot()
{
    if (map_ != nullptr) ::munmap(map_, map_size_);
}

void MappedSnapshot::check_node(NodeId v, const char* what) const
{
    CCQ_EXPECT(v >= 0 && v < meta_.node_count, what);
}

const std::vector<Weight>& MappedSnapshot::estimate_row(NodeId u) const
{
    WeightRowSlot& slot = est_rows_[static_cast<std::size_t>(u)];
    std::call_once(slot.once, [&] {
        const int n = meta_.node_count;
        const std::size_t begin = est_row_offsets_[static_cast<std::size_t>(u)];
        const std::size_t end = est_row_offsets_[static_cast<std::size_t>(u) + 1];
        std::vector<Weight> cells(static_cast<std::size_t>(n));
        try {
            decode_weight_row(
                std::string_view(payload_ + est_blob_offset_ + begin, end - begin), n,
                cells.data());
        } catch (const decode_error& error) {
            throw snapshot_io_error(std::string("MappedSnapshot: ") + error.what());
        }
        slot.cells = std::move(cells);
    });
    return slot.cells;
}

const std::vector<NodeId>& MappedSnapshot::hop_row(NodeId u) const
{
    HopRowSlot& slot = hop_rows_[static_cast<std::size_t>(u)];
    std::call_once(slot.once, [&] {
        const int n = meta_.node_count;
        const std::size_t begin = hop_row_offsets_[static_cast<std::size_t>(u)];
        const std::size_t end = hop_row_offsets_[static_cast<std::size_t>(u) + 1];
        std::vector<NodeId> hops(static_cast<std::size_t>(n));
        try {
            decode_hop_row(std::string_view(payload_ + hop_blob_offset_ + begin, end - begin),
                           n, hops.data());
        } catch (const decode_error& error) {
            throw snapshot_io_error(std::string("MappedSnapshot: ") + error.what());
        }
        slot.hops = std::move(hops);
    });
    return slot.hops;
}

Weight MappedSnapshot::distance(NodeId from, NodeId to) const
{
    check_node(from, "MappedSnapshot::distance: node out of range");
    check_node(to, "MappedSnapshot::distance: node out of range");
    if (version_ == ccq::format_version(SnapshotFormat::v1_raw)) {
        const std::size_t cell = static_cast<std::size_t>(from) *
                                     static_cast<std::size_t>(meta_.node_count) +
                                 static_cast<std::size_t>(to);
        ByteReader reader(std::string_view(payload_ + v1_estimate_offset_ + cell * 8, 8));
        return reader.i64();
    }
    return estimate_row(from)[static_cast<std::size_t>(to)];
}

NodeId MappedSnapshot::next_hop(NodeId from, NodeId to) const
{
    check_node(from, "MappedSnapshot::next_hop: node out of range");
    check_node(to, "MappedSnapshot::next_hop: node out of range");
    CCQ_EXPECT(has_routing_, "MappedSnapshot::next_hop: snapshot has no routing tables");
    if (version_ == ccq::format_version(SnapshotFormat::v1_raw)) {
        const std::size_t cell = static_cast<std::size_t>(from) *
                                     static_cast<std::size_t>(meta_.node_count) +
                                 static_cast<std::size_t>(to);
        ByteReader reader(std::string_view(payload_ + v1_routing_offset_ + cell * 4, 4));
        return reader.i32();
    }
    return hop_row(from)[static_cast<std::size_t>(to)];
}

std::vector<NodeId> MappedSnapshot::route(NodeId from, NodeId to) const
{
    check_node(from, "MappedSnapshot::route: node out of range");
    check_node(to, "MappedSnapshot::route: node out of range");
    CCQ_EXPECT(has_routing_, "MappedSnapshot::route: snapshot has no routing tables");
    const int n = meta_.node_count;
    std::vector<NodeId> path{from};
    NodeId current = from;
    // Same hardening as RoutingTables::route: hop ranges are validated
    // at load time in both codecs, but in-range hops can still form a
    // cycle, so the walk stays hop-budgeted and ends as unreachable
    // instead of looping.
    for (int steps = 0; current != to; ++steps) {
        if (steps >= n) return {};
        const NodeId next = next_hop(current, to);
        if (next < 0 || next >= n) return {};
        path.push_back(next);
        current = next;
    }
    return path;
}

OracleSnapshot MappedSnapshot::materialize() const
{
    return decode_payload(version_, std::string_view(payload_, payload_size_));
}

} // namespace ccq
