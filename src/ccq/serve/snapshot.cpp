#include "ccq/serve/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace ccq {
namespace {

constexpr std::array<char, 8> kMagic = {'C', 'C', 'Q', 'S', 'N', 'A', 'P', '\n'};

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t hash = kFnvOffset;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnvPrime;
    }
    return hash;
}

// --- little-endian primitive encoding ---------------------------------------

void put_u64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }
void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }

void put_double(std::string& out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s)
{
    CCQ_EXPECT(s.size() <= std::numeric_limits<std::uint32_t>::max(),
               "write_snapshot: string too long");
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/// Bounds-checked reader over the in-memory payload.
class Reader {
public:
    explicit Reader(const std::string& bytes) : bytes_(bytes) {}

    [[nodiscard]] std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    [[nodiscard]] std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    [[nodiscard]] double f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    [[nodiscard]] std::string str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s = bytes_.substr(pos_, len);
        pos_ += len;
        return s;
    }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
    [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

private:
    void need(std::size_t count) const
    {
        if (bytes_.size() - pos_ < count)
            throw snapshot_io_error("read_snapshot: payload ends mid-field");
    }

    const std::string& bytes_;
    std::size_t pos_ = 0;
};

[[nodiscard]] std::string encode_payload(const OracleSnapshot& snapshot)
{
    const SnapshotMeta& meta = snapshot.meta;
    CCQ_EXPECT(meta.node_count == snapshot.estimate.size(),
               "write_snapshot: meta/estimate node count mismatch");
    CCQ_EXPECT(!snapshot.has_routing || snapshot.routing.size() == meta.node_count,
               "write_snapshot: routing node count mismatch");

    const int n = meta.node_count;
    std::string payload;
    const std::size_t cells = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    payload.reserve(64 + meta.algorithm.size() + cells * (snapshot.has_routing ? 12 : 8));

    put_i32(payload, n);
    put_u64(payload, meta.edge_count);
    put_u32(payload, meta.directed ? 1 : 0);
    put_i64(payload, meta.max_weight);
    put_string(payload, meta.algorithm);
    put_double(payload, meta.claimed_stretch);
    put_double(payload, meta.total_rounds);
    put_u64(payload, meta.total_words);
    put_u64(payload, meta.build_seed);

    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) put_i64(payload, snapshot.estimate.at(u, v));

    put_u32(payload, snapshot.has_routing ? 1 : 0);
    if (snapshot.has_routing)
        for (NodeId u = 0; u < n; ++u)
            for (NodeId v = 0; v < n; ++v) put_i32(payload, snapshot.routing.next_hop(u, v));
    return payload;
}

[[nodiscard]] OracleSnapshot decode_payload(const std::string& payload)
{
    Reader reader(payload);
    OracleSnapshot snapshot;
    SnapshotMeta& meta = snapshot.meta;

    meta.node_count = reader.i32();
    if (meta.node_count < 0) throw snapshot_io_error("read_snapshot: negative node count");
    meta.edge_count = reader.u64();
    const std::uint32_t directed = reader.u32();
    if (directed > 1) throw snapshot_io_error("read_snapshot: malformed orientation flag");
    meta.directed = directed == 1;
    meta.max_weight = reader.i64();
    meta.algorithm = reader.str();
    meta.claimed_stretch = reader.f64();
    meta.total_rounds = reader.f64();
    meta.total_words = reader.u64();
    meta.build_seed = reader.u64();

    // node_count is untrusted (FNV-1a detects accidents, not forgery):
    // prove the payload actually holds n^2 cells before allocating n^2.
    const int n = meta.node_count;
    const std::uint64_t cells =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n);
    if (cells > reader.remaining() / 8)
        throw snapshot_io_error("read_snapshot: node count exceeds payload size");
    snapshot.estimate = DistanceMatrix(n);
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = 0; v < n; ++v) snapshot.estimate.at(u, v) = reader.i64();

    const std::uint32_t has_routing = reader.u32();
    if (has_routing > 1) throw snapshot_io_error("read_snapshot: malformed routing flag");
    snapshot.has_routing = has_routing == 1;
    if (snapshot.has_routing) {
        if (cells > reader.remaining() / 4)
            throw snapshot_io_error("read_snapshot: routing table exceeds payload size");
        std::vector<NodeId> next_hops(static_cast<std::size_t>(cells));
        for (NodeId& hop : next_hops) hop = reader.i32();
        snapshot.routing = RoutingTables(n, std::move(next_hops));
    }
    if (!reader.exhausted())
        throw snapshot_io_error("read_snapshot: trailing bytes after payload");
    return snapshot;
}

} // namespace

OracleSnapshot OracleSnapshot::from_result(const Graph& source, const ApspResult& result,
                                           std::uint64_t build_seed,
                                           const RoutingTables* routing)
{
    CCQ_EXPECT(source.node_count() == result.estimate.size(),
               "OracleSnapshot::from_result: graph/result size mismatch");
    OracleSnapshot snapshot;
    snapshot.meta.node_count = source.node_count();
    snapshot.meta.edge_count = source.edge_count();
    snapshot.meta.directed = source.is_directed();
    snapshot.meta.max_weight = source.max_weight();
    snapshot.meta.algorithm = result.algorithm;
    snapshot.meta.claimed_stretch = result.claimed_stretch;
    snapshot.meta.total_rounds = result.ledger.total_rounds();
    snapshot.meta.total_words = result.ledger.total_words();
    snapshot.meta.build_seed = build_seed;
    snapshot.estimate = result.estimate;
    if (routing != nullptr) {
        CCQ_EXPECT(routing->size() == source.node_count(),
                   "OracleSnapshot::from_result: routing size mismatch");
        snapshot.has_routing = true;
        snapshot.routing = *routing;
    }
    return snapshot;
}

void write_snapshot(std::ostream& out, const OracleSnapshot& snapshot)
{
    const std::string payload = encode_payload(snapshot);

    std::string header;
    header.append(kMagic.data(), kMagic.size());
    put_u32(header, kSnapshotFormatVersion);
    put_u64(header, payload.size());

    std::string footer;
    put_u64(footer, fnv1a(payload));

    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    if (!out) throw snapshot_io_error("write_snapshot: stream write failed");
}

OracleSnapshot read_snapshot(std::istream& in)
{
    std::string header(kMagic.size() + 4 + 8, '\0');
    in.read(header.data(), static_cast<std::streamsize>(header.size()));
    if (static_cast<std::size_t>(in.gcount()) != header.size())
        throw snapshot_io_error("read_snapshot: truncated header");
    if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0)
        throw snapshot_io_error("read_snapshot: bad magic (not a ccq snapshot)");

    const std::string after_magic = header.substr(kMagic.size());
    Reader fields(after_magic);
    const std::uint32_t version = fields.u32();
    if (version != kSnapshotFormatVersion)
        throw snapshot_io_error("read_snapshot: unsupported format version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kSnapshotFormatVersion) + ")");
    const std::uint64_t payload_size = fields.u64();

    // The length field sits outside the checksummed payload, so it is
    // untrusted: read in bounded chunks instead of allocating it upfront,
    // so a corrupted huge length ends as "truncated payload" once the
    // stream runs dry rather than as a multi-GB allocation.
    std::string payload;
    constexpr std::uint64_t kChunk = 1 << 20;
    while (payload.size() < payload_size) {
        const std::uint64_t want = std::min<std::uint64_t>(kChunk, payload_size - payload.size());
        const std::size_t old_size = payload.size();
        payload.resize(old_size + want);
        in.read(payload.data() + old_size, static_cast<std::streamsize>(want));
        if (static_cast<std::uint64_t>(in.gcount()) != want)
            throw snapshot_io_error("read_snapshot: truncated payload");
    }

    std::string footer(8, '\0');
    in.read(footer.data(), static_cast<std::streamsize>(footer.size()));
    if (static_cast<std::size_t>(in.gcount()) != footer.size())
        throw snapshot_io_error("read_snapshot: truncated checksum");
    Reader footer_reader(footer);
    const std::uint64_t stored = footer_reader.u64();
    if (stored != fnv1a(payload))
        throw snapshot_io_error("read_snapshot: checksum mismatch (corrupted snapshot)");

    return decode_payload(payload);
}

void save_snapshot(const std::string& path, const OracleSnapshot& snapshot)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) throw snapshot_io_error("save_snapshot: cannot open " + path);
    write_snapshot(out, snapshot);
    out.flush();
    if (!out) throw snapshot_io_error("save_snapshot: write to " + path + " failed");
}

OracleSnapshot load_snapshot(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) throw snapshot_io_error("load_snapshot: cannot open " + path);
    return read_snapshot(in);
}

} // namespace ccq
