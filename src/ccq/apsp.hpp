// Umbrella header: the public API of the ccq library.
//
// Quick start:
//
//   ccq::Graph g = ccq::erdos_renyi(512, 0.05, {1, 100}, rng);
//   ccq::ApspResult r = ccq::apsp_general(g);   // Theorem 1.1
//   // r.estimate.at(u, v): distance estimate
//   // r.claimed_stretch:   guaranteed approximation factor
//   // r.ledger:            Congested-Clique round accounting
//
// Module map:
//
//   common/   scalar types, checks, RNG, thread pool
//   clique/   Congested-Clique transport + round ledger (the cost model)
//   matrix/   dense/sparse min-plus algebra and the blocked engine
//   graph/    graph type, generators, exact oracles, IO, metrics
//   hopset/ knearest/ skeleton/ spanner/ scaling/ mst/   paper stages
//   core/     composed algorithms (Theorems 1.1/1.2/7.1/8.1), baselines,
//             the DistanceOracle facade, and next-hop routing tables
//   serve/    build-once/serve-many layer: snapshot persistence
//             (serve/snapshot.hpp: dense codecs v1/v2, the sparse
//             spanner codec v3, and mmap-backed loading), the
//             DistanceSource read-path abstraction over dense, mapped,
//             and spanner-backed oracles (serve/distance_source.hpp),
//             and the concurrent query engine (serve/query_engine.hpp),
//             fronted by tools/ccq_serve.cpp — formats and contract in
//             docs/SNAPSHOTS.md
//   net/      networked serving: length-prefixed framed protocol
//             (net/protocol.hpp, spec in docs/PROTOCOL.md), TCP/stdio
//             transports (net/socket.hpp), the multiplexing Server
//             (net/server.hpp; thread-per-connection or the epoll
//             event loop of net/epoll_server.hpp) and the pipelining
//             Client/ClientPool library (net/client.hpp), fronted by
//             tools/ccq_served.cpp + tools/ccq_client.cpp
//   obs/      observability: lock-free metrics + Prometheus registry
//             (obs/metrics.hpp, scraped via the `metrics` op), the
//             chrome://tracing span tracer (obs/trace.hpp), the
//             flight recorder of recent requests (obs/flight.hpp,
//             dumped via the `flight` op), hardware perf counters
//             (obs/perf.hpp), and rate-limited structured stderr
//             logging (obs/log.hpp) — see docs/OBSERVABILITY.md
//
// See DESIGN.md for details and EXPERIMENTS.md for the measured
// reproduction of every quantitative claim.
#ifndef CCQ_APSP_HPP
#define CCQ_APSP_HPP

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/core/loglog_apsp.hpp"
#include "ccq/core/oracle.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/core/general_apsp.hpp"
#include "ccq/core/reduction.hpp"
#include "ccq/core/small_diameter.hpp"
#include "ccq/core/stretch.hpp"
#include "ccq/core/tradeoff.hpp"
#include "ccq/core/zero_weights.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/graph/generators.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/graph/io.hpp"
#include "ccq/graph/metrics.hpp"
#include "ccq/net/client.hpp"
#include "ccq/net/server.hpp"
#include "ccq/obs/flight.hpp"
#include "ccq/obs/log.hpp"
#include "ccq/obs/metrics.hpp"
#include "ccq/obs/perf.hpp"
#include "ccq/obs/trace.hpp"
#include "ccq/serve/distance_source.hpp"
#include "ccq/serve/query_engine.hpp"
#include "ccq/serve/snapshot.hpp"

#endif // CCQ_APSP_HPP
