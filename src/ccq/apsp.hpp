// Umbrella header: the public API of the ccq library.
//
// Quick start:
//
//   ccq::Graph g = ccq::erdos_renyi(512, 0.05, {1, 100}, rng);
//   ccq::ApspResult r = ccq::apsp_general(g);   // Theorem 1.1
//   // r.estimate.at(u, v): distance estimate
//   // r.claimed_stretch:   guaranteed approximation factor
//   // r.ledger:            Congested-Clique round accounting
//
// See DESIGN.md for the module map and EXPERIMENTS.md for the measured
// reproduction of every quantitative claim.
#ifndef CCQ_APSP_HPP
#define CCQ_APSP_HPP

#include "ccq/core/apsp_result.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/core/loglog_apsp.hpp"
#include "ccq/core/oracle.hpp"
#include "ccq/core/routing.hpp"
#include "ccq/core/general_apsp.hpp"
#include "ccq/core/reduction.hpp"
#include "ccq/core/small_diameter.hpp"
#include "ccq/core/stretch.hpp"
#include "ccq/core/tradeoff.hpp"
#include "ccq/core/zero_weights.hpp"
#include "ccq/graph/exact.hpp"
#include "ccq/graph/generators.hpp"
#include "ccq/graph/graph.hpp"
#include "ccq/graph/io.hpp"
#include "ccq/graph/metrics.hpp"

#endif // CCQ_APSP_HPP
