#include "ccq/obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <thread>

#include "ccq/common/check.hpp"

namespace ccq::obs {

// ---------------------------------------------------------------- Histogram

Histogram::Histogram() : shards_(new Shard[kShards])
{
    for (std::size_t s = 0; s < kShards; ++s) {
        for (auto& c : shards_[s].counts) c.store(0, std::memory_order_relaxed);
        shards_[s].sum.store(0, std::memory_order_relaxed);
    }
}

std::size_t Histogram::shard_of_this_thread() noexcept
{
    // Hash the thread id once per thread; kShards is a power of two.
    static thread_local const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kShards - 1);
    return shard;
}

void Histogram::record(std::int64_t value) noexcept
{
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    Shard& shard = shards_[shard_of_this_thread()];
    shard.counts[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept
{
    HistogramSnapshot snap;
    for (std::size_t s = 0; s < kShards; ++s) {
        for (int i = 0; i < kHistogramBuckets; ++i)
            snap.counts[static_cast<std::size_t>(i)] +=
                shards_[s].counts[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
        snap.sum += shards_[s].sum.load(std::memory_order_relaxed);
    }
    return snap;
}

double histogram_quantile(const HistogramSnapshot& snap, double q) noexcept
{
    const std::uint64_t total = snap.total();
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based: ceil(q * total),
    // clamped into [1, total].
    double rank = q * static_cast<double>(total);
    if (rank < 1.0) rank = 1.0;
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
        const std::uint64_t count = snap.counts[static_cast<std::size_t>(i)];
        if (count == 0) continue;
        const double after = static_cast<double>(cumulative + count);
        if (after + 1e-9 < rank) {
            cumulative += count;
            continue;
        }
        if (i == 0) return 0.0; // bucket 0 holds exactly 0
        // Bucket i covers (2^(i-1), 2^i - 1]; interpolate linearly
        // between its exclusive lower and inclusive upper bound.
        const double lower = static_cast<double>(Histogram::bucket_upper_bound(i - 1));
        if (i == kHistogramBuckets - 1) return lower; // +Inf bucket: clamp
        const double upper = static_cast<double>(Histogram::bucket_upper_bound(i));
        const double within = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(count);
        return lower + (upper - lower) * within;
    }
    return static_cast<double>(Histogram::bucket_upper_bound(kHistogramBuckets - 2));
}

// ------------------------------------------------------------ text helpers

namespace {

void append_escaped_label_value(std::string& out, const std::string& value)
{
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
}

void append_label_block(std::string& out, const Labels& labels)
{
    if (labels.empty()) return;
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += "=\"";
        append_escaped_label_value(out, value);
        out += '"';
    }
    out += '}';
}

/// Like append_label_block but with one extra label appended (used
/// for the histogram "le" label).
void append_label_block_with(std::string& out, const Labels& labels, const char* extra_key,
                             const std::string& extra_value)
{
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += "=\"";
        append_escaped_label_value(out, value);
        out += '"';
    }
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
    out += '}';
}

} // namespace

void append_header(std::string& out, const std::string& name, const std::string& help,
                   const char* type)
{
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

void append_sample(std::string& out, const std::string& name, const Labels& labels,
                   std::uint64_t value)
{
    out += name;
    append_label_block(out, labels);
    char buf[32];
    std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
    out += buf;
}

void append_sample(std::string& out, const std::string& name, const Labels& labels,
                   std::int64_t value)
{
    out += name;
    append_label_block(out, labels);
    char buf[32];
    std::snprintf(buf, sizeof buf, " %" PRId64 "\n", value);
    out += buf;
}

void append_sample(std::string& out, const std::string& name, const Labels& labels, double value)
{
    out += name;
    append_label_block(out, labels);
    char buf[48];
    std::snprintf(buf, sizeof buf, " %.9g\n", value);
    out += buf;
}

void append_histogram(std::string& out, const std::string& name, const Labels& labels,
                      const HistogramSnapshot& snap)
{
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
        cumulative += snap.counts[static_cast<std::size_t>(i)];
        // Skip interior empty buckets but always emit the +Inf bound.
        if (snap.counts[static_cast<std::size_t>(i)] == 0 && i != kHistogramBuckets - 1 && i != 0)
            continue;
        const std::uint64_t bound = Histogram::bucket_upper_bound(i);
        std::string le = bound == UINT64_MAX ? "+Inf" : std::to_string(bound);
        out += name;
        out += "_bucket";
        append_label_block_with(out, labels, "le", le);
        char buf[32];
        std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", cumulative);
        out += buf;
    }
    append_sample(out, name + "_sum", labels, snap.sum);
    append_sample(out, name + "_count", labels, cumulative);
}

// ------------------------------------------------------------------ Registry

Registry::Family& Registry::family(const std::string& name, const std::string& help, char kind)
{
    for (auto& fam : families_) {
        if (fam->name == name) {
            CCQ_EXPECT(fam->kind == kind,
                       "metric '" + name + "' registered twice with different kinds");
            return *fam;
        }
    }
    auto fam = std::make_unique<Family>();
    fam->name = name;
    fam->help = help;
    fam->kind = kind;
    families_.push_back(std::move(fam));
    return *families_.back();
}

Registry::Instance& Registry::instance(Family& fam, Labels&& labels)
{
    for (auto& inst : fam.instances)
        if (inst.labels == labels) return inst;
    fam.instances.push_back(Instance{std::move(labels), nullptr, nullptr, nullptr});
    return fam.instances.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help, Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instance& inst = instance(family(name, help, 'c'), std::move(labels));
    if (!inst.counter) inst.counter = std::make_unique<Counter>();
    return *inst.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help, Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instance& inst = instance(family(name, help, 'g'), std::move(labels));
    if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
    return *inst.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help, Labels labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instance& inst = instance(family(name, help, 'h'), std::move(labels));
    if (!inst.histogram) inst.histogram = std::make_unique<Histogram>();
    return *inst.histogram;
}

void Registry::add_collector(std::function<void(std::string&)> collect)
{
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.push_back(std::move(collect));
}

std::string Registry::render() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(4096);
    for (const auto& fam : families_) {
        const char* type = fam->kind == 'c'   ? "counter"
                           : fam->kind == 'g' ? "gauge"
                                              : "histogram";
        append_header(out, fam->name, fam->help, type);
        for (const auto& inst : fam->instances) {
            switch (fam->kind) {
            case 'c': append_sample(out, fam->name, inst.labels, inst.counter->value()); break;
            case 'g': append_sample(out, fam->name, inst.labels, inst.gauge->value()); break;
            default: append_histogram(out, fam->name, inst.labels, inst.histogram->snapshot());
            }
        }
    }
    for (const auto& collect : collectors_) collect(out);
    return out;
}

} // namespace ccq::obs
