#include "ccq/obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "ccq/common/check.hpp"

namespace ccq::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::info)};
// Defaults: sites burst up to 32 lines, then refill at 16 lines/sec.
std::atomic<std::uint64_t> g_rate_tokens_per_sec{16};
std::atomic<std::uint64_t> g_rate_burst{32};

const char* level_name(LogLevel level) noexcept
{
    switch (level) {
    case LogLevel::error: return "error";
    case LogLevel::warn: return "warn ";
    case LogLevel::info: return "info ";
    default: return "debug";
    }
}

double uptime_seconds() noexcept
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Touch the start time at static-init so the first log line is near 0.
[[maybe_unused]] const double g_init_uptime = uptime_seconds();

} // namespace

void set_log_level(LogLevel level) noexcept
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept
{
    return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name)
{
    if (name == "error") return LogLevel::error;
    if (name == "warn") return LogLevel::warn;
    if (name == "info") return LogLevel::info;
    if (name == "debug") return LogLevel::debug;
    CCQ_EXPECT(false, "unknown log level '" + name + "' (expected error|warn|info|debug)");
    return LogLevel::info; // unreachable
}

void log(LogLevel level, const char* fmt, ...)
{
    if (!log_enabled(level)) return;
    char message[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof message, fmt, args);
    va_end(args);
    std::fprintf(stderr, "[%13.6f] %s ccq: %s\n", uptime_seconds(), level_name(level), message);
}

void set_log_rate_limit(std::uint64_t tokens_per_sec, std::uint64_t burst) noexcept
{
    g_rate_tokens_per_sec.store(tokens_per_sec, std::memory_order_relaxed);
    g_rate_burst.store(std::min<std::uint64_t>(burst, 0xffff), std::memory_order_relaxed);
}

std::uint64_t log_rate_tokens_per_sec() noexcept
{
    return g_rate_tokens_per_sec.load(std::memory_order_relaxed);
}

std::uint64_t log_rate_burst() noexcept
{
    return g_rate_burst.load(std::memory_order_relaxed);
}

bool log_site_admit(LogSite& site, std::uint64_t now_us, std::uint64_t tokens_per_sec,
                    std::uint64_t burst) noexcept
{
    if (tokens_per_sec == 0) return true;
    burst = std::min<std::uint64_t>(std::max<std::uint64_t>(burst, 1), 0xffff);
    std::uint64_t state = site.state.load(std::memory_order_relaxed);
    for (;;) {
        std::uint64_t last = state >> 16;
        std::uint64_t tokens = state & 0xffff;
        if (state == 0) {
            // Fresh site: start with a full bucket.
            last = now_us;
            tokens = burst;
        } else if (now_us > last) {
            // Refill in whole tokens; advancing `last` only when at
            // least one accrued keeps sub-token elapsed time banked.
            const std::uint64_t refill = (now_us - last) * tokens_per_sec / 1000000;
            if (refill > 0) {
                tokens = std::min(burst, tokens + refill);
                last = now_us;
            }
        }
        if (tokens == 0) {
            site.suppressed.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        const std::uint64_t next = (last << 16) | (tokens - 1);
        if (site.state.compare_exchange_weak(state, next, std::memory_order_relaxed)) return true;
    }
}

void log_at(LogSite& site, LogLevel level, const char* fmt, ...)
{
    if (!log_enabled(level)) return;
    const double uptime = uptime_seconds();
    const auto now_us = static_cast<std::uint64_t>(uptime * 1e6);
    if (!log_site_admit(site, now_us, log_rate_tokens_per_sec(), log_rate_burst())) return;
    const std::uint64_t dropped = site.suppressed.exchange(0, std::memory_order_relaxed);
    char message[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof message, fmt, args);
    va_end(args);
    if (dropped > 0)
        std::fprintf(stderr, "[%13.6f] %s ccq: %s (rate limit: %llu similar suppressed)\n",
                     uptime, level_name(level), message,
                     static_cast<unsigned long long>(dropped));
    else
        std::fprintf(stderr, "[%13.6f] %s ccq: %s\n", uptime, level_name(level), message);
}

} // namespace ccq::obs
