#include "ccq/obs/log.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "ccq/common/check.hpp"

namespace ccq::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::info)};

const char* level_name(LogLevel level) noexcept
{
    switch (level) {
    case LogLevel::error: return "error";
    case LogLevel::warn: return "warn ";
    case LogLevel::info: return "info ";
    default: return "debug";
    }
}

double uptime_seconds() noexcept
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Touch the start time at static-init so the first log line is near 0.
[[maybe_unused]] const double g_init_uptime = uptime_seconds();

} // namespace

void set_log_level(LogLevel level) noexcept
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept
{
    return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name)
{
    if (name == "error") return LogLevel::error;
    if (name == "warn") return LogLevel::warn;
    if (name == "info") return LogLevel::info;
    if (name == "debug") return LogLevel::debug;
    CCQ_EXPECT(false, "unknown log level '" + name + "' (expected error|warn|info|debug)");
    return LogLevel::info; // unreachable
}

void log(LogLevel level, const char* fmt, ...)
{
    if (!log_enabled(level)) return;
    char message[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof message, fmt, args);
    va_end(args);
    std::fprintf(stderr, "[%13.6f] %s ccq: %s\n", uptime_seconds(), level_name(level), message);
}

} // namespace ccq::obs
