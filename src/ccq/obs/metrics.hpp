// Lock-free metrics primitives and a Prometheus-style registry.
//
// Counters and gauges are single relaxed atomics; histograms use
// fixed log2 buckets with per-thread shards (cacheline-padded,
// selected by a hashed thread id) so concurrent record() calls never
// contend on the same line.  All writes are relaxed atomic ops, so
// recording is wait-free and TSan-clean, and a snapshot taken
// concurrently with writers is a consistent-enough merge (each cell
// is individually atomic; Prometheus scrapes tolerate per-cell skew).
//
// The Registry hands out stable references (instances live behind
// unique_ptr; the mutex guards only registration and render, never
// the hot recording path) and renders the whole family set in the
// Prometheus text exposition format.  Collector callbacks let
// subsystems that already keep their own atomics (ServerStats, the
// query-engine cache) append derived samples at scrape time without
// double-counting.
#ifndef CCQ_OBS_METRICS_HPP
#define CCQ_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ccq::obs {

/// Monotonic counter.  add() is wait-free; value() is a relaxed load.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (active connections, queue depth, ...).
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Number of log2 buckets: bucket 0 holds exactly 0, bucket i (1..62)
/// holds (2^(i-1), 2^i - 1]; the last bucket is unbounded (+Inf).
inline constexpr int kHistogramBuckets = 64;

/// Point-in-time merged view of a Histogram.
struct HistogramSnapshot {
    std::array<std::uint64_t, kHistogramBuckets> counts{};
    std::uint64_t sum = 0; ///< sum of recorded values

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        std::uint64_t t = 0;
        for (std::uint64_t c : counts) t += c;
        return t;
    }

    /// Merge another snapshot into this one (for cross-shard /
    /// cross-process aggregation).
    void merge(const HistogramSnapshot& other) noexcept
    {
        for (int i = 0; i < kHistogramBuckets; ++i) counts[i] += other.counts[i];
        sum += other.sum;
    }
};

/// Fixed-bucket log-scale histogram with striped per-thread shards.
///
/// record() touches one shard chosen by the caller's thread id, so
/// threads on different shards never share a cacheline; snapshot()
/// merges all shards with relaxed loads.
class Histogram {
public:
    Histogram();
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    /// Record one observation.  Negative values clamp to 0.
    void record(std::int64_t value) noexcept;

    /// Merged view across all shards.
    [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

    /// Bucket index for a value: 0 for 0, else bit_width(v) clamped
    /// to the last bucket.
    [[nodiscard]] static int bucket_index(std::uint64_t value) noexcept
    {
        if (value == 0) return 0;
        const int w = std::bit_width(value);
        return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
    }

    /// Inclusive upper bound of bucket i; UINT64_MAX means +Inf.
    [[nodiscard]] static std::uint64_t bucket_upper_bound(int index) noexcept
    {
        if (index <= 0) return 0;
        if (index >= kHistogramBuckets - 1) return UINT64_MAX;
        return (std::uint64_t{1} << index) - 1;
    }

private:
    static constexpr std::size_t kShards = 16; // power of two

    struct alignas(64) Shard {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts;
        std::atomic<std::uint64_t> sum;
    };

    static std::size_t shard_of_this_thread() noexcept;

    std::unique_ptr<Shard[]> shards_;
};

/// Estimate the q-th quantile (q in [0,1]) from a log2-bucketed
/// snapshot by linear interpolation inside the containing bucket.
/// Bucket 0 (exactly 0) yields 0; ranks landing in the unbounded
/// +Inf bucket clamp to its lower bound.  Returns 0 when empty.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& snap, double q) noexcept;

/// Label set, rendered in insertion order as {k="v",...}.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Text-exposition helpers, shared by Registry::render() and by
// collector callbacks that emit samples from external atomics.
// `name` must be a valid Prometheus metric name; label values are
// escaped per the exposition format.
void append_header(std::string& out, const std::string& name, const std::string& help,
                   const char* type);
void append_sample(std::string& out, const std::string& name, const Labels& labels,
                   std::uint64_t value);
void append_sample(std::string& out, const std::string& name, const Labels& labels,
                   std::int64_t value);
void append_sample(std::string& out, const std::string& name, const Labels& labels, double value);
void append_histogram(std::string& out, const std::string& name, const Labels& labels,
                      const HistogramSnapshot& snap);

/// Named metric families + instances.  Registration is idempotent:
/// asking for the same (name, labels) returns the existing instance.
/// Registering the same name with a different metric kind throws.
class Registry {
public:
    Counter& counter(const std::string& name, const std::string& help, Labels labels = {});
    Gauge& gauge(const std::string& name, const std::string& help, Labels labels = {});
    Histogram& histogram(const std::string& name, const std::string& help, Labels labels = {});

    /// Register a callback that appends fully-formed exposition text
    /// (header + samples) at render time.  Used for values that live
    /// in external atomics.
    void add_collector(std::function<void(std::string&)> collect);

    /// Render every family (and then every collector) in the
    /// Prometheus text exposition format.
    [[nodiscard]] std::string render() const;

private:
    struct Instance {
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        std::string name;
        std::string help;
        char kind = 'c'; // 'c' counter, 'g' gauge, 'h' histogram
        std::vector<Instance> instances;
    };

    Family& family(const std::string& name, const std::string& help, char kind);
    Instance& instance(Family& fam, Labels&& labels);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Family>> families_; // insertion order
    std::vector<std::function<void(std::string&)>> collectors_;
};

} // namespace ccq::obs

#endif // CCQ_OBS_METRICS_HPP
