#include "ccq/obs/flight.hpp"

#include <bit>

namespace ccq::obs {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) noexcept
{
    if (n < 2) return 2;
    return std::bit_ceil(n);
}

// Payload word layout (all LE-agnostic — plain integer packing):
//   w0 trace_id
//   w1 conn_id
//   w2 opcode | status<<8 | sampled<<16
//   w3 request_bytes | reply_bytes<<32
//   w4 decode_us | queue_us<<32
//   w5 execute_us | encode_us<<32
//   w6 flush_us
//   w7 seq
void pack(const RequestRecord& rec, std::uint64_t seq, std::uint64_t (&w)[8]) noexcept
{
    w[0] = rec.trace_id;
    w[1] = rec.conn_id;
    w[2] = std::uint64_t{rec.opcode} | (std::uint64_t{rec.status} << 8) |
           (std::uint64_t{rec.sampled ? 1u : 0u} << 16);
    w[3] = std::uint64_t{rec.request_bytes} | (std::uint64_t{rec.reply_bytes} << 32);
    w[4] = std::uint64_t{rec.decode_us} | (std::uint64_t{rec.queue_us} << 32);
    w[5] = std::uint64_t{rec.execute_us} | (std::uint64_t{rec.encode_us} << 32);
    w[6] = rec.flush_us;
    w[7] = seq;
}

[[nodiscard]] RequestRecord unpack(const std::uint64_t (&w)[8]) noexcept
{
    RequestRecord rec;
    rec.trace_id = w[0];
    rec.conn_id = w[1];
    rec.opcode = static_cast<std::uint8_t>(w[2] & 0xff);
    rec.status = static_cast<std::uint8_t>((w[2] >> 8) & 0xff);
    rec.sampled = ((w[2] >> 16) & 1) != 0;
    rec.request_bytes = static_cast<std::uint32_t>(w[3] & 0xffffffffu);
    rec.reply_bytes = static_cast<std::uint32_t>(w[3] >> 32);
    rec.decode_us = static_cast<std::uint32_t>(w[4] & 0xffffffffu);
    rec.queue_us = static_cast<std::uint32_t>(w[4] >> 32);
    rec.execute_us = static_cast<std::uint32_t>(w[5] & 0xffffffffu);
    rec.encode_us = static_cast<std::uint32_t>(w[5] >> 32);
    rec.flush_us = static_cast<std::uint32_t>(w[6] & 0xffffffffu);
    rec.seq = w[7];
    return rec;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), ring_(new Slot[slots_])
{
}

std::uint64_t FlightRecorder::record(const RequestRecord& rec) noexcept
{
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = ring_[seq & (slots_ - 1)];
    std::uint64_t w[8];
    pack(rec, seq, w);
    // Odd ticket marks the slot as in-flight; the release store of the
    // final even ticket publishes every payload word before it.
    slot.ticket.store(2 * seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < 8; ++i) slot.words[i].store(w[i], std::memory_order_relaxed);
    slot.ticket.store(2 * seq + 2, std::memory_order_release);
    return seq;
}

std::vector<RequestRecord> FlightRecorder::snapshot() const
{
    const std::uint64_t end = next_.load(std::memory_order_acquire);
    const std::uint64_t begin = end > slots_ ? end - slots_ : 0;
    std::vector<RequestRecord> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t seq = begin; seq < end; ++seq) {
        const Slot& slot = ring_[seq & (slots_ - 1)];
        const std::uint64_t want = 2 * seq + 2;
        const std::uint64_t before = slot.ticket.load(std::memory_order_acquire);
        if (before != want) continue; // not yet published, or already lapped
        std::uint64_t w[8];
        for (std::size_t i = 0; i < 8; ++i) w[i] = slot.words[i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.ticket.load(std::memory_order_relaxed) != want) continue; // torn
        out.push_back(unpack(w));
    }
    return out;
}

} // namespace ccq::obs
