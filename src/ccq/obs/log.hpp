// Structured stderr logging with monotonic timestamps.
//
// One line per event:
//
//   [     12.345678] info  ccq: conn 42 open peer=127.0.0.1:52114
//
// The timestamp is seconds on the steady clock since process start,
// so operators can correlate log lines with trace-span timestamps
// from the same process.  The level gate is a relaxed atomic load, so
// disabled levels cost one branch.  Each line is emitted with a
// single fprintf call to keep concurrent writers from interleaving
// mid-line.
#ifndef CCQ_OBS_LOG_HPP
#define CCQ_OBS_LOG_HPP

#include <atomic>
#include <string>

namespace ccq::obs {

enum class LogLevel : int {
    error = 0,
    warn = 1,
    info = 2,
    debug = 3,
};

/// Global gate; defaults to info.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Parse "error"/"warn"/"info"/"debug"; throws check_error otherwise.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

/// printf-style log line; no-op when `level` is above the gate.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

#define CCQ_LOG_ERROR(...) ::ccq::obs::log(::ccq::obs::LogLevel::error, __VA_ARGS__)
#define CCQ_LOG_WARN(...) ::ccq::obs::log(::ccq::obs::LogLevel::warn, __VA_ARGS__)
#define CCQ_LOG_INFO(...) ::ccq::obs::log(::ccq::obs::LogLevel::info, __VA_ARGS__)
#define CCQ_LOG_DEBUG(...) ::ccq::obs::log(::ccq::obs::LogLevel::debug, __VA_ARGS__)

} // namespace ccq::obs

#endif // CCQ_OBS_LOG_HPP
