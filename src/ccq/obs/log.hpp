// Structured stderr logging with monotonic timestamps.
//
// One line per event:
//
//   [     12.345678] info  ccq: conn 42 open peer=127.0.0.1:52114
//
// The timestamp is seconds on the steady clock since process start,
// so operators can correlate log lines with trace-span timestamps
// from the same process.  The level gate is a relaxed atomic load, so
// disabled levels cost one branch.  Each line is emitted with a
// single fprintf call to keep concurrent writers from interleaving
// mid-line.
//
// Each CCQ_LOG_* macro expansion owns a static LogSite holding a
// token bucket, so an error storm (thousands of malformed frames,
// say) cannot flood stderr: once a site exhausts its burst it emits
// at the configured steady rate and the next admitted line reports
// how many were suppressed.  The level gate is checked before the
// bucket, so lines filtered by level never consume tokens.
#ifndef CCQ_OBS_LOG_HPP
#define CCQ_OBS_LOG_HPP

#include <atomic>
#include <cstdint>
#include <string>

namespace ccq::obs {

enum class LogLevel : int {
    error = 0,
    warn = 1,
    info = 2,
    debug = 3,
};

/// Global gate; defaults to info.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Parse "error"/"warn"/"info"/"debug"; throws check_error otherwise.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

/// printf-style log line; no-op when `level` is above the gate.
/// Bypasses rate limiting — prefer the CCQ_LOG_* macros.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

/// Per-call-site token-bucket state.  One static instance lives at
/// each CCQ_LOG_* expansion; zero-initialised means "bucket full".
struct LogSite {
    /// Packed (last_refill_us << 16 | tokens); 48 timestamp bits give
    /// ~8.9 years of µs uptime before wraparound.
    std::atomic<std::uint64_t> state{0};
    std::atomic<std::uint64_t> suppressed{0};
};

/// Configure the per-site bucket: sites admit bursts of up to `burst`
/// lines and refill at `tokens_per_sec`.  `tokens_per_sec == 0`
/// disables rate limiting entirely (every line is admitted).
void set_log_rate_limit(std::uint64_t tokens_per_sec, std::uint64_t burst) noexcept;
[[nodiscard]] std::uint64_t log_rate_tokens_per_sec() noexcept;
[[nodiscard]] std::uint64_t log_rate_burst() noexcept;

/// Token-bucket decision for one site at `now_us` (µs on any
/// monotonic clock).  Exposed for tests; increments site.suppressed
/// on refusal.  Wait-free: one CAS loop over a single packed atomic.
[[nodiscard]] bool log_site_admit(LogSite& site, std::uint64_t now_us,
                                  std::uint64_t tokens_per_sec, std::uint64_t burst) noexcept;

/// Rate-limited printf-style log line through `site`; no-op when
/// `level` is above the gate (level is checked before the bucket).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 3, 4)))
#endif
void log_at(LogSite& site, LogLevel level, const char* fmt, ...);

#define CCQ_LOG_AT(level, ...)                                                                  \
    do {                                                                                        \
        static ::ccq::obs::LogSite ccq_log_site_;                                               \
        ::ccq::obs::log_at(ccq_log_site_, level, __VA_ARGS__);                                  \
    } while (0)

#define CCQ_LOG_ERROR(...) CCQ_LOG_AT(::ccq::obs::LogLevel::error, __VA_ARGS__)
#define CCQ_LOG_WARN(...) CCQ_LOG_AT(::ccq::obs::LogLevel::warn, __VA_ARGS__)
#define CCQ_LOG_INFO(...) CCQ_LOG_AT(::ccq::obs::LogLevel::info, __VA_ARGS__)
#define CCQ_LOG_DEBUG(...) CCQ_LOG_AT(::ccq::obs::LogLevel::debug, __VA_ARGS__)

} // namespace ccq::obs

#endif // CCQ_OBS_LOG_HPP
