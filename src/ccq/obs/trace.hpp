// Lightweight span/phase tracer emitting chrome://tracing JSON.
//
// A single process-global Tracer is disabled by default; when
// disabled every hook is one relaxed atomic load, so instrumented
// hot paths (min-plus products, ledger phases, the serve loop) cost
// nothing in normal operation.  When enabled (ccq_served/ccq_serve
// `--trace-out FILE`), events accumulate under a mutex and render as
// a chrome://tracing / Perfetto-loadable JSON object:
//
//   {"traceEvents":[
//     {"name":"min_plus_product","cat":"engine","ph":"X",
//      "ts":12.4,"dur":830.2,"pid":1,"tid":7,"args":{"n":512}}, ...]}
//
// Duration spans use either complete events (ph "X", via TraceSpan)
// or begin/end pairs (ph "B"/"E", via begin_event/end_event — used by
// the RoundLedger phase stack, which brackets whole algorithm phases).
// Timestamps are microseconds on the steady clock since enable().
#ifndef CCQ_OBS_TRACE_HPP
#define CCQ_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ccq::obs {

class Tracer {
public:
    using clock = std::chrono::steady_clock;

    /// The process-global tracer used by all instrumentation hooks.
    static Tracer& global() noexcept;

    /// Start capturing; resets the time origin.  Existing events are
    /// kept (enable() after disable() resumes the same timeline only
    /// if clear() was not called; callers normally enable once).
    void enable();
    void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Drop all recorded events (does not change enabled state).
    void clear();

    /// Complete event (ph "X") covering [start, end).  `args_json`,
    /// if non-empty, must be a JSON object literal ("{...}").
    void complete_event(std::string_view name, std::string_view category, clock::time_point start,
                        clock::time_point end, std::string args_json = {});

    /// Begin/end pair (ph "B"/"E"); must nest properly per thread.
    void begin_event(std::string_view name, std::string_view category,
                     std::string args_json = {});
    void end_event();

    /// Zero-duration instant event (ph "i", thread scope).
    void instant_event(std::string_view name, std::string_view category,
                       std::string args_json = {});

    [[nodiscard]] std::size_t event_count() const;

    /// Render the {"traceEvents":[...]} JSON document.
    [[nodiscard]] std::string render_json() const;

    /// Render to a file; throws check_error on IO failure.
    void write(const std::string& path) const;

private:
    struct Event {
        std::string name;
        std::string category;
        char phase; // 'X', 'B', 'E', 'i'
        std::int64_t ts_us;
        std::int64_t dur_us; // only for 'X'
        std::uint32_t tid;
        std::string args; // JSON object literal or empty
    };

    void push(Event&& ev);
    [[nodiscard]] std::int64_t since_origin_us(clock::time_point t) const noexcept;
    static std::uint32_t this_thread_tid() noexcept;

    std::atomic<bool> enabled_{false};
    clock::time_point origin_{};
    mutable std::mutex mutex_;
    std::vector<Event> events_;
};

/// RAII complete-event span recorded on the global tracer.  Costs one
/// relaxed load when tracing is disabled.
class TraceSpan {
public:
    TraceSpan(std::string_view name, std::string_view category, std::string args_json = {})
        : active_(Tracer::global().enabled())
    {
        if (active_) {
            name_ = name;
            category_ = category;
            args_ = std::move(args_json);
            start_ = Tracer::clock::now();
        }
    }
    ~TraceSpan()
    {
        if (active_)
            Tracer::global().complete_event(name_, category_, start_, Tracer::clock::now(),
                                            std::move(args_));
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    bool active_;
    std::string_view name_;
    std::string_view category_;
    std::string args_;
    Tracer::clock::time_point start_{};
};

} // namespace ccq::obs

#endif // CCQ_OBS_TRACE_HPP
