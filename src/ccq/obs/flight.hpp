// Flight recorder: a fixed-size lock-free ring of the last N request
// records (trace id, conn id, opcode, status, bytes, per-stage µs).
//
// Writers claim a slot with one fetch_add on the global sequence and
// publish through a per-slot seqlock: the slot's ticket goes odd while
// the payload words are being stored and even (2*seq+2) once the
// record is complete.  Readers copy the payload and admit it only if
// the ticket was the same even value before and after the copy, so a
// torn record (overwritten mid-read by a writer lapping the ring) is
// simply skipped.  Payload words are themselves relaxed atomics, so
// the concurrent read/write race is data-race-free under TSan; the
// seqlock recheck supplies the consistency.
//
// record() is wait-free (one fetch_add + a handful of relaxed stores)
// and is called on every request regardless of --no-metrics, so the
// recorder still answers `ccq_client --flight` when aggregate metrics
// are disabled and costs the same in both arms of --metrics-ab.
#ifndef CCQ_OBS_FLIGHT_HPP
#define CCQ_OBS_FLIGHT_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ccq::obs {

/// One completed request, as remembered by the flight recorder.
struct RequestRecord {
    std::uint64_t seq = 0;      ///< recorder-global completion order
    std::uint64_t trace_id = 0; ///< 0 when the frame carried no envelope
    std::uint64_t conn_id = 0;  ///< 0 for the stdio stream
    std::uint8_t opcode = 0;    ///< wire opcode (post JSON-debug resolution)
    std::uint8_t status = 0;    ///< wire status byte of the reply
    bool sampled = false;       ///< envelope sampling bit
    std::uint32_t request_bytes = 0;
    std::uint32_t reply_bytes = 0;
    std::uint32_t decode_us = 0;
    std::uint32_t queue_us = 0;
    std::uint32_t execute_us = 0;
    std::uint32_t encode_us = 0;
    std::uint32_t flush_us = 0;

    [[nodiscard]] std::uint64_t total_us() const noexcept
    {
        return std::uint64_t{decode_us} + queue_us + execute_us + encode_us + flush_us;
    }

    friend bool operator==(const RequestRecord&, const RequestRecord&) = default;
};

class FlightRecorder {
public:
    /// `capacity` is rounded up to a power of two (minimum 2).
    explicit FlightRecorder(std::size_t capacity);
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_; }

    /// Publish one record; returns the sequence number it was assigned
    /// (the record's own `seq` field is overwritten with it).
    std::uint64_t record(const RequestRecord& rec) noexcept;

    /// Consistent copy of the surviving records, oldest first.  Slots
    /// caught mid-write (a writer lapped the reader) are skipped.
    [[nodiscard]] std::vector<RequestRecord> snapshot() const;

private:
    // Each record packs into 8 u64 payload words guarded by a ticket.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> ticket{0}; ///< odd: writing, 2s+2: seq s done
        std::array<std::atomic<std::uint64_t>, 8> words{};
    };

    std::size_t slots_;                  // power of two
    std::unique_ptr<Slot[]> ring_;
    std::atomic<std::uint64_t> next_{0}; // next sequence number to assign
};

} // namespace ccq::obs

#endif // CCQ_OBS_FLIGHT_HPP
