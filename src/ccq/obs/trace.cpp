#include "ccq/obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

#include "ccq/common/check.hpp"

namespace ccq::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view text)
{
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

Tracer& Tracer::global() noexcept
{
    static Tracer tracer;
    return tracer;
}

void Tracer::enable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    origin_ = clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::int64_t Tracer::since_origin_us(clock::time_point t) const noexcept
{
    return std::chrono::duration_cast<std::chrono::microseconds>(t - origin_).count();
}

std::uint32_t Tracer::this_thread_tid() noexcept
{
    static thread_local const std::uint32_t tid = static_cast<std::uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffffu);
    return tid;
}

void Tracer::push(Event&& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(ev));
}

void Tracer::complete_event(std::string_view name, std::string_view category,
                            clock::time_point start, clock::time_point end,
                            std::string args_json)
{
    if (!enabled()) return;
    Event ev;
    ev.name.assign(name);
    ev.category.assign(category);
    ev.phase = 'X';
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ev.ts_us = since_origin_us(start);
        ev.dur_us = since_origin_us(end) - ev.ts_us;
        if (ev.dur_us < 0) ev.dur_us = 0;
        ev.tid = this_thread_tid();
        ev.args = std::move(args_json);
        events_.push_back(std::move(ev));
    }
}

void Tracer::begin_event(std::string_view name, std::string_view category, std::string args_json)
{
    if (!enabled()) return;
    Event ev;
    ev.name.assign(name);
    ev.category.assign(category);
    ev.phase = 'B';
    ev.ts_us = since_origin_us(clock::now());
    ev.dur_us = 0;
    ev.tid = this_thread_tid();
    ev.args = std::move(args_json);
    push(std::move(ev));
}

void Tracer::end_event()
{
    if (!enabled()) return;
    Event ev;
    ev.phase = 'E';
    ev.ts_us = since_origin_us(clock::now());
    ev.dur_us = 0;
    ev.tid = this_thread_tid();
    push(std::move(ev));
}

void Tracer::instant_event(std::string_view name, std::string_view category,
                           std::string args_json)
{
    if (!enabled()) return;
    Event ev;
    ev.name.assign(name);
    ev.category.assign(category);
    ev.phase = 'i';
    ev.ts_us = since_origin_us(clock::now());
    ev.dur_us = 0;
    ev.tid = this_thread_tid();
    ev.args = std::move(args_json);
    push(std::move(ev));
}

std::size_t Tracer::event_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string Tracer::render_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(128 + events_.size() * 96);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const Event& ev : events_) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"";
        append_json_escaped(out, ev.name);
        out += "\",\"cat\":\"";
        append_json_escaped(out, ev.category.empty() ? std::string_view("ccq") : ev.category);
        out += "\",\"ph\":\"";
        out += ev.phase;
        out += '"';
        char buf[64];
        std::snprintf(buf, sizeof buf, ",\"ts\":%" PRId64, ev.ts_us);
        out += buf;
        if (ev.phase == 'X') {
            std::snprintf(buf, sizeof buf, ",\"dur\":%" PRId64, ev.dur_us);
            out += buf;
        }
        if (ev.phase == 'i') out += ",\"s\":\"t\"";
        std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%" PRIu32, ev.tid);
        out += buf;
        if (!ev.args.empty()) {
            out += ",\"args\":";
            out += ev.args;
        }
        out += '}';
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void Tracer::write(const std::string& path) const
{
    // Write-then-rename so the file at `path` is always a complete
    // JSON document: a crash or signal mid-write leaves at worst a
    // stale .tmp beside the previous intact trace.
    const std::string json = render_json();
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    CCQ_EXPECT(f != nullptr, "cannot open trace output file: " + tmp);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const int flushed = std::fflush(f);
    const int rc = std::fclose(f);
    if (written != json.size() || flushed != 0 || rc != 0) {
        std::remove(tmp.c_str());
        CCQ_CHECK(false, "short write to trace file: " + tmp);
    }
    CCQ_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move trace file into place: " + path);
}

} // namespace ccq::obs
