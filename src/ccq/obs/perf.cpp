#include "ccq/obs/perf.hpp"

#ifdef __linux__

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace ccq::obs {

namespace {

[[nodiscard]] int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                                  unsigned long flags) noexcept
{
    return static_cast<int>(::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags));
}

[[nodiscard]] int open_counter(std::uint64_t config, int group_fd, std::uint64_t* id) noexcept
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof attr;
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0; // only the leader starts disabled
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
    const int fd = perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, 0);
    if (fd >= 0 && id != nullptr) (void)::ioctl(fd, PERF_EVENT_IOC_ID, id);
    return fd;
}

} // namespace

PerfCounters::PerfCounters()
{
    // Leader: cycles.  If even the leader is denied (perf_event_paranoid,
    // seccomp ENOSYS, missing PMU) the whole object degrades to a no-op.
    group_fd_ = open_counter(PERF_COUNT_HW_CPU_CYCLES, -1, &member_ids_[0]);
    if (group_fd_ < 0) return;
    static constexpr std::uint64_t kMembers[3] = {
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES,
        PERF_COUNT_HW_BRANCH_MISSES,
    };
    for (int i = 0; i < 3; ++i)
        member_fds_[i] = open_counter(kMembers[i], group_fd_, &member_ids_[i + 1]);
}

PerfCounters::~PerfCounters()
{
    for (int fd : member_fds_)
        if (fd >= 0) (void)::close(fd);
    if (group_fd_ >= 0) (void)::close(group_fd_);
}

void PerfCounters::start() noexcept
{
    if (group_fd_ < 0) return;
    (void)::ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    (void)::ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounts PerfCounters::stop() noexcept
{
    PerfCounts counts;
    if (group_fd_ < 0) return counts;
    (void)::ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    // PERF_FORMAT_GROUP|PERF_FORMAT_ID layout:
    //   u64 nr; struct { u64 value; u64 id; } values[nr];
    std::uint64_t buffer[1 + 2 * 4] = {};
    const ssize_t got = ::read(group_fd_, buffer, sizeof buffer);
    if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return counts;
    const std::uint64_t nr = buffer[0];
    counts.available = true;
    for (std::uint64_t i = 0; i < nr && i < 4; ++i) {
        const std::uint64_t value = buffer[1 + 2 * i];
        const std::uint64_t id = buffer[2 + 2 * i];
        if (id == member_ids_[0])
            counts.cycles = value;
        else if (id == member_ids_[1])
            counts.instructions = value;
        else if (id == member_ids_[2])
            counts.cache_misses = value;
        else if (id == member_ids_[3])
            counts.branch_misses = value;
    }
    return counts;
}

} // namespace ccq::obs

#else // !__linux__

namespace ccq::obs {

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() noexcept {}
PerfCounts PerfCounters::stop() noexcept { return PerfCounts{}; }

} // namespace ccq::obs

#endif // __linux__
