// Hardware perf-counter sampling via perf_event_open(2).
//
// PerfCounters opens one counter group (cycles as leader, plus
// instructions, LLC misses, branch misses) confined to the calling
// thread, so a start()/stop() bracket around a kernel loop yields the
// loop's own IPC and cache-miss totals.  Availability is probed at
// construction: on kernels where /proc/sys/kernel/perf_event_paranoid
// forbids unprivileged counters (EPERM/EACCES), inside containers
// without the syscall (ENOSYS), or on non-Linux builds, available()
// is false and start()/stop() are cheap no-ops that return zeroed
// counts — callers never need to special-case denial.
#ifndef CCQ_OBS_PERF_HPP
#define CCQ_OBS_PERF_HPP

#include <cstdint>

namespace ccq::obs {

/// Counter deltas between one start()/stop() bracket.
struct PerfCounts {
    bool available = false; ///< false: the fields below are all zero
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cache_misses = 0; ///< PERF_COUNT_HW_CACHE_MISSES (LLC)
    std::uint64_t branch_misses = 0;

    [[nodiscard]] double ipc() const noexcept
    {
        return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
    }
};

class PerfCounters {
public:
    PerfCounters();
    ~PerfCounters();
    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    /// True when the group opened; false means start()/stop() no-op.
    [[nodiscard]] bool available() const noexcept { return group_fd_ >= 0; }

    /// Reset and unfreeze the group.  No-op when unavailable.
    void start() noexcept;

    /// Freeze the group and read the deltas since start().
    [[nodiscard]] PerfCounts stop() noexcept;

private:
    // Leader fd first; -1 entries mean that member failed to open.
    int group_fd_ = -1;
    int member_fds_[3] = {-1, -1, -1};
    std::uint64_t member_ids_[4] = {0, 0, 0, 0}; // leader + members
};

} // namespace ccq::obs

#endif // CCQ_OBS_PERF_HPP
