// Small integer-math helpers used across the algorithm stack.
//
// The paper's parameter schedules are full of expressions like
// ceil(log2 d), n^{1/h}, h * C(p, h); these helpers compute them exactly
// on integers (no floating-point drift in parameter selection).
#ifndef CCQ_COMMON_MATH_HPP
#define CCQ_COMMON_MATH_HPP

#include <cstdint>

#include "ccq/common/check.hpp"

namespace ccq {

/// ceil(a / b) for nonnegative a, positive b.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b)
{
    return b > 0 && a >= 0 ? (a + b - 1) / b : throw check_error("ceil_div: bad arguments");
}

/// floor(log2 x) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::int64_t x)
{
    if (x < 1) throw check_error("floor_log2: x must be >= 1");
    int r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/// ceil(log2 x) for x >= 1.
[[nodiscard]] constexpr int ceil_log2(std::int64_t x)
{
    if (x < 1) throw check_error("ceil_log2: x must be >= 1");
    const int fl = floor_log2(x);
    return (std::int64_t{1} << fl) == x ? fl : fl + 1;
}

/// base^exp with saturation at `cap` (default: a large sentinel).  Used for
/// h^i hop budgets, which must not overflow.
[[nodiscard]] constexpr std::int64_t saturating_pow(std::int64_t base, int exp,
                                                    std::int64_t cap = (std::int64_t{1} << 62))
{
    if (base < 0 || exp < 0) throw check_error("saturating_pow: bad arguments");
    std::int64_t result = 1;
    for (int i = 0; i < exp; ++i) {
        if (base != 0 && result > cap / base) return cap;
        result *= base;
        if (result > cap) return cap;
    }
    return result;
}

/// floor(sqrt(x)) for x >= 0, exact.
[[nodiscard]] constexpr std::int64_t floor_sqrt(std::int64_t x)
{
    if (x < 0) throw check_error("floor_sqrt: x must be >= 0");
    std::int64_t lo = 0, hi = 2;
    while (hi * hi <= x) hi *= 2;
    while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo + 1) / 2;
        if (mid * mid <= x)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

/// floor(n^{1/h}), exact (binary search on r^h <= n).
[[nodiscard]] constexpr std::int64_t floor_nth_root(std::int64_t n, int h)
{
    if (n < 0 || h < 1) throw check_error("floor_nth_root: bad arguments");
    if (h == 1) return n;
    std::int64_t lo = 0, hi = 2;
    while (saturating_pow(hi, h) <= n) hi *= 2;
    while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo + 1) / 2;
        if (saturating_pow(mid, h) <= n)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

/// Binomial coefficient C(n, k) with saturation at `cap`.  The k-nearest
/// bin scheme needs h * C(p, h) compared against n; saturation keeps the
/// comparison safe when p is large.
[[nodiscard]] constexpr std::int64_t saturating_binomial(std::int64_t n, std::int64_t k,
                                                         std::int64_t cap = (std::int64_t{1} << 62))
{
    if (k < 0 || n < 0) return 0;
    if (k > n) return 0;
    if (k > n - k) k = n - k;
    std::int64_t result = 1;
    for (std::int64_t i = 1; i <= k; ++i) {
        // result * (n - k + i) / i, computed carefully to stay integral.
        if (result > cap / (n - k + i)) return cap;
        result = result * (n - k + i) / i;
        if (result > cap) return cap;
    }
    return result;
}

} // namespace ccq

#endif // CCQ_COMMON_MATH_HPP
