// Core scalar types shared by every ccq module.
//
// The Congested-Clique model works with polynomially bounded integer edge
// weights (paper, Section 2.1).  Distances are therefore 64-bit integers
// with an explicit "unreachable" sentinel and saturating arithmetic, so
// that min-plus algebra over partially disconnected graphs never
// overflows.
#ifndef CCQ_COMMON_TYPES_HPP
#define CCQ_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace ccq {

/// Index of a node in the input graph / communication clique.
/// Nodes are always the contiguous range [0, n).
using NodeId = std::int32_t;

/// Edge weight / path length.  Nonnegative for valid graphs.
using Weight = std::int64_t;

/// Sentinel for "no path".  Chosen far below the int64 ceiling so that a
/// long chain of saturating additions cannot overflow.
inline constexpr Weight kInfinity = std::numeric_limits<Weight>::max() / 4;

/// True if `w` represents a real (finite) distance.
[[nodiscard]] constexpr bool is_finite(Weight w) noexcept { return w < kInfinity; }

/// Min-plus "multiplication": adds two path lengths, saturating at
/// kInfinity so that INF + x == INF.
[[nodiscard]] constexpr Weight saturating_add(Weight a, Weight b) noexcept
{
    if (a >= kInfinity || b >= kInfinity) return kInfinity;
    const Weight sum = a + b;
    return sum >= kInfinity ? kInfinity : sum;
}

/// Min-plus "addition": takes the shorter of two path lengths.
[[nodiscard]] constexpr Weight min_weight(Weight a, Weight b) noexcept
{
    return a < b ? a : b;
}

} // namespace ccq

#endif // CCQ_COMMON_TYPES_HPP
