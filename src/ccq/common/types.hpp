// Core scalar types shared by every ccq module.
//
// The Congested-Clique model works with polynomially bounded integer edge
// weights (paper, Section 2.1).  Distances are therefore 64-bit integers
// with an explicit "unreachable" sentinel and saturating arithmetic, so
// that min-plus algebra over partially disconnected graphs never
// overflows.
#ifndef CCQ_COMMON_TYPES_HPP
#define CCQ_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace ccq {

/// Index of a node in the input graph / communication clique.
/// Nodes are always the contiguous range [0, n).
using NodeId = std::int32_t;

/// Edge weight / path length.  Nonnegative for valid graphs.
using Weight = std::int64_t;

/// Sentinel for "no path".  Chosen far below the int64 ceiling so that a
/// long chain of saturating additions cannot overflow.
inline constexpr Weight kInfinity = std::numeric_limits<Weight>::max() / 4;

/// True if `w` represents a real (finite) distance.
[[nodiscard]] constexpr bool is_finite(Weight w) noexcept { return w < kInfinity; }

/// Min-plus "multiplication": adds two path lengths, saturating at
/// kInfinity so that INF + x == INF.
[[nodiscard]] constexpr Weight saturating_add(Weight a, Weight b) noexcept
{
    if (a >= kInfinity || b >= kInfinity) return kInfinity;
    const Weight sum = a + b;
    return sum >= kInfinity ? kInfinity : sum;
}

/// Min-plus "addition": takes the shorter of two path lengths.
[[nodiscard]] constexpr Weight min_weight(Weight a, Weight b) noexcept
{
    return a < b ? a : b;
}

/// Narrow (32-bit) weight domain for the width-adaptive kernels.
///
/// When every finite cell of both product operands is small enough that
/// `max_a + max_b < kInfinity32`, the engine packs tiles to i32, doubling
/// the SIMD lanes per vector.  The mapping is exact: finite cells map to
/// themselves, kInfinity maps to kInfinity32, and under the safety rule
/// every sum a kernel can form stays strictly below kInfinity32 (finite +
/// finite) or strictly above it but below 2^31 (finite + sentinel), so
/// compares order identically to the i64 domain and the unpacked result
/// is bitwise identical to the wide path (docs/ENGINE.md, "Kernel width
/// selection").
using Weight32 = std::int32_t;

/// i32 sentinel for "no path", mirroring kInfinity: far enough below the
/// int32 ceiling that finite + kInfinity32 cannot overflow.
inline constexpr Weight32 kInfinity32 = std::numeric_limits<Weight32>::max() / 4;

/// True if `w` represents a real (finite) distance in the i32 domain.
[[nodiscard]] constexpr bool is_finite32(Weight32 w) noexcept { return w < kInfinity32; }

} // namespace ccq

#endif // CCQ_COMMON_TYPES_HPP
