// Shared binary codec primitives: little-endian fixed-width fields,
// LEB128 varints with zigzag for signed values, and a bounds-checked
// reader over a byte view.
//
// Two layers persist/transmit bytes — the snapshot codec
// (serve/snapshot.cpp) and the wire protocol (net/protocol.cpp) — and
// both must agree on endianness and reject truncated input before
// touching it, so the primitives live here once.  Readers throw
// decode_error; layers that need their own exception type catch it at
// their entry point and rethrow with context.
#ifndef CCQ_COMMON_BYTES_HPP
#define CCQ_COMMON_BYTES_HPP

#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ccq {

/// Thrown by ByteReader / varint decoding on truncated or malformed
/// input.  snapshot_io_error and protocol_error wrap it with context.
class decode_error : public std::runtime_error {
public:
    explicit decode_error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

// --- little-endian fixed-width writers --------------------------------------

inline void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

inline void put_u32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_i32(std::string& out, std::int32_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::string& out, std::int64_t v)
{
    put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::string& out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

/// u32 length prefix + raw bytes.
inline void put_string(std::string& out, std::string_view s)
{
    if (s.size() > std::numeric_limits<std::uint32_t>::max())
        throw decode_error("put_string: string too long");
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

// --- varints ----------------------------------------------------------------

/// LEB128: 7 bits per byte, high bit = continuation; at most 10 bytes.
inline void put_varint_u64(std::string& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/// Zigzag maps small-magnitude signed values to small unsigned ones.
[[nodiscard]] inline std::uint64_t zigzag_encode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t zigzag_decode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_varint_i64(std::string& out, std::int64_t v)
{
    put_varint_u64(out, zigzag_encode(v));
}

// --- bounds-checked reader --------------------------------------------------

/// Sequential reader over a byte view; every accessor verifies the
/// bytes exist before touching them and throws decode_error otherwise.
class ByteReader {
public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    [[nodiscard]] std::uint8_t u8()
    {
        need(1);
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    [[nodiscard]] std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    [[nodiscard]] double f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    [[nodiscard]] std::string str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(bytes_.substr(pos_, len));
        pos_ += len;
        return s;
    }

    [[nodiscard]] std::string_view bytes(std::size_t count)
    {
        need(count);
        const std::string_view view = bytes_.substr(pos_, count);
        pos_ += count;
        return view;
    }

    [[nodiscard]] std::uint64_t varint_u64()
    {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            need(1);
            const std::uint8_t byte = static_cast<std::uint8_t>(bytes_[pos_++]);
            // The 10th byte carries bits 63..69: anything above bit 63 set
            // means the encoding does not fit a u64.
            if (shift == 63 && (byte & ~std::uint8_t{1}) != 0)
                throw decode_error("varint overflows 64 bits");
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) return v;
        }
        throw decode_error("varint longer than 10 bytes");
    }

    [[nodiscard]] std::int64_t varint_i64() { return zigzag_decode(varint_u64()); }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
    [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    void need(std::size_t count) const
    {
        if (bytes_.size() - pos_ < count) throw decode_error("input ends mid-field");
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

} // namespace ccq

#endif // CCQ_COMMON_BYTES_HPP
