// Precondition / invariant checking.
//
// Following the error-handling strategy of the C++ Core Guidelines
// (I.5/I.6, E.2): interface preconditions and internal invariants are
// stated explicitly and violations throw a dedicated exception type, so
// that misuse is caught early and is testable.
#ifndef CCQ_COMMON_CHECK_HPP
#define CCQ_COMMON_CHECK_HPP

#include <stdexcept>
#include <string>

namespace ccq {

/// Thrown when a ccq API precondition or internal invariant is violated.
class check_error : public std::logic_error {
public:
    explicit check_error(const std::string& what_arg) : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message)
{
    std::string what = std::string(kind) + " failed: (" + expr + ") at " + file + ":" +
                       std::to_string(line);
    if (!message.empty()) what += " — " + message;
    throw check_error(what);
}

} // namespace detail
} // namespace ccq

/// Precondition check: use at the top of public functions.
#define CCQ_EXPECT(cond, message)                                                          \
    do {                                                                                   \
        if (!(cond)) ::ccq::detail::check_failed("precondition", #cond, __FILE__, __LINE__, \
                                                 (message));                               \
    } while (false)

/// Internal invariant check: use for "this cannot happen" conditions.
#define CCQ_CHECK(cond, message)                                                        \
    do {                                                                                \
        if (!(cond)) ::ccq::detail::check_failed("invariant", #cond, __FILE__, __LINE__, \
                                                 (message));                            \
    } while (false)

#endif // CCQ_COMMON_CHECK_HPP
