// Deterministic, seedable randomness.
//
// All randomized algorithms in the paper are Monte Carlo; for
// reproducibility every ccq algorithm takes an explicit Rng (no global
// random state, per Core Guidelines I.2).
#ifndef CCQ_COMMON_RNG_HPP
#define CCQ_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <span>

#include "ccq/common/check.hpp"

namespace ccq {

/// Thin deterministic wrapper over std::mt19937_64 with the handful of
/// draws the algorithms need.  Copyable, so callers can fork independent
/// streams (`fork()`) for parallel phases without coupling their draws.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in the inclusive range [lo, hi].
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi)
    {
        CCQ_EXPECT(lo <= hi, "uniform_int: empty range");
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Uniform real in [0, 1).
    [[nodiscard]] double uniform_real() { return real_dist_(engine_); }

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    [[nodiscard]] bool bernoulli(double p)
    {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform_real() < p;
    }

    /// A fresh, independent generator derived from this one.
    [[nodiscard]] Rng fork() { return Rng(engine_()); }

    /// Fisher–Yates shuffle.
    template <class T>
    void shuffle(std::span<T> items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// Direct access for std <random> distributions.
    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> real_dist_{0.0, 1.0};
};

} // namespace ccq

#endif // CCQ_COMMON_RNG_HPP
