// Shared-memory execution substrate for the min-plus engine.
//
// The Congested-Clique *round* accounting lives in clique/ledger.hpp and
// is untouched by anything here: this file only decides how the local
// computation of each simulated node batch is mapped onto OS threads.
// EngineConfig is plumbed alongside CostModel so simulated round charges
// are identical for every {threads, block_size} setting; only wall-clock
// changes.
#ifndef CCQ_COMMON_PARALLEL_HPP
#define CCQ_COMMON_PARALLEL_HPP

#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#include "ccq/common/check.hpp"

namespace ccq {

/// The shared thread-count convention: 0 means "one per hardware
/// thread", any positive value is taken literally.
[[nodiscard]] inline int resolved_thread_count(int threads)
{
    CCQ_EXPECT(threads >= 0, "resolved_thread_count: threads must be >= 0");
    if (threads > 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Element-width policy of the dense min-plus kernels.
///
/// kAuto defers to the CCQ_KERNEL_WIDTH environment variable ("wide" |
/// "narrow" | "auto") and otherwise behaves like kNarrowIfSafe.  kWide
/// forces the i64 kernels unconditionally.  kNarrowIfSafe packs the
/// product to i32 lanes whenever the engine's width rule proves the
/// result bitwise identical (max finite A cell + max finite B cell <
/// kInfinity32); unsafe products silently stay wide, so the setting is
/// always correctness-neutral.
enum class KernelWidth {
    kAuto = 0,
    kWide,
    kNarrowIfSafe,
};

/// Local-execution parameters of the min-plus engine.
///
/// `threads == 0` means "one per hardware thread"; `threads == 1` runs
/// strictly serially on the calling thread.  `block_size` is the tile
/// edge of the dense blocked kernel (entries, not bytes).  `width` and
/// `sparse_skip` select kernel variants only — every setting produces
/// bitwise identical output (docs/ENGINE.md).
struct EngineConfig {
    int threads = 0;
    int block_size = 64;
    KernelWidth width = KernelWidth::kAuto;
    bool sparse_skip = true;

    [[nodiscard]] int resolved_threads() const { return resolved_thread_count(threads); }

    [[nodiscard]] int resolved_block_size() const
    {
        CCQ_EXPECT(block_size >= 1, "EngineConfig: block_size must be >= 1");
        return block_size;
    }

    [[nodiscard]] static EngineConfig serial() { return EngineConfig{1, 64}; }

    friend bool operator==(const EngineConfig&, const EngineConfig&) = default;
};

/// What the process can see of the machine's NUMA layout, detected once
/// from /sys/devices/system/node (no libnuma dependency).  On hosts
/// where the topology is invisible or trivial everything degrades to a
/// single node and pinning becomes a no-op.
struct NumaTopology {
    int node_count = 1;       ///< NUMA nodes visible in /sys (1 when unknown)
    int online_cpus = 1;      ///< schedulable CPUs (hardware_concurrency)
    bool pin_workers = false; ///< pool workers pin themselves round-robin
};

/// The cached topology.  `pin_workers` honors the CCQ_NUMA environment
/// variable ("0" disables, "1" forces pinning even on one node — useful
/// for tests) and otherwise turns on only for node_count > 1.
[[nodiscard]] const NumaTopology& numa_topology() noexcept;

/// True when the host exposes more than one NUMA node.
[[nodiscard]] bool numa_available() noexcept;

/// Pins the calling thread to one CPU; false if the platform refuses
/// (never throws — affinity is an optimization, not a contract).
bool pin_current_thread(int cpu) noexcept;

/// Scheduling policy of one ThreadPool::run() call.
///
/// Dynamic (default): tasks are claimed first-come-first-served — best
/// for irregular work.  Strided: task t is executed by the fixed
/// participant (t mod participants), caller = participant 0, worker w =
/// participant w+1 — the stable task->thread mapping the dense engine
/// needs so first-touched C bands stay on the pages' owning node across
/// repeated products.
struct PoolRunOptions {
    bool strided = false;
};

/// Small reusable pool of worker threads.
///
/// One job runs at a time; the submitting thread participates in the
/// work, so `run` with concurrency c uses the caller plus at most c-1
/// workers.  Workers are spawned lazily up to the largest concurrency
/// ever requested (so explicitly asking for 4 threads exercises real
/// cross-thread execution even on a single-core host) and parked on a
/// condition variable between jobs.  Re-entrant calls from inside a job
/// execute inline, which keeps nested engine calls deadlock-free.
///
/// When numa_topology().pin_workers is set, each worker pins itself to
/// CPU (index + 1) mod online_cpus at spawn, so together with strided
/// jobs (RunOptions) a band index maps to the same CPU — and therefore
/// the same NUMA node — for the lifetime of the process.
class ThreadPool {
public:
    using RunOptions = PoolRunOptions;

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Process-wide pool (intentionally leaked: workers park forever and
    /// must outlive every static destructor that might run engine code).
    [[nodiscard]] static ThreadPool& shared();

    /// Runs fn(task) for task in [0, tasks), using up to `concurrency`
    /// OS threads including the caller.  Blocks until every task has
    /// finished; the first exception thrown by any task is rethrown.
    void run(int tasks, int concurrency, const std::function<void(int)>& fn,
             RunOptions options = {});

    /// Workers currently spawned (for tests / introspection).
    [[nodiscard]] int worker_count() const;

private:
    ThreadPool() = default;
    ~ThreadPool() = delete; // shared() leaks the singleton on purpose

    struct Job;
    void ensure_workers(int wanted);
    void worker_loop(int index);

    struct Impl;
    Impl* impl_ = nullptr; // created on first use (see parallel.cpp)
};

namespace detail {

/// Shared implementation of parallel_chunks / parallel_chunks_pinned.
template <class Fn>
void chunked_run(int threads, int begin, int end, int align, bool pinned, Fn&& fn)
{
    CCQ_EXPECT(align >= 1, "parallel_chunks: align must be >= 1");
    const std::int64_t extent = static_cast<std::int64_t>(end) - begin;
    if (extent <= 0) return;
    const std::int64_t blocks = (extent + align - 1) / align;
    std::int64_t tasks = threads < 1 ? 1 : threads;
    if (tasks > blocks) tasks = blocks;
    const std::int64_t blocks_per_task = (blocks + tasks - 1) / tasks;
    const int actual_tasks = static_cast<int>((blocks + blocks_per_task - 1) / blocks_per_task);

    auto body = [&](int task) {
        const std::int64_t first_block = static_cast<std::int64_t>(task) * blocks_per_task;
        const int chunk_begin = begin + static_cast<int>(first_block * align);
        std::int64_t chunk_end64 =
            static_cast<std::int64_t>(begin) + (first_block + blocks_per_task) * align;
        const int chunk_end = chunk_end64 > end ? end : static_cast<int>(chunk_end64);
        fn(chunk_begin, chunk_end);
    };
    if (actual_tasks <= 1) {
        body(0);
        return;
    }
    ThreadPool::shared().run(actual_tasks, actual_tasks, body,
                             ThreadPool::RunOptions{pinned});
}

} // namespace detail

/// Partitions [begin, end) into at most `threads` contiguous chunks whose
/// interior boundaries are multiples of `align` (>= 1), and runs
/// fn(chunk_begin, chunk_end) for each chunk on the shared pool.  With
/// threads <= 1 (or a single chunk) this is a plain inline call, so serial
/// configurations never touch the pool.
template <class Fn>
void parallel_chunks(int threads, int begin, int end, int align, Fn&& fn)
{
    detail::chunked_run(threads, begin, end, align, /*pinned=*/false, std::forward<Fn>(fn));
}

/// parallel_chunks with the strided (stable chunk->thread) schedule:
/// chunk i always runs on participant (i mod participants), so repeated
/// calls over the same range keep each band on the thread — and, with
/// pinned pool workers, the NUMA node — that first touched its pages.
/// Use for the dense engine's band loops; everything else should prefer
/// the dynamic schedule.
template <class Fn>
void parallel_chunks_pinned(int threads, int begin, int end, int align, Fn&& fn)
{
    detail::chunked_run(threads, begin, end, align, /*pinned=*/true, std::forward<Fn>(fn));
}

} // namespace ccq

#endif // CCQ_COMMON_PARALLEL_HPP
