#include "ccq/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

namespace ccq {
namespace {

/// Workers never initiate top-level jobs and re-entrant submissions run
/// inline, so a single flag per thread is enough to prevent deadlock.
thread_local bool t_inside_pool_job = false;

constexpr int kMaxWorkers = 63; // callers participate, so 64-way total

} // namespace

struct ThreadPool::Job {
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    /// Claims and executes tasks until none remain; returns the number
    /// of tasks this thread completed.
    int drain()
    {
        int completed = 0;
        for (;;) {
            const int task = next.fetch_add(1, std::memory_order_relaxed);
            if (task >= tasks) return completed;
            try {
                (*fn)(task);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) error = std::current_exception();
            }
            ++completed;
        }
    }
};

struct ThreadPool::Impl {
    std::mutex run_mutex; // serializes whole jobs
    std::mutex mutex;     // guards job/generation/active/workers
    std::condition_variable wake;
    std::condition_variable finished;
    Job* job = nullptr;
    std::uint64_t generation = 0;
    int active = 0; // workers currently holding a pointer into the job
    std::vector<std::thread> workers;
};

ThreadPool& ThreadPool::shared()
{
    static ThreadPool* pool = [] {
        auto* p = new ThreadPool();
        p->impl_ = new Impl();
        return p;
    }();
    return *pool;
}

int ThreadPool::worker_count() const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return static_cast<int>(impl_->workers.size());
}

void ThreadPool::ensure_workers(int wanted)
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (wanted > kMaxWorkers) wanted = kMaxWorkers;
    while (static_cast<int>(impl_->workers.size()) < wanted)
        impl_->workers.emplace_back([this] { worker_loop(); });
}

void ThreadPool::worker_loop()
{
    t_inside_pool_job = true; // nested engine calls inside tasks run inline
    std::uint64_t seen = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->wake.wait(lock, [&] { return impl_->generation != seen; });
            seen = impl_->generation;
            job = impl_->job;
            if (job != nullptr) ++impl_->active;
        }
        if (job == nullptr) continue; // job already finished and detached
        const int completed = job->drain();
        if (completed > 0) job->done.fetch_add(completed, std::memory_order_acq_rel);
        {
            const std::lock_guard<std::mutex> lock(impl_->mutex);
            --impl_->active;
        }
        // The submitter waits for done == tasks && active == 0; once this
        // thread has dropped `active` it no longer touches the job.
        impl_->finished.notify_all();
    }
}

void ThreadPool::run(int tasks, int concurrency, const std::function<void(int)>& fn)
{
    CCQ_EXPECT(tasks >= 0, "ThreadPool::run: negative task count");
    if (tasks == 0) return;
    if (tasks == 1 || concurrency <= 1 || t_inside_pool_job) {
        for (int task = 0; task < tasks; ++task) fn(task);
        return;
    }

    const std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
    ensure_workers(std::min(concurrency, tasks) - 1);

    Job job;
    job.fn = &fn;
    job.tasks = tasks;
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job = &job;
        ++impl_->generation;
    }
    impl_->wake.notify_all();

    t_inside_pool_job = true;
    const int completed = job.drain();
    t_inside_pool_job = false;
    if (completed > 0) job.done.fetch_add(completed, std::memory_order_acq_rel);

    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->job = nullptr; // late-waking workers see no job
        impl_->finished.wait(lock, [&] {
            return impl_->active == 0 &&
                   job.done.load(std::memory_order_acquire) == tasks;
        });
    }
    if (job.error) std::rethrow_exception(job.error);
}

} // namespace ccq
