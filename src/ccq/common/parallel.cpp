#include "ccq/common/parallel.hpp"

#ifdef __linux__
#include <sched.h>
#include <sys/stat.h>
#endif

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <vector>

namespace ccq {
namespace {

/// Workers never initiate top-level jobs and re-entrant submissions run
/// inline, so a single flag per thread is enough to prevent deadlock.
thread_local bool t_inside_pool_job = false;

constexpr int kMaxWorkers = 63; // callers participate, so 64-way total

[[nodiscard]] NumaTopology detect_topology()
{
    NumaTopology topology;
    const unsigned hw = std::thread::hardware_concurrency();
    topology.online_cpus = hw == 0 ? 1 : static_cast<int>(hw);
#ifdef __linux__
    // Nodes are contiguous directories node0, node1, ... in sysfs; stop
    // at the first gap.  Containers without the hierarchy report 1 node.
    struct stat info = {};
    int nodes = 0;
    while (::stat(("/sys/devices/system/node/node" + std::to_string(nodes)).c_str(),
                  &info) == 0)
        ++nodes;
    if (nodes > 0) topology.node_count = nodes;
#endif
    topology.pin_workers = topology.node_count > 1 && topology.online_cpus > 1;
    if (const char* env = std::getenv("CCQ_NUMA")) {
        const std::string value(env);
        if (value == "0") topology.pin_workers = false;
        if (value == "1") topology.pin_workers = true;
    }
    return topology;
}

} // namespace

const NumaTopology& numa_topology() noexcept
{
    static const NumaTopology topology = detect_topology();
    return topology;
}

bool numa_available() noexcept { return numa_topology().node_count > 1; }

bool pin_current_thread(int cpu) noexcept
{
#ifdef __linux__
    if (cpu < 0) return false;
    cpu_set_t mask;
    CPU_ZERO(&mask);
    CPU_SET(static_cast<unsigned>(cpu) % CPU_SETSIZE, &mask);
    return ::sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
    (void)cpu;
    return false;
#endif
}

struct ThreadPool::Job {
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    bool strided = false;
    int participants = 0; ///< strided mode: caller + workers [0, participants-1)
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    /// Executes this thread's share of the job; returns the number of
    /// tasks completed.  participant < 0 claims dynamically; otherwise
    /// runs the fixed stride participant, participant + participants, ...
    int drain(int participant)
    {
        int completed = 0;
        for (int task = participant;;) {
            if (strided) {
                if (participant < 0 || task >= tasks) return completed;
            } else {
                task = next.fetch_add(1, std::memory_order_relaxed);
                if (task >= tasks) return completed;
            }
            try {
                (*fn)(task);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) error = std::current_exception();
            }
            ++completed;
            if (strided) task += participants;
        }
    }
};

struct ThreadPool::Impl {
    std::mutex run_mutex; // serializes whole jobs
    std::mutex mutex;     // guards job/generation/active/workers
    std::condition_variable wake;
    std::condition_variable finished;
    Job* job = nullptr;
    std::uint64_t generation = 0;
    int active = 0; // workers currently holding a pointer into the job
    std::vector<std::thread> workers;
};

ThreadPool& ThreadPool::shared()
{
    static ThreadPool* pool = [] {
        auto* p = new ThreadPool();
        p->impl_ = new Impl();
        return p;
    }();
    return *pool;
}

int ThreadPool::worker_count() const
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return static_cast<int>(impl_->workers.size());
}

void ThreadPool::ensure_workers(int wanted)
{
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    if (wanted > kMaxWorkers) wanted = kMaxWorkers;
    while (static_cast<int>(impl_->workers.size()) < wanted) {
        const int index = static_cast<int>(impl_->workers.size());
        impl_->workers.emplace_back([this, index] { worker_loop(index); });
    }
}

void ThreadPool::worker_loop(int index)
{
    t_inside_pool_job = true; // nested engine calls inside tasks run inline
    // Band-to-thread pinning: worker `index` owns CPU index+1 (the
    // caller informally owns CPU 0), so a strided participant — and the
    // C-matrix bands it first-touches — stays on one CPU and one NUMA
    // node for the process lifetime.  No-op unless the topology says
    // pinning helps (or CCQ_NUMA=1 forces it).
    const NumaTopology& topology = numa_topology();
    if (topology.pin_workers) (void)pin_current_thread((index + 1) % topology.online_cpus);
    std::uint64_t seen = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->wake.wait(lock, [&] { return impl_->generation != seen; });
            seen = impl_->generation;
            job = impl_->job;
            if (job != nullptr) ++impl_->active;
        }
        if (job == nullptr) continue; // job already finished and detached
        const int participant =
            job->strided ? (index + 1 < job->participants ? index + 1 : -1) : -1;
        const int completed = job->drain(participant);
        if (completed > 0) job->done.fetch_add(completed, std::memory_order_acq_rel);
        {
            const std::lock_guard<std::mutex> lock(impl_->mutex);
            --impl_->active;
        }
        // The submitter waits for done == tasks && active == 0; once this
        // thread has dropped `active` it no longer touches the job.
        impl_->finished.notify_all();
    }
}

void ThreadPool::run(int tasks, int concurrency, const std::function<void(int)>& fn,
                     RunOptions options)
{
    CCQ_EXPECT(tasks >= 0, "ThreadPool::run: negative task count");
    if (tasks == 0) return;
    if (tasks == 1 || concurrency <= 1 || t_inside_pool_job) {
        for (int task = 0; task < tasks; ++task) fn(task);
        return;
    }

    const std::lock_guard<std::mutex> run_lock(impl_->run_mutex);
    ensure_workers(std::min(concurrency, tasks) - 1);

    Job job;
    job.fn = &fn;
    job.tasks = tasks;
    job.strided = options.strided;
    // Strided participants: the caller plus every worker that exists
    // (kMaxWorkers can clamp below the request; every stride must have
    // a live owner or its tasks would never run).
    job.participants = std::min(std::min(concurrency, tasks), worker_count() + 1);
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job = &job;
        ++impl_->generation;
    }
    impl_->wake.notify_all();

    t_inside_pool_job = true;
    const int completed = job.drain(options.strided ? 0 : -1);
    t_inside_pool_job = false;
    if (completed > 0) job.done.fetch_add(completed, std::memory_order_acq_rel);

    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        // Dynamic jobs can detach immediately: by the time the caller's
        // drain returns, every task has been claimed, so late-waking
        // workers are not needed.  Strided jobs must stay visible until
        // every participant's fixed share has run — a worker that has
        // not woken yet still owns unexecuted tasks.
        if (options.strided) {
            impl_->finished.wait(lock, [&] {
                return job.done.load(std::memory_order_acquire) == tasks;
            });
        }
        impl_->job = nullptr; // late-waking workers see no job
        impl_->finished.wait(lock, [&] {
            return impl_->active == 0 &&
                   job.done.load(std::memory_order_acquire) == tasks;
        });
    }
    if (job.error) std::rethrow_exception(job.error);
}

} // namespace ccq
