#include "ccq/clique/transport.hpp"

#include <algorithm>
#include <cmath>

namespace ccq {

double CliqueTransport::rounds_for_load(std::uint64_t max_load_words) const
{
    if (max_load_words == 0) return 0.0;
    const double link_capacity_per_round =
        std::max(1.0, static_cast<double>(n_) * cost_.bandwidth_words);
    return cost_.lenzen_round_factor *
           std::ceil(static_cast<double>(max_load_words) / link_capacity_per_round);
}

void CliqueTransport::charge_route(std::string_view phase, const RoutingLoad& load)
{
    const std::uint64_t max_load = std::max(load.max_sent, load.max_received);
    ledger_->charge(phase, rounds_for_load(max_load), load.total_words);
}

void CliqueTransport::charge_redundant_route(std::string_view phase, const RoutingLoad& load)
{
    // Lemma 2.2: only the receive side constrains the instance; duplicated
    // send content is reconstructed by helper nodes.
    ledger_->charge(phase, rounds_for_load(load.max_received), load.total_words);
}

void CliqueTransport::charge_broadcast_from(std::string_view phase, std::uint64_t words)
{
    if (words == 0) return;
    const double link_capacity_per_round =
        std::max(1.0, static_cast<double>(n_) * cost_.bandwidth_words);
    const double rounds =
        2.0 * std::ceil(static_cast<double>(words) / link_capacity_per_round);
    ledger_->charge(phase, rounds, words * static_cast<std::uint64_t>(n_));
}

void CliqueTransport::charge_broadcast_all(std::string_view phase, std::uint64_t words_per_node)
{
    if (words_per_node == 0) return;
    const double rounds =
        std::ceil(static_cast<double>(words_per_node) / std::max(1.0, cost_.bandwidth_words));
    ledger_->charge(phase, rounds,
                    words_per_node * static_cast<std::uint64_t>(n_) *
                        static_cast<std::uint64_t>(n_));
}

void CliqueTransport::charge_constant_round_spanner(std::string_view phase)
{
    ledger_->charge(phase, cost_.constant_round_spanner_rounds, 0);
}

void CliqueTransport::charge_constant_round_mst(std::string_view phase)
{
    ledger_->charge(phase, cost_.constant_round_mst_rounds, 0);
}

void CliqueTransport::charge_dense_products(std::string_view phase, int products)
{
    CCQ_EXPECT(products >= 0, "charge_dense_products: negative count");
    const double per_product =
        cost_.dense_product_round_factor * std::cbrt(static_cast<double>(n_));
    ledger_->charge(phase, per_product * products, 0);
}

void CliqueTransport::note_local_computation(std::string_view phase)
{
    ledger_->charge(phase, 0.0, 0);
}

} // namespace ccq
