// Congested-Clique communication substrate.
//
// Model (paper, Section 2): n nodes, fully connected; per round every node
// may send one O(log n)-bit message over each of its n-1 links.
// Congested-Clique[B] widens messages to O(B) bits.  One machine word
// (node id + weight + tag) is one standard message.
//
// The two routing workhorses:
//  * Lemma 2.1 (Lenzen): any instance where each node sends and receives
//    O(n) messages completes in O(1) rounds.
//  * Lemma 2.2 ([CFG+20]): same guarantee with only the *receive* side
//    bounded, provided senders' content is determined by O(n log n) input
//    bits (message duplication/redundancy).
//
// CliqueTransport charges rounds for these primitives against a
// RoundLedger and validates the capacity preconditions.  MessageExchange
// moves typed records for real, so algorithm correctness genuinely flows
// through the simulated network.
#ifndef CCQ_CLIQUE_TRANSPORT_HPP
#define CCQ_CLIQUE_TRANSPORT_HPP

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "ccq/clique/ledger.hpp"
#include "ccq/common/check.hpp"
#include "ccq/common/math.hpp"
#include "ccq/common/types.hpp"

namespace ccq {

/// Simulation cost parameters.
struct CostModel {
    /// Words each link carries per round: B / ceil(log2 n).  The standard
    /// model is 1.0; Theorem 7.1's second bullet uses log^2 (B = log^3 n),
    /// Theorem 8.1 uses log^3 (B = log^4 n).
    double bandwidth_words = 1.0;

    /// Rounds charged per "full load" batch in Lenzen routing (one
    /// distribution phase + one delivery phase).
    double lenzen_round_factor = 2.0;

    /// Substituted primitives charge the cited O(1)-round bounds
    /// (DESIGN.md "Documented substitutions").
    double constant_round_spanner_rounds = 4.0; ///< CZ22 spanner construction
    double constant_round_mst_rounds = 4.0;     ///< Nowicki MST

    /// Dense min-plus product round charge factor: rounds = factor * n^{1/3}
    /// ([CKK+19]); used only by the exact baseline.
    double dense_product_round_factor = 1.0;

    [[nodiscard]] static CostModel standard() { return CostModel{}; }

    /// Congested-Clique[log^p n] for an n-node clique.
    [[nodiscard]] static CostModel with_log_power_bandwidth(int n, int power)
    {
        CCQ_EXPECT(power >= 1, "with_log_power_bandwidth: power >= 1");
        CostModel model;
        const double log_n = n >= 2 ? static_cast<double>(ceil_log2(n)) : 1.0;
        double words = 1.0;
        for (int i = 1; i < power; ++i) words *= log_n;
        model.bandwidth_words = words; // B = log^power n bits => log^{power-1} n words
        return model;
    }
};

/// Per-node send/receive word loads of one routing instance.
struct RoutingLoad {
    std::uint64_t max_sent = 0;
    std::uint64_t max_received = 0;
    std::uint64_t total_words = 0;
};

/// Charges rounds for communication primitives and validates capacity
/// preconditions.  All "deliveries" of actual data are performed by
/// MessageExchange (below) which reports its load here.
class CliqueTransport {
public:
    CliqueTransport(int node_count, CostModel cost, RoundLedger& ledger)
        : n_(node_count), cost_(cost), ledger_(&ledger)
    {
        CCQ_EXPECT(node_count >= 1, "CliqueTransport: need at least one node");
    }

    [[nodiscard]] int node_count() const noexcept { return n_; }
    [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
    [[nodiscard]] RoundLedger& ledger() noexcept { return *ledger_; }

    /// Lenzen routing (Lemma 2.1): each node sends <= c*n and receives
    /// <= c*n words.  Rounds: lenzen_round_factor * ceil(max load / (n*bw)).
    void charge_route(std::string_view phase, const RoutingLoad& load);

    /// Redundancy routing (Lemma 2.2): only the receive side is bounded;
    /// the send side may exceed n*c thanks to message duplication.  Same
    /// round formula, driven by the receive load.
    void charge_redundant_route(std::string_view phase, const RoutingLoad& load);

    /// One node disseminates `words` words to everyone (split among
    /// helpers, then helpers all-broadcast): 2 * ceil(words / (n*bw)).
    void charge_broadcast_from(std::string_view phase, std::uint64_t words);

    /// Every node broadcasts `words_per_node` words to everyone:
    /// ceil(words_per_node / bw) rounds (each node receives n*W words).
    void charge_broadcast_all(std::string_view phase, std::uint64_t words_per_node);

    /// Substituted-primitive charges (see CostModel).
    void charge_constant_round_spanner(std::string_view phase);
    void charge_constant_round_mst(std::string_view phase);
    void charge_dense_products(std::string_view phase, int products);

    /// Free local computation marker (recorded with 0 rounds so phase
    /// traces show where local work happens).
    void note_local_computation(std::string_view phase);

private:
    [[nodiscard]] double rounds_for_load(std::uint64_t max_load_words) const;

    int n_;
    CostModel cost_;
    RoundLedger* ledger_;
};

/// Typed, validated message movement.  Records are actually regrouped by
/// destination; `words_per_record` translates records into model words.
template <class Payload>
class MessageExchange {
public:
    explicit MessageExchange(int node_count) : inboxes_(static_cast<std::size_t>(node_count)) {}

    struct Routed {
        NodeId source;
        Payload payload;
    };

    void send(NodeId source, NodeId destination, Payload payload)
    {
        CCQ_EXPECT(valid(source) && valid(destination), "MessageExchange::send: bad endpoint");
        staged_.push_back(Staged{source, destination, std::move(payload)});
    }

    /// Delivers all staged messages: charges `transport` under `phase`
    /// (Lenzen by default, Lemma 2.2 when `redundant`), then returns the
    /// per-destination inboxes.  The exchange is left empty.
    [[nodiscard]] std::vector<std::vector<Routed>> deliver(CliqueTransport& transport,
                                                           std::string_view phase,
                                                           std::uint64_t words_per_record = 1,
                                                           bool redundant = false)
    {
        CCQ_EXPECT(words_per_record >= 1, "MessageExchange: words_per_record >= 1");
        std::vector<std::uint64_t> sent(inboxes_.size(), 0);
        std::vector<std::uint64_t> received(inboxes_.size(), 0);
        for (const Staged& msg : staged_) {
            sent[static_cast<std::size_t>(msg.source)] += words_per_record;
            received[static_cast<std::size_t>(msg.destination)] += words_per_record;
        }
        RoutingLoad load;
        for (std::size_t v = 0; v < inboxes_.size(); ++v) {
            load.max_sent = std::max(load.max_sent, sent[v]);
            load.max_received = std::max(load.max_received, received[v]);
            load.total_words += sent[v];
        }
        if (redundant)
            transport.charge_redundant_route(phase, load);
        else
            transport.charge_route(phase, load);

        for (Staged& msg : staged_) {
            inboxes_[static_cast<std::size_t>(msg.destination)].push_back(
                Routed{msg.source, std::move(msg.payload)});
        }
        staged_.clear();
        return std::exchange(inboxes_,
                             std::vector<std::vector<Routed>>(inboxes_.size()));
    }

private:
    struct Staged {
        NodeId source;
        NodeId destination;
        Payload payload;
    };

    [[nodiscard]] bool valid(NodeId v) const noexcept
    {
        return v >= 0 && static_cast<std::size_t>(v) < inboxes_.size();
    }

    std::vector<Staged> staged_;
    std::vector<std::vector<Routed>> inboxes_;
};

} // namespace ccq

#endif // CCQ_CLIQUE_TRANSPORT_HPP
