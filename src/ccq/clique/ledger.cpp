#include "ccq/clique/ledger.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "ccq/obs/trace.hpp"

namespace ccq {

std::string RoundLedger::qualified(std::string_view label) const
{
    std::string path;
    for (const std::string& part : phase_stack_) {
        path += part;
        path += '/';
    }
    path += label;
    return path;
}

void RoundLedger::charge(std::string_view label, double rounds, std::uint64_t words)
{
    CCQ_EXPECT(rounds >= 0.0, "RoundLedger::charge: negative rounds");
    entries_.push_back(LedgerEntry{qualified(label), rounds, words, !parallel_stack_.empty()});
    if (obs::Tracer::global().enabled()) {
        std::ostringstream args;
        args << "{\"rounds\":" << rounds << ",\"words\":" << words << "}";
        obs::Tracer::global().instant_event("charge/" + entries_.back().phase, "ledger",
                                            args.str());
    }
    total_words_ += words;
    if (!parallel_stack_.empty()) {
        parallel_stack_.back().current_lane_rounds += rounds;
        parallel_stack_.back().words += words;
    } else {
        total_rounds_ += rounds;
    }
}

void RoundLedger::push_phase(std::string_view label)
{
    phase_stack_.emplace_back(label);
    // Ledger phases are the paper's algorithm structure; mirroring them
    // as B/E trace spans puts the phase tree on the trace timeline.
    obs::Tracer::global().begin_event(phase_stack_.back(), "ledger");
}

void RoundLedger::pop_phase()
{
    CCQ_CHECK(!phase_stack_.empty(), "RoundLedger::pop_phase: empty stack");
    phase_stack_.pop_back();
    obs::Tracer::global().end_event();
}

void RoundLedger::begin_parallel() { parallel_stack_.push_back({}); }

void RoundLedger::next_lane()
{
    CCQ_CHECK(!parallel_stack_.empty(), "RoundLedger::next_lane: no open group");
    ParallelGroup& group = parallel_stack_.back();
    group.max_lane_rounds = std::max(group.max_lane_rounds, group.current_lane_rounds);
    group.current_lane_rounds = 0.0;
}

void RoundLedger::end_parallel(std::string_view label)
{
    CCQ_CHECK(!parallel_stack_.empty(), "RoundLedger::end_parallel: no open group");
    ParallelGroup group = parallel_stack_.back();
    parallel_stack_.pop_back();
    group.max_lane_rounds = std::max(group.max_lane_rounds, group.current_lane_rounds);
    // The group cost (max over lanes) flows to the enclosing context.
    entries_.push_back(LedgerEntry{qualified(std::string(label) + "[parallel-max]"),
                                   group.max_lane_rounds, 0, !parallel_stack_.empty()});
    if (!parallel_stack_.empty()) {
        parallel_stack_.back().current_lane_rounds += group.max_lane_rounds;
        parallel_stack_.back().words += group.words;
    } else {
        total_rounds_ += group.max_lane_rounds;
    }
}

double RoundLedger::rounds_in_phase(std::string_view prefix, bool include_parallel_lanes) const
{
    double sum = 0.0;
    for (const LedgerEntry& entry : entries_) {
        if (entry.parallel_lane && !include_parallel_lanes) continue;
        if (entry.phase.starts_with(prefix)) sum += entry.rounds;
    }
    return sum;
}

std::vector<PhaseTotal> RoundLedger::top_level_totals() const
{
    std::map<std::string, PhaseTotal> by_top;
    for (const LedgerEntry& entry : entries_) {
        if (entry.parallel_lane) continue;
        const std::size_t slash = entry.phase.find('/');
        const std::string top =
            slash == std::string::npos ? entry.phase : entry.phase.substr(0, slash);
        PhaseTotal& total = by_top[top];
        total.phase = top;
        total.rounds += entry.rounds;
        total.words += entry.words;
    }
    std::vector<PhaseTotal> result;
    result.reserve(by_top.size());
    for (auto& [name, total] : by_top) result.push_back(std::move(total));
    return result;
}

void RoundLedger::emit_trace_totals() const
{
    if (!obs::Tracer::global().enabled()) return;
    for (const PhaseTotal& total : top_level_totals()) {
        std::ostringstream args;
        args << "{\"rounds\":" << total.rounds << ",\"words\":" << total.words << "}";
        obs::Tracer::global().instant_event("ledger/" + total.phase, "ledger", args.str());
    }
}

std::string RoundLedger::report() const
{
    std::ostringstream out;
    out << "rounds=" << total_rounds_ << " words=" << total_words_ << '\n';
    for (const PhaseTotal& total : top_level_totals()) {
        out << "  " << total.phase << ": rounds=" << total.rounds << " words=" << total.words
            << '\n';
    }
    return out.str();
}

} // namespace ccq
