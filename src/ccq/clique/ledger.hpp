// Round accounting for the Congested-Clique simulation.
//
// The model's complexity measure is synchronous communication rounds.
// Every communication primitive charges rounds here, tagged with a phase
// label, so tests can assert accounting invariants and benches can report
// per-stage breakdowns (e.g. "hopset: 4 rounds, k-nearest: 12 rounds").
//
// Parallel composition: Theorem 8.1 runs Theorem 7.1 on O(log n) graphs
// *in parallel* using widened bandwidth.  A ParallelScope charges the
// maximum over its lanes instead of the sum.
#ifndef CCQ_CLIQUE_LEDGER_HPP
#define CCQ_CLIQUE_LEDGER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ccq/common/check.hpp"

namespace ccq {

/// One accounting record.
struct LedgerEntry {
    std::string phase;       ///< hierarchical label, e.g. "general/hopset/route"
    double rounds = 0.0;     ///< rounds charged
    std::uint64_t words = 0; ///< total words moved (0 for charged-only entries)
    bool parallel_lane = false; ///< true for trace entries inside a parallel
                                ///< group; the group's cost is carried by its
                                ///< single "[parallel-max]" entry instead
};

/// Aggregated view of one phase.
struct PhaseTotal {
    std::string phase;
    double rounds = 0.0;
    std::uint64_t words = 0;
};

class RoundLedger {
public:
    /// Charges `rounds` under the current phase path extended by `label`.
    void charge(std::string_view label, double rounds, std::uint64_t words = 0);

    [[nodiscard]] double total_rounds() const noexcept { return total_rounds_; }
    [[nodiscard]] std::uint64_t total_words() const noexcept { return total_words_; }
    [[nodiscard]] const std::vector<LedgerEntry>& entries() const noexcept { return entries_; }

    /// Sums entries whose phase path starts with `prefix`.  By default
    /// parallel-lane trace entries are excluded, so the sum over disjoint
    /// prefixes matches total_rounds(); pass true to inspect lane detail.
    [[nodiscard]] double rounds_in_phase(std::string_view prefix,
                                         bool include_parallel_lanes = false) const;

    /// Rolls entries up to their top-level phase component.
    [[nodiscard]] std::vector<PhaseTotal> top_level_totals() const;

    /// Multi-line human-readable report.
    [[nodiscard]] std::string report() const;

    /// Emits one instant trace event per top-level phase (name
    /// "ledger/<phase>", args {rounds, words}) onto the global tracer,
    /// so a build trace carries the round budget next to the spans.
    /// No-op while tracing is disabled.
    void emit_trace_totals() const;

    // --- phase scoping (see PhaseScope below) ---
    void push_phase(std::string_view label);
    void pop_phase();

    // --- parallel lanes (see ParallelScope below) ---
    void begin_parallel();
    void next_lane();
    void end_parallel(std::string_view label);

private:
    friend class PhaseScope;
    friend class ParallelScope;

    [[nodiscard]] std::string qualified(std::string_view label) const;

    std::vector<std::string> phase_stack_;
    std::vector<LedgerEntry> entries_;
    double total_rounds_ = 0.0;
    std::uint64_t total_words_ = 0;

    // Parallel bookkeeping: while a parallel group is open, charges
    // accumulate into the current lane instead of the grand total.
    struct ParallelGroup {
        double max_lane_rounds = 0.0;
        double current_lane_rounds = 0.0;
        std::uint64_t words = 0;
    };
    std::vector<ParallelGroup> parallel_stack_;
};

/// RAII phase label: all charges inside the scope are nested under it.
class PhaseScope {
public:
    PhaseScope(RoundLedger& ledger, std::string_view label) : ledger_(ledger)
    {
        ledger_.push_phase(label);
    }
    ~PhaseScope() { ledger_.pop_phase(); }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

private:
    RoundLedger& ledger_;
};

/// RAII parallel group: lanes declared with next_lane() run concurrently;
/// on destruction the group charges max-over-lanes under `label`.
class ParallelScope {
public:
    ParallelScope(RoundLedger& ledger, std::string_view label)
        : ledger_(ledger), label_(label)
    {
        ledger_.begin_parallel();
    }
    void next_lane() { ledger_.next_lane(); }
    ~ParallelScope() { ledger_.end_parallel(label_); }
    ParallelScope(const ParallelScope&) = delete;
    ParallelScope& operator=(const ParallelScope&) = delete;

private:
    RoundLedger& ledger_;
    std::string label_;
};

} // namespace ccq

#endif // CCQ_CLIQUE_LEDGER_HPP
