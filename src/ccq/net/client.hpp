// Client half of the serving protocol: a typed request/response API
// over any Stream, mirroring the QueryEngine surface one-to-one so
// callers (ccq_client, the closed-loop bench) can swap between
// in-process and over-the-wire serving without changing shape.
//
// A Client owns one connection.  The typed calls are sequential (one
// frame in flight); the pipelined_* batch entry points keep a bounded
// window of request frames in flight on the same connection and match
// replies in order — the server guarantees arrival-order responses, so
// no correlation ids are needed.  Server-reported failures throw
// rpc_error (carrying the status), transport failures throw net_error,
// and undecodable responses throw protocol_error.
#ifndef CCQ_NET_CLIENT_HPP
#define CCQ_NET_CLIENT_HPP

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ccq/net/protocol.hpp"
#include "ccq/net/socket.hpp"

namespace ccq {

class Client {
public:
    /// Wraps an already-connected stream (socketpair, stdio, ...).
    explicit Client(std::unique_ptr<Stream> stream);

    /// Connects over TCP ("localhost" or a numeric IPv4 address).
    [[nodiscard]] static Client connect(const std::string& host, int port);

    /// Liveness probe; returns the server's protocol version.
    std::uint32_t ping();

    [[nodiscard]] Weight distance(NodeId from, NodeId to);
    [[nodiscard]] PathResult path(NodeId from, NodeId to);
    [[nodiscard]] std::vector<NearTarget> nearest_targets(NodeId from, int k);
    [[nodiscard]] std::vector<Weight> batch_distances(std::span<const PointQuery> queries);
    [[nodiscard]] std::vector<PathResult> batch_paths(std::span<const PointQuery> queries);
    [[nodiscard]] ServerStats stats();

    /// Scrapes the server's metric registry: Prometheus text exposition.
    [[nodiscard]] std::string metrics();

    /// Dumps the server's flight recorder: the last N request records,
    /// oldest first.
    [[nodiscard]] std::vector<obs::RequestRecord> flight_records();

    /// Tag every subsequent request frame with a trace envelope: ids
    /// start at `first_id` and increment per request (pipelined frames
    /// included), `sampled` asks the server to record the span chain.
    void enable_trace_envelopes(std::uint64_t first_id, bool sampled = true) noexcept
    {
        trace_enabled_ = true;
        next_trace_id_ = first_id;
        trace_sampled_ = sampled;
    }
    void disable_trace_envelopes() noexcept { trace_enabled_ = false; }

    /// Trace id the next tagged request will carry (envelopes enabled).
    [[nodiscard]] std::uint64_t next_trace_id() const noexcept { return next_trace_id_; }

    /// Point-distance queries pipelined over this connection: up to
    /// `window` request frames in flight at once, replies consumed in
    /// order.  One round-trip per window instead of one per query.  On a
    /// non-ok reply the remaining in-flight replies are drained (the
    /// connection stays usable) and the first error is rethrown as
    /// rpc_error.
    [[nodiscard]] std::vector<Weight>
    pipelined_distances(std::span<const PointQuery> queries, int window = 32);

    /// Path reconstructions with the same pipelining discipline.
    [[nodiscard]] std::vector<PathResult>
    pipelined_paths(std::span<const PointQuery> queries, int window = 32);

    /// Asks the server to shut down gracefully; returns once acknowledged.
    /// Token-protected servers (ccq_served --shutdown-token) answer
    /// rpc_error(Status::forbidden) unless `token` matches.
    void shutdown_server(const std::string& token = {});

    /// JSON debug mode passthrough: sends `json` (must be one object) as
    /// a frame and returns the server's JSON reply verbatim.
    [[nodiscard]] std::string json_request(const std::string& json);

private:
    /// Sends one request frame and returns the ok payload of the reply.
    [[nodiscard]] std::string roundtrip(const Request& request);
    /// The encoded request body, wrapped in a trace envelope (and
    /// consuming one trace id) when envelopes are enabled.
    [[nodiscard]] std::string request_body(const Request& request);

    std::unique_ptr<Stream> stream_;
    bool trace_enabled_ = false;
    bool trace_sampled_ = true;
    std::uint64_t next_trace_id_ = 1;
};

/// A pool of ready connections to one server, for callers that issue
/// bursts of requests from many threads (the network bench, tools).
/// acquire() reuses an idle pooled connection or dials a new one; the
/// returned Lease gives the connection back on destruction — unless the
/// caller discard()s it after an error that may have desynced the
/// stream.  Thread-safe.
class ClientPool {
public:
    ClientPool(std::string host, int port, std::size_t max_idle = 16);

    /// RAII handle on a pooled connection.
    class Lease {
    public:
        Lease(ClientPool& pool, std::unique_ptr<Client> client) noexcept
            : pool_(&pool), client_(std::move(client))
        {
        }
        ~Lease();
        Lease(Lease&& other) noexcept = default;
        Lease& operator=(Lease&&) = delete;
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;

        [[nodiscard]] Client& operator*() noexcept { return *client_; }
        [[nodiscard]] Client* operator->() noexcept { return client_.get(); }

        /// Drops the connection instead of pooling it (call after any
        /// net_error/protocol_error: the stream position is unknown).
        void discard() noexcept { client_.reset(); }

    private:
        ClientPool* pool_;
        std::unique_ptr<Client> client_;
    };

    /// An idle pooled connection, or a freshly dialed one (may throw
    /// net_error like Client::connect).
    [[nodiscard]] Lease acquire();

    /// Connections currently parked in the pool.
    [[nodiscard]] std::size_t idle_count() const;

private:
    void give_back(std::unique_ptr<Client> client) noexcept;

    std::string host_;
    int port_;
    std::size_t max_idle_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Client>> idle_;
};

} // namespace ccq

#endif // CCQ_NET_CLIENT_HPP
